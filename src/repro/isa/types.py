"""Register-value types used by the ISA simulator.

Three register classes mirror the x86 register files the paper's kernels use:

* :class:`Vec` - a SIMD vector register (``__m256i`` / ``__m512i``): a fixed
  number of unsigned lanes of a fixed bit width.
* :class:`Mask` - an AVX-512 mask register (``__mmask8``): one bit per lane.
* :class:`SVal` - a 64-bit general-purpose register (``uint64_t``).

Every value carries a unique ``vid`` so the tracer can reconstruct the
dataflow graph (used by the machine model's critical-path analysis). Values
are immutable; instructions return new values, SSA-style, which matches how
out-of-order hardware renames registers.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple

from repro.errors import IsaError, LaneMismatchError, MaskWidthError

_VID_COUNTER = itertools.count(1)


def _next_vid() -> int:
    return next(_VID_COUNTER)


class Vec:
    """An immutable SIMD vector register of ``lanes`` x ``width``-bit lanes."""

    __slots__ = ("_values", "width", "vid")

    def __init__(self, values: Sequence[int], width: int = 64) -> None:
        mask = (1 << width) - 1
        vals = tuple(int(v) & mask for v in values)
        if not vals:
            raise IsaError("a vector register needs at least one lane")
        object.__setattr__(self, "_values", vals)
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "vid", _next_vid())

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Vec is immutable")

    @property
    def lanes(self) -> int:
        """Number of SIMD lanes (8 for ``__m512i`` holding 64-bit ints)."""
        return len(self._values)

    @property
    def bits(self) -> int:
        """Total register width in bits (512 for ``__m512i``)."""
        return self.lanes * self.width

    @property
    def values(self) -> Tuple[int, ...]:
        """The lane values, lane 0 first."""
        return self._values

    def lane(self, index: int) -> int:
        """Return the value held in ``index``-th lane."""
        return self._values[index]

    def to_list(self) -> List[int]:
        """Return the lanes as a fresh list."""
        return list(self._values)

    @classmethod
    def broadcast(cls, value: int, lanes: int, width: int = 64) -> "Vec":
        """Replicate ``value`` into every lane (``_mm512_set1_epi64``)."""
        return cls([value] * lanes, width=width)

    @classmethod
    def zeros(cls, lanes: int, width: int = 64) -> "Vec":
        """An all-zero register (``_mm512_setzero_si512``)."""
        return cls([0] * lanes, width=width)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vec):
            return NotImplemented
        return self._values == other._values and self.width == other.width

    def __hash__(self) -> int:
        return hash((self._values, self.width))

    def __repr__(self) -> str:
        vals = ", ".join(f"{v:#x}" for v in self._values)
        return f"Vec{self.lanes}x{self.width}[{vals}]"


class Mask:
    """An immutable AVX-512 mask register: one bit per vector lane."""

    __slots__ = ("value", "lanes", "vid")

    def __init__(self, value: int, lanes: int) -> None:
        if lanes <= 0:
            raise IsaError("a mask register needs at least one lane")
        object.__setattr__(self, "value", int(value) & ((1 << lanes) - 1))
        object.__setattr__(self, "lanes", lanes)
        object.__setattr__(self, "vid", _next_vid())

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Mask is immutable")

    @classmethod
    def from_bools(cls, bits: Iterable[bool]) -> "Mask":
        """Build a mask from per-lane booleans, lane 0 first."""
        bit_list = list(bits)
        value = 0
        for i, bit in enumerate(bit_list):
            if bit:
                value |= 1 << i
        return cls(value, len(bit_list))

    @classmethod
    def zeros(cls, lanes: int) -> "Mask":
        """An all-zero mask (the paper's global ``z_mask``)."""
        return cls(0, lanes)

    @classmethod
    def ones(cls, lanes: int) -> "Mask":
        """An all-ones mask."""
        return cls((1 << lanes) - 1, lanes)

    def bit(self, index: int) -> bool:
        """Return the mask bit for lane ``index``."""
        if not 0 <= index < self.lanes:
            raise MaskWidthError(f"lane {index} out of range for {self.lanes}-lane mask")
        return bool((self.value >> index) & 1)

    def to_bools(self) -> List[bool]:
        """Return the mask as per-lane booleans, lane 0 first."""
        return [self.bit(i) for i in range(self.lanes)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mask):
            return NotImplemented
        return self.value == other.value and self.lanes == other.lanes

    def __hash__(self) -> int:
        return hash((self.value, self.lanes))

    def __repr__(self) -> str:
        bits = "".join("1" if self.bit(i) else "0" for i in range(self.lanes))
        return f"Mask{self.lanes}[{bits}]"


class SVal:
    """An immutable 64-bit scalar register value (``uint64_t`` / flag bit).

    Scalar kernels manipulate :class:`SVal` exclusively through the functions
    in :mod:`repro.isa.scalar`, mirroring how the paper's scalar C code maps
    to individual x86 instructions.
    """

    __slots__ = ("value", "width", "vid")

    def __init__(self, value: int, width: int = 64) -> None:
        object.__setattr__(self, "value", int(value) & ((1 << width) - 1))
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "vid", _next_vid())

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SVal is immutable")

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SVal):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        return f"SVal({self.value:#x})"


def check_same_shape(a: Vec, b: Vec) -> None:
    """Raise :class:`LaneMismatchError` unless ``a`` and ``b`` match."""
    if a.lanes != b.lanes or a.width != b.width:
        raise LaneMismatchError(
            f"operand shape mismatch: {a.lanes}x{a.width} vs {b.lanes}x{b.width}"
        )


def check_mask_fits(mask: Mask, vec: Vec) -> None:
    """Raise :class:`MaskWidthError` unless ``mask`` covers ``vec``'s lanes."""
    if mask.lanes != vec.lanes:
        raise MaskWidthError(
            f"{mask.lanes}-lane mask used with {vec.lanes}-lane vector"
        )
