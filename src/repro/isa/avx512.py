"""AVX-512F/DQ intrinsics on 8x64-bit lanes (``__m512i`` + ``__mmask8``).

Function names follow the Intel intrinsics the paper's Listings 2 and 4 use,
without the leading underscores (``_mm512_add_epi64`` -> ``mm512_add_epi64``).
Semantics are lane-accurate; every call emits one trace entry whose mnemonic
matches the instruction the intrinsic compiles to (``vpaddq``, ``vpcmpuq``,
``korb``...), suffixed with the register class (``_zmm``) so the machine
model can cost 512-bit execution separately from 256-bit.

Constants built with :func:`mm512_set1_epi64` are treated as loop-hoisted
(no trace entry) by default, matching how the paper's kernels set ``one`` and
``z_mask`` globally; pass ``hoisted=False`` for in-loop broadcasts such as
per-stage twiddle factors.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.errors import IsaError
from repro.isa.trace import emit
from repro.isa.types import Mask, Vec, check_mask_fits, check_same_shape
from repro.util.bits import MASK32, MASK64

#: Number of 64-bit lanes in a ZMM register.
LANES = 8

# Comparison predicates for mm512_cmp_*_mask (the _MM_CMPINT_* constants).
CMPINT_EQ = 0
CMPINT_LT = 1
CMPINT_LE = 2
CMPINT_FALSE = 3
CMPINT_NE = 4
CMPINT_NLT = 5  # >=
CMPINT_NLE = 6  # >
CMPINT_TRUE = 7

_PREDICATES = {
    CMPINT_EQ: lambda a, b: a == b,
    CMPINT_LT: lambda a, b: a < b,
    CMPINT_LE: lambda a, b: a <= b,
    CMPINT_FALSE: lambda a, b: False,
    CMPINT_NE: lambda a, b: a != b,
    CMPINT_NLT: lambda a, b: a >= b,
    CMPINT_NLE: lambda a, b: a > b,
    CMPINT_TRUE: lambda a, b: True,
}


def _check_zmm(*vecs: Vec) -> None:
    for vec in vecs:
        if vec.lanes != LANES or vec.width != 64:
            raise IsaError(
                f"expected an 8x64-bit ZMM register, got {vec.lanes}x{vec.width}"
            )


def mm512_set1_epi64(value: int, hoisted: bool = True) -> Vec:
    """``_mm512_set1_epi64``: broadcast a 64-bit value to all lanes."""
    result = Vec.broadcast(value & MASK64, LANES)
    if not hoisted:
        emit("vpbroadcastq_zmm", [result], [])
    return result


def mm512_setzero_si512() -> Vec:
    """``_mm512_setzero_si512``: an all-zero register (zeroing idiom, free)."""
    return Vec.zeros(LANES)


def mm512_load_si512(values: Union[Vec, Sequence[int]]) -> Vec:
    """``_mm512_loadu_si512``: model a 64-byte load of eight 64-bit lanes."""
    result = Vec(values.values if isinstance(values, Vec) else values)
    _check_zmm(result)
    emit("vmovdqu64_load_zmm", [result], [], tag="load")
    return result


def mm512_store_si512(vec: Vec) -> Vec:
    """``_mm512_storeu_si512``: model a 64-byte store; returns the value."""
    _check_zmm(vec)
    emit("vmovdqu64_store_zmm", [], [vec], tag="store")
    return vec


def mm512_movdqa64(vec: Vec) -> Vec:
    """Register-to-register copy (``vmovdqa64 zmm, zmm``)."""
    _check_zmm(vec)
    result = Vec(vec.values)
    emit("vmovdqa64_zmm", [result], [vec])
    return result


def mm512_add_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm512_add_epi64``: per-lane 64-bit addition (wrapping)."""
    _check_zmm(a, b)
    check_same_shape(a, b)
    result = Vec([(x + y) & MASK64 for x, y in zip(a.values, b.values)])
    emit("vpaddq_zmm", [result], [a, b])
    return result


def mm512_sub_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm512_sub_epi64``: per-lane 64-bit subtraction (wrapping)."""
    _check_zmm(a, b)
    check_same_shape(a, b)
    result = Vec([(x - y) & MASK64 for x, y in zip(a.values, b.values)])
    emit("vpsubq_zmm", [result], [a, b])
    return result


def mm512_mask_add_epi64(src: Vec, k: Mask, a: Vec, b: Vec) -> Vec:
    """``_mm512_mask_add_epi64``: add where ``k`` is set, else copy ``src``.

    This is the PISA proxy instruction for MQX's ``_mm512_adc_epi64``
    (Table 3): same execution port, plus a mask-register dependency.
    """
    _check_zmm(src, a, b)
    check_mask_fits(k, a)
    result = Vec(
        [
            (x + y) & MASK64 if k.bit(i) else s
            for i, (s, x, y) in enumerate(zip(src.values, a.values, b.values))
        ]
    )
    emit("vpaddq_masked_zmm", [result], [src, k, a, b])
    return result


def mm512_mask_sub_epi64(src: Vec, k: Mask, a: Vec, b: Vec) -> Vec:
    """``_mm512_mask_sub_epi64``: subtract where ``k`` is set, else ``src``.

    PISA proxy for MQX's ``_mm512_sbb_epi64`` (Table 3).
    """
    _check_zmm(src, a, b)
    check_mask_fits(k, a)
    result = Vec(
        [
            (x - y) & MASK64 if k.bit(i) else s
            for i, (s, x, y) in enumerate(zip(src.values, a.values, b.values))
        ]
    )
    emit("vpsubq_masked_zmm", [result], [src, k, a, b])
    return result


def mm512_cmp_epu64_mask(a: Vec, b: Vec, predicate: int) -> Mask:
    """``_mm512_cmp_epu64_mask``: unsigned per-lane compare into a mask."""
    _check_zmm(a, b)
    if predicate not in _PREDICATES:
        raise IsaError(f"unknown comparison predicate {predicate}")
    test = _PREDICATES[predicate]
    result = Mask.from_bools(test(x, y) for x, y in zip(a.values, b.values))
    emit("vpcmpuq_zmm", [result], [a, b], imm=predicate)
    return result


def mm512_mask_cmp_epu64_mask(k: Mask, a: Vec, b: Vec, predicate: int) -> Mask:
    """``_mm512_mask_cmp_epu64_mask``: compare with zeroing mask ``k``."""
    _check_zmm(a, b)
    check_mask_fits(k, a)
    if predicate not in _PREDICATES:
        raise IsaError(f"unknown comparison predicate {predicate}")
    test = _PREDICATES[predicate]
    result = Mask.from_bools(
        k.bit(i) and test(x, y) for i, (x, y) in enumerate(zip(a.values, b.values))
    )
    emit("vpcmpuq_zmm", [result], [k, a, b], imm=predicate)
    return result


def mm512_cmp_epi64_mask(a: Vec, b: Vec, predicate: int) -> Mask:
    """``_mm512_cmp_epi64_mask``: signed per-lane compare into a mask."""
    _check_zmm(a, b)
    if predicate not in _PREDICATES:
        raise IsaError(f"unknown comparison predicate {predicate}")

    def signed(x: int) -> int:
        return x - (1 << 64) if x >> 63 else x

    test = _PREDICATES[predicate]
    result = Mask.from_bools(
        test(signed(x), signed(y)) for x, y in zip(a.values, b.values)
    )
    emit("vpcmpq_zmm", [result], [a, b], imm=predicate)
    return result


def mm512_mask_blend_epi64(k: Mask, a: Vec, b: Vec) -> Vec:
    """``_mm512_mask_blend_epi64``: per-lane select, ``b`` where ``k`` set."""
    _check_zmm(a, b)
    check_mask_fits(k, a)
    result = Vec(
        [y if k.bit(i) else x for i, (x, y) in enumerate(zip(a.values, b.values))]
    )
    emit("vpblendmq_zmm", [result], [k, a, b])
    return result


def mm512_mullo_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm512_mullo_epi64`` (AVX-512DQ ``vpmullq``): low 64 bits of product.

    The only 64-bit multiply AVX-512 offers (Section 4.1); also the PISA
    proxy instruction for MQX's widening ``_mm512_mul_epi64`` (Table 3).
    """
    _check_zmm(a, b)
    result = Vec([(x * y) & MASK64 for x, y in zip(a.values, b.values)])
    emit("vpmullq_zmm", [result], [a, b])
    return result


def mm512_mul_epu32(a: Vec, b: Vec) -> Vec:
    """``_mm512_mul_epu32`` (``vpmuludq``): 32x32->64 widening multiply.

    Multiplies the low 32 bits of each 64-bit lane; the building block of the
    AVX-512 emulation of a full 64x64->128 multiply.
    """
    _check_zmm(a, b)
    result = Vec([(x & MASK32) * (y & MASK32) for x, y in zip(a.values, b.values)])
    emit("vpmuludq_zmm", [result], [a, b])
    return result


def mm512_madd52lo_epu64(acc: Vec, a: Vec, b: Vec) -> Vec:
    """``_mm512_madd52lo_epu64`` (AVX-512 IFMA ``vpmadd52luq``).

    Per lane: multiply the low 52 bits of ``a`` and ``b`` (a 104-bit
    product) and add the product's low 52 bits to ``acc``. The fused
    52-bit multiply-add that makes HEXL-style big-integer kernels fast -
    one instruction where the 64-bit emulation needs ~15.
    """
    _check_zmm(acc, a, b)
    mask52 = (1 << 52) - 1
    result = Vec(
        [
            (s + (((x & mask52) * (y & mask52)) & mask52)) & MASK64
            for s, x, y in zip(acc.values, a.values, b.values)
        ]
    )
    emit("vpmadd52luq_zmm", [result], [acc, a, b])
    return result


def mm512_madd52hi_epu64(acc: Vec, a: Vec, b: Vec) -> Vec:
    """``_mm512_madd52hi_epu64`` (``vpmadd52huq``): high-half counterpart.

    Adds bits 52..103 of the 52x52-bit product to ``acc``.
    """
    _check_zmm(acc, a, b)
    mask52 = (1 << 52) - 1
    result = Vec(
        [
            (s + (((x & mask52) * (y & mask52)) >> 52)) & MASK64
            for s, x, y in zip(acc.values, a.values, b.values)
        ]
    )
    emit("vpmadd52huq_zmm", [result], [acc, a, b])
    return result


def mm512_srli_epi64(a: Vec, amount: int) -> Vec:
    """``_mm512_srli_epi64``: per-lane logical right shift by an immediate."""
    _check_zmm(a)
    if not 0 <= amount <= 64:
        raise IsaError(f"shift amount {amount} out of range")
    result = Vec([x >> amount if amount < 64 else 0 for x in a.values])
    emit("vpsrlq_zmm", [result], [a], imm=amount)
    return result


def mm512_slli_epi64(a: Vec, amount: int) -> Vec:
    """``_mm512_slli_epi64``: per-lane logical left shift by an immediate."""
    _check_zmm(a)
    if not 0 <= amount <= 64:
        raise IsaError(f"shift amount {amount} out of range")
    result = Vec([(x << amount) & MASK64 if amount < 64 else 0 for x in a.values])
    emit("vpsllq_zmm", [result], [a], imm=amount)
    return result


def mm512_and_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm512_and_epi64`` (``vpandq``)."""
    _check_zmm(a, b)
    result = Vec([x & y for x, y in zip(a.values, b.values)])
    emit("vpandq_zmm", [result], [a, b])
    return result


def mm512_or_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm512_or_epi64`` (``vporq``)."""
    _check_zmm(a, b)
    result = Vec([x | y for x, y in zip(a.values, b.values)])
    emit("vporq_zmm", [result], [a, b])
    return result


def mm512_xor_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm512_xor_epi64`` (``vpxorq``)."""
    _check_zmm(a, b)
    result = Vec([x ^ y for x, y in zip(a.values, b.values)])
    emit("vpxorq_zmm", [result], [a, b])
    return result


def mm512_max_epu64(a: Vec, b: Vec) -> Vec:
    """``_mm512_max_epu64`` (``vpmaxuq``): per-lane unsigned maximum."""
    _check_zmm(a, b)
    result = Vec([max(x, y) for x, y in zip(a.values, b.values)])
    emit("vpmaxuq_zmm", [result], [a, b])
    return result


def mm512_unpacklo_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm512_unpacklo_epi64``: interleave even lanes of 128-bit pairs.

    Result lanes are ``[a0,b0, a2,b2, a4,b4, a6,b6]`` - one of the two
    permutation primitives the Pease-dataflow NTT stage uses (Section 3.2).
    """
    _check_zmm(a, b)
    lanes = []
    for pair in range(LANES // 2):
        lanes.append(a.values[2 * pair])
        lanes.append(b.values[2 * pair])
    result = Vec(lanes)
    emit("vpunpcklqdq_zmm", [result], [a, b])
    return result


def mm512_unpackhi_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm512_unpackhi_epi64``: interleave odd lanes of 128-bit pairs."""
    _check_zmm(a, b)
    lanes = []
    for pair in range(LANES // 2):
        lanes.append(a.values[2 * pair + 1])
        lanes.append(b.values[2 * pair + 1])
    result = Vec(lanes)
    emit("vpunpckhqdq_zmm", [result], [a, b])
    return result


def mm512_permutex2var_epi64(a: Vec, idx: Vec, b: Vec) -> Vec:
    """``_mm512_permutex2var_epi64`` (``vpermt2q``): two-source permute.

    Each output lane ``i`` selects ``a[idx[i] & 7]`` when bit 3 of ``idx[i]``
    is clear, else ``b[idx[i] & 7]``.
    """
    _check_zmm(a, idx, b)
    lanes = []
    for sel in idx.values:
        sel &= 0xF
        lanes.append(a.values[sel] if sel < LANES else b.values[sel - LANES])
    result = Vec(lanes)
    emit("vpermt2q_zmm", [result], [a, idx, b])
    return result


def mm512_permutexvar_epi64(idx: Vec, a: Vec) -> Vec:
    """``_mm512_permutexvar_epi64`` (``vpermq``): one-source permute."""
    _check_zmm(idx, a)
    result = Vec([a.values[sel & 0x7] for sel in idx.values])
    emit("vpermq_zmm", [result], [idx, a])
    return result


def kor8(a: Mask, b: Mask) -> Mask:
    """``korb``: OR two 8-bit mask registers."""
    result = Mask(a.value | b.value, a.lanes)
    emit("korb", [result], [a, b])
    return result


def kand8(a: Mask, b: Mask) -> Mask:
    """``kandb``: AND two 8-bit mask registers."""
    result = Mask(a.value & b.value, a.lanes)
    emit("kandb", [result], [a, b])
    return result


def kandn8(a: Mask, b: Mask) -> Mask:
    """``kandnb``: ``(~a) & b`` on 8-bit mask registers."""
    result = Mask(~a.value & b.value, a.lanes)
    emit("kandnb", [result], [a, b])
    return result


def kxor8(a: Mask, b: Mask) -> Mask:
    """``kxorb``: XOR two 8-bit mask registers."""
    result = Mask(a.value ^ b.value, a.lanes)
    emit("kxorb", [result], [a, b])
    return result


def knot8(a: Mask) -> Mask:
    """``knotb``: complement an 8-bit mask register."""
    result = Mask(~a.value, a.lanes)
    emit("knotb", [result], [a])
    return result


def mul64_wide_emulated(a: Vec, b: Vec) -> Tuple[Vec, Vec]:
    """Emulate a 64x64->128 widening multiply with baseline AVX-512.

    AVX-512 has no widening 64-bit multiply (the gap MQX's
    ``_mm512_mul_epi64`` fills), so the kernels synthesize it from four
    ``vpmuludq`` 32x32->64 partial products plus shift/add/carry fix-up -
    the standard sequence real AVX-512 NTT code uses. Returns
    ``(high, low)`` vectors of the 128-bit products.
    """
    _check_zmm(a, b)
    mask32 = mm512_set1_epi64(MASK32)

    a_hi = mm512_srli_epi64(a, 32)
    b_hi = mm512_srli_epi64(b, 32)

    # Four 32x32->64 partial products. vpmuludq reads the low 32 bits of
    # each lane, so the "low" operands can be the original registers.
    ll = mm512_mul_epu32(a, b)
    lh = mm512_mul_epu32(a, b_hi)
    hl = mm512_mul_epu32(a_hi, b)
    hh = mm512_mul_epu32(a_hi, b_hi)

    # Combine: product = hh<<64 + (lh + hl)<<32 + ll. The first cross sum
    # lh + (ll >> 32) cannot overflow (it is at most (2^32-1) * 2^32), so
    # only the second cross sum needs a carry check.
    ll_hi = mm512_srli_epi64(ll, 32)
    cross = mm512_add_epi64(lh, ll_hi)
    cross2 = mm512_add_epi64(cross, hl)
    carry = mm512_cmp_epu64_mask(cross2, hl, CMPINT_LT)

    # Low word: low 32 bits of ll | low 32 bits of cross2 shifted up.
    low = mm512_or_epi64(
        mm512_and_epi64(ll, mask32), mm512_slli_epi64(cross2, 32)
    )

    # High word: hh + high 32 bits of cross2 + carry shifted into bit 32.
    one_hi = mm512_set1_epi64(1 << 32)
    high = mm512_add_epi64(hh, mm512_srli_epi64(cross2, 32))
    high = mm512_mask_add_epi64(high, carry, high, one_hi)
    return high, low
