"""MQX - the paper's proposed multi-word extension to AVX-512 (Section 4).

Three new instructions, each with a scalar x86 ancestor and a 32-bit LRBni /
Knights Corner SIMD ancestor:

* :func:`mm512_mul_epi64` - widening 64x64->128 multiply (mirrors ``MUL``).
* :func:`mm512_adc_epi64` - add with carry-in/out masks (mirrors ``ADC``).
* :func:`mm512_sbb_epi64` - subtract with borrow-in/out (mirrors ``SBB``).

Semantics follow the per-lane emulation column of Table 2 exactly. The
module also provides the variants explored in the sensitivity analysis of
Section 5.5:

* :func:`mm512_mulhi_epi64` - multiply-high only (the ``+Mh`` variant, a
  lower-cost hardware alternative to full widening multiplication).
* :func:`mm512_mask_adc_epi64` / :func:`mm512_mask_sbb_epi64` - predicated
  add-with-carry / subtract-with-borrow (the ``+P`` variant, ultimately not
  included in MQX because its gain is only ~1.1x).

Because MQX does not exist in silicon, its performance is *projected* via
PISA (Section 4.2): the machine model costs each MQX mnemonic using its
AVX-512 proxy instruction from Table 3. Functional correctness comes from
the emulation semantics implemented here, which is precisely the paper's
"functional correctness flag" mode.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import IsaError
from repro.isa.trace import emit
from repro.isa.types import Mask, Vec, check_mask_fits, check_same_shape
from repro.util.bits import MASK64

#: Number of 64-bit lanes; MQX as modeled extends AVX-512 (8 lanes), but the
#: paper notes both word size and lane count are configurable.
LANES = 8


def _check_zmm(*vecs: Vec) -> None:
    for vec in vecs:
        if vec.lanes != LANES or vec.width != 64:
            raise IsaError(
                f"MQX expects 8x64-bit ZMM registers, got {vec.lanes}x{vec.width}"
            )


def mm512_mul_epi64(a: Vec, b: Vec) -> Tuple[Vec, Vec]:
    """MQX widening multiply: per-lane 64x64->128, returns ``(high, low)``.

    Table 2: ``*ch[i] = ((i128) a[i] * (i128) b[i]) >> 64`` and
    ``*cl[i] = (a[i] * b[i]) & MASK64``. PISA proxy: ``vpmullq`` (Table 3).
    """
    _check_zmm(a, b)
    check_same_shape(a, b)
    products = [x * y for x, y in zip(a.values, b.values)]
    high = Vec([p >> 64 for p in products])
    low = Vec([p & MASK64 for p in products])
    emit("vpmulwq_zmm", [high, low], [a, b])
    return high, low


def mm512_mulhi_epi64(a: Vec, b: Vec) -> Vec:
    """Multiply-high only (the ``+Mh`` sensitivity variant, Section 5.5).

    Modeled with the same latency as multiply-low, so a widening multiply
    becomes a two-instruction ``mullo`` + ``mulhi`` pair.
    """
    _check_zmm(a, b)
    check_same_shape(a, b)
    result = Vec([(x * y) >> 64 for x, y in zip(a.values, b.values)])
    emit("vpmulhq_zmm", [result], [a, b])
    return result


def mm512_adc_epi64(a: Vec, b: Vec, carry_in: Mask) -> Tuple[Vec, Mask]:
    """MQX add-with-carry: per-lane ``a + b + ci``, returns ``(sum, co)``.

    Table 2: ``*co[i] = ((i128) a[i] + (i128) b[i] + ci[i]) >> 64``.
    PISA proxy: ``vpaddq`` with a mask operand (``_mm512_mask_add_epi64``).
    """
    _check_zmm(a, b)
    check_same_shape(a, b)
    check_mask_fits(carry_in, a)
    totals = [
        x + y + (1 if carry_in.bit(i) else 0)
        for i, (x, y) in enumerate(zip(a.values, b.values))
    ]
    result = Vec([t & MASK64 for t in totals])
    carry_out = Mask.from_bools(t >> 64 != 0 for t in totals)
    emit("vpadcq_zmm", [result, carry_out], [a, b, carry_in])
    return result, carry_out


def mm512_sbb_epi64(a: Vec, b: Vec, borrow_in: Mask) -> Tuple[Vec, Mask]:
    """MQX subtract-with-borrow: ``a - b - bi``, returns ``(diff, bo)``.

    Table 2: the borrow-out bit is set when the wide difference is negative.
    PISA proxy: ``vpsubq`` with a mask operand (``_mm512_mask_sub_epi64``).
    """
    _check_zmm(a, b)
    check_same_shape(a, b)
    check_mask_fits(borrow_in, a)
    diffs = [
        x - y - (1 if borrow_in.bit(i) else 0)
        for i, (x, y) in enumerate(zip(a.values, b.values))
    ]
    result = Vec([d & MASK64 for d in diffs])
    borrow_out = Mask.from_bools(d < 0 for d in diffs)
    emit("vpsbbq_zmm", [result, borrow_out], [a, b, borrow_in])
    return result, borrow_out


def mm512_mask_adc_epi64(
    src: Vec, k: Mask, a: Vec, b: Vec, carry_in: Mask
) -> Vec:
    """Predicated add-with-carry (the ``+P`` sensitivity variant).

    Where ``k`` is set: ``a + b + ci`` (carry-out is *not* produced, per the
    paper's definition); elsewhere the lane copies ``src``.
    """
    _check_zmm(src, a, b)
    check_mask_fits(k, a)
    check_mask_fits(carry_in, a)
    lanes = []
    for i, (s, x, y) in enumerate(zip(src.values, a.values, b.values)):
        if k.bit(i):
            lanes.append((x + y + (1 if carry_in.bit(i) else 0)) & MASK64)
        else:
            lanes.append(s)
    result = Vec(lanes)
    emit("vpadcq_pred_zmm", [result], [src, k, a, b, carry_in])
    return result


def mm512_mask_sbb_epi64(
    src: Vec, k: Mask, a: Vec, b: Vec, borrow_in: Mask
) -> Vec:
    """Predicated subtract-with-borrow (the ``+P`` sensitivity variant)."""
    _check_zmm(src, a, b)
    check_mask_fits(k, a)
    check_mask_fits(borrow_in, a)
    lanes = []
    for i, (s, x, y) in enumerate(zip(src.values, a.values, b.values)):
        if k.bit(i):
            lanes.append((x - y - (1 if borrow_in.bit(i) else 0)) & MASK64)
        else:
            lanes.append(s)
    result = Vec(lanes)
    emit("vpsbbq_pred_zmm", [result], [src, k, a, b, borrow_in])
    return result
