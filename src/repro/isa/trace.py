"""Instruction tracing.

Every simulated instruction calls :func:`emit` with its mnemonic and the
``vid``s of its source and destination registers. When a :class:`Tracer` is
active (via the :func:`tracing` context manager), the instruction is appended
to its entry list; otherwise emission is a no-op, so purely functional use of
the ISA simulator (e.g. in correctness tests) pays almost nothing.

The recorded trace is the interface between the kernels and the machine
model: :mod:`repro.machine.scheduler` consumes ``TraceEntry`` lists to compute
port pressure and dependency critical paths, exactly as LLVM-MCA consumes an
assembly listing in the paper's Section 4.2.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.hooks import record_trace


@dataclass(frozen=True)
class TraceEntry:
    """One dynamically executed instruction.

    Attributes:
        op: Mnemonic key into the machine model's uop tables
            (e.g. ``"vpaddq_zmm"``, ``"adc64"``).
        dests: ``vid``s of values this instruction produces.
        srcs: ``vid``s of values this instruction consumes.
        tag: Optional annotation; ``"load"``/``"store"`` mark memory traffic
            so the cache model can count bytes.
    """

    op: str
    dests: Tuple[int, ...] = ()
    srcs: Tuple[int, ...] = ()
    tag: str = ""
    imm: object = None


class Tracer:
    """Collects :class:`TraceEntry` records for one traced region."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.entries: List[TraceEntry] = []

    def emit(
        self,
        op: str,
        dests: Sequence[int] = (),
        srcs: Sequence[int] = (),
        tag: str = "",
        imm: object = None,
    ) -> None:
        """Append one instruction to the trace."""
        self.entries.append(TraceEntry(op, tuple(dests), tuple(srcs), tag, imm))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def op_counts(self) -> Counter:
        """Histogram of mnemonics in the trace."""
        return Counter(entry.op for entry in self.entries)

    def count(self, op: str) -> int:
        """Number of dynamic instances of ``op`` in the trace."""
        return sum(1 for entry in self.entries if entry.op == op)

    def memory_ops(self) -> Tuple[int, int]:
        """Return ``(loads, stores)`` counts from entry tags."""
        loads = sum(1 for e in self.entries if e.tag == "load")
        stores = sum(1 for e in self.entries if e.tag == "store")
        return loads, stores

    def extend(self, other: "Tracer") -> None:
        """Append all of ``other``'s entries to this tracer."""
        self.entries.extend(other.entries)

    def summary(self) -> Dict[str, object]:
        """Structured digest of the trace in one pass.

        Returns op counts, load/store op counts, load/store byte totals
        (from :func:`op_bytes` widths) and the entry count — everything
        the estimator and the observability hooks previously re-derived
        with ad-hoc loops.
        """
        op_counts: Counter = Counter()
        loads = stores = load_bytes = store_bytes = 0
        for entry in self.entries:
            op_counts[entry.op] += 1
            if entry.tag == "load":
                loads += 1
                load_bytes += op_bytes(entry.op)
            elif entry.tag == "store":
                stores += 1
                store_bytes += op_bytes(entry.op)
        return {
            "label": self.label,
            "entries": len(self.entries),
            "op_counts": dict(op_counts),
            "loads": loads,
            "stores": stores,
            "load_bytes": load_bytes,
            "store_bytes": store_bytes,
        }

    def __repr__(self) -> str:
        label = f" {self.label!r}" if self.label else ""
        return f"Tracer{label}({len(self.entries)} instructions)"


def op_bytes(op: str) -> int:
    """Memory bytes implied by an op's register class.

    ZMM ops move 64 bytes, YMM ops 32, everything else (scalar GPRs and
    the 64-bit halves of double-word values) 8.
    """
    if op.endswith("_zmm"):
        return 64
    if op.endswith("_ymm"):
        return 32
    return 8


_ACTIVE_TRACERS: List[Tracer] = []


def current_tracer() -> Optional[Tracer]:
    """The innermost active tracer, or ``None`` outside any traced region."""
    return _ACTIVE_TRACERS[-1] if _ACTIVE_TRACERS else None


def emit(
    op: str,
    dests: Iterable[object] = (),
    srcs: Iterable[object] = (),
    tag: str = "",
    imm: object = None,
) -> None:
    """Record one executed instruction on the innermost active tracer.

    ``dests``/``srcs`` may contain register values (anything with a ``vid``
    attribute) or raw integer ids; ``imm`` carries an immediate operand
    (shift amount, comparison predicate, permute selector) for consumers
    that reconstruct source code from traces; a no-op when no tracer is
    active.
    """
    tracer = current_tracer()
    if tracer is None:
        return
    tracer.emit(op, _ids(dests), _ids(srcs), tag, imm)


def _ids(objs: Iterable[object]) -> Tuple[int, ...]:
    out = []
    for obj in objs:
        vid = getattr(obj, "vid", None)
        out.append(int(vid) if vid is not None else int(obj))  # type: ignore[arg-type]
    return tuple(out)


@contextmanager
def tracing(label: str = "") -> Iterator[Tracer]:
    """Context manager that activates a fresh :class:`Tracer`.

    Nested regions each get their own tracer; only the innermost records.
    This mirrors how the paper times an inner kernel while ignoring harness
    code around it.
    """
    tracer = Tracer(label)
    _ACTIVE_TRACERS.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACERS.pop()
        # Account the finished region once, keeping obs cost off the
        # per-instruction emit path (no-op unless repro.obs is enabled).
        record_trace(tracer)
