"""Knights Corner (KNC) heritage instructions (Section 4.1).

The paper grounds MQX's hardware plausibility in lineage: each proposed
instruction is the 64-bit generalization of something Intel already built.
Larrabee's LRBni had ``vadcpi``/``vsbbpi`` (vector add-with-carry /
subtract-with-borrow on 32-bit elements) and ``vmulhpi`` (multiply-high);
the Knights Corner coprocessor shipped them as ``_mm512_adc_epi32``,
``_mm512_sbb_epi32`` and ``_mm512_mulhi_epi32``, documented in Intel
Intrinsics Guide versions 3.1-3.6.5.

This module implements those 32-bit ancestors (16 lanes per 512-bit
register, ``__mmask16`` carries) so the lineage is executable: tests
verify that MQX's 64-bit instructions are exactly the width-doubled
semantics of the KNC ones.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import IsaError
from repro.isa.trace import emit
from repro.isa.types import Mask, Vec
from repro.util.bits import MASK32

#: KNC operates on 16 lanes of 32-bit integers per 512-bit register.
LANES = 16


def _check_knc(*vecs: Vec) -> None:
    for vec in vecs:
        if vec.lanes != LANES or vec.width != 32:
            raise IsaError(
                f"KNC expects 16x32-bit registers, got {vec.lanes}x{vec.width}"
            )


def mm512_adc_epi32(
    v2: Vec, k2: Mask, v3: Vec
) -> Tuple[Vec, Mask]:
    """``_mm512_adc_epi32 (v2, k2, v3, &k2_res)``: 32-bit vector ADC.

    Per-lane ``v2 + v3 + k2``; returns ``(sum, carry_out)``. The KNC
    intrinsic's argument order (carry mask between the operands) is kept.
    """
    _check_knc(v2, v3)
    if k2.lanes != LANES:
        raise IsaError(f"KNC carry mask needs {LANES} lanes")
    totals = [
        a + b + (1 if k2.bit(i) else 0)
        for i, (a, b) in enumerate(zip(v2.values, v3.values))
    ]
    result = Vec([t & MASK32 for t in totals], width=32)
    carry = Mask.from_bools(t >> 32 != 0 for t in totals)
    emit("knc_vadcpi", [result, carry], [v2, k2, v3])
    return result, carry


def mm512_sbb_epi32(
    v2: Vec, k: Mask, v3: Vec
) -> Tuple[Vec, Mask]:
    """``_mm512_sbb_epi32 (v2, k, v3, &borrow)``: 32-bit vector SBB."""
    _check_knc(v2, v3)
    if k.lanes != LANES:
        raise IsaError(f"KNC borrow mask needs {LANES} lanes")
    diffs = [
        a - b - (1 if k.bit(i) else 0)
        for i, (a, b) in enumerate(zip(v2.values, v3.values))
    ]
    result = Vec([d & MASK32 for d in diffs], width=32)
    borrow = Mask.from_bools(d < 0 for d in diffs)
    emit("knc_vsbbpi", [result, borrow], [v2, k, v3])
    return result, borrow


def mm512_mulhi_epi32(a: Vec, b: Vec) -> Vec:
    """``_mm512_mulhi_epi32``: unsigned 32-bit multiply-high (vmulhpi)."""
    _check_knc(a, b)
    result = Vec(
        [(x * y) >> 32 for x, y in zip(a.values, b.values)], width=32
    )
    emit("knc_vmulhpi", [result], [a, b])
    return result


def mm512_mullo_epi32(a: Vec, b: Vec) -> Vec:
    """32-bit multiply-low, completing the widening pair with vmulhpi."""
    _check_knc(a, b)
    result = Vec(
        [(x * y) & MASK32 for x, y in zip(a.values, b.values)], width=32
    )
    emit("knc_vmullpi", [result], [a, b])
    return result
