"""Scalar x86-64 instruction semantics.

Each function simulates one scalar instruction (or one ``cmp``+flag-consume
pair, noted per function), returning :class:`~repro.isa.types.SVal` results
and emitting a trace entry. The set covers what the paper's scalar kernels
(Listing 1) compile to: ADD/ADC, SUB/SBB, widening MUL, IMUL, CMP, CMOV,
logic, shifts, loads/stores - plus DIV, used only by the GMP/OpenFHE baseline
substitutes, which rely on division-based modular reduction.

Flags are modeled as 1-bit :class:`SVal` values rather than a global flags
register: out-of-order hardware renames flags exactly like registers, and the
explicit dataflow is what the machine model's critical-path analysis needs.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.errors import IsaError
from repro.isa.trace import emit
from repro.isa.types import SVal
from repro.util.bits import MASK64

IntLike = Union[int, SVal]


def _val(x: IntLike) -> int:
    return int(x)


def _as_sval(x: IntLike, width: int = 64) -> SVal:
    # An existing SVal is passed through unchanged (even if its width
    # differs, e.g. a 1-bit flag used as a 0/1 addend) so that the tracer
    # sees the true dataflow edge; raw ints are wrapped as fresh values.
    return x if isinstance(x, SVal) else SVal(_val(x), width)


def const64(value: int) -> SVal:
    """Materialize an immediate; free (folded or hoisted by the compiler)."""
    return SVal(value)


def mov64(src: IntLike) -> SVal:
    """Register-to-register move (``MOV r64, r64``)."""
    src = _as_sval(src)
    dst = SVal(src.value)
    emit("mov64", [dst], [src])
    return dst


def add64(a: IntLike, b: IntLike) -> Tuple[SVal, SVal]:
    """``ADD r64, r64``: returns ``(sum, carry_flag)``."""
    a, b = _as_sval(a), _as_sval(b)
    total = a.value + b.value
    result = SVal(total)
    carry = SVal(total >> 64, width=1)
    emit("add64", [result, carry], [a, b])
    return result, carry


def adc64(a: IntLike, b: IntLike, carry_in: IntLike) -> Tuple[SVal, SVal]:
    """``ADC r64, r64``: add with carry-in, returns ``(sum, carry_out)``."""
    a, b = _as_sval(a), _as_sval(b)
    ci = _as_sval(carry_in, width=1)
    total = a.value + b.value + ci.value
    result = SVal(total)
    carry = SVal(total >> 64, width=1)
    emit("adc64", [result, carry], [a, b, ci])
    return result, carry


def sub64(a: IntLike, b: IntLike) -> Tuple[SVal, SVal]:
    """``SUB r64, r64``: returns ``(difference, borrow_flag)``."""
    a, b = _as_sval(a), _as_sval(b)
    diff = a.value - b.value
    result = SVal(diff)
    borrow = SVal(1 if diff < 0 else 0, width=1)
    emit("sub64", [result, borrow], [a, b])
    return result, borrow


def sbb64(a: IntLike, b: IntLike, borrow_in: IntLike) -> Tuple[SVal, SVal]:
    """``SBB r64, r64``: subtract with borrow-in, returns ``(diff, borrow_out)``."""
    a, b = _as_sval(a), _as_sval(b)
    bi = _as_sval(borrow_in, width=1)
    diff = a.value - b.value - bi.value
    result = SVal(diff)
    borrow = SVal(1 if diff < 0 else 0, width=1)
    emit("sbb64", [result, borrow], [a, b, bi])
    return result, borrow


def mul64(a: IntLike, b: IntLike) -> Tuple[SVal, SVal]:
    """``MUL r64``: unsigned widening multiply, returns ``(high, low)``.

    This is the scalar instruction that the MQX widening multiply
    ``_mm512_mul_epi64`` mirrors (Section 4.1).
    """
    a, b = _as_sval(a), _as_sval(b)
    product = a.value * b.value
    high = SVal(product >> 64)
    low = SVal(product & MASK64)
    emit("mul64", [high, low], [a, b])
    return high, low


def imul64(a: IntLike, b: IntLike) -> SVal:
    """``IMUL r64, r64``: multiply keeping only the low 64 bits."""
    a, b = _as_sval(a), _as_sval(b)
    result = SVal((a.value * b.value) & MASK64)
    emit("imul64", [result], [a, b])
    return result


def shl64(a: IntLike, amount: int) -> SVal:
    """``SHL r64, imm8``: logical left shift by an immediate."""
    a = _as_sval(a)
    if not 0 <= amount < 64:
        raise IsaError(f"shift amount {amount} out of range")
    result = SVal((a.value << amount) & MASK64)
    emit("shl64", [result], [a], imm=amount)
    return result


def shr64(a: IntLike, amount: int) -> SVal:
    """``SHR r64, imm8``: logical right shift by an immediate."""
    a = _as_sval(a)
    if not 0 <= amount < 64:
        raise IsaError(f"shift amount {amount} out of range")
    result = SVal(a.value >> amount)
    emit("shr64", [result], [a], imm=amount)
    return result


def shrd64(high: IntLike, low: IntLike, amount: int) -> SVal:
    """``SHRD r64, r64, imm8``: double-precision right shift.

    Shifts ``low`` right by ``amount``, filling vacated bits from ``high``.
    Used by the baselines for cross-word shifts.
    """
    high, low = _as_sval(high), _as_sval(low)
    if not 0 < amount < 64:
        raise IsaError(f"shift amount {amount} out of range for SHRD")
    result = SVal(((high.value << 64 | low.value) >> amount) & MASK64)
    emit("shrd64", [result], [high, low], imm=amount)
    return result


def and64(a: IntLike, b: IntLike) -> SVal:
    """``AND r64, r64``."""
    a, b = _as_sval(a), _as_sval(b)
    result = SVal(a.value & b.value)
    emit("and64", [result], [a, b])
    return result


def or64(a: IntLike, b: IntLike) -> SVal:
    """``OR r64, r64``."""
    a, b = _as_sval(a), _as_sval(b)
    result = SVal(a.value | b.value)
    emit("or64", [result], [a, b])
    return result


def xor64(a: IntLike, b: IntLike) -> SVal:
    """``XOR r64, r64``."""
    a, b = _as_sval(a), _as_sval(b)
    result = SVal(a.value ^ b.value)
    emit("xor64", [result], [a, b])
    return result


def cmp_lt64(a: IntLike, b: IntLike) -> SVal:
    """Unsigned ``a < b``: ``CMP`` + ``SETB`` fused into one modeled op."""
    a, b = _as_sval(a), _as_sval(b)
    flag = SVal(1 if a.value < b.value else 0, width=1)
    emit("cmp64", [flag], [a, b])
    return flag


def cmp_le64(a: IntLike, b: IntLike) -> SVal:
    """Unsigned ``a <= b``: ``CMP`` + ``SETBE`` fused into one modeled op."""
    a, b = _as_sval(a), _as_sval(b)
    flag = SVal(1 if a.value <= b.value else 0, width=1)
    emit("cmp64", [flag], [a, b])
    return flag


def cmp_eq64(a: IntLike, b: IntLike) -> SVal:
    """``a == b``: ``CMP`` + ``SETE`` fused into one modeled op."""
    a, b = _as_sval(a), _as_sval(b)
    flag = SVal(1 if a.value == b.value else 0, width=1)
    emit("cmp64", [flag], [a, b])
    return flag


def or1(a: IntLike, b: IntLike) -> SVal:
    """Logical OR of two flag bits (``OR r8, r8``)."""
    a, b = _as_sval(a, 1), _as_sval(b, 1)
    flag = SVal(a.value | b.value, width=1)
    emit("logic8", [flag], [a, b])
    return flag


def and1(a: IntLike, b: IntLike) -> SVal:
    """Logical AND of two flag bits (``AND r8, r8``)."""
    a, b = _as_sval(a, 1), _as_sval(b, 1)
    flag = SVal(a.value & b.value, width=1)
    emit("logic8", [flag], [a, b])
    return flag


def not1(a: IntLike) -> SVal:
    """Logical NOT of a flag bit (``XOR r8, 1``)."""
    a = _as_sval(a, 1)
    flag = SVal(1 - a.value, width=1)
    emit("logic8", [flag], [a])
    return flag


def cmov64(flag: IntLike, if_true: IntLike, if_false: IntLike) -> SVal:
    """``CMOVcc r64, r64``: branch-free select.

    This is how the paper's scalar code realizes the ternary assignments in
    Listing 1 (``ch = i28 ? d3 : t29``) without branching.
    """
    flag = _as_sval(flag, 1)
    if_true, if_false = _as_sval(if_true), _as_sval(if_false)
    result = SVal(if_true.value if flag.value else if_false.value)
    emit("cmov64", [result], [flag, if_true, if_false])
    return result


def div64(num_high: IntLike, num_low: IntLike, divisor: IntLike) -> Tuple[SVal, SVal]:
    """``DIV r64``: 128-by-64-bit divide, returns ``(quotient, remainder)``.

    Only the baseline substitutes use this - division-based reduction is the
    structural reason GMP-style code loses to Barrett reduction (Section 2.1).

    Raises :class:`IsaError` on divide-by-zero or quotient overflow, matching
    the #DE fault of the real instruction.
    """
    num_high, num_low = _as_sval(num_high), _as_sval(num_low)
    divisor = _as_sval(divisor)
    if divisor.value == 0:
        raise IsaError("DIV by zero")
    numerator = (num_high.value << 64) | num_low.value
    quotient = numerator // divisor.value
    if quotient >> 64:
        raise IsaError("DIV quotient overflow (#DE)")
    q = SVal(quotient)
    r = SVal(numerator % divisor.value)
    emit("div64", [q, r], [num_high, num_low, divisor])
    return q, r


def load64(value: IntLike) -> SVal:
    """``MOV r64, [mem]``: model a 64-bit load of ``value``."""
    result = SVal(_val(value))
    emit("load64", [result], [], tag="load")
    return result


def store64(value: IntLike) -> SVal:
    """``MOV [mem], r64``: model a 64-bit store; returns the stored value."""
    value = _as_sval(value)
    emit("store64", [], [value], tag="store")
    return value


def call_overhead(kind: str = "call") -> None:
    """Model fixed per-call overhead of a library routine.

    GMP-style arbitrary-precision libraries pay function-call, dispatch and
    (sometimes) allocation costs on every operand; the paper's measured
    17-18x GMP slowdown partly comes from exactly this. ``kind`` is one of
    ``"call"`` (plain call/return + spills) or ``"alloc"`` (temporary limb
    buffer management).
    """
    if kind not in ("call", "alloc"):
        raise IsaError(f"unknown overhead kind {kind!r}")
    emit(kind, [], [])
