"""AVX2 intrinsics on 4x64-bit lanes (``__m256i``).

AVX2 has neither mask registers nor unsigned 64-bit comparisons (Section
3.2), so this module also provides the standard emulation helpers real AVX2
kernels use:

* :func:`cmplt_epu64` - unsigned less-than via the sign-flip trick
  (XOR both operands with ``1 << 63``, then signed ``vpcmpgtq``).
* "Masks" are ordinary vectors holding 0 or all-ones per lane; selects go
  through ``vpblendvb`` and conditional increments exploit the fact that an
  all-ones lane is -1 (``x - mask`` adds one exactly where the mask is set).
* :func:`mul64_wide_emulated` - the 64x64->128 widening multiply synthesized
  from four ``vpmuludq`` partial products.

These extra instructions are exactly why the paper finds AVX2 sometimes loses
to a good scalar implementation (Section 5.3/5.4).
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.errors import IsaError
from repro.isa.trace import emit
from repro.isa.types import Vec, check_same_shape
from repro.util.bits import MASK32, MASK64

#: Number of 64-bit lanes in a YMM register.
LANES = 4

#: All-ones lane value; AVX2 comparison "true".
ALL_ONES = MASK64

_SIGN_BIT = 1 << 63


def _check_ymm(*vecs: Vec) -> None:
    for vec in vecs:
        if vec.lanes != LANES or vec.width != 64:
            raise IsaError(
                f"expected a 4x64-bit YMM register, got {vec.lanes}x{vec.width}"
            )


def mm256_set1_epi64x(value: int, hoisted: bool = True) -> Vec:
    """``_mm256_set1_epi64x``: broadcast a 64-bit value to all lanes."""
    result = Vec.broadcast(value & MASK64, LANES)
    if not hoisted:
        emit("vpbroadcastq_ymm", [result], [])
    return result


def mm256_setzero_si256() -> Vec:
    """``_mm256_setzero_si256``: all-zero register (zeroing idiom, free)."""
    return Vec.zeros(LANES)


def mm256_load_si256(values: Union[Vec, Sequence[int]]) -> Vec:
    """``_mm256_loadu_si256``: model a 32-byte load."""
    result = Vec(values.values if isinstance(values, Vec) else values)
    _check_ymm(result)
    emit("vmovdqu_load_ymm", [result], [], tag="load")
    return result


def mm256_store_si256(vec: Vec) -> Vec:
    """``_mm256_storeu_si256``: model a 32-byte store; returns the value."""
    _check_ymm(vec)
    emit("vmovdqu_store_ymm", [], [vec], tag="store")
    return vec


def mm256_add_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm256_add_epi64``: per-lane 64-bit addition (wrapping)."""
    _check_ymm(a, b)
    check_same_shape(a, b)
    result = Vec([(x + y) & MASK64 for x, y in zip(a.values, b.values)])
    emit("vpaddq_ymm", [result], [a, b])
    return result


def mm256_sub_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm256_sub_epi64``: per-lane 64-bit subtraction (wrapping)."""
    _check_ymm(a, b)
    check_same_shape(a, b)
    result = Vec([(x - y) & MASK64 for x, y in zip(a.values, b.values)])
    emit("vpsubq_ymm", [result], [a, b])
    return result


def mm256_cmpgt_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm256_cmpgt_epi64``: signed >, all-ones lanes where true."""
    _check_ymm(a, b)

    def signed(x: int) -> int:
        return x - (1 << 64) if x >> 63 else x

    result = Vec(
        [ALL_ONES if signed(x) > signed(y) else 0 for x, y in zip(a.values, b.values)]
    )
    emit("vpcmpgtq_ymm", [result], [a, b])
    return result


def mm256_cmpeq_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm256_cmpeq_epi64``: equality, all-ones lanes where true."""
    _check_ymm(a, b)
    result = Vec([ALL_ONES if x == y else 0 for x, y in zip(a.values, b.values)])
    emit("vpcmpeqq_ymm", [result], [a, b])
    return result


def mm256_and_si256(a: Vec, b: Vec) -> Vec:
    """``_mm256_and_si256`` (``vpand``)."""
    _check_ymm(a, b)
    result = Vec([x & y for x, y in zip(a.values, b.values)])
    emit("vpand_ymm", [result], [a, b])
    return result


def mm256_andnot_si256(a: Vec, b: Vec) -> Vec:
    """``_mm256_andnot_si256`` (``vpandn``): ``(~a) & b``."""
    _check_ymm(a, b)
    result = Vec([(~x & MASK64) & y for x, y in zip(a.values, b.values)])
    emit("vpandn_ymm", [result], [a, b])
    return result


def mm256_or_si256(a: Vec, b: Vec) -> Vec:
    """``_mm256_or_si256`` (``vpor``)."""
    _check_ymm(a, b)
    result = Vec([x | y for x, y in zip(a.values, b.values)])
    emit("vpor_ymm", [result], [a, b])
    return result


def mm256_xor_si256(a: Vec, b: Vec) -> Vec:
    """``_mm256_xor_si256`` (``vpxor``)."""
    _check_ymm(a, b)
    result = Vec([x ^ y for x, y in zip(a.values, b.values)])
    emit("vpxor_ymm", [result], [a, b])
    return result


def mm256_blendv_epi8(a: Vec, b: Vec, mask: Vec) -> Vec:
    """``_mm256_blendv_epi8``: select ``b`` where the mask lane's MSB is set.

    The masks produced by AVX2 comparisons are 0 or all-ones per 64-bit
    lane, so testing the lane MSB implements a per-lane select.
    """
    _check_ymm(a, b, mask)
    result = Vec(
        [
            y if m >> 63 else x
            for x, y, m in zip(a.values, b.values, mask.values)
        ]
    )
    emit("vpblendvb_ymm", [result], [a, b, mask])
    return result


def mm256_mul_epu32(a: Vec, b: Vec) -> Vec:
    """``_mm256_mul_epu32`` (``vpmuludq``): 32x32->64 widening multiply.

    The *target* instruction in the paper's PISA validation (Table 5).
    """
    _check_ymm(a, b)
    result = Vec([(x & MASK32) * (y & MASK32) for x, y in zip(a.values, b.values)])
    emit("vpmuludq_ymm", [result], [a, b])
    return result


def mm256_mullo_epi32(a: Vec, b: Vec) -> Vec:
    """``_mm256_mullo_epi32`` (``vpmulld``): 32x32->32 low multiply.

    The *proxy* instruction in the paper's PISA validation (Table 5); it
    multiplies each 32-bit element, so each 64-bit lane here holds two
    independent 32-bit products.
    """
    _check_ymm(a, b)
    lanes = []
    for x, y in zip(a.values, b.values):
        lo = ((x & MASK32) * (y & MASK32)) & MASK32
        hi = (((x >> 32) & MASK32) * ((y >> 32) & MASK32)) & MASK32
        lanes.append((hi << 32) | lo)
    result = Vec(lanes)
    emit("vpmulld_ymm", [result], [a, b])
    return result


def mm256_srli_epi64(a: Vec, amount: int) -> Vec:
    """``_mm256_srli_epi64``: per-lane logical right shift by an immediate."""
    _check_ymm(a)
    if not 0 <= amount <= 64:
        raise IsaError(f"shift amount {amount} out of range")
    result = Vec([x >> amount if amount < 64 else 0 for x in a.values])
    emit("vpsrlq_ymm", [result], [a], imm=amount)
    return result


def mm256_slli_epi64(a: Vec, amount: int) -> Vec:
    """``_mm256_slli_epi64``: per-lane logical left shift by an immediate."""
    _check_ymm(a)
    if not 0 <= amount <= 64:
        raise IsaError(f"shift amount {amount} out of range")
    result = Vec([(x << amount) & MASK64 if amount < 64 else 0 for x in a.values])
    emit("vpsllq_ymm", [result], [a], imm=amount)
    return result


def mm256_unpacklo_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm256_unpacklo_epi64``: lanes ``[a0,b0, a2,b2]``."""
    _check_ymm(a, b)
    result = Vec([a.values[0], b.values[0], a.values[2], b.values[2]])
    emit("vpunpcklqdq_ymm", [result], [a, b])
    return result


def mm256_unpackhi_epi64(a: Vec, b: Vec) -> Vec:
    """``_mm256_unpackhi_epi64``: lanes ``[a1,b1, a3,b3]``."""
    _check_ymm(a, b)
    result = Vec([a.values[1], b.values[1], a.values[3], b.values[3]])
    emit("vpunpckhqdq_ymm", [result], [a, b])
    return result


def mm256_permute2x128_si256(a: Vec, b: Vec, imm: int) -> Vec:
    """``_mm256_permute2x128_si256`` (``vperm2i128``): 128-bit lane select.

    Each half of the result picks one 128-bit half of ``a`` or ``b`` by a
    2-bit selector (0/1 = halves of ``a``, 2/3 = halves of ``b``).
    """
    _check_ymm(a, b)
    halves = [a.values[0:2], a.values[2:4], b.values[0:2], b.values[2:4]]
    lo = halves[imm & 3]
    hi = halves[(imm >> 4) & 3]
    result = Vec(list(lo) + list(hi))
    emit("vperm2i128_ymm", [result], [a, b], imm=imm)
    return result


def mm256_permute4x64_epi64(a: Vec, imm: int) -> Vec:
    """``_mm256_permute4x64_epi64``: lane permutation by 2-bit selectors."""
    _check_ymm(a)
    result = Vec([a.values[(imm >> (2 * i)) & 3] for i in range(LANES)])
    emit("vpermq_ymm", [result], [a], imm=imm)
    return result


def cmplt_epu64(a: Vec, b: Vec) -> Vec:
    """Emulated unsigned ``a < b`` (3 instructions: 2 x vpxor + vpcmpgtq).

    AVX2 lacks unsigned comparisons, so the standard trick flips the sign
    bit of both operands and compares signed. Returns an all-ones/zero mask
    vector.
    """
    sign = mm256_set1_epi64x(_SIGN_BIT)
    a_flipped = mm256_xor_si256(a, sign)
    b_flipped = mm256_xor_si256(b, sign)
    return mm256_cmpgt_epi64(b_flipped, a_flipped)


def cmple_epu64(a: Vec, b: Vec) -> Vec:
    """Emulated unsigned ``a <= b``: NOT(b < a) via XOR with all-ones."""
    lt = cmplt_epu64(b, a)
    ones = mm256_set1_epi64x(ALL_ONES)
    return mm256_xor_si256(lt, ones)


def add_with_mask_carry(a: Vec, carry_mask: Vec) -> Vec:
    """Add 1 to lanes whose ``carry_mask`` is all-ones (1 instruction).

    An all-ones lane is -1 in two's complement, so ``a - mask`` increments
    exactly the lanes where the mask is set - the standard AVX2 idiom for
    consuming an emulated carry.
    """
    return mm256_sub_epi64(a, carry_mask)


def mul64_wide_emulated(a: Vec, b: Vec) -> Tuple[Vec, Vec]:
    """Emulate a 64x64->128 widening multiply with AVX2 (per 4-lane block).

    Same partial-product scheme as the AVX-512 version, but the carry out of
    the cross sum costs three extra instructions (unsigned-compare emulation)
    plus a mask-to-carry conversion, because AVX2 has no mask registers.
    Returns ``(high, low)``.
    """
    _check_ymm(a, b)
    mask32 = mm256_set1_epi64x(MASK32)

    a_hi = mm256_srli_epi64(a, 32)
    b_hi = mm256_srli_epi64(b, 32)

    ll = mm256_mul_epu32(a, b)
    lh = mm256_mul_epu32(a, b_hi)
    hl = mm256_mul_epu32(a_hi, b)
    hh = mm256_mul_epu32(a_hi, b_hi)

    # cross = lh + (ll >> 32) cannot overflow; cross2 = cross + hl can.
    ll_hi = mm256_srli_epi64(ll, 32)
    cross = mm256_add_epi64(lh, ll_hi)
    cross2 = mm256_add_epi64(cross, hl)
    carry_mask = cmplt_epu64(cross2, hl)

    low = mm256_or_si256(
        mm256_and_si256(ll, mask32), mm256_slli_epi64(cross2, 32)
    )

    # carry contributes 2^32 to the high word where set.
    carry_hi = mm256_and_si256(carry_mask, mm256_set1_epi64x(1 << 32))
    high = mm256_add_epi64(hh, mm256_srli_epi64(cross2, 32))
    high = mm256_add_epi64(high, carry_hi)
    return high, low
