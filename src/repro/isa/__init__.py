"""Lane-accurate SIMD/scalar ISA simulator.

This package plays the role of the real silicon in the paper: the kernels in
:mod:`repro.kernels` are written against these simulated intrinsics exactly
as the paper's C code is written against the real AVX2/AVX-512 intrinsics
(Listings 1-3). Every executed instruction is recorded to the active
:class:`~repro.isa.trace.Tracer`, and the resulting trace is what the machine
model (:mod:`repro.machine`) schedules to estimate runtime.

Submodules
----------
``types``
    :class:`Vec` (a SIMD register), :class:`Mask` (an AVX-512 mask register)
    and :class:`SVal` (a scalar general-purpose register).
``trace``
    Instruction tracing infrastructure.
``scalar``
    x86-64 scalar instruction semantics (ADD/ADC/SUB/SBB/MUL/CMOV...).
``avx2``
    256-bit AVX2 intrinsics (4x64-bit lanes, no mask registers).
``avx512``
    512-bit AVX-512F/DQ intrinsics (8x64-bit lanes, mask registers).
``mqx``
    The paper's proposed multi-word extension (Table 2), plus the
    sensitivity-analysis variants of Section 5.5.
"""

from repro.isa.types import Mask, SVal, Vec
from repro.isa.trace import Tracer, current_tracer, emit, tracing

__all__ = ["Vec", "Mask", "SVal", "Tracer", "tracing", "emit", "current_tracer"]
