"""Scalar x86-64 backend (Section 3.1).

This is the paper's *benchmarked* scalar variant: the one that lets the
compiler use the flag-carrying instructions (``ADD``/``ADC``/``SUB``/``SBB``)
for carry propagation and ``CMOV`` for the branch-free conditional
assignments. (The comparison-based formulation of Listing 1, which exists to
translate cleanly to SIMD, is ported separately in
:mod:`repro.kernels.listings`.)

One block = one 128-bit residue (``lanes = 1``).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.errors import BackendError
from repro.isa import scalar as s
from repro.isa.types import SVal
from repro.kernels.backend import Backend, DWPair


class ScalarBackend(Backend):
    """Kernels built from scalar x86-64 instructions, one residue at a time."""

    name = "scalar"
    lanes = 1

    # ------------------------------------------------------------------
    # Block I/O
    # ------------------------------------------------------------------

    def broadcast_dw(self, value: int) -> DWPair:
        """Hoisted constant: the modulus and mu live in registers."""
        return DWPair(hi=SVal(value >> 64), lo=SVal(value & ((1 << 64) - 1)))

    def broadcast_twiddle(self, value: int) -> DWPair:
        """Twiddles are loaded from the precomputed table each use."""
        return DWPair(
            hi=s.load64(value >> 64), lo=s.load64(value & ((1 << 64) - 1))
        )

    def load_block(self, values: Sequence[int]) -> DWPair:
        if len(values) != self.lanes:
            raise BackendError(f"scalar block takes 1 value, got {len(values)}")
        value = values[0]
        return DWPair(hi=s.load64(value >> 64), lo=s.load64(value & ((1 << 64) - 1)))

    def store_block(self, block: DWPair) -> List[int]:
        s.store64(block.hi)
        s.store64(block.lo)
        return [(block.hi.value << 64) | block.lo.value]

    def _pair_words(self, block: DWPair) -> Tuple[List[int], List[int]]:
        return [block.hi.value], [block.lo.value]

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def dw_add(self, a: DWPair, b: DWPair) -> Tuple[DWPair, Any]:
        low, carry = s.add64(a.lo, b.lo)
        high, carry_out = s.adc64(a.hi, b.hi, carry)
        return DWPair(hi=high, lo=low), carry_out

    def dw_sub(self, a: DWPair, b: DWPair) -> Tuple[DWPair, Any]:
        low, borrow = s.sub64(a.lo, b.lo)
        high, borrow_out = s.sbb64(a.hi, b.hi, borrow)
        return DWPair(hi=high, lo=low), borrow_out

    def dw_wide_mul(self, a: DWPair, b: DWPair) -> Tuple[DWPair, DWPair]:
        """Schoolbook (Equation 8): four ``MUL`` + one add/adc chain."""
        ll_hi, ll_lo = s.mul64(a.lo, b.lo)
        lh_hi, lh_lo = s.mul64(a.lo, b.hi)
        hl_hi, hl_lo = s.mul64(a.hi, b.lo)
        hh_hi, hh_lo = s.mul64(a.hi, b.hi)

        # w1 accumulates the three word-1 partial products; carries ripple
        # into w2 and w3. The final word cannot carry out (product < 2^256).
        s1, c1 = s.add64(lh_lo, hl_lo)
        w1, c2 = s.add64(s1, ll_hi)
        s2, c3 = s.adc64(lh_hi, hl_hi, c1)
        w2, c4 = s.adc64(s2, hh_lo, c2)
        s3, _ = s.adc64(hh_hi, s.const64(0), c3)
        w3, _ = s.add64(s3, c4)
        return DWPair(hi=w3, lo=w2), DWPair(hi=w1, lo=ll_lo)

    def dw_wide_mul_karatsuba(self, a: DWPair, b: DWPair) -> Tuple[DWPair, DWPair]:
        """Karatsuba (Equation 9): three ``MUL`` + extra add/cmov fix-up.

        The operand sums ``a0 + a1`` and ``b0 + b1`` may be 65 bits; the
        overflow bits are folded in branch-free with ``CMOV`` + add chains,
        which is exactly why Karatsuba fails to beat schoolbook on CPUs
        (Section 5.5): the saved multiply costs ~10 extra ALU operations.
        """
        zero = s.const64(0)
        hh_hi, hh_lo = s.mul64(a.hi, b.hi)
        ll_hi, ll_lo = s.mul64(a.lo, b.lo)

        sa, ca = s.add64(a.hi, a.lo)
        sb, cb = s.add64(b.hi, b.lo)
        p_hi, p_lo = s.mul64(sa, sb)

        # cross = (a0+a1)(b0+b1) as a 3-word value (c2, c1, c0).
        c0 = p_lo
        fix_a = s.cmov64(ca, sb, zero)
        c1, cy1 = s.add64(p_hi, fix_a)
        fix_b = s.cmov64(cb, sa, zero)
        c1, cy2 = s.add64(c1, fix_b)
        both = s.and1(ca, cb)
        c2, _ = s.add64(cy1, cy2)
        c2, _ = s.add64(c2, both)

        # mid = cross - hh - ll  (a 3-word subtraction, result >= 0).
        m0, bw = s.sub64(c0, hh_lo)
        m1, bw = s.sbb64(c1, hh_hi, bw)
        m2, _ = s.sbb64(c2, zero, bw)
        m0, bw = s.sub64(m0, ll_lo)
        m1, bw = s.sbb64(m1, ll_hi, bw)
        m2, _ = s.sbb64(m2, zero, bw)

        # total = hh << 128 + mid << 64 + ll.
        w1, cy = s.add64(ll_hi, m0)
        w2, cy = s.adc64(hh_lo, m1, cy)
        w3, _ = s.adc64(hh_hi, m2, cy)
        return DWPair(hi=w3, lo=w2), DWPair(hi=w1, lo=ll_lo)

    def dw_mullo(self, a: DWPair, b: DWPair) -> DWPair:
        """Low 128 bits of a 128x128 product: one MUL + two IMUL + adds."""
        p_hi, p_lo = s.mul64(a.lo, b.lo)
        x1 = s.imul64(a.lo, b.hi)
        x2 = s.imul64(a.hi, b.lo)
        cross, _ = s.add64(x1, x2)
        high, _ = s.add64(p_hi, cross)
        return DWPair(hi=high, lo=p_lo)

    def shift_right_256(self, high: DWPair, low: DWPair, amount: int) -> DWPair:
        """Cross-word right shift via ``SHRD`` (two instructions).

        The caller (Barrett reduction) guarantees the result fits 128 bits.
        """
        w0, w1, w2, w3 = low.lo, low.hi, high.lo, high.hi
        if amount == 0:
            return DWPair(hi=w1, lo=w0)
        if amount == 64:
            return DWPair(hi=w2, lo=w1)
        if amount == 128:
            return DWPair(hi=w3, lo=w2)
        if 0 < amount < 64:
            lo = s.shrd64(w1, w0, amount)
            hi = s.shrd64(w2, w1, amount)
        elif 64 < amount < 128:
            lo = s.shrd64(w2, w1, amount - 64)
            hi = s.shrd64(w3, w2, amount - 64)
        elif 128 < amount < 192:
            lo = s.shrd64(w3, w2, amount - 128)
            hi = s.shr64(w3, amount - 128)
        else:
            raise BackendError(f"unsupported 256-bit shift amount {amount}")
        return DWPair(hi=hi, lo=lo)

    def select(self, cond: Any, if_true: DWPair, if_false: DWPair) -> DWPair:
        """Branch-free select with two ``CMOV`` (Listing 1's ternaries)."""
        return DWPair(
            hi=s.cmov64(cond, if_true.hi, if_false.hi),
            lo=s.cmov64(cond, if_true.lo, if_false.lo),
        )

    def cond_or(self, a: Any, b: Any) -> Any:
        return s.or1(a, b)

    def cond_not(self, a: Any) -> Any:
        return s.not1(a)
