"""Double-word modular arithmetic kernel backends.

One backend per implementation variant evaluated in the paper:

========  ==========================================  ====================
Backend   ISA                                         Paper reference
========  ==========================================  ====================
scalar    x86-64 scalar (ADD/ADC/SUB/SBB/MUL/CMOV)    Section 3.1
avx2      AVX2, 4x64-bit lanes, emulated carries      Section 3.2
avx512    AVX-512F/DQ, 8x64-bit lanes, mask regs      Section 3.2, Listing 2
mqx       AVX-512 + MQX (configurable feature set)    Section 4, Listing 3
========  ==========================================  ====================

All backends expose the same block-level API (:class:`Backend`): load a
block of 128-bit residues, compute ``addmod``/``submod``/``mulmod``/NTT
butterflies on it, store it back. Results are bit-identical across backends
(and to the :mod:`repro.arith` references); only the emitted instruction
traces - and therefore modeled runtimes - differ.
"""

from repro.kernels.backend import Backend, DWPair, ModulusContext, get_backend
from repro.kernels.mqx_backend import MqxBackend, MqxFeatures
from repro.kernels.scalar_backend import ScalarBackend
from repro.kernels.avx2_backend import Avx2Backend
from repro.kernels.avx512_backend import Avx512Backend

__all__ = [
    "Backend",
    "DWPair",
    "ModulusContext",
    "get_backend",
    "ScalarBackend",
    "Avx2Backend",
    "Avx512Backend",
    "MqxBackend",
    "MqxFeatures",
]
