"""MQX backend (Section 4, Listing 3) with Section 5.5's feature subsets.

MQX extends AVX-512 with a widening multiply and first-class carry/borrow.
The backend therefore subclasses :class:`Avx512Backend` and swaps in MQX
instructions according to a :class:`MqxFeatures` configuration, exactly
mirroring the paper's sensitivity analysis (Figure 6):

==============  ================================================
Preset          Meaning
==============  ================================================
``Base``        plain AVX-512 (no MQX) - use :class:`Avx512Backend`
``+M``          widening multiplication only
``+C``          carry/borrow support only (adc + sbb)
``+M,C``        full MQX (the default)
``+Mh,C``       multiply-high instead of full widening multiply
``+M,C,P``      full MQX plus predicated execution
==============  ================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import BackendError
from repro.isa import avx512 as v
from repro.isa import mqx as x
from repro.isa.types import Mask, Vec
from repro.kernels.avx512_backend import Avx512Backend
from repro.kernels.backend import DWPair, ModulusContext


@dataclass(frozen=True)
class MqxFeatures:
    """Which MQX components are enabled (Figure 6's knobs).

    Attributes:
        wide_mul: ``+M`` - the widening 64x64->128 multiply.
        carry: ``+C`` - add-with-carry and subtract-with-borrow.
        mulhi_only: ``+Mh`` - replace the single widening multiply with a
            ``mullo`` + ``mulhi`` pair (lower hardware cost). Requires
            ``wide_mul=False``.
        predication: ``+P`` - predicated adc/sbb fusing the select step.
            Requires ``carry=True``.
    """

    wide_mul: bool = True
    carry: bool = True
    mulhi_only: bool = False
    predication: bool = False

    def __post_init__(self) -> None:
        if self.wide_mul and self.mulhi_only:
            raise BackendError("+M and +Mh are mutually exclusive")
        if self.predication and not self.carry:
            raise BackendError("+P requires carry support (+C)")
        if not (self.wide_mul or self.carry or self.mulhi_only):
            raise BackendError(
                "at least one MQX feature must be enabled; use the avx512 "
                "backend for the no-MQX baseline"
            )

    @property
    def label(self) -> str:
        """The Figure 6 label for this configuration."""
        parts = []
        if self.wide_mul:
            parts.append("M")
        if self.mulhi_only:
            parts.append("Mh")
        if self.carry:
            parts.append("C")
        if self.predication:
            parts.append("P")
        return "+" + ",".join(parts)


#: The Figure 6 configurations by label.
FEATURE_PRESETS = {
    "+M": MqxFeatures(wide_mul=True, carry=False),
    "+C": MqxFeatures(wide_mul=False, carry=True),
    "+M,C": MqxFeatures(wide_mul=True, carry=True),
    "+Mh,C": MqxFeatures(wide_mul=False, carry=True, mulhi_only=True),
    "+M,C,P": MqxFeatures(wide_mul=True, carry=True, predication=True),
}


class MqxBackend(Avx512Backend):
    """AVX-512 + MQX kernels; performance is projected via PISA."""

    name = "mqx"
    lanes = 8

    def __init__(self, features: MqxFeatures = None) -> None:
        super().__init__()
        self.features = features or MqxFeatures()
        # The paper's global zero mask (Listing 3's z_mask).
        self.z_mask = Mask.zeros(self.lanes)

    # ------------------------------------------------------------------
    # Carry helpers: single instructions when +C is enabled
    # ------------------------------------------------------------------

    def _add_carry_out(self, a: Vec, b: Vec) -> Tuple[Vec, Mask]:
        if not self.features.carry:
            return super()._add_carry_out(a, b)
        return x.mm512_adc_epi64(a, b, self.z_mask)

    def _adc(self, a: Vec, b: Vec, carry_in: Mask) -> Tuple[Vec, Mask]:
        if not self.features.carry:
            return super()._adc(a, b, carry_in)
        return x.mm512_adc_epi64(a, b, carry_in)

    def _sub_borrow_out(self, a: Vec, b: Vec) -> Tuple[Vec, Mask]:
        if not self.features.carry:
            return super()._sub_borrow_out(a, b)
        return x.mm512_sbb_epi64(a, b, self.z_mask)

    def _sbb(self, a: Vec, b: Vec, borrow_in: Mask) -> Tuple[Vec, Mask]:
        if not self.features.carry:
            return super()._sbb(a, b, borrow_in)
        return x.mm512_sbb_epi64(a, b, borrow_in)

    def _add_with_carry_nocout(self, a: Vec, b: Vec, carry_in: Mask) -> Vec:
        if not self.features.carry:
            return super()._add_with_carry_nocout(a, b, carry_in)
        total, _ = x.mm512_adc_epi64(a, b, carry_in)
        return total

    def _sub_with_borrow_nobout(self, a: Vec, b: Vec, borrow_in: Mask) -> Vec:
        if not self.features.carry:
            return super()._sub_with_borrow_nobout(a, b, borrow_in)
        diff, _ = x.mm512_sbb_epi64(a, b, borrow_in)
        return diff

    # ------------------------------------------------------------------
    # Multiply building blocks
    # ------------------------------------------------------------------

    def _wide_mul64(self, a: Vec, b: Vec) -> Tuple[Vec, Vec]:
        if self.features.wide_mul:
            return x.mm512_mul_epi64(a, b)
        if self.features.mulhi_only:
            high = x.mm512_mulhi_epi64(a, b)
            low = v.mm512_mullo_epi64(a, b)
            return high, low
        return super()._wide_mul64(a, b)

    # ------------------------------------------------------------------
    # Predicated execution (+P): fuse the select into the final adc/sbb
    # ------------------------------------------------------------------

    def cond_sub_modulus(self, xdw: DWPair, ctx: ModulusContext) -> DWPair:
        """Barrett correction; with +P the select disappears entirely.

        Key identity: after ``d = x - m`` with low borrow ``b1``, adding
        ``m`` back has low carry exactly ``b1``. So the correction becomes
        an unconditional trial subtraction followed by a *predicated*
        add-back where the subtraction borrowed out - 4 instructions
        instead of 5, no mask inversion, no blends. This fusion is the
        source of the modest ~1.1x gain of ``+M,C,P`` (Section 5.5).
        """
        if not self.features.predication:
            return super().cond_sub_modulus(xdw, ctx)
        d_lo, b1 = x.mm512_sbb_epi64(xdw.lo, ctx.m.lo, self.z_mask)
        d_hi, b2 = x.mm512_sbb_epi64(xdw.hi, ctx.m.hi, b1)
        out_lo = x.mm512_mask_adc_epi64(d_lo, b2, d_lo, ctx.m.lo, self.z_mask)
        out_hi = x.mm512_mask_adc_epi64(d_hi, b2, d_hi, ctx.m.hi, b1)
        return DWPair(hi=out_hi, lo=out_lo)

    def addmod(self, a: DWPair, b: DWPair, ctx: ModulusContext) -> DWPair:
        """Listing 3's structure; with +P the final select is fused.

        The sum is unconditionally reduced by ``m``; the predicated adc
        adds ``m`` back only where the subtraction was wrong (it borrowed
        *and* the double-word add had no carry-out).
        """
        if not self.features.predication:
            return super().addmod(a, b, ctx)
        total, carry = self.dw_add(a, b)
        d_lo, b1 = x.mm512_sbb_epi64(total.lo, ctx.m.lo, self.z_mask)
        d_hi, b2 = x.mm512_sbb_epi64(total.hi, ctx.m.hi, b1)
        undo = v.kandn8(carry, b2)
        out_lo = x.mm512_mask_adc_epi64(d_lo, undo, d_lo, ctx.m.lo, self.z_mask)
        out_hi = x.mm512_mask_adc_epi64(d_hi, undo, d_hi, ctx.m.hi, b1)
        return DWPair(hi=out_hi, lo=out_lo)

    def submod(self, a: DWPair, b: DWPair, ctx: ModulusContext) -> DWPair:
        """Equation 3; with +P the add-back select is fused into adc.

        The unconditional adc supplies the low carry the predicated high
        adc needs; the blends of the baseline formulation vanish.
        """
        if not self.features.predication:
            return super().submod(a, b, ctx)
        diff, borrow = self.dw_sub(a, b)
        fixed_lo, c1 = x.mm512_adc_epi64(diff.lo, ctx.m.lo, self.z_mask)
        out_lo = v.mm512_mask_blend_epi64(borrow, diff.lo, fixed_lo)
        out_hi = x.mm512_mask_adc_epi64(diff.hi, borrow, diff.hi, ctx.m.hi, c1)
        return DWPair(hi=out_hi, lo=out_lo)
