"""AVX-512 backend (Section 3.2, Listing 2).

Eight 128-bit residues per block, held as two ZMM registers (high words,
low words - Figure 2). Carry and borrow propagation follow the structure of
the paper's Listing 2: carries are recovered with *two* unsigned compares
plus a ``kor`` (the generically safe pattern the paper's translation from
Listing 1 produces), conditionals become mask registers, and selects become
``vpblendmq``.

The missing 64x64->128 widening multiply - MQX's headline gap - is emulated
with four ``vpmuludq`` partial products (:func:`repro.isa.avx512.mul64_wide_emulated`).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.errors import BackendError
from repro.isa import avx512 as v
from repro.isa.types import Mask, Vec
from repro.kernels.backend import Backend, DWPair, split_dw_words
from repro.util.bits import MASK64


class Avx512Backend(Backend):
    """Kernels built from AVX-512F/DQ instructions, 8 residues per block."""

    name = "avx512"
    lanes = 8

    def __init__(self) -> None:
        # Globally hoisted constants (the paper sets `one` globally).
        self.one = v.mm512_set1_epi64(1)
        self.zero = v.mm512_setzero_si512()
        self.all_ones = v.mm512_set1_epi64(MASK64)

    # ------------------------------------------------------------------
    # Block I/O
    # ------------------------------------------------------------------

    def broadcast_dw(self, value: int) -> DWPair:
        return DWPair(
            hi=v.mm512_set1_epi64(value >> 64),
            lo=v.mm512_set1_epi64(value & MASK64),
        )

    def broadcast_twiddle(self, value: int) -> DWPair:
        return DWPair(
            hi=v.mm512_set1_epi64(value >> 64, hoisted=False),
            lo=v.mm512_set1_epi64(value & MASK64, hoisted=False),
        )

    def load_block(self, values: Sequence[int]) -> DWPair:
        if len(values) != self.lanes:
            raise BackendError(
                f"{self.name} block takes {self.lanes} values, got {len(values)}"
            )
        his, los = split_dw_words(values)
        return DWPair(hi=v.mm512_load_si512(his), lo=v.mm512_load_si512(los))

    def store_block(self, block: DWPair) -> List[int]:
        v.mm512_store_si512(block.hi)
        v.mm512_store_si512(block.lo)
        return self.block_values(block)

    def _pair_words(self, block: DWPair) -> Tuple[List[int], List[int]]:
        return block.hi.to_list(), block.lo.to_list()

    # ------------------------------------------------------------------
    # Carry helpers (the Listing 2 patterns)
    # ------------------------------------------------------------------

    def _add_carry_out(self, a: Vec, b: Vec) -> Tuple[Vec, Mask]:
        """64-bit add + carry-out: 1 add, 1 compare.

        With no carry-in, ``(a + b) mod 2^64 < a`` iff the add overflowed,
        so a single unsigned compare recovers the carry. (Listing 2 as
        printed uses the generic two-compare pattern; the single compare is
        the tuned form - see :mod:`repro.kernels.listings` for the verbatim
        port.)
        """
        total = v.mm512_add_epi64(a, b)
        carry = v.mm512_cmp_epu64_mask(total, a, v.CMPINT_LT)
        return total, carry

    def _add_with_carry_nocout(self, a: Vec, b: Vec, carry_in: Mask) -> Vec:
        """Add with carry-in, discarding the carry-out (2 instructions)."""
        total = v.mm512_add_epi64(a, b)
        return v.mm512_mask_add_epi64(total, carry_in, total, self.one)

    def _sub_with_borrow_nobout(self, a: Vec, b: Vec, borrow_in: Mask) -> Vec:
        """Subtract with borrow-in, discarding the borrow-out."""
        diff = v.mm512_sub_epi64(a, b)
        return v.mm512_mask_sub_epi64(diff, borrow_in, diff, self.one)

    def _adc(self, a: Vec, b: Vec, carry_in: Mask) -> Tuple[Vec, Mask]:
        """64-bit add-with-carry: six AVX-512 instructions (Table 1's count).

        Uses the robust wrap-detection form rather than Table 1's printed
        two-compare pattern: the printed pattern misses the carry when both
        operands are all-ones with carry-in (see
        :mod:`repro.kernels.listings`), which *can* arise for the
        unconstrained partial-product words this helper accumulates. Here:
        carry = (sum wrapped before increment) OR (increment wrapped),
        the second condition being ``t0 == 2^64-1 AND carry_in``.
        """
        t0 = v.mm512_add_epi64(a, b)
        carry_a = v.mm512_cmp_epu64_mask(t0, a, v.CMPINT_LT)
        t1 = v.mm512_mask_add_epi64(t0, carry_in, t0, self.one)
        wrapped = v.mm512_cmp_epu64_mask(t0, self.all_ones, v.CMPINT_EQ)
        wrap_carry = v.kand8(wrapped, carry_in)
        return t1, v.kor8(carry_a, wrap_carry)

    def _sub_borrow_out(self, a: Vec, b: Vec) -> Tuple[Vec, Mask]:
        """64-bit subtract + borrow-out: 1 sub, 1 compare."""
        diff = v.mm512_sub_epi64(a, b)
        borrow = v.mm512_cmp_epu64_mask(a, b, v.CMPINT_LT)
        return diff, borrow

    def _sbb(self, a: Vec, b: Vec, borrow_in: Mask) -> Tuple[Vec, Mask]:
        """64-bit subtract-with-borrow: sub, masked dec, lt/eq compares, kor."""
        d0 = v.mm512_sub_epi64(a, b)
        d1 = v.mm512_mask_sub_epi64(d0, borrow_in, d0, self.one)
        lt = v.mm512_cmp_epu64_mask(a, b, v.CMPINT_LT)
        eq = v.mm512_cmp_epu64_mask(a, b, v.CMPINT_EQ)
        wrapped = v.kand8(eq, borrow_in)
        return d1, v.kor8(lt, wrapped)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def dw_add(self, a: DWPair, b: DWPair) -> Tuple[DWPair, Any]:
        low, c1 = self._add_carry_out(a.lo, b.lo)
        high, carry_out = self._adc(a.hi, b.hi, c1)
        return DWPair(hi=high, lo=low), carry_out

    def dw_add_small(self, a: DWPair, b: DWPair) -> DWPair:
        low, c1 = self._add_carry_out(a.lo, b.lo)
        high = self._add_with_carry_nocout(a.hi, b.hi, c1)
        return DWPair(hi=high, lo=low)

    def dw_sub(self, a: DWPair, b: DWPair) -> Tuple[DWPair, Any]:
        low, b1 = self._sub_borrow_out(a.lo, b.lo)
        high, borrow_out = self._sbb(a.hi, b.hi, b1)
        return DWPair(hi=high, lo=low), borrow_out

    def dw_sub_noborrow(self, a: DWPair, b: DWPair) -> DWPair:
        low, b1 = self._sub_borrow_out(a.lo, b.lo)
        high = self._sub_with_borrow_nobout(a.hi, b.hi, b1)
        return DWPair(hi=high, lo=low)

    def dw_wide_mul(self, a: DWPair, b: DWPair) -> Tuple[DWPair, DWPair]:
        """Schoolbook 128x128->256: four emulated widening multiplies."""
        ll_hi, ll_lo = self._wide_mul64(a.lo, b.lo)
        lh_hi, lh_lo = self._wide_mul64(a.lo, b.hi)
        hl_hi, hl_lo = self._wide_mul64(a.hi, b.lo)
        hh_hi, hh_lo = self._wide_mul64(a.hi, b.hi)

        s1, c1 = self._add_carry_out(lh_lo, hl_lo)
        w1, c2 = self._add_carry_out(s1, ll_hi)
        s2, c3 = self._adc(lh_hi, hl_hi, c1)
        w2, c4 = self._adc(s2, hh_lo, c2)
        s3 = v.mm512_mask_add_epi64(hh_hi, c3, hh_hi, self.one)
        w3 = v.mm512_mask_add_epi64(s3, c4, s3, self.one)
        return DWPair(hi=w3, lo=w2), DWPair(hi=w1, lo=ll_lo)

    def dw_wide_mul_karatsuba(self, a: DWPair, b: DWPair) -> Tuple[DWPair, DWPair]:
        """Karatsuba 128x128->256: three widening multiplies + fix-up.

        The 65-bit operand sums and the 3-word middle term cost ~20 extra
        vector operations, outweighing the saved multiply (Section 5.5).
        """
        hh_hi, hh_lo = self._wide_mul64(a.hi, b.hi)
        ll_hi, ll_lo = self._wide_mul64(a.lo, b.lo)

        sa, ca = self._add_carry_out(a.hi, a.lo)
        sb, cb = self._add_carry_out(b.hi, b.lo)
        p_hi, p_lo = self._wide_mul64(sa, sb)

        # cross = (a0+a1)(b0+b1) as 3 words (c2w, c1w, c0w), folding in the
        # 65th operand bits: + sb<<64 if ca, + sa<<64 if cb, + 1<<128 if both.
        c1w = v.mm512_mask_add_epi64(p_hi, ca, p_hi, sb)
        cy1 = v.mm512_cmp_epu64_mask(c1w, p_hi, v.CMPINT_LT)
        c1x = v.mm512_mask_add_epi64(c1w, cb, c1w, sa)
        cy2 = v.mm512_cmp_epu64_mask(c1x, c1w, v.CMPINT_LT)
        both = v.kand8(ca, cb)
        c2w = v.mm512_mask_add_epi64(self.zero, both, self.zero, self.one)
        c2w = v.mm512_mask_add_epi64(c2w, cy1, c2w, self.one)
        c2w = v.mm512_mask_add_epi64(c2w, cy2, c2w, self.one)

        # mid = cross - hh - ll over 3 words (result >= 0 fits 129 bits).
        m0, bw = self._sub_borrow_out(p_lo, hh_lo)
        m1, bw = self._sbb(c1x, hh_hi, bw)
        m2 = v.mm512_mask_sub_epi64(c2w, bw, c2w, self.one)
        m0, bw = self._sub_borrow_out(m0, ll_lo)
        m1, bw = self._sbb(m1, ll_hi, bw)
        m2 = v.mm512_mask_sub_epi64(m2, bw, m2, self.one)

        # total = hh << 128 + mid << 64 + ll.
        w1, cy = self._add_carry_out(ll_hi, m0)
        w2, cy = self._adc(hh_lo, m1, cy)
        w3 = v.mm512_mask_add_epi64(hh_hi, cy, hh_hi, self.one)
        w3 = v.mm512_add_epi64(w3, m2)
        return DWPair(hi=w3, lo=w2), DWPair(hi=w1, lo=ll_lo)

    def dw_mullo(self, a: DWPair, b: DWPair) -> DWPair:
        """Low 128 bits: one widening multiply + two ``vpmullq`` + adds."""
        p_hi, p_lo = self._wide_mul64(a.lo, b.lo)
        x1 = self._mullo64(a.lo, b.hi)
        x2 = self._mullo64(a.hi, b.lo)
        cross = v.mm512_add_epi64(x1, x2)
        high = v.mm512_add_epi64(p_hi, cross)
        return DWPair(hi=high, lo=p_lo)

    def shift_right_256(self, high: DWPair, low: DWPair, amount: int) -> DWPair:
        """Cross-word shift: srl + sll + or per output word (no SHRD in SIMD)."""
        w0, w1, w2, w3 = low.lo, low.hi, high.lo, high.hi
        if amount == 0:
            return DWPair(hi=w1, lo=w0)
        if amount == 64:
            return DWPair(hi=w2, lo=w1)
        if amount == 128:
            return DWPair(hi=w3, lo=w2)
        if 0 < amount < 64:
            lo = self._shrd(w1, w0, amount)
            hi = self._shrd(w2, w1, amount)
        elif 64 < amount < 128:
            lo = self._shrd(w2, w1, amount - 64)
            hi = self._shrd(w3, w2, amount - 64)
        elif 128 < amount < 192:
            lo = self._shrd(w3, w2, amount - 128)
            hi = v.mm512_srli_epi64(w3, amount - 128)
        else:
            raise BackendError(f"unsupported 256-bit shift amount {amount}")
        return DWPair(hi=hi, lo=lo)

    def _shrd(self, high: Vec, low: Vec, amount: int) -> Vec:
        return v.mm512_or_epi64(
            v.mm512_srli_epi64(low, amount),
            v.mm512_slli_epi64(high, 64 - amount),
        )

    def select(self, cond: Any, if_true: DWPair, if_false: DWPair) -> DWPair:
        return DWPair(
            hi=v.mm512_mask_blend_epi64(cond, if_false.hi, if_true.hi),
            lo=v.mm512_mask_blend_epi64(cond, if_false.lo, if_true.lo),
        )

    # Hoisted permutation index vectors for the Pease output interleave.
    _IDX_LO = (0, 8, 1, 9, 2, 10, 3, 11)
    _IDX_HI = (4, 12, 5, 13, 6, 14, 7, 15)

    def interleave(self, even: DWPair, odd: DWPair) -> Tuple[DWPair, DWPair]:
        """Pease output shuffle: one ``vpermt2q`` per output register."""
        idx_lo = Vec(self._IDX_LO)
        idx_hi = Vec(self._IDX_HI)
        out0 = DWPair(
            hi=v.mm512_permutex2var_epi64(even.hi, idx_lo, odd.hi),
            lo=v.mm512_permutex2var_epi64(even.lo, idx_lo, odd.lo),
        )
        out1 = DWPair(
            hi=v.mm512_permutex2var_epi64(even.hi, idx_hi, odd.hi),
            lo=v.mm512_permutex2var_epi64(even.lo, idx_hi, odd.lo),
        )
        return out0, out1

    def cond_or(self, a: Any, b: Any) -> Any:
        return v.kor8(a, b)

    def cond_not(self, a: Any) -> Any:
        return v.knot8(a)

    # ------------------------------------------------------------------
    # Multiply building blocks (overridden by the MQX backend)
    # ------------------------------------------------------------------

    def _wide_mul64(self, a: Vec, b: Vec) -> Tuple[Vec, Vec]:
        """64x64->128 per lane: the vpmuludq emulation (AVX-512's gap)."""
        return v.mul64_wide_emulated(a, b)

    def _mullo64(self, a: Vec, b: Vec) -> Vec:
        """64x64->64 low product: native ``vpmullq`` (AVX-512DQ)."""
        return v.mm512_mullo_epi64(a, b)
