"""Verbatim ports of the paper's code artifacts (Table 1, Listings 1-3).

The kernel backends implement tuned variants of these algorithms; this
module keeps line-for-line ports of exactly what the paper prints, used by
the Table 1 demonstration and the fidelity tests.

Domain note: the comparison-based carry recovery the C code uses
(``co = (t1 < a) || (t1 < b)``) misses the carry in exactly one case -
``a = b = 2^64 - 1`` with ``carry_in = 1``, where the wrapped sum equals
both operands. The paper's usage is safe because these adds operate on the
*high words of reduced 124-bit residues*, which are below 2^60; the tuned
backends use flag-based carries (scalar) or the same pattern under the
same precondition. The fidelity tests pin down both the precondition and
the adversarial counterexample.
"""

from __future__ import annotations

from typing import Tuple

from repro.isa import avx512 as v
from repro.isa import mqx as x
from repro.isa import scalar as s
from repro.isa.types import Mask, SVal, Vec
from repro.util.bits import MASK64

# ----------------------------------------------------------------------
# Table 1: addition with carry (scalar / AVX-512 / MQX)
# ----------------------------------------------------------------------


def table1_adc_scalar(a: int, b: int, carry_in: bool) -> Tuple[int, bool]:
    """Table 1, scalar column: add-with-carry via two comparisons.

    The C code cannot read the hardware carry flag, so it recovers the
    carry with ``(t1 < a) || (t1 < b)``.
    """
    t0, _ = s.add64(a, b)
    t1, _ = s.add64(t0, 1 if carry_in else 0)
    q0 = s.cmp_lt64(t1, a)
    q1 = s.cmp_lt64(t1, b)
    co = s.or1(q0, q1)
    return int(t1), bool(co)


def table1_adc_avx512(a: Vec, b: Vec, carry_in: Mask) -> Tuple[Vec, Mask]:
    """Table 1, AVX-512 column: six instructions per add-with-carry."""
    t0 = v.mm512_add_epi64(a, b)
    one = v.mm512_set1_epi64(1, hoisted=False)  # Table 1 counts the set1
    t1 = v.mm512_mask_add_epi64(t0, carry_in, t0, one)
    q0 = v.mm512_cmp_epu64_mask(t1, a, v.CMPINT_LT)
    q1 = v.mm512_cmp_epu64_mask(t1, b, v.CMPINT_LT)
    co = v.kor8(q0, q1)
    return t1, co


def table1_adc_mqx(a: Vec, b: Vec, carry_in: Mask) -> Tuple[Vec, Mask]:
    """Table 1, MQX column: one instruction."""
    return x.mm512_adc_epi64(a, b, carry_in)


# ----------------------------------------------------------------------
# Listing 1: scalar double-word modular addition, 64-bit words only
# ----------------------------------------------------------------------


def listing1_addmod128(a: int, b: int, m: int) -> int:
    """Listing 1's scalar ``addmod128``, comparison-based carries.

    Variable names follow the listing (``t30``, ``a31``, ``i28``...).
    """
    al, ah = SVal(a & MASK64), SVal(a >> 64)
    bl, bh = SVal(b & MASK64), SVal(b >> 64)
    ml, mh = SVal(m & MASK64), SVal(m >> 64)

    t30, _ = s.add64(al, bl)
    q1 = s.cmp_lt64(t30, al)
    q2 = s.cmp_lt64(t30, bl)
    c1 = s.or1(q1, q2)
    t28, _ = s.add64(ah, bh)
    t29, _ = s.add64(t28, c1)
    q3 = s.cmp_lt64(t29, ah)
    q4 = s.cmp_lt64(t29, bh)
    c2 = s.or1(q3, q4)
    a31 = s.cmp_lt64(mh, t29)
    a35 = s.cmp_eq64(mh, t29)
    a38 = s.cmp_le64(ml, t30)
    a34 = s.and1(a35, a38)
    i27 = s.or1(a31, a34)
    i28 = s.or1(c2, i27)
    d1, _ = s.sub64(t30, ml)
    b1 = s.not1(a38)
    d2, _ = s.sub64(t29, mh)
    d3, _ = s.sub64(d2, b1)
    ch = s.cmov64(i28, d3, t29)
    cl = s.cmov64(i28, d1, t30)
    return (int(ch) << 64) | int(cl)


# ----------------------------------------------------------------------
# Listing 2: AVX-512 double-word modular addition
# ----------------------------------------------------------------------


def listing2_addmod128(
    ah: Vec, al: Vec, bh: Vec, bl: Vec, mh: Vec, ml: Vec
) -> Tuple[Vec, Vec]:
    """Listing 2's AVX-512 ``addmod128``, returning ``(ch, cl)``."""
    one = v.mm512_set1_epi64(1)

    t30 = v.mm512_add_epi64(al, bl)
    q1 = v.mm512_cmp_epu64_mask(t30, al, v.CMPINT_LT)
    q2 = v.mm512_cmp_epu64_mask(t30, bl, v.CMPINT_LT)
    c1 = v.kor8(q1, q2)
    t28 = v.mm512_add_epi64(ah, bh)
    t29 = v.mm512_mask_add_epi64(t28, c1, t28, one)
    q3 = v.mm512_cmp_epu64_mask(t29, ah, v.CMPINT_LT)
    q4 = v.mm512_cmp_epu64_mask(t29, bh, v.CMPINT_LT)
    c2 = v.kor8(q3, q4)
    a31 = v.mm512_cmp_epu64_mask(mh, t29, v.CMPINT_LT)
    a35 = v.mm512_cmp_epu64_mask(mh, t29, v.CMPINT_EQ)
    a38 = v.mm512_cmp_epu64_mask(ml, t30, v.CMPINT_LE)
    a34 = v.kand8(a35, a38)
    i27 = v.kor8(a31, a34)
    i28 = v.kor8(c2, i27)
    d1 = v.mm512_sub_epi64(t30, ml)
    b1 = v.knot8(a38)
    d2 = v.mm512_sub_epi64(t29, mh)
    d3 = v.mm512_mask_sub_epi64(d2, b1, d2, one)
    ch = v.mm512_mask_blend_epi64(i28, t29, d3)
    cl = v.mm512_mask_blend_epi64(i28, t30, d1)
    return ch, cl


# ----------------------------------------------------------------------
# Listing 3: MQX double-word modular addition
# ----------------------------------------------------------------------


def listing3_addmod128(
    ah: Vec, al: Vec, bh: Vec, bl: Vec, mh: Vec, ml: Vec
) -> Tuple[Vec, Vec]:
    """Listing 3's MQX ``addmod128``, returning ``(ch, cl)``.

    ``z_mask`` is the paper's global zero mask.
    """
    z_mask = Mask.zeros(v.LANES)

    cl, c1 = x.mm512_adc_epi64(al, bl, z_mask)
    ch, c2 = x.mm512_adc_epi64(ah, bh, c1)
    d1, b1 = x.mm512_sbb_epi64(cl, ml, z_mask)
    d3, b2 = x.mm512_sbb_epi64(ch, mh, b1)
    i28 = v.kor8(c2, v.knot8(b2))
    ch = v.mm512_mask_blend_epi64(i28, ch, d3)
    cl = v.mm512_mask_blend_epi64(i28, cl, d1)
    return ch, cl
