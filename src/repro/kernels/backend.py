"""The abstract kernel backend and the shared Barrett multiplication skeleton.

A backend processes *blocks* of ``lanes`` 128-bit residues at a time, each
represented as a :class:`DWPair` - a (high-words, low-words) register pair,
mirroring how the paper's SIMD kernels split each 128-bit input vector into
two 64-bit vectors (Figure 2).

The modular-multiplication algorithm (double-word schoolbook/Karatsuba
product + Barrett reduction, Sections 2.1-2.2) is identical across all
variants, so it lives here, written against a small set of primitive
operations (:meth:`Backend.dw_add`, :meth:`Backend.dw_wide_mul`, ...) that
each backend implements with its own instructions. This is exactly the
structure of the paper's code: one algorithm, four instruction-level
realizations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.arith.barrett import BarrettParams
from repro.arith.dwmod import check_modulus_128
from repro.errors import BackendError
from repro.util.bits import MASK64


@dataclass(frozen=True)
class DWPair:
    """A block of 128-bit values as a (high, low) register pair.

    ``hi`` and ``lo`` are backend register values: :class:`~repro.isa.types.Vec`
    for the SIMD backends, :class:`~repro.isa.types.SVal` for the scalar one.
    """

    hi: Any
    lo: Any


class ModulusContext:
    """Per-modulus precomputed state for one backend.

    Holds the Barrett parameters and the backend's broadcast registers for
    the modulus and ``mu`` (the paper precomputes ``mu`` once per modulus,
    Section 2.1). Backends may stash additional hoisted constants in
    ``extras`` (e.g. AVX2 keeps sign-flipped copies of the modulus words for
    its unsigned-compare emulation).
    """

    def __init__(self, backend: "Backend", q: int, algorithm: str) -> None:
        check_modulus_128(q)
        if algorithm not in ("schoolbook", "karatsuba"):
            raise BackendError(f"unknown multiplication algorithm {algorithm!r}")
        self.q = q
        self.algorithm = algorithm
        self.params = BarrettParams(q)
        self.params.check_width(128)
        self.backend = backend
        self.m = backend.broadcast_dw(q)
        self.two_m = backend.broadcast_dw(2 * q)
        self.mu = backend.broadcast_dw(self.params.mu)
        self.extras: Dict[str, Any] = {}

    @property
    def beta(self) -> int:
        """Bit length of the modulus."""
        return self.params.beta


class Backend(ABC):
    """Abstract kernel backend: block-level double-word modular arithmetic."""

    #: Backend registry keyed by :attr:`name` (populated by subclasses).
    _registry: Dict[str, type] = {}

    name: str = ""
    #: Number of 128-bit residues processed per block.
    lanes: int = 0

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.name:
            Backend._registry[cls.name] = cls

    # ------------------------------------------------------------------
    # Block I/O
    # ------------------------------------------------------------------

    def make_modulus(self, q: int, algorithm: str = "schoolbook") -> ModulusContext:
        """Precompute the per-modulus broadcast constants and Barrett state."""
        return ModulusContext(self, q, algorithm)

    @abstractmethod
    def broadcast_dw(self, value: int) -> DWPair:
        """Broadcast one 128-bit value into a (hoisted) register pair."""

    @abstractmethod
    def broadcast_twiddle(self, value: int) -> DWPair:
        """Broadcast a twiddle factor inside the NTT loop (costed, not free)."""

    @abstractmethod
    def load_block(self, values: Sequence[int]) -> DWPair:
        """Load ``lanes`` 128-bit values from memory into a register pair."""

    @abstractmethod
    def store_block(self, block: DWPair) -> List[int]:
        """Store a register pair back to memory, returning the 128-bit values."""

    def block_values(self, block: DWPair) -> List[int]:
        """Read a block's 128-bit values without emitting store traffic."""
        his, los = self._pair_words(block)
        return [(h << 64) | l for h, l in zip(his, los)]

    @abstractmethod
    def _pair_words(self, block: DWPair) -> Tuple[List[int], List[int]]:
        """Return (high words, low words) of a block as plain ints."""

    # ------------------------------------------------------------------
    # Primitive double-word operations (per-backend instruction choices)
    # ------------------------------------------------------------------

    @abstractmethod
    def dw_add(self, a: DWPair, b: DWPair) -> Tuple[DWPair, Any]:
        """128-bit add; returns ``(sum mod 2^128, carry_out)``."""

    def dw_add_small(self, a: DWPair, b: DWPair) -> DWPair:
        """128-bit add when the sum provably fits 128 bits (no carry-out).

        This is the paper's key 124-bit-modulus optimization (Section 3.1):
        for reduced operands the sum is below ``2q < 2^125``, so the
        carry-out logic of the high-word addition can be elided entirely.
        Backends override this with a cheaper sequence.
        """
        total, _ = self.dw_add(a, b)
        return total

    @abstractmethod
    def dw_sub(self, a: DWPair, b: DWPair) -> Tuple[DWPair, Any]:
        """128-bit subtract; returns ``(diff mod 2^128, borrow_out)``."""

    def dw_sub_noborrow(self, a: DWPair, b: DWPair) -> DWPair:
        """128-bit subtract when the borrow-out is unused (``t - est*q``).

        Barrett guarantees ``0 <= t - estimate*q < 3q``, so the final
        subtraction's borrow flag is dead; backends override to skip it.
        """
        diff, _ = self.dw_sub(a, b)
        return diff

    @abstractmethod
    def dw_wide_mul(self, a: DWPair, b: DWPair) -> Tuple[DWPair, DWPair]:
        """128x128->256 multiply; returns ``(high_dw, low_dw)``.

        Dispatches on the modulus context's ``algorithm`` at the caller.
        """

    @abstractmethod
    def dw_mullo(self, a: DWPair, b: DWPair) -> DWPair:
        """Low 128 bits of a 128x128 product."""

    @abstractmethod
    def shift_right_256(self, high: DWPair, low: DWPair, amount: int) -> DWPair:
        """Shift a 256-bit (high, low) double-word pair right into 128 bits."""

    @abstractmethod
    def select(self, cond: Any, if_true: DWPair, if_false: DWPair) -> DWPair:
        """Per-lane select by a backend condition (mask/flag)."""

    def interleave(self, even: DWPair, odd: DWPair) -> Tuple[DWPair, DWPair]:
        """Interleave two blocks lane-wise: the Pease stage output shuffle.

        Returns ``(out0, out1)`` with ``out0 = [e0, o0, e1, o1, ...]`` and
        ``out1`` the second half - realized with unpack/permute instructions
        on the SIMD backends (Section 3.2's data permutation stage). The
        scalar backend writes elements individually, so its interleave is
        free (pure addressing).
        """
        return even, odd

    @abstractmethod
    def cond_or(self, a: Any, b: Any) -> Any:
        """OR two backend condition values."""

    @abstractmethod
    def cond_not(self, a: Any) -> Any:
        """Negate a backend condition value."""

    # ------------------------------------------------------------------
    # Modular operations (shared algorithm, Sections 2.1-3.2)
    # ------------------------------------------------------------------

    def addmod(self, a: DWPair, b: DWPair, ctx: ModulusContext) -> DWPair:
        """``a + b mod q`` via trial subtraction (Equation 2 over DWs).

        Since ``q <= 2^124`` the sum fits in 125 bits, so the double-word
        addition cannot carry out and the trial subtraction's borrow alone
        decides the select - the carry-elision the paper derives from the
        Barrett width constraint (Section 3.1).
        """
        total = self.dw_add_small(a, b)
        diff, borrow = self.dw_sub(total, ctx.m)
        return self.select(self.cond_not(borrow), diff, total)

    def submod(self, a: DWPair, b: DWPair, ctx: ModulusContext) -> DWPair:
        """``a - b mod q`` via conditional add-back (Equation 3 over DWs).

        The add-back's carry out of bit 127 is deliberately discarded (it
        cancels the borrow's wrap), so the cheap no-carry-out add applies.
        """
        diff, borrow = self.dw_sub(a, b)
        fixed = self.dw_add_small(diff, ctx.m)
        return self.select(borrow, fixed, diff)

    def mulmod(self, a: DWPair, b: DWPair, ctx: ModulusContext) -> DWPair:
        """``a * b mod q`` - double-word product + Barrett reduction.

        The exact algorithm of :func:`repro.arith.dwmod.mulmod128`, realized
        with this backend's primitives:

        1. ``t = a * b`` (256-bit, schoolbook or Karatsuba per ``ctx``),
        2. quotient estimate ``((t >> (beta-1)) * mu) >> (beta+1)``,
        3. ``c = t - estimate * q`` modulo 2^128,
        4. two conditional subtractions of ``q``.
        """
        beta = ctx.beta
        t_high, t_low = self.dw_wide_mul_dispatch(a, b, ctx)
        shifted = self.shift_right_256(t_high, t_low, beta - 1)
        g_high, g_low = self.dw_wide_mul(shifted, ctx.mu)
        estimate = self.shift_right_256(g_high, g_low, beta + 1)
        product = self.dw_mullo(estimate, ctx.m)
        c = self.dw_sub_noborrow(t_low, product)
        c = self.cond_sub_modulus(c, ctx)
        c = self.cond_sub_modulus(c, ctx)
        return c

    def cond_sub_modulus(self, x: DWPair, ctx: ModulusContext) -> DWPair:
        """One Barrett correction: ``x - q`` if ``x >= q`` else ``x``."""
        diff, borrow = self.dw_sub(x, ctx.m)
        return self.select(self.cond_not(borrow), diff, x)

    def dw_wide_mul_dispatch(
        self, a: DWPair, b: DWPair, ctx: ModulusContext
    ) -> Tuple[DWPair, DWPair]:
        """Pick schoolbook or Karatsuba for the first wide product.

        Barrett's internal ``(t >> s) * mu`` product always uses schoolbook
        (matching the paper, which varies only the operand multiplication).
        """
        if ctx.algorithm == "karatsuba":
            return self.dw_wide_mul_karatsuba(a, b)
        return self.dw_wide_mul(a, b)

    def dw_wide_mul_karatsuba(self, a: DWPair, b: DWPair) -> Tuple[DWPair, DWPair]:
        """Karatsuba 128x128->256 (Equation 9). Backends may override.

        The default falls back to schoolbook so that backends without a
        dedicated Karatsuba path still produce correct results; all four
        paper backends override this.
        """
        return self.dw_wide_mul(a, b)

    def butterfly(
        self, x: DWPair, y: DWPair, twiddle: DWPair, ctx: ModulusContext
    ) -> Tuple[DWPair, DWPair]:
        """One NTT butterfly: ``(x + w*y, x - w*y) mod q`` (Section 3.2).

        One modular multiplication, one modular addition, one modular
        subtraction - the unit the paper reports "runtime per butterfly" in.
        """
        t = self.mulmod(y, twiddle, ctx)
        return self.addmod(x, t, ctx), self.submod(x, t, ctx)

    # ------------------------------------------------------------------
    # Shoup/Harvey twiddle multiplication (tuned-NTT extension)
    # ------------------------------------------------------------------

    def mulmod_shoup(
        self, y: DWPair, w: DWPair, w_shoup: DWPair, ctx: ModulusContext
    ) -> DWPair:
        """``w * y mod q`` with a precomputed Shoup constant.

        Harvey's butterfly trick: with ``w' = floor(w * 2^128 / q)``
        precomputed per twiddle, the quotient estimate is just the high
        half of ``w' * y`` - no shifts, no multiply by ``mu``:

            t = floor(w' * y / 2^128)
            r = (w * y - t * q) mod 2^128,   r in [0, 2q)

        followed by one conditional subtraction (valid since
        ``q <= 2^124 < 2^128 / 4``). This replaces one of Barrett's two
        full wide products and both cross-word shifts - the standard
        optimization real tuned NTT libraries apply on top of the paper's
        general-input Barrett kernels.
        """
        t_high, _ = self.dw_wide_mul(w_shoup, y)
        wy_low = self.dw_mullo(w, y)
        tq_low = self.dw_mullo(t_high, ctx.m)
        r = self.dw_sub_noborrow(wy_low, tq_low)
        return self.cond_sub_modulus(r, ctx)

    def butterfly_shoup(
        self,
        x: DWPair,
        y: DWPair,
        twiddle: DWPair,
        twiddle_shoup: DWPair,
        ctx: ModulusContext,
    ) -> Tuple[DWPair, DWPair]:
        """NTT butterfly with the Shoup-precomputed twiddle product."""
        t = self.mulmod_shoup(y, twiddle, twiddle_shoup, ctx)
        return self.addmod(x, t, ctx), self.submod(x, t, ctx)

    # ------------------------------------------------------------------
    # Harvey's lazy butterflies (redundant range [0, 4q))
    # ------------------------------------------------------------------

    def cond_sub_2q(self, x: DWPair, ctx: ModulusContext) -> DWPair:
        """``x - 2q`` where ``x >= 2q`` (lazy range restoration).

        ``4q < 2^126`` for the paper's moduli, so the lazy range always
        fits the double-word.
        """
        m2 = ctx.two_m
        diff, borrow = self.dw_sub(x, m2)
        return self.select(self.cond_not(borrow), diff, x)

    def mulmod_shoup_lazy(
        self, y: DWPair, w: DWPair, w_shoup: DWPair, ctx: ModulusContext
    ) -> DWPair:
        """Shoup product left in ``[0, 2q)``: no final subtraction.

        Valid for any ``y < 2^128`` (in particular the lazy ``[0, 4q)``
        range) - Harvey's bound only needs ``q < 2^128 / 4``.
        """
        t_high, _ = self.dw_wide_mul(w_shoup, y)
        wy_low = self.dw_mullo(w, y)
        tq_low = self.dw_mullo(t_high, ctx.m)
        return self.dw_sub_noborrow(wy_low, tq_low)

    def butterfly_lazy(
        self,
        x: DWPair,
        y: DWPair,
        twiddle: DWPair,
        twiddle_shoup: DWPair,
        ctx: ModulusContext,
    ) -> Tuple[DWPair, DWPair]:
        """Harvey's lazy butterfly: inputs and outputs in ``[0, 4q)``.

        No comparisons or blends on the add/sub paths; the transform
        normalizes once at the end (see ``SimdNtt``'s lazy mode).
        """
        x_tilde = self.cond_sub_2q(x, ctx)
        t = self.mulmod_shoup_lazy(y, twiddle, twiddle_shoup, ctx)
        plus = self.dw_add_small(x_tilde, t)
        shifted = self.dw_add_small(x_tilde, ctx.two_m)
        minus = self.dw_sub_noborrow(shifted, t)
        return plus, minus

    def reduce_from_lazy(self, x: DWPair, ctx: ModulusContext) -> DWPair:
        """Bring a lazy-range value (``< 4q``) back to canonical ``[0, q)``."""
        return self.cond_sub_modulus(self.cond_sub_2q(x, ctx), ctx)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    @classmethod
    def available(cls) -> List[str]:
        """Names of all registered backends."""
        return sorted(cls._registry)


def get_backend(name: str, **kwargs: Any) -> Backend:
    """Instantiate a backend by name (``scalar``/``avx2``/``avx512``/``mqx``).

    Extra keyword arguments are forwarded to the backend constructor (the
    ``mqx`` backend accepts ``features=MqxFeatures(...)``).
    """
    try:
        backend_cls = Backend._registry[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {Backend.available()}"
        ) from None
    return backend_cls(**kwargs)


def split_dw_words(values: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Split 128-bit values into (high-word, low-word) lists (Figure 2)."""
    his, los = [], []
    for value in values:
        if not 0 <= value < (1 << 128):
            raise BackendError(f"{value} is not a 128-bit value")
        his.append(value >> 64)
        los.append(value & MASK64)
    return his, los
