"""AVX2 backend (Section 3.2).

Four 128-bit residues per block, held as two YMM registers. AVX2 lacks both
mask registers and unsigned 64-bit comparisons, so:

* conditions are ordinary vectors of 0 / all-ones lanes,
* unsigned compares cost three instructions (sign-flip + ``vpcmpgtq``),
* consuming a carry mask costs one ``vpsubq`` (an all-ones lane is -1),
* selects go through ``vpblendvb``,
* the 64-bit low multiply (``vpmullq``) must itself be emulated from
  ``vpmuludq`` partial products.

This instruction inflation is why the paper finds AVX2 roughly at parity
with a good scalar implementation (Sections 5.3-5.4).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.errors import BackendError
from repro.isa import avx2 as y
from repro.isa.types import Vec
from repro.kernels.backend import Backend, DWPair, split_dw_words
from repro.util.bits import MASK64


class Avx2Backend(Backend):
    """Kernels built from AVX2 instructions, 4 residues per block."""

    name = "avx2"
    lanes = 4

    def __init__(self) -> None:
        self.ones = y.mm256_set1_epi64x(MASK64)
        self.zero = y.mm256_setzero_si256()

    # ------------------------------------------------------------------
    # Block I/O
    # ------------------------------------------------------------------

    def broadcast_dw(self, value: int) -> DWPair:
        return DWPair(
            hi=y.mm256_set1_epi64x(value >> 64),
            lo=y.mm256_set1_epi64x(value & MASK64),
        )

    def broadcast_twiddle(self, value: int) -> DWPair:
        return DWPair(
            hi=y.mm256_set1_epi64x(value >> 64, hoisted=False),
            lo=y.mm256_set1_epi64x(value & MASK64, hoisted=False),
        )

    def load_block(self, values: Sequence[int]) -> DWPair:
        if len(values) != self.lanes:
            raise BackendError(
                f"{self.name} block takes {self.lanes} values, got {len(values)}"
            )
        his, los = split_dw_words(values)
        return DWPair(hi=y.mm256_load_si256(his), lo=y.mm256_load_si256(los))

    def store_block(self, block: DWPair) -> List[int]:
        y.mm256_store_si256(block.hi)
        y.mm256_store_si256(block.lo)
        return self.block_values(block)

    def _pair_words(self, block: DWPair) -> Tuple[List[int], List[int]]:
        return block.hi.to_list(), block.lo.to_list()

    # ------------------------------------------------------------------
    # Carry helpers (emulated-mask patterns)
    # ------------------------------------------------------------------

    def _add_carry_out(self, a: Vec, b: Vec) -> Tuple[Vec, Vec]:
        """Add + carry mask: 1 add + 3-instruction unsigned compare."""
        total = y.mm256_add_epi64(a, b)
        carry = y.cmplt_epu64(total, a)
        return total, carry

    def _adc(self, a: Vec, b: Vec, carry_in: Vec) -> Tuple[Vec, Vec]:
        """Add-with-carry via the subtract-the-mask trick + wrap detection.

        ``t1 = t0 - carry_mask`` adds 1 exactly where the mask is set; the
        increment wraps only when ``t0`` was all-ones, caught with one
        ``vpcmpeqq`` + ``vpand``.
        """
        t0 = y.mm256_add_epi64(a, b)
        carry_a = y.cmplt_epu64(t0, a)
        t1 = y.add_with_mask_carry(t0, carry_in)
        wrap = y.mm256_and_si256(y.mm256_cmpeq_epi64(t0, self.ones), carry_in)
        carry_out = y.mm256_or_si256(carry_a, wrap)
        return t1, carry_out

    def _sub_borrow_out(self, a: Vec, b: Vec) -> Tuple[Vec, Vec]:
        """Subtract + borrow mask: 1 sub + 3-instruction unsigned compare."""
        diff = y.mm256_sub_epi64(a, b)
        borrow = y.cmplt_epu64(a, b)
        return diff, borrow

    def _sbb(self, a: Vec, b: Vec, borrow_in: Vec) -> Tuple[Vec, Vec]:
        """Subtract-with-borrow: adding the -1 mask decrements."""
        d0 = y.mm256_sub_epi64(a, b)
        d1 = y.mm256_add_epi64(d0, borrow_in)
        lt = y.cmplt_epu64(a, b)
        wrapped = y.mm256_and_si256(y.mm256_cmpeq_epi64(a, b), borrow_in)
        borrow_out = y.mm256_or_si256(lt, wrapped)
        return d1, borrow_out

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def dw_add(self, a: DWPair, b: DWPair) -> Tuple[DWPair, Any]:
        low, c1 = self._add_carry_out(a.lo, b.lo)
        high, carry_out = self._adc(a.hi, b.hi, c1)
        return DWPair(hi=high, lo=low), carry_out

    def dw_add_small(self, a: DWPair, b: DWPair) -> DWPair:
        low, c1 = self._add_carry_out(a.lo, b.lo)
        high = y.add_with_mask_carry(y.mm256_add_epi64(a.hi, b.hi), c1)
        return DWPair(hi=high, lo=low)

    def dw_sub(self, a: DWPair, b: DWPair) -> Tuple[DWPair, Any]:
        low, b1 = self._sub_borrow_out(a.lo, b.lo)
        high, borrow_out = self._sbb(a.hi, b.hi, b1)
        return DWPair(hi=high, lo=low), borrow_out

    def dw_sub_noborrow(self, a: DWPair, b: DWPair) -> DWPair:
        low, b1 = self._sub_borrow_out(a.lo, b.lo)
        high = y.mm256_add_epi64(y.mm256_sub_epi64(a.hi, b.hi), b1)
        return DWPair(hi=high, lo=low)

    def dw_wide_mul(self, a: DWPair, b: DWPair) -> Tuple[DWPair, DWPair]:
        """Schoolbook 128x128->256: four emulated widening multiplies."""
        ll_hi, ll_lo = y.mul64_wide_emulated(a.lo, b.lo)
        lh_hi, lh_lo = y.mul64_wide_emulated(a.lo, b.hi)
        hl_hi, hl_lo = y.mul64_wide_emulated(a.hi, b.lo)
        hh_hi, hh_lo = y.mul64_wide_emulated(a.hi, b.hi)

        s1, c1 = self._add_carry_out(lh_lo, hl_lo)
        w1, c2 = self._add_carry_out(s1, ll_hi)
        s2, c3 = self._adc(lh_hi, hl_hi, c1)
        w2, c4 = self._adc(s2, hh_lo, c2)
        s3 = y.add_with_mask_carry(hh_hi, c3)
        w3 = y.add_with_mask_carry(s3, c4)
        return DWPair(hi=w3, lo=w2), DWPair(hi=w1, lo=ll_lo)

    def dw_wide_mul_karatsuba(self, a: DWPair, b: DWPair) -> Tuple[DWPair, DWPair]:
        """Karatsuba 128x128->256 with mask-vector overflow fix-up."""
        hh_hi, hh_lo = y.mul64_wide_emulated(a.hi, b.hi)
        ll_hi, ll_lo = y.mul64_wide_emulated(a.lo, b.lo)

        sa, ca = self._add_carry_out(a.hi, a.lo)
        sb, cb = self._add_carry_out(b.hi, b.lo)
        p_hi, p_lo = y.mul64_wide_emulated(sa, sb)

        # cross as 3 words; masked adds become and+add pairs in AVX2.
        fix_a = y.mm256_and_si256(ca, sb)
        c1w, cy1 = self._add_carry_out(p_hi, fix_a)
        fix_b = y.mm256_and_si256(cb, sa)
        c1x, cy2 = self._add_carry_out(c1w, fix_b)
        both = y.mm256_and_si256(ca, cb)
        c2w = self.zero
        c2w = y.add_with_mask_carry(c2w, both)
        c2w = y.add_with_mask_carry(c2w, cy1)
        c2w = y.add_with_mask_carry(c2w, cy2)

        m0, bw = self._sub_borrow_out(p_lo, hh_lo)
        m1, bw = self._sbb(c1x, hh_hi, bw)
        m2 = y.mm256_add_epi64(c2w, bw)
        m0, bw = self._sub_borrow_out(m0, ll_lo)
        m1, bw = self._sbb(m1, ll_hi, bw)
        m2 = y.mm256_add_epi64(m2, bw)

        w1, cy = self._add_carry_out(ll_hi, m0)
        w2, cy = self._adc(hh_lo, m1, cy)
        w3 = y.add_with_mask_carry(hh_hi, cy)
        w3 = y.mm256_add_epi64(w3, m2)
        return DWPair(hi=w3, lo=w2), DWPair(hi=w1, lo=ll_lo)

    def dw_mullo(self, a: DWPair, b: DWPair) -> DWPair:
        """Low 128 bits; AVX2 must emulate even the 64-bit low multiply."""
        p_hi, p_lo = y.mul64_wide_emulated(a.lo, b.lo)
        x1 = self._mullo64(a.lo, b.hi)
        x2 = self._mullo64(a.hi, b.lo)
        cross = y.mm256_add_epi64(x1, x2)
        high = y.mm256_add_epi64(p_hi, cross)
        return DWPair(hi=high, lo=p_lo)

    def _mullo64(self, a: Vec, b: Vec) -> Vec:
        """Emulated ``vpmullq``: 3 vpmuludq + shifts/adds (7 instructions)."""
        ll = y.mm256_mul_epu32(a, b)
        a_hi = y.mm256_srli_epi64(a, 32)
        b_hi = y.mm256_srli_epi64(b, 32)
        cross1 = y.mm256_mul_epu32(a_hi, b)
        cross2 = y.mm256_mul_epu32(a, b_hi)
        cross = y.mm256_add_epi64(cross1, cross2)
        return y.mm256_add_epi64(ll, y.mm256_slli_epi64(cross, 32))

    def shift_right_256(self, high: DWPair, low: DWPair, amount: int) -> DWPair:
        w0, w1, w2, w3 = low.lo, low.hi, high.lo, high.hi
        if amount == 0:
            return DWPair(hi=w1, lo=w0)
        if amount == 64:
            return DWPair(hi=w2, lo=w1)
        if amount == 128:
            return DWPair(hi=w3, lo=w2)
        if 0 < amount < 64:
            lo = self._shrd(w1, w0, amount)
            hi = self._shrd(w2, w1, amount)
        elif 64 < amount < 128:
            lo = self._shrd(w2, w1, amount - 64)
            hi = self._shrd(w3, w2, amount - 64)
        elif 128 < amount < 192:
            lo = self._shrd(w3, w2, amount - 128)
            hi = y.mm256_srli_epi64(w3, amount - 128)
        else:
            raise BackendError(f"unsupported 256-bit shift amount {amount}")
        return DWPair(hi=hi, lo=lo)

    def _shrd(self, high: Vec, low: Vec, amount: int) -> Vec:
        return y.mm256_or_si256(
            y.mm256_srli_epi64(low, amount),
            y.mm256_slli_epi64(high, 64 - amount),
        )

    def select(self, cond: Any, if_true: DWPair, if_false: DWPair) -> DWPair:
        return DWPair(
            hi=y.mm256_blendv_epi8(if_false.hi, if_true.hi, cond),
            lo=y.mm256_blendv_epi8(if_false.lo, if_true.lo, cond),
        )

    def interleave(self, even: DWPair, odd: DWPair) -> Tuple[DWPair, DWPair]:
        """Pease output shuffle: unpack + cross-lane ``vperm2i128`` pairs."""

        def _interleave_vec(e, o):
            lo_pairs = y.mm256_unpacklo_epi64(e, o)  # [e0,o0, e2,o2]
            hi_pairs = y.mm256_unpackhi_epi64(e, o)  # [e1,o1, e3,o3]
            first = y.mm256_permute2x128_si256(lo_pairs, hi_pairs, 0x20)
            second = y.mm256_permute2x128_si256(lo_pairs, hi_pairs, 0x31)
            return first, second

        hi0, hi1 = _interleave_vec(even.hi, odd.hi)
        lo0, lo1 = _interleave_vec(even.lo, odd.lo)
        return DWPair(hi=hi0, lo=lo0), DWPair(hi=hi1, lo=lo1)

    def cond_or(self, a: Any, b: Any) -> Any:
        return y.mm256_or_si256(a, b)

    def cond_not(self, a: Any) -> Any:
        return y.mm256_xor_si256(a, self.ones)
