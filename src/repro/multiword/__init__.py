"""Multi-word modular arithmetic: the paper's Section 7 generalization.

The paper's Discussion proposes extending the 128-bit kernels to larger
bit-widths via MoMA-style recursive decomposition into machine words,
unlocking workloads such as zero-knowledge proofs (256-bit fields). This
package implements that generalization:

* :mod:`repro.multiword.wordops` - a word-level operation adapter exposing
  each backend's carry/multiply primitives uniformly,
* :mod:`repro.multiword.arith` - W-word modular arithmetic (Barrett, any
  modulus up to ``64 W - 4`` bits) generic over the adapter,
* :mod:`repro.multiword.ntt` - NTTs over multi-word residues on any
  backend, with the same Pease dataflow as the 128-bit kernels.

The MQX case is the interesting one: carry chains grow linearly with the
word count, so the relative benefit of first-class add-with-carry *grows*
with the bit-width - quantified by ``benchmarks/bench_extension_multiword.py``.
"""

from repro.multiword.arith import MwModContext, MwKernel
from repro.multiword.ntt import MultiWordNtt

__all__ = ["MwKernel", "MwModContext", "MultiWordNtt"]
