"""W-word modular arithmetic, generic over the word-operation adapter.

This is the MoMA-style generalization the paper's Section 7 sketches: the
same Barrett algorithm as the 128-bit kernels, but over residues of any
word count W (W = 2 reproduces the paper's double-words; W = 4 gives the
256-bit arithmetic of zero-knowledge-proof fields). All routines take and
return little-endian lists of W word registers.

The modulus bound generalizes the paper's 124-bit rule: ``q`` may have at
most ``64 W - 4`` bits, which keeps ``mu``, the shifted intermediates and
the correction headroom inside W words.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.arith.barrett import BarrettParams
from repro.errors import ArithmeticDomainError, BackendError
from repro.kernels.backend import Backend
from repro.multiword.wordops import WordOps, word_ops_for
from repro.util.bits import MASK64

Regs = List[Any]


class MwModContext:
    """Per-modulus state for W-word modular arithmetic on one backend."""

    def __init__(self, backend: Backend, q: int, words: int) -> None:
        if words < 2:
            raise ArithmeticDomainError("multi-word arithmetic needs >= 2 words")
        max_bits = 64 * words - 4
        if q.bit_length() > max_bits:
            raise ArithmeticDomainError(
                f"{words}-word Barrett arithmetic requires a modulus of at "
                f"most {max_bits} bits, got {q.bit_length()}"
            )
        if q < 3:
            raise ArithmeticDomainError(f"modulus must be >= 3, got {q}")
        self.backend = backend
        self.ops: WordOps = word_ops_for(backend)
        self.q = q
        self.words = words
        self.params = BarrettParams(q)
        self.m = self._broadcast_words(q)
        self.mu = self._broadcast_words(self.params.mu)

    @property
    def beta(self) -> int:
        """Bit length of the modulus."""
        return self.params.beta

    def _broadcast_words(self, value: int) -> Regs:
        return [
            self.ops.broadcast((value >> (64 * i)) & MASK64)
            for i in range(self.words)
        ]


class MwKernel:
    """W-word modular add/sub/mul/butterfly over one modulus context."""

    def __init__(self, ctx: MwModContext) -> None:
        self.ctx = ctx
        self.ops = ctx.ops

    # ------------------------------------------------------------------
    # Block I/O
    # ------------------------------------------------------------------

    def load_block(self, values: Sequence[int]) -> Regs:
        """Load ``lanes`` W-word residues as W word-plane registers."""
        ops, W = self.ops, self.ctx.words
        if len(values) != ops.lanes:
            raise BackendError(
                f"block takes {ops.lanes} values, got {len(values)}"
            )
        planes = []
        for w in range(W):
            planes.append(ops.load([(v >> (64 * w)) & MASK64 for v in values]))
        return planes

    def store_block(self, regs: Regs) -> List[int]:
        """Store W word planes; returns the reassembled residues."""
        ops = self.ops
        planes = [ops.store(reg) for reg in regs]
        return self._combine(planes)

    def block_values(self, regs: Regs) -> List[int]:
        """Residue values without memory traffic."""
        planes = [self.ops.values(reg) for reg in regs]
        return self._combine(planes)

    @staticmethod
    def _combine(planes: List[List[int]]) -> List[int]:
        lanes = len(planes[0])
        return [
            sum(planes[w][i] << (64 * w) for w in range(len(planes)))
            for i in range(lanes)
        ]

    # ------------------------------------------------------------------
    # Word-chain primitives
    # ------------------------------------------------------------------

    def _add_small(self, a: Regs, b: Regs) -> Regs:
        """W-word add when the sum provably fits (no carry-out)."""
        ops = self.ops
        out = []
        word, carry = ops.add_carry_out(a[0], b[0])
        out.append(word)
        for w in range(1, len(a) - 1):
            word, carry = ops.adc(a[w], b[w], carry)
            out.append(word)
        out.append(ops.add_nocarry(a[-1], b[-1], carry))
        return out

    def _sub(self, a: Regs, b: Regs) -> Tuple[Regs, Any]:
        """W-word subtract with borrow-out."""
        ops = self.ops
        out = []
        word, borrow = ops.sub_borrow_out(a[0], b[0])
        out.append(word)
        for w in range(1, len(a)):
            word, borrow = ops.sbb(a[w], b[w], borrow)
            out.append(word)
        return out, borrow

    def _sub_noborrow(self, a: Regs, b: Regs) -> Regs:
        ops = self.ops
        out = []
        word, borrow = ops.sub_borrow_out(a[0], b[0])
        out.append(word)
        for w in range(1, len(a) - 1):
            word, borrow = ops.sbb(a[w], b[w], borrow)
            out.append(word)
        out.append(ops.sub_noborrow(a[-1], b[-1], borrow))
        return out

    def _select(self, cond: Any, if_true: Regs, if_false: Regs) -> Regs:
        ops = self.ops
        return [ops.select(cond, t, f) for t, f in zip(if_true, if_false)]

    def _mul_full(self, a: Regs, b: Regs) -> Regs:
        """Schoolbook W x W -> 2W words (the mpn accumulation pattern)."""
        ops = self.ops
        W = len(a)
        out: Regs = [ops.zero] * (2 * W)
        for i in range(W):
            carry = ops.zero
            for j in range(W):
                hi, lo = ops.wide_mul(a[i], b[j])
                acc, c1 = ops.add_carry_out(lo, out[i + j])
                acc, c2 = ops.add_carry_out(acc, carry)
                out[i + j] = acc
                # hi + c1 + c2 cannot overflow (product-bound argument).
                hi = ops.add_nocarry(hi, ops.zero, c1)
                carry = ops.add_nocarry(hi, ops.zero, c2)
            out[i + W] = carry
        return out

    def _mullo(self, a: Regs, b: Regs) -> Regs:
        """Low W words of a W x W product (triangular schoolbook)."""
        ops = self.ops
        W = len(a)
        out: Regs = [ops.zero] * W
        for i in range(W):
            carry = ops.zero
            for j in range(W - i):
                k = i + j
                if k == W - 1:
                    p = ops.mullo(a[i], b[j])
                    acc, _ = ops.add_carry_out(p, out[k])
                    acc, _ = ops.add_carry_out(acc, carry)
                    out[k] = acc
                else:
                    hi, lo = ops.wide_mul(a[i], b[j])
                    acc, c1 = ops.add_carry_out(lo, out[k])
                    acc, c2 = ops.add_carry_out(acc, carry)
                    out[k] = acc
                    hi = ops.add_nocarry(hi, ops.zero, c1)
                    carry = ops.add_nocarry(hi, ops.zero, c2)
        return out

    def _shift_right(self, words: Regs, amount: int) -> Regs:
        """Right-shift a 2W-word value into W words (caller-guaranteed)."""
        ops = self.ops
        W = self.ctx.words
        word_shift, bit_shift = divmod(amount, 64)
        out = []
        for k in range(W):
            lo_idx = k + word_shift
            if lo_idx >= len(words):
                out.append(ops.zero)
            elif bit_shift == 0:
                out.append(words[lo_idx])
            elif lo_idx + 1 < len(words):
                out.append(ops.shrd(words[lo_idx + 1], words[lo_idx], bit_shift))
            else:
                out.append(ops.shr(words[lo_idx], bit_shift))
        return out

    # ------------------------------------------------------------------
    # Modular operations
    # ------------------------------------------------------------------

    def cond_sub_modulus(self, x: Regs) -> Regs:
        diff, borrow = self._sub(x, self.ctx.m)
        return self._select(self.ops.cond_not(borrow), diff, x)

    def addmod(self, a: Regs, b: Regs) -> Regs:
        """``a + b mod q`` (sum < 2q fits W words by the width bound)."""
        total = self._add_small(a, b)
        return self.cond_sub_modulus(total)

    def submod(self, a: Regs, b: Regs) -> Regs:
        """``a - b mod q`` via conditional add-back."""
        diff, borrow = self._sub(a, b)
        fixed = self._add_small(diff, self.ctx.m)
        return self._select(borrow, fixed, diff)

    def mulmod(self, a: Regs, b: Regs) -> Regs:
        """``a * b mod q``: W-word schoolbook product + Barrett reduction."""
        beta = self.ctx.beta
        t = self._mul_full(a, b)
        shifted = self._shift_right(t, beta - 1)
        g = self._mul_full(shifted, self.ctx.mu)
        estimate = self._shift_right(g, beta + 1)
        product = self._mullo(estimate, self.ctx.m)
        c = self._sub_noborrow(t[: self.ctx.words], product)
        c = self.cond_sub_modulus(c)
        return self.cond_sub_modulus(c)

    def butterfly(self, x: Regs, y: Regs, twiddle: Regs) -> Tuple[Regs, Regs]:
        """One NTT butterfly over W-word residues."""
        t = self.mulmod(y, twiddle)
        return self.addmod(x, t), self.submod(x, t)

    def interleave(self, even: Regs, odd: Regs) -> Tuple[Regs, Regs]:
        """Pease output shuffle, one plane at a time."""
        out0, out1 = [], []
        for e, o in zip(even, odd):
            a, b = self.ops.interleave_plane(e, o)
            out0.append(a)
            out1.append(b)
        return out0, out1

    def broadcast_residue(self, value: int) -> Regs:
        """Broadcast one W-word residue (hoisted constant)."""
        return self.ctx._broadcast_words(value)
