"""Word-level operation adapters: one uniform interface per backend.

The 128-bit kernels hard-code two words (high/low registers). Multi-word
arithmetic needs the same primitives - add/adc, sub/sbb, widening multiply,
cross-word shift, select - addressable one word-register at a time. Each
adapter wraps one kernel backend's instruction choices, so a W-word kernel
built on the adapter automatically exists in all four ISA variants (and
all MQX feature subsets, since the MQX backend's overridden helpers flow
through).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Sequence, Tuple

from repro.errors import BackendError
from repro.isa import avx2 as y_isa
from repro.isa import avx512 as v_isa
from repro.isa import scalar as s_isa
from repro.kernels.avx2_backend import Avx2Backend
from repro.kernels.avx512_backend import Avx512Backend
from repro.kernels.backend import Backend
from repro.kernels.scalar_backend import ScalarBackend
from repro.util.bits import MASK64


class WordOps(ABC):
    """Uniform word-register operations over one backend."""

    #: Residues processed per register.
    lanes: int = 0

    @abstractmethod
    def broadcast(self, value: int) -> Any:
        """Hoisted constant register holding ``value`` in every lane."""

    @abstractmethod
    def load(self, values: Sequence[int]) -> Any:
        """Load one word-plane register from memory."""

    @abstractmethod
    def store(self, reg: Any) -> List[int]:
        """Store one word-plane register; returns the lane values."""

    @abstractmethod
    def values(self, reg: Any) -> List[int]:
        """Lane values without memory traffic."""

    @property
    @abstractmethod
    def zero(self) -> Any:
        """The all-zero register (hoisted)."""

    @abstractmethod
    def add_carry_out(self, a: Any, b: Any) -> Tuple[Any, Any]:
        """``a + b`` with carry-out condition."""

    @abstractmethod
    def adc(self, a: Any, b: Any, carry_in: Any) -> Tuple[Any, Any]:
        """``a + b + ci`` with carry-out condition."""

    @abstractmethod
    def add_nocarry(self, a: Any, b: Any, carry_in: Any) -> Any:
        """``a + b + ci`` discarding the carry-out (cheaper)."""

    @abstractmethod
    def sub_borrow_out(self, a: Any, b: Any) -> Tuple[Any, Any]:
        """``a - b`` with borrow-out condition."""

    @abstractmethod
    def sbb(self, a: Any, b: Any, borrow_in: Any) -> Tuple[Any, Any]:
        """``a - b - bi`` with borrow-out condition."""

    @abstractmethod
    def sub_noborrow(self, a: Any, b: Any, borrow_in: Any) -> Any:
        """``a - b - bi`` discarding the borrow-out (cheaper)."""

    @abstractmethod
    def wide_mul(self, a: Any, b: Any) -> Tuple[Any, Any]:
        """64x64->128 widening multiply: ``(high, low)``."""

    @abstractmethod
    def mullo(self, a: Any, b: Any) -> Any:
        """64x64->64 low multiply."""

    @abstractmethod
    def shrd(self, high: Any, low: Any, amount: int) -> Any:
        """``(low >> amount) | (high << (64 - amount))``, 0 < amount < 64."""

    @abstractmethod
    def shr(self, a: Any, amount: int) -> Any:
        """Logical right shift by an immediate."""

    @abstractmethod
    def band(self, a: Any, b: Any) -> Any:
        """Bitwise AND of two word registers."""

    @abstractmethod
    def select(self, cond: Any, if_true: Any, if_false: Any) -> Any:
        """Per-lane select by a condition."""

    @abstractmethod
    def cond_or(self, a: Any, b: Any) -> Any:
        """OR two conditions."""

    @abstractmethod
    def cond_not(self, a: Any) -> Any:
        """Negate a condition."""

    @property
    @abstractmethod
    def zero_cond(self) -> Any:
        """The all-false condition."""

    @abstractmethod
    def interleave_plane(self, even: Any, odd: Any) -> Tuple[Any, Any]:
        """Pease stage output shuffle for one word plane."""


class ScalarWordOps(WordOps):
    """Scalar x86-64 word operations (one residue per register)."""

    lanes = 1

    def __init__(self, backend: ScalarBackend) -> None:
        self.backend = backend
        self._zero = s_isa.const64(0)
        self._false = s_isa.SVal(0, width=1)

    def broadcast(self, value: int) -> Any:
        return s_isa.const64(value)

    def load(self, values: Sequence[int]) -> Any:
        return s_isa.load64(values[0])

    def store(self, reg: Any) -> List[int]:
        s_isa.store64(reg)
        return [int(reg)]

    def values(self, reg: Any) -> List[int]:
        return [int(reg)]

    @property
    def zero(self) -> Any:
        return self._zero

    def add_carry_out(self, a, b):
        return s_isa.add64(a, b)

    def adc(self, a, b, carry_in):
        return s_isa.adc64(a, b, carry_in)

    def add_nocarry(self, a, b, carry_in):
        total, _ = s_isa.adc64(a, b, carry_in)
        return total

    def sub_borrow_out(self, a, b):
        return s_isa.sub64(a, b)

    def sbb(self, a, b, borrow_in):
        return s_isa.sbb64(a, b, borrow_in)

    def sub_noborrow(self, a, b, borrow_in):
        diff, _ = s_isa.sbb64(a, b, borrow_in)
        return diff

    def wide_mul(self, a, b):
        return s_isa.mul64(a, b)

    def mullo(self, a, b):
        return s_isa.imul64(a, b)

    def shrd(self, high, low, amount):
        return s_isa.shrd64(high, low, amount)

    def shr(self, a, amount):
        return s_isa.shr64(a, amount)

    def band(self, a, b):
        return s_isa.and64(a, b)

    def select(self, cond, if_true, if_false):
        return s_isa.cmov64(cond, if_true, if_false)

    def cond_or(self, a, b):
        return s_isa.or1(a, b)

    def cond_not(self, a):
        return s_isa.not1(a)

    @property
    def zero_cond(self):
        return self._false

    def interleave_plane(self, even, odd):
        # Scalar writes words individually; the shuffle is pure addressing.
        return even, odd


class Avx512WordOps(WordOps):
    """AVX-512 word operations; also serves MQX (overridden helpers flow
    through the backend instance)."""

    lanes = 8

    def __init__(self, backend: Avx512Backend) -> None:
        self.backend = backend

    def broadcast(self, value: int) -> Any:
        return v_isa.mm512_set1_epi64(value & MASK64)

    def load(self, values: Sequence[int]) -> Any:
        return v_isa.mm512_load_si512(list(values))

    def store(self, reg: Any) -> List[int]:
        v_isa.mm512_store_si512(reg)
        return reg.to_list()

    def values(self, reg: Any) -> List[int]:
        return reg.to_list()

    @property
    def zero(self) -> Any:
        return self.backend.zero

    def add_carry_out(self, a, b):
        return self.backend._add_carry_out(a, b)

    def adc(self, a, b, carry_in):
        return self.backend._adc(a, b, carry_in)

    def add_nocarry(self, a, b, carry_in):
        return self.backend._add_with_carry_nocout(a, b, carry_in)

    def sub_borrow_out(self, a, b):
        return self.backend._sub_borrow_out(a, b)

    def sbb(self, a, b, borrow_in):
        return self.backend._sbb(a, b, borrow_in)

    def sub_noborrow(self, a, b, borrow_in):
        return self.backend._sub_with_borrow_nobout(a, b, borrow_in)

    def wide_mul(self, a, b):
        return self.backend._wide_mul64(a, b)

    def mullo(self, a, b):
        return self.backend._mullo64(a, b)

    def shrd(self, high, low, amount):
        return self.backend._shrd(high, low, amount)

    def shr(self, a, amount):
        return v_isa.mm512_srli_epi64(a, amount)

    def band(self, a, b):
        return v_isa.mm512_and_epi64(a, b)

    def select(self, cond, if_true, if_false):
        return v_isa.mm512_mask_blend_epi64(cond, if_false, if_true)

    def cond_or(self, a, b):
        return v_isa.kor8(a, b)

    def cond_not(self, a):
        return v_isa.knot8(a)

    @property
    def zero_cond(self):
        from repro.isa.types import Mask

        return Mask.zeros(self.lanes)

    def interleave_plane(self, even, odd):
        from repro.isa.types import Vec

        idx_lo = Vec(Avx512Backend._IDX_LO)
        idx_hi = Vec(Avx512Backend._IDX_HI)
        return (
            v_isa.mm512_permutex2var_epi64(even, idx_lo, odd),
            v_isa.mm512_permutex2var_epi64(even, idx_hi, odd),
        )


class Avx2WordOps(WordOps):
    """AVX2 word operations (mask vectors, emulated carries)."""

    lanes = 4

    def __init__(self, backend: Avx2Backend) -> None:
        self.backend = backend

    def broadcast(self, value: int) -> Any:
        return y_isa.mm256_set1_epi64x(value & MASK64)

    def load(self, values: Sequence[int]) -> Any:
        return y_isa.mm256_load_si256(list(values))

    def store(self, reg: Any) -> List[int]:
        y_isa.mm256_store_si256(reg)
        return reg.to_list()

    def values(self, reg: Any) -> List[int]:
        return reg.to_list()

    @property
    def zero(self) -> Any:
        return self.backend.zero

    def add_carry_out(self, a, b):
        return self.backend._add_carry_out(a, b)

    def adc(self, a, b, carry_in):
        return self.backend._adc(a, b, carry_in)

    def add_nocarry(self, a, b, carry_in):
        return y_isa.add_with_mask_carry(y_isa.mm256_add_epi64(a, b), carry_in)

    def sub_borrow_out(self, a, b):
        return self.backend._sub_borrow_out(a, b)

    def sbb(self, a, b, borrow_in):
        return self.backend._sbb(a, b, borrow_in)

    def sub_noborrow(self, a, b, borrow_in):
        return y_isa.mm256_add_epi64(y_isa.mm256_sub_epi64(a, b), borrow_in)

    def wide_mul(self, a, b):
        return y_isa.mul64_wide_emulated(a, b)

    def mullo(self, a, b):
        return self.backend._mullo64(a, b)

    def shrd(self, high, low, amount):
        return self.backend._shrd(high, low, amount)

    def shr(self, a, amount):
        return y_isa.mm256_srli_epi64(a, amount)

    def band(self, a, b):
        return y_isa.mm256_and_si256(a, b)

    def select(self, cond, if_true, if_false):
        return y_isa.mm256_blendv_epi8(if_false, if_true, cond)

    def cond_or(self, a, b):
        return y_isa.mm256_or_si256(a, b)

    def cond_not(self, a):
        return y_isa.mm256_xor_si256(a, self.backend.ones)

    @property
    def zero_cond(self):
        return self.backend.zero

    def interleave_plane(self, even, odd):
        lo_pairs = y_isa.mm256_unpacklo_epi64(even, odd)
        hi_pairs = y_isa.mm256_unpackhi_epi64(even, odd)
        return (
            y_isa.mm256_permute2x128_si256(lo_pairs, hi_pairs, 0x20),
            y_isa.mm256_permute2x128_si256(lo_pairs, hi_pairs, 0x31),
        )


def word_ops_for(backend: Backend) -> WordOps:
    """Build the word-operation adapter for a backend instance."""
    if isinstance(backend, ScalarBackend):
        return ScalarWordOps(backend)
    if isinstance(backend, Avx512Backend):  # includes MqxBackend
        return Avx512WordOps(backend)
    if isinstance(backend, Avx2Backend):
        return Avx2WordOps(backend)
    raise BackendError(f"no word-operation adapter for backend {backend.name!r}")
