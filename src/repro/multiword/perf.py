"""Runtime estimation for multi-word NTTs (mirrors repro.perf.estimator)."""

from __future__ import annotations

import random

from repro.errors import ExperimentError
from repro.isa.trace import Tracer, tracing
from repro.kernels.backend import Backend
from repro.machine.cache import CacheModel
from repro.machine.cpu import CpuSpec
from repro.machine.scheduler import schedule_trace
from repro.machine.uops import get_microarch
from repro.multiword.arith import MwKernel, MwModContext
from repro.perf.estimator import KernelCost, NttEstimate, _trace_bytes

_SEED = 0x3A9E


def _trace_stage_block(backend: Backend, q: int, words: int) -> Tracer:
    """One Pease stage block over W-word residues."""
    rng = random.Random(_SEED)
    ctx = MwModContext(backend, q, words)
    kernel = MwKernel(ctx)
    lanes = ctx.ops.lanes
    top_vals = [rng.randrange(q) for _ in range(lanes)]
    bot_vals = [rng.randrange(q) for _ in range(lanes)]
    tw_vals = [rng.randrange(q) for _ in range(lanes)]
    with tracing("mw-ntt-stage-block") as trace:
        top = kernel.load_block(top_vals)
        bottom = kernel.load_block(bot_vals)
        tw = kernel.load_block(tw_vals)
        plus, minus = kernel.butterfly(top, bottom, tw)
        blk0, blk1 = kernel.interleave(plus, minus)
        kernel.store_block(blk0)
        kernel.store_block(blk1)
    return trace


def estimate_multiword_ntt(
    n: int, q: int, backend: Backend, cpu: CpuSpec, words: int
) -> NttEstimate:
    """Model an ``n``-point NTT over W-word residues on one core."""
    ctx_lanes = MwModContext(backend, q, words).ops.lanes
    if n < 2 * ctx_lanes:
        raise ExperimentError(f"n={n} cannot fill {ctx_lanes}-lane blocks")
    stages = n.bit_length() - 1
    blocks_per_stage = n // (2 * ctx_lanes)

    trace = _trace_stage_block(backend, q, words)
    microarch = get_microarch(cpu.microarch)
    schedule = schedule_trace(trace, microarch)
    cost = KernelCost(schedule, _trace_bytes(trace))
    cache = CacheModel(cpu)

    bytes_per_residue = 8 * words
    working_set = 2 * n * bytes_per_residue + (n // 2) * bytes_per_residue
    per_block = cost.cycles_per_block(
        cache, working_set, independent_blocks=max(1, blocks_per_stage)
    )
    compute = schedule.throughput_cycles(max(1, blocks_per_stage))
    memory = cache.memory_cycles(cost.traffic, working_set)

    cycles = per_block * blocks_per_stage * stages
    ns = cycles / cpu.measured_ghz
    butterflies = (n // 2) * stages
    return NttEstimate(
        backend=f"{backend.name}/{64 * words}b",
        cpu=cpu.key,
        n=n,
        q=q,
        algorithm="schoolbook",
        cycles=cycles,
        ns=ns,
        ns_per_butterfly=ns / butterflies,
        compute_bound=compute >= memory,
        memory_level=cache.level_name(working_set),
        block_schedule=schedule,
    )
