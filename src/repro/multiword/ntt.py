"""NTTs over multi-word residues (256-bit and beyond).

The same Pease constant-geometry dataflow as :class:`repro.ntt.simd.SimdNtt`,
with each block carrying W word-plane registers instead of two. A 256-bit
NTT over a ZKP-scale field is ``MultiWordNtt(n, q, backend, words=4)``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NttParameterError
from repro.kernels.backend import Backend
from repro.multiword.arith import MwKernel, MwModContext
from repro.ntt.twiddles import TwiddleTable, bit_reverse_permutation
from repro.util.checks import check_reduced


class MultiWordNtt:
    """An ``n``-point NTT over ``Z_q`` with W-word residues."""

    def __init__(
        self,
        n: int,
        q: int,
        backend: Backend,
        words: int,
        root: Optional[int] = None,
    ) -> None:
        self.table = TwiddleTable.get(n, q, root or 0)
        self.ctx = MwModContext(backend, q, words)
        self.kernel = MwKernel(self.ctx)
        if n < 2 * self.ctx.ops.lanes:
            raise NttParameterError(
                f"a {n}-point NTT cannot fill {self.ctx.ops.lanes}-lane blocks"
            )

    @property
    def n(self) -> int:
        """Transform size."""
        return self.table.n

    @property
    def q(self) -> int:
        """Modulus."""
        return self.table.q

    @property
    def words(self) -> int:
        """Words per residue."""
        return self.ctx.words

    def forward(self, values: List[int], natural_order: bool = True) -> List[int]:
        """Forward NTT over W-word residues."""
        x = self._run_stages(values, inverse=False)
        return bit_reverse_permutation(x) if natural_order else x

    def inverse(self, values: List[int], natural_order: bool = True) -> List[int]:
        """Inverse NTT including the 1/n scaling."""
        x = list(values) if natural_order else bit_reverse_permutation(values)
        x = self._run_stages(x, inverse=True)
        x = bit_reverse_permutation(x)
        kernel = self.kernel
        n_inv = kernel.broadcast_residue(self.table.n_inverse)
        lanes = self.ctx.ops.lanes
        out: List[int] = []
        for base in range(0, len(x), lanes):
            block = kernel.load_block(x[base : base + lanes])
            out.extend(kernel.store_block(kernel.mulmod(block, n_inv)))
        return out

    def _run_stages(self, values: List[int], inverse: bool) -> List[int]:
        n = self.n
        if len(values) != n:
            raise NttParameterError(f"expected {n} values, got {len(values)}")
        for i, value in enumerate(values):
            check_reduced(value, self.q, f"values[{i}]")

        kernel = self.kernel
        lanes = self.ctx.ops.lanes
        half = n // 2
        x = list(values)
        for stage in range(self.table.stages):
            twiddles = self.table.pease_stage_twiddles(stage, inverse)
            out = [0] * n
            for base in range(0, half, lanes):
                top = kernel.load_block(x[base : base + lanes])
                bottom = kernel.load_block(x[base + half : base + half + lanes])
                tw = kernel.load_block(twiddles[base : base + lanes])
                plus, minus = kernel.butterfly(top, bottom, tw)
                blk0, blk1 = kernel.interleave(plus, minus)
                out[2 * base : 2 * base + lanes] = kernel.store_block(blk0)
                out[2 * base + lanes : 2 * base + 2 * lanes] = kernel.store_block(
                    blk1
                )
            x = out
        return x
