"""repro.par: sharded multi-process execution of batched kernels.

The third execution engine (after ``"faithful"`` and ``"fast"``): batched
``(batch, n)`` workloads — RNS residue channels, NTT batches, the four
BLAS operations — are cut into contiguous shards and executed by a
persistent pool of worker processes. Limb arrays travel through POSIX
shared memory, per-worker plan/twiddle caches stay warm across calls,
and a crashed or hung worker is retried once before the affected shard
degrades gracefully to in-process execution.

Select it with ``engine="parallel"`` on :class:`~repro.rns.poly.RnsPolynomialRing`,
:class:`~repro.blas.ops.BlasPlan`, :class:`~repro.ntt.simd.SimdNtt` or
:class:`~repro.ntt.negacyclic.NegacyclicNtt`, optionally scoping the
pool with ``with ParallelExecutor(workers=...) :``. See
docs/PERFORMANCE.md ("Parallel execution").
"""

from repro.par.api import (
    ParBlasPlan,
    ParChain,
    ParNegacyclic,
    ParNtt,
    parallel_rns_mul,
    shard_bounds,
)
from repro.par.executor import (
    ParallelExecutor,
    default_executor,
    shutdown_default_executor,
)

__all__ = [
    "ParBlasPlan",
    "ParChain",
    "ParNegacyclic",
    "ParNtt",
    "ParallelExecutor",
    "default_executor",
    "parallel_rns_mul",
    "shard_bounds",
    "shutdown_default_executor",
]
