"""Worker-side execution of sharded fast-engine tasks.

A worker is a long-lived process pulling task *specs* — small picklable
dicts naming an operation, its modular parameters, shared-memory segment
names, and the shard (row or element range) to compute — off a queue.
All heavy data stays in shared memory; the worker maps it, runs the
NumPy fast engine on its slice, and writes the result rows in place.

Per-worker caches keep :class:`~repro.fast.ntt.FastNtt` /
:class:`~repro.fast.ntt.FastNegacyclic` / :class:`~repro.fast.blas.FastBlasPlan`
plans (and, through :meth:`repro.ntt.twiddles.TwiddleTable.get`, their
twiddle tables) warm across calls, so a pool that serves a stream of
batches pays root-finding and table construction once per worker, not
once per shard.

Resilience hooks (see :mod:`repro.resil`):

* when the spec names a checksum segment, the worker stores a CRC-32
  of the payload it just wrote (:mod:`repro.resil.integrity`), which
  the executor re-verifies on collection;
* a ``fault`` entry in the spec (:class:`repro.resil.inject.Fault`
  serialized) makes the worker crash, hang, corrupt its payload after
  checksumming, or complete slowly — *only* inside a real worker
  process, so the in-process fallback always produces clean results;
* every queue message echoes the task's *generation* counter, letting
  the executor discard results from superseded executions.

:func:`execute_spec` is deliberately runnable in-process too
(``in_worker=False``): it is the graceful-degradation path the executor
falls back to when a shard's worker crashed or hung past its retry
budget, and the path batches take when the circuit breaker is open.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ParallelExecutionError
from repro.fast import chain as fast_chain
from repro.fast.blas import FastBlasPlan
from repro.fast.ntt import FastNegacyclic, FastNtt
from repro.ntt.twiddles import TwiddleTable
from repro.obs import dist
from repro.obs import session as obs_session
from repro.obs.spans import span
from repro.par import shm
from repro.resil import integrity as resil_integrity

#: Exit code of a crash-injected worker (distinguishable in waitpid).
CRASH_EXIT_CODE = 86

#: XOR mask a ``corrupt`` fault applies to the first payload word.
CORRUPT_MASK = 0xDEADBEEF

#: Worker-side attachment cache capacity (segments stay mapped between
#: tasks). Arena-leased segments keep their names across batches, so in
#: steady state a handful of entries serves every task with zero
#: attach/detach syscalls per shard.
SEG_CACHE_CAPACITY = 32

_NTT_PLANS: Dict[Tuple[int, int, int], FastNtt] = {}
_NEG_PLANS: Dict[Tuple[int, int, int, int], FastNegacyclic] = {}
_BLAS_PLANS: Dict[int, FastBlasPlan] = {}

#: name -> attached SharedMemory, LRU-bounded (worker processes only).
_SEG_CACHE: "OrderedDict[str, object]" = OrderedDict()


def _attach_cached(name: str):
    """Attach a segment through the worker's LRU attachment cache.

    Segment names are never reused (see :func:`repro.par.shm._fresh_name`),
    so a cached mapping can never alias different backing pages. Evicted
    entries are unmapped; on Linux a mapping stays valid even if the
    creator has already unlinked the name, so caching is safe against
    the per-batch release path too.
    """
    seg = _SEG_CACHE.get(name)
    session = obs_session.current()
    if seg is not None:
        _SEG_CACHE.move_to_end(name)
        if session is not None:
            session.metrics.counter("seg_cache.hits").inc()
        return seg
    seg = shm.attach_segment(name)
    _SEG_CACHE[name] = seg
    if session is not None:
        session.metrics.counter("seg_cache.misses").inc()
    while len(_SEG_CACHE) > SEG_CACHE_CAPACITY:
        _, evicted = _SEG_CACHE.popitem(last=False)
        shm.detach_segment(evicted)
    return seg


def seg_cache_size() -> int:
    """Entries in the worker attachment cache (introspection for tests)."""
    return len(_SEG_CACHE)


def ntt_plan(n: int, q: int, root: int) -> FastNtt:
    """The per-process cached fast NTT plan for ``(n, q, root)``."""
    key = (n, q, root)
    plan = _NTT_PLANS.get(key)
    if plan is None:
        plan = FastNtt(n, q, table=TwiddleTable.get(n, q, root))
        _NTT_PLANS[key] = plan
    return plan


def negacyclic_plan(n: int, q: int, psi: int, root: int) -> FastNegacyclic:
    """The per-process cached negacyclic plan for ``(n, q, psi, root)``."""
    key = (n, q, psi, root)
    plan = _NEG_PLANS.get(key)
    if plan is None:
        plan = FastNegacyclic(n, q, psi=psi, plan=ntt_plan(n, q, root))
        _NEG_PLANS[key] = plan
    return plan


def blas_plan(q: int) -> FastBlasPlan:
    """The per-process cached fast BLAS plan for modulus ``q``."""
    plan = _BLAS_PLANS.get(q)
    if plan is None:
        plan = FastBlasPlan(q)
        _BLAS_PLANS[q] = plan
    return plan


def plan_cache_sizes() -> Dict[str, int]:
    """Sizes of the per-process plan caches (introspection for tests)."""
    return {
        "ntt": len(_NTT_PLANS),
        "negacyclic": len(_NEG_PLANS),
        "blas": len(_BLAS_PLANS),
    }


def _slice(view: np.ndarray, bounds) -> np.ndarray:
    start, stop = bounds
    # Copy out of the shared buffer: the fast engine allocates fresh
    # outputs anyway, and a copy lets the segment unmap immediately.
    return np.array(view[start:stop], copy=True)


def execute_spec(spec: dict, in_worker: bool = False) -> None:
    """Compute one shard described by ``spec``, writing into its segment.

    Idempotent by construction (each shard owns a disjoint output
    range), so a shard that is retried — or executed both by a dying
    worker and by the fallback — converges to the same bytes.
    """
    fault: Optional[dict] = spec.get("fault") if in_worker else None
    if fault is not None:
        kind = fault["kind"]
        if kind == "crash":
            os._exit(CRASH_EXIT_CODE)  # fault injection: die mid-task
        elif kind in ("hang", "slow"):
            # "hang" sleeps past task_timeout (the executor terminates
            # us); "slow" completes late, racing the re-enqueue logic.
            time.sleep(fault.get("seconds", 0.0))

    op = spec["op"]
    segments = []
    try:
        def attach(name: str):
            # Worker processes keep attachments mapped across tasks
            # (names are never reused); the in-process fallback path
            # attaches and detaches per call as before.
            if in_worker:
                return _attach_cached(name)
            seg = shm.attach_segment(name)
            segments.append(seg)
            return seg

        def view_of(key: str) -> np.ndarray:
            return shm.segment_view(attach(spec[key]), spec["shape"])

        if op == "ntt":
            with span("par.worker.plan", op=op):
                plan = ntt_plan(spec["n"], spec["q"], spec["root"])
            with span("par.worker.map_shm", role="in"):
                data = _slice(view_of("x"), spec["rows"])
            with span("par.worker.compute", op=op):
                if spec["direction"] == "forward":
                    result = plan.forward(
                        data, natural_order=spec["natural_order"]
                    )
                else:
                    result = plan.inverse(
                        data, natural_order=spec["natural_order"]
                    )
        elif op == "negacyclic_mul":
            with span("par.worker.plan", op=op):
                neg = negacyclic_plan(
                    spec["n"], spec["q"], spec["psi"], spec["root"]
                )
            with span("par.worker.map_shm", role="in"):
                regs = {
                    "x": _slice(view_of("x"), spec["rows"]),
                    "y": _slice(view_of("y"), spec["rows"]),
                }
            with span("par.worker.compute", op=op):
                # The fused-chain runner keeps every intermediate on the
                # r52 substrate (one repack per operand instead of one
                # per NTT/twist/pointwise step); bit-exact either way.
                result = fast_chain.run_chain(
                    fast_chain.NEGACYCLIC_MUL_STEPS, regs, neg.plan, neg=neg
                )
        elif op == "cyclic_mul":
            with span("par.worker.plan", op=op):
                plan = ntt_plan(spec["n"], spec["q"], spec["root"])
            with span("par.worker.map_shm", role="in"):
                regs = {
                    "x": _slice(view_of("x"), spec["rows"]),
                    "y": _slice(view_of("y"), spec["rows"]),
                }
            with span("par.worker.compute", op=op):
                result = fast_chain.run_chain(
                    fast_chain.CYCLIC_MUL_STEPS, regs, plan
                )
        elif op == "chain":
            with span("par.worker.plan", op=op):
                steps = spec["steps"]
                if spec.get("psi") is not None:
                    neg = negacyclic_plan(
                        spec["n"], spec["q"], spec["psi"], spec["root"]
                    )
                    plan = neg.plan
                else:
                    neg = None
                    plan = ntt_plan(spec["n"], spec["q"], spec["root"])
                bl = blas_plan(spec["q"])
            with span("par.worker.map_shm", role="in"):
                regs = {
                    name: _slice(view_of(name), spec["rows"])
                    for name in spec["inputs"]
                }
            with span("par.worker.compute", op=op, steps=len(steps)):
                result = fast_chain.run_chain(
                    steps, regs, plan, neg=neg, blas=bl
                )
        elif op == "blas":
            with span("par.worker.plan", op=op):
                plan = blas_plan(spec["q"])
            with span("par.worker.map_shm", role="in"):
                x = _slice(view_of("x"), spec["elems"])
                y = _slice(view_of("y"), spec["elems"])
            with span("par.worker.compute", op=op):
                blas_op = spec["blas_op"]
                if blas_op == "axpy":
                    result = plan.axpy(spec["a"], x, y)
                else:
                    result = getattr(plan, blas_op)(x, y)
        else:
            raise ParallelExecutionError(f"unknown parallel op {op!r}")

        with span("par.worker.map_shm", role="out"):
            out_view = shm.segment_view(attach(spec["out"]), spec["shape"])
            bounds = spec["rows"] if "rows" in spec else spec["elems"]
            out_view[bounds[0] : bounds[1]] = result
        if spec.get(resil_integrity.SUMS_KEY) is not None:
            with span("par.worker.checksum"):
                sums_seg = attach(spec[resil_integrity.SUMS_KEY])
                sums_view = shm.segment_view(sums_seg, (spec["sums_len"],))
                resil_integrity.write_checksum(spec, out_view, sums_view)
                del sums_view
        if fault is not None and fault["kind"] == "corrupt":
            # Flip payload bits *after* the checksum write: models
            # in-flight corruption that only verification can catch.
            flat = out_view[bounds[0] : bounds[1]].reshape(-1)
            flat[0] ^= np.uint64(CORRUPT_MASK)
        del out_view
    finally:
        for seg in segments:
            shm.detach_segment(seg)


def worker_main(
    slot: int, current, task_queue, result_queue, pin_cpu: Optional[int] = None
) -> None:
    """Worker process entry: serve task specs until the ``None`` sentinel.

    Before computing, the worker advertises the task id in
    ``current[slot]`` — a shared array owned by the executor. Unlike a
    queue message (buffered through a feeder thread that dies with the
    process), this direct write survives a crash, so the executor can
    always attribute in-flight work to a dead worker. Completion is
    reported on ``result_queue`` as ``("done", task_id, gen, slot,
    wall_s)`` or, when the spec itself raised (bad operands, unknown
    op), ``("error", task_id, gen, slot, message)`` — ``gen`` echoes
    the generation counter from the task message so the executor can
    discard results of superseded executions.

    Telemetry (:mod:`repro.obs.dist`): a spec carrying a trace-context
    header under :data:`repro.obs.dist.CTX_KEY` is executed inside a
    worker-local :class:`~repro.obs.dist.ShardObservation`, and the
    resulting blob is appended as a sixth message element. Specs without
    a header — every spec dispatched while no parent session is active —
    take the original five-element path with zero extra work.
    """
    # Forked workers inherit the parent's process-global session object;
    # capturing into it here would be writes nobody reads. Drop it so
    # instrumentation inside the worker is a no-op unless a shard
    # explicitly scopes a local session via ShardObservation.
    obs_session.disable()
    if pin_cpu is not None and hasattr(os, "sched_setaffinity"):
        try:
            os.sched_setaffinity(0, {pin_cpu})
        except (OSError, ValueError):
            pass  # pinning is best-effort; an invalid CPU just skips it
    while True:
        try:
            item = task_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if item is None:
            return
        task_id, gen, spec = item
        current[slot] = task_id
        ctx = spec.get(dist.CTX_KEY)
        started = time.perf_counter()
        observation = None
        try:
            if ctx is not None:
                with dist.ShardObservation(ctx) as observation:
                    execute_spec(spec, in_worker=True)
            else:
                execute_spec(spec, in_worker=True)
        except KeyboardInterrupt:
            return
        except BaseException as exc:  # report, never kill the worker
            message = ("error", task_id, gen, slot, f"{type(exc).__name__}: {exc}")
            if observation is not None and observation.blob is not None:
                message += (observation.blob,)
            result_queue.put(message)
        else:
            message = ("done", task_id, gen, slot, time.perf_counter() - started)
            if observation is not None and observation.blob is not None:
                observation.blob["cache"] = plan_cache_sizes()
                message += (observation.blob,)
            result_queue.put(message)
        current[slot] = -1


def reset_plan_caches() -> None:
    """Drop the per-process plan and attachment caches (tests)."""
    _NTT_PLANS.clear()
    _NEG_PLANS.clear()
    _BLAS_PLANS.clear()
    for seg in _SEG_CACHE.values():
        shm.detach_segment(seg)
    _SEG_CACHE.clear()
