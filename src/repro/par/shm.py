"""Shared-memory limb-array transfer for the process-pool engine.

Workers and the coordinating process exchange ``(batch, n, 2)`` uint64
limb arrays through POSIX shared memory (:mod:`multiprocessing.shared_memory`)
instead of pickling them through pipes: a task message carries only a
segment *name* plus shape/row metadata, and both sides map the same
pages. For the batched NTT workloads this is the difference between
copying megabytes per shard and copying nothing.

Segment lifecycle: the coordinating process creates segments with a
recognizable ``repro-par-<pid>-...`` name, hands names to workers, and
unlinks each segment as soon as its batch completes. Every created
segment is also tracked in a module-level registry drained by an
``atexit`` hook, so an interpreter that exits mid-batch (or a user who
never calls :meth:`~repro.par.executor.ParallelExecutor.close`) still
leaves ``/dev/shm`` clean.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
from multiprocessing import shared_memory
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ParallelExecutionError
from repro.fast.limbs import LIMB_DTYPE

#: Name prefix of every segment this layer creates (cleanup tests and
#: operators grep ``/dev/shm`` for it).
SEGMENT_PREFIX = "repro-par"

_COUNTER = itertools.count()

#: Segments created (not merely attached) by this process, by name.
_CREATED: Dict[str, shared_memory.SharedMemory] = {}


def _fresh_name() -> str:
    # pid + counter disambiguate within a run; the random suffix guards
    # against collisions with leftovers from a crashed previous run.
    return (
        f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_COUNTER)}-"
        f"{secrets.token_hex(4)}"
    )


def create_segment(shape: Sequence[int]) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Create a shared segment holding a uint64 array of ``shape``.

    Returns the segment and a writable ndarray view over its buffer.
    """
    nbytes = int(np.prod(shape, dtype=np.int64)) * LIMB_DTYPE().itemsize
    seg = shared_memory.SharedMemory(create=True, size=max(nbytes, 1), name=_fresh_name())
    _CREATED[seg.name] = seg
    view = np.ndarray(tuple(shape), dtype=LIMB_DTYPE, buffer=seg.buf)
    return seg, view


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment by name (worker side).

    Attachments are deliberately *not* registered with the attaching
    process's ``resource_tracker``: the creator owns unlinking, and a
    tracked attachment would double-unlink (with a warning) when the
    worker exits.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        # Suppress registration for the duration of the attach; an
        # unregister-after-the-fact would unbalance the tracker (the
        # creator's eventual unlink also unregisters) and make the
        # tracker process print KeyError noise at shutdown.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def segment_view(seg: shared_memory.SharedMemory, shape: Sequence[int]) -> np.ndarray:
    """A uint64 ndarray view of ``shape`` over a segment's buffer."""
    return np.ndarray(tuple(shape), dtype=LIMB_DTYPE, buffer=seg.buf)


def detach_segment(seg: shared_memory.SharedMemory) -> None:
    """Unmap a segment without destroying it (worker side, after a task)."""
    try:
        seg.close()
    except BufferError:  # a view still references the buffer; leave mapped
        pass


def release_segment(seg: shared_memory.SharedMemory) -> None:
    """Unmap *and* destroy a segment this process created."""
    if seg.name not in _CREATED:
        raise ParallelExecutionError(
            f"segment {seg.name!r} was not created by this process"
        )
    _CREATED.pop(seg.name, None)
    try:
        seg.close()
    except BufferError:
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass


def is_created(name: str) -> bool:
    """Whether ``name`` is a still-live segment created by this process."""
    return name in _CREATED


def release_by_name(name: str) -> bool:
    """Defensively destroy a created segment by name, if still live.

    The executor calls this from ``close()`` for every segment that was
    named in a batch's task specs: normally the batch's ``finally``
    block released them all, but a run aborted by a hard error (or a
    caller driving :meth:`~repro.par.executor.ParallelExecutor.run`
    directly without that cleanup) must not leave ``/dev/shm`` dirty
    until ``atexit``. Returns whether a segment was actually reclaimed.
    """
    seg = _CREATED.get(name)
    if seg is None:
        return False
    release_segment(seg)
    return True


def created_segments() -> int:
    """How many created segments are still live (leak check for tests)."""
    return len(_CREATED)


def cleanup_all() -> None:
    """Destroy every still-live segment created by this process."""
    for name in list(_CREATED):
        release_segment(_CREATED[name])


atexit.register(cleanup_all)
