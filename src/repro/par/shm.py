"""Shared-memory limb-array transfer for the process-pool engine.

Workers and the coordinating process exchange ``(batch, n, 2)`` uint64
limb arrays through POSIX shared memory (:mod:`multiprocessing.shared_memory`)
instead of pickling them through pipes: a task message carries only a
segment *name* plus shape/row metadata, and both sides map the same
pages. For the batched NTT workloads this is the difference between
copying megabytes per shard and copying nothing.

Segment lifecycle: the coordinating process creates segments with a
recognizable ``repro-par-<pid>-...`` name, hands names to workers, and
unlinks each segment as soon as its batch completes. Every created
segment is also tracked in a module-level registry drained by an
``atexit`` hook, so an interpreter that exits mid-batch (or a user who
never calls :meth:`~repro.par.executor.ParallelExecutor.close`) still
leaves ``/dev/shm`` clean.

Batch staging goes through an :class:`ArenaPool` instead of raw
``create_segment``/``release_segment`` pairs: the pool leases
size-classed segments for the life of an executor and recycles them
across batches, so steady-state traffic performs **zero** shm
create/unlink syscalls. Arena-held segments are still registered in the
module registry (the ``atexit`` hook reclaims them) but are excluded
from :func:`created_segments` — they are pooled capacity, not leaks.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
from multiprocessing import shared_memory
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ParallelExecutionError
from repro.fast.limbs import LIMB_DTYPE
from repro.obs.hooks import record_arena_drained, record_arena_high_water, record_arena_lease

#: Name prefix of every segment this layer creates (cleanup tests and
#: operators grep ``/dev/shm`` for it).
SEGMENT_PREFIX = "repro-par"

#: Smallest arena size class; sub-page leases all share one class.
ARENA_MIN_BYTES = 4096

_COUNTER = itertools.count()

#: Segments created (not merely attached) by this process, by name.
_CREATED: Dict[str, shared_memory.SharedMemory] = {}

#: Names in ``_CREATED`` that are held by an :class:`ArenaPool` (pooled
#: capacity rather than per-batch allocations; excluded from the
#: ``created_segments`` leak count).
_ARENA_OWNED: Set[str] = set()


def _fresh_name() -> str:
    # pid + counter disambiguate within a run; the random suffix guards
    # against collisions with leftovers from a crashed previous run.
    return (
        f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_COUNTER)}-"
        f"{secrets.token_hex(4)}"
    )


def create_segment(shape: Sequence[int]) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Create a shared segment holding a uint64 array of ``shape``.

    Returns the segment and a writable ndarray view over its buffer.
    """
    nbytes = int(np.prod(shape, dtype=np.int64)) * LIMB_DTYPE().itemsize
    seg = shared_memory.SharedMemory(create=True, size=max(nbytes, 1), name=_fresh_name())
    _CREATED[seg.name] = seg
    view = np.ndarray(tuple(shape), dtype=LIMB_DTYPE, buffer=seg.buf)
    return seg, view


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment by name (worker side).

    Attachments are deliberately *not* registered with the attaching
    process's ``resource_tracker``: the creator owns unlinking, and a
    tracked attachment would double-unlink (with a warning) when the
    worker exits.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        # Suppress registration for the duration of the attach; an
        # unregister-after-the-fact would unbalance the tracker (the
        # creator's eventual unlink also unregisters) and make the
        # tracker process print KeyError noise at shutdown.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def segment_view(seg: shared_memory.SharedMemory, shape: Sequence[int]) -> np.ndarray:
    """A uint64 ndarray view of ``shape`` over a segment's buffer."""
    return np.ndarray(tuple(shape), dtype=LIMB_DTYPE, buffer=seg.buf)


def detach_segment(seg: shared_memory.SharedMemory) -> None:
    """Unmap a segment without destroying it (worker side, after a task)."""
    try:
        seg.close()
    except BufferError:  # a view still references the buffer; leave mapped
        pass


def release_segment(seg: shared_memory.SharedMemory) -> None:
    """Unmap *and* destroy a segment this process created."""
    if seg.name not in _CREATED:
        raise ParallelExecutionError(
            f"segment {seg.name!r} was not created by this process"
        )
    _CREATED.pop(seg.name, None)
    _ARENA_OWNED.discard(seg.name)
    try:
        seg.close()
    except BufferError:
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass


def is_created(name: str) -> bool:
    """Whether ``name`` is a still-live segment created by this process."""
    return name in _CREATED


def release_by_name(name: str) -> bool:
    """Defensively destroy a created segment by name, if still live.

    The executor calls this from ``close()`` for every segment that was
    named in a batch's task specs: normally the batch's ``finally``
    block released them all, but a run aborted by a hard error (or a
    caller driving :meth:`~repro.par.executor.ParallelExecutor.run`
    directly without that cleanup) must not leave ``/dev/shm`` dirty
    until ``atexit``. Returns whether a segment was actually reclaimed.
    """
    seg = _CREATED.get(name)
    if seg is None:
        return False
    release_segment(seg)
    return True


def created_segments() -> int:
    """How many created segments are still live (leak check for tests).

    Arena-held segments are pooled capacity with executor lifetime, not
    per-batch allocations, so they are excluded; see
    :func:`arena_segments` for that count.
    """
    return sum(1 for name in _CREATED if name not in _ARENA_OWNED)


def arena_segments() -> int:
    """How many still-live segments are held by arena pools."""
    return len(_ARENA_OWNED)


def cleanup_all() -> None:
    """Destroy every still-live segment created by this process."""
    for name in list(_CREATED):
        release_segment(_CREATED[name])


def _size_class(nbytes: int) -> int:
    """Round a request up to its power-of-two arena size class."""
    size = ARENA_MIN_BYTES
    while size < nbytes:
        size *= 2
    return size


class ArenaPool:
    """Pool-lifetime shared-memory arena with size-classed free lists.

    ``lease(shape)`` hands out a segment at least large enough for a
    uint64 array of ``shape`` — recycled from the free list when a
    previous batch returned one of the same size class, freshly created
    otherwise. ``release(seg)`` returns the segment to the free list
    *without* unlinking it, so steady-state batches stop paying the shm
    create/unlink syscall pair entirely. ``drain()`` destroys
    everything; :meth:`~repro.par.executor.ParallelExecutor.close` calls
    it before its defensive per-name reclaim.

    Names never repeat (:func:`_fresh_name` mixes a counter and random
    token), so a worker-side attachment cache can key on segment name
    without aliasing recycled capacity to stale mappings.
    """

    def __init__(self) -> None:
        self._free: Dict[int, List[shared_memory.SharedMemory]] = {}
        self._leased: Dict[str, int] = {}
        self._held_bytes = 0
        self.stats = {
            "leases": 0,
            "reuses": 0,
            "creates": 0,
            "high_water_bytes": 0,
            "high_water_segments": 0,
        }

    def _segment_count(self) -> int:
        return len(self._leased) + sum(len(v) for v in self._free.values())

    def lease(self, shape: Sequence[int]) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
        """Lease a segment sized for a uint64 array of ``shape``.

        Returns the segment and a writable ndarray view of exactly
        ``shape`` over the head of its (possibly larger) buffer.
        """
        nbytes = int(np.prod(shape, dtype=np.int64)) * LIMB_DTYPE().itemsize
        size = _size_class(max(nbytes, 1))
        self.stats["leases"] += 1
        free = self._free.get(size)
        if free:
            seg = free.pop()
            self.stats["reuses"] += 1
            reused = True
        else:
            seg = shared_memory.SharedMemory(
                create=True, size=size, name=_fresh_name()
            )
            _CREATED[seg.name] = seg
            _ARENA_OWNED.add(seg.name)
            self.stats["creates"] += 1
            self._held_bytes += size
            reused = False
        self._leased[seg.name] = size
        record_arena_lease(reused, size)
        if self._held_bytes > self.stats["high_water_bytes"]:
            self.stats["high_water_bytes"] = self._held_bytes
            self.stats["high_water_segments"] = self._segment_count()
            record_arena_high_water(self._held_bytes, self._segment_count())
        view = np.ndarray(tuple(shape), dtype=LIMB_DTYPE, buffer=seg.buf)
        return seg, view

    def release(self, seg: shared_memory.SharedMemory) -> None:
        """Return a leased segment to the free list (no unlink)."""
        size = self._leased.pop(seg.name, None)
        if size is None:
            # Not ours any more (drained mid-batch, or a foreign
            # segment): destroy if this process still owns it, else
            # just unmap.
            if seg.name in _CREATED:
                release_segment(seg)
            else:
                detach_segment(seg)
            return
        self._free.setdefault(size, []).append(seg)

    def drain(self) -> int:
        """Destroy every held segment (leased and free); returns count."""
        count = 0
        for free in self._free.values():
            for seg in free:
                release_segment(seg)
                count += 1
        self._free.clear()
        for name in list(self._leased):
            if release_by_name(name):
                count += 1
        self._leased.clear()
        self._held_bytes = 0
        if count:
            record_arena_drained(count)
        return count


atexit.register(cleanup_all)
