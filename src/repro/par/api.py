"""User-facing parallel plans: the fast-engine API, sharded over workers.

:class:`ParNtt`, :class:`ParNegacyclic` and :class:`ParBlasPlan` mirror
their :mod:`repro.fast` twins — same coercion, same validation, same
bit-exact results — but execute through a
:class:`~repro.par.executor.ParallelExecutor`: the batched input is
staged into shared memory, split into contiguous shards (whole rows for
transforms, element ranges for BLAS), and each shard is computed by a
pool worker whose plan and twiddle caches stay warm across calls.

Two axes of parallelism are exposed:

* **batch sharding** — a ``(batch, n)`` stack of transforms or a long
  BLAS vector is cut into ``workers`` contiguous pieces;
* **residue-channel fan-out** — :func:`parallel_rns_mul` dispatches the
  per-prime convolutions of one RNS ring multiplication as independent
  shards of a single batch (this is the paper's observation that RNS
  limbs are embarrassingly parallel, applied at the process level).

Plans accept an explicit executor; otherwise they dispatch to the
process default (see :func:`~repro.par.executor.default_executor`),
which a ``with ParallelExecutor(...)`` block temporarily replaces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NttParameterError
from repro.fast import chain as fast_chain
from repro.fast.blas import FastBlasPlan, IntMatrix
from repro.fast.limbs import LIMB_DTYPE, limbs_from_ints, limbs_to_ints
from repro.fast.ntt import FastNegacyclic, FastNtt
from repro.ntt.twiddles import TwiddleTable
from repro.obs.hooks import record_engine_call, record_fused_chain
from repro.obs.spans import span
from repro.par.executor import ParallelExecutor, default_executor
from repro.util.checks import check_reduced


def shard_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into balanced contiguous ``[start, stop)``.

    At most ``min(shards, total)`` non-empty pieces, sizes differing by
    at most one — the unit of work handed to each pool worker. An empty
    range has no shards: ``total=0`` returns ``[]`` (callers
    early-return before staging anything).
    """
    if total <= 0:
        return []
    shards = max(1, min(int(shards), int(total)))
    base, extra = divmod(int(total), shards)
    bounds = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _run_sharded(
    executor: Optional[ParallelExecutor],
    meta: dict,
    axis_key: str,
    total: int,
    inputs: Dict[str, np.ndarray],
    shape: Sequence[int],
) -> np.ndarray:
    """Stage ``inputs`` into shared memory, shard, run, collect the output.

    All input arrays and the output share ``shape``; ``axis_key`` is
    ``"rows"`` (transforms shard whole batch rows) or ``"elems"`` (BLAS
    shards the flattened element axis). Segments are always released
    before returning, even when execution raises.

    The ``par.batch`` span brackets staging + run + collection, so a
    profile separates shared-memory copy overhead from pool time.

    Staging goes through the executor's :class:`~repro.par.shm.ArenaPool`:
    segments are leased for the batch and returned to the pool's free
    lists afterwards, so steady-state batches reuse the same segments
    (and the workers' attachment caches) with zero shm syscalls.
    """
    executor = executor or default_executor()
    if total <= 0:
        # Empty batch: the identity-shaped result, with no segment
        # staging and no pool round trip for zero work.
        return np.zeros(tuple(shape), dtype=LIMB_DTYPE)
    with span("par.batch", op=meta.get("op"), axis=axis_key, total=int(total)):
        segments = []
        try:
            names = {}
            for key, arr in inputs.items():
                seg, view = executor.arena.lease(shape)
                view[...] = arr
                del view
                segments.append(seg)
                names[key] = seg.name
            out_seg, out_view = executor.arena.lease(shape)
            segments.append(out_seg)
            bounds = shard_bounds(total, executor.suggest_shards(meta, total))
            sums_name, sums_seg = None, None
            if executor.integrity:
                # One CRC-32 slot per shard, written by the worker right
                # after its payload and re-verified by the executor on
                # collection (see repro.resil.integrity).
                sums_seg, sums_view = executor.arena.lease((len(bounds),))
                del sums_view
                segments.append(sums_seg)
                sums_name = sums_seg.name
            specs = []
            for index, (start, stop) in enumerate(bounds):
                spec = dict(meta)
                spec.update(names)
                spec["shape"] = list(shape)
                spec[axis_key] = [start, stop]
                spec["out"] = out_seg.name
                if sums_name is not None:
                    spec["shard_index"] = index
                    spec["sums"] = sums_name
                    spec["sums_len"] = len(bounds)
                specs.append(spec)
            if meta.get("op") == "chain":
                record_fused_chain(len(meta["steps"]), len(bounds))
            executor.run(specs)
            executor.audit(specs)
            result = np.array(out_view, copy=True)
            del out_view
            return result
        finally:
            for seg in segments:
                executor.arena.release(seg)


class ParNtt:
    """A batched NTT whose rows are computed across the worker pool.

    Same contract as :class:`repro.fast.ntt.FastNtt` (bit-exact with the
    faithful engine); a ``(batch, n)`` input is sharded into contiguous
    row ranges, one per worker. Flat ``(n,)`` inputs degenerate to a
    single shard — correct, but all the parallelism lives in the batch.
    """

    def __init__(
        self,
        n: int,
        q: int,
        root: Optional[int] = None,
        table: Optional[TwiddleTable] = None,
        executor: Optional[ParallelExecutor] = None,
    ) -> None:
        self.plan = FastNtt(n, q, root=root, table=table)
        self.executor = executor

    @classmethod
    def from_plan(
        cls, plan: FastNtt, executor: Optional[ParallelExecutor] = None
    ) -> "ParNtt":
        """Wrap an existing fast plan (shares its twiddle table)."""
        self = cls.__new__(cls)
        self.plan = plan
        self.executor = executor
        return self

    @property
    def n(self) -> int:
        """Transform size."""
        return self.plan.n

    @property
    def q(self) -> int:
        """Modulus."""
        return self.plan.q

    def forward(self, values, natural_order: bool = True):
        """Forward NTT, row-sharded when given ``(batch, n)`` input."""
        return self._transform(values, "forward", natural_order)

    def inverse(self, values, natural_order: bool = True):
        """Inverse NTT including the ``1/n`` scaling (row-sharded)."""
        return self._transform(values, "inverse", natural_order)

    def _transform(self, values, direction: str, natural_order: bool):
        x, as_ints = self.plan._coerce(values)
        record_engine_call("parallel", f"ntt.{direction}", x.size // 2)
        flat = x.ndim == 2
        batch = x[np.newaxis] if flat else x
        meta = {
            "op": "ntt",
            "n": self.plan.n,
            "q": self.plan.q,
            "root": self.plan.table.root,
            "direction": direction,
            "natural_order": bool(natural_order),
        }
        out = _run_sharded(
            self.executor, meta, "rows", batch.shape[0], {"x": batch}, batch.shape
        )
        if flat:
            out = out[0]
        return limbs_to_ints(out) if as_ints else out

    def pointwise_mul(self, f, g):
        """Element-wise spectral product (in-process: one vector pass)."""
        return self.plan.pointwise_mul(f, g)

    def cyclic_multiply(self, f, g):
        """Length-``n`` cyclic convolution, row-sharded over the pool."""
        fa, as_ints = self.plan._coerce(f)
        ga, _ = self.plan._coerce(g)
        record_engine_call("parallel", "ntt.cyclic_mul", fa.size // 2)
        flat = fa.ndim == 2
        if flat:
            fa, ga = fa[np.newaxis], ga[np.newaxis]
        meta = {
            "op": "cyclic_mul",
            "n": self.plan.n,
            "q": self.plan.q,
            "root": self.plan.table.root,
        }
        out = _run_sharded(
            self.executor,
            meta,
            "rows",
            fa.shape[0],
            {"x": fa, "y": ga},
            fa.shape,
        )
        if flat:
            out = out[0]
        return limbs_to_ints(out) if as_ints else out


class ParNegacyclic:
    """Negacyclic polynomial multiplication sharded across the pool.

    Mirrors :class:`repro.fast.ntt.FastNegacyclic`; ``multiply`` on a
    ``(batch, n)`` stack cuts the batch into per-worker row ranges.
    """

    def __init__(
        self,
        n: int,
        q: int,
        psi: Optional[int] = None,
        executor: Optional[ParallelExecutor] = None,
    ) -> None:
        self.fast = FastNegacyclic(n, q, psi=psi)
        self.executor = executor

    @classmethod
    def from_plan(
        cls, plan: FastNegacyclic, executor: Optional[ParallelExecutor] = None
    ) -> "ParNegacyclic":
        """Wrap an existing fast negacyclic plan (shares psi + twiddles)."""
        self = cls.__new__(cls)
        self.fast = plan
        self.executor = executor
        return self

    @property
    def n(self) -> int:
        """Ring dimension."""
        return self.fast.n

    @property
    def q(self) -> int:
        """Modulus."""
        return self.fast.q

    @property
    def psi(self) -> int:
        """The primitive ``2n``-th root used for twisting."""
        return self.fast.psi

    def forward(self, values):
        """Twisted forward transform (in-process on the fast engine)."""
        return self.fast.forward(values)

    def inverse(self, values):
        """Inverse of :meth:`forward` (in-process on the fast engine)."""
        return self.fast.inverse(values)

    def multiply(self, f, g):
        """Negacyclic product ``f * g mod (x^n + 1, q)``, row-sharded."""
        fa, as_ints = self.fast.plan._coerce(f)
        ga, _ = self.fast.plan._coerce(g)
        record_engine_call("parallel", "ntt.polymul", fa.size // 2)
        flat = fa.ndim == 2
        if flat:
            fa, ga = fa[np.newaxis], ga[np.newaxis]
        meta = {
            "op": "negacyclic_mul",
            "n": self.fast.n,
            "q": self.fast.q,
            "psi": self.fast.psi,
            "root": self.fast.plan.table.root,
        }
        out = _run_sharded(
            self.executor,
            meta,
            "rows",
            fa.shape[0],
            {"x": fa, "y": ga},
            fa.shape,
        )
        if flat:
            out = out[0]
        return limbs_to_ints(out) if as_ints else out

    def multiply_add(self, f, g, acc):
        """Fused ``f * g + acc mod (x^n + 1, q)`` — one dispatch per shard.

        The keyswitch-shaped multiply-accumulate: previously this cost a
        ``multiply`` batch plus a BLAS ``vector_add`` batch (two pool
        round trips, two stagings of the intermediate product); as a
        fused chain the product never leaves the worker.
        """
        fa, as_ints = self.fast.plan._coerce(f)
        ga, _ = self.fast.plan._coerce(g)
        za, _ = self.fast.plan._coerce(acc)
        record_engine_call("parallel", "ntt.polymul_add", fa.size // 2)
        flat = fa.ndim == 2
        if flat:
            fa, ga, za = fa[np.newaxis], ga[np.newaxis], za[np.newaxis]
        meta = {
            "op": "chain",
            "n": self.fast.n,
            "q": self.fast.q,
            "psi": self.fast.psi,
            "root": self.fast.plan.table.root,
            "steps": [dict(s) for s in fast_chain.NEGACYCLIC_MUL_ADD_STEPS],
            "inputs": ["x", "y", "z"],
        }
        out = _run_sharded(
            self.executor,
            meta,
            "rows",
            fa.shape[0],
            {"x": fa, "y": ga, "z": za},
            fa.shape,
        )
        if flat:
            out = out[0]
        return limbs_to_ints(out) if as_ints else out


class ParChain:
    """User-specified fused op chains dispatched as single pool tasks.

    A chain (see :mod:`repro.fast.chain`) composes NTT / twist /
    pointwise / BLAS steps over named registers; the whole program runs
    worker-side against resident planes, so an NTT→pointwise→INTT
    pipeline costs **one** dispatch round trip instead of three. With an
    r52 modulus the intermediates additionally stay in 52-bit limb-plane
    form across steps.

    ``psi`` (or ``negacyclic=True``) enables twist steps; chains without
    twists only need ``n``/``q`` (and optionally ``root``).
    """

    def __init__(
        self,
        n: int,
        q: int,
        psi: Optional[int] = None,
        negacyclic: Optional[bool] = None,
        root: Optional[int] = None,
        executor: Optional[ParallelExecutor] = None,
    ) -> None:
        if negacyclic is None:
            negacyclic = psi is not None
        if negacyclic:
            self.neg: Optional[FastNegacyclic] = FastNegacyclic(n, q, psi=psi)
            self.ntt = self.neg.plan
        else:
            self.neg = None
            self.ntt = FastNtt(n, q, root=root)
        self.executor = executor

    @property
    def n(self) -> int:
        """Transform size."""
        return self.ntt.n

    @property
    def q(self) -> int:
        """Modulus."""
        return self.ntt.q

    def run(self, steps: Sequence[dict], **inputs):
        """Execute ``steps`` over the named ``inputs``, row-sharded.

        Input registers are ``(batch, n)`` stacks (or flat ``(n,)``
        vectors) coerced exactly like the fast engine's operands; the
        chain's ``"out"`` register is returned in the same form. The
        chain is validated in-process before any staging, so a
        malformed program raises immediately rather than through a
        worker error.
        """
        steps = [dict(step) for step in steps]
        needed = fast_chain.chain_input_names(steps)
        fast_chain.validate_steps(steps, needed)
        if self.neg is None and any(
            step.get("kind") == "twist" for step in steps
        ):
            raise NttParameterError(
                "chain has twist steps but this ParChain has no psi "
                "(construct it with psi=... or negacyclic=True)"
            )
        missing = [name for name in needed if name not in inputs]
        if missing:
            raise NttParameterError(
                f"chain reads input registers {missing} that were not "
                f"provided (got {sorted(inputs)})"
            )
        coerced = {}
        as_ints = False
        flat = False
        shape = None
        for name in needed:
            arr, ints = self.ntt._coerce(inputs[name])
            if not coerced:
                as_ints = ints
                flat = arr.ndim == 2
            if arr.ndim == 2:
                arr = arr[np.newaxis]
            if shape is None:
                shape = arr.shape
            elif arr.shape != shape:
                raise NttParameterError(
                    f"chain input {name!r} has shape {arr.shape[:-1]}, "
                    f"expected {shape[:-1]}"
                )
            coerced[name] = arr
        record_engine_call("parallel", "chain", coerced[needed[0]].size // 2)
        meta = {
            "op": "chain",
            "n": self.ntt.n,
            "q": self.ntt.q,
            "root": self.ntt.table.root,
            "steps": steps,
            "inputs": needed,
        }
        if self.neg is not None:
            meta["psi"] = self.neg.psi
        out = _run_sharded(
            self.executor, meta, "rows", shape[0], coerced, shape
        )
        if flat:
            out = out[0]
        return limbs_to_ints(out) if as_ints else out


class ParBlasPlan:
    """The four BLAS operations sharded over the element axis.

    Mirrors :class:`repro.fast.blas.FastBlasPlan`: operands are coerced
    and validated in-process (so errors surface immediately with the
    fast engine's messages), then the flattened element range is cut
    into one contiguous piece per worker.
    """

    def __init__(
        self,
        q: int,
        executor: Optional[ParallelExecutor] = None,
        plan: Optional[FastBlasPlan] = None,
    ) -> None:
        self.q = q
        self.fast = plan or FastBlasPlan(q)
        self.executor = executor

    def vector_add(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x + y) mod q``."""
        return self._sharded("vector_add", x, y)

    def vector_sub(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x - y) mod q``."""
        return self._sharded("vector_sub", x, y)

    def vector_mul(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x * y) mod q``."""
        return self._sharded("vector_mul", x, y)

    def axpy(self, a: int, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """``(a * x + y) mod q`` for scalar ``a``."""
        check_reduced(a, self.q, "a")
        return self._sharded("axpy", x, y, a=a)

    def _sharded(self, blas_op: str, x, y, a: Optional[int] = None):
        xa, ya, as_ints = self.fast._coerce_pair(x, y)
        record_engine_call("parallel", f"blas.{blas_op}", xa.size // 2)
        shape = xa.shape
        flat_x = np.ascontiguousarray(xa.reshape(-1, 2))
        flat_y = np.ascontiguousarray(ya.reshape(-1, 2))
        meta = {"op": "blas", "q": self.q, "blas_op": blas_op}
        if a is not None:
            meta["a"] = a
        out = _run_sharded(
            self.executor,
            meta,
            "elems",
            flat_x.shape[0],
            {"x": flat_x, "y": flat_y},
            flat_x.shape,
        )
        out = out.reshape(shape)
        return limbs_to_ints(out) if as_ints else out


def parallel_rns_mul(
    ring,
    f_residues: List[List[int]],
    g_residues: List[List[int]],
    executor: Optional[ParallelExecutor] = None,
) -> List[List[int]]:
    """One RNS ring multiplication with all residue channels fused.

    Packs the ``k`` per-prime residue polynomials of both operands into
    single ``(k, n, 2)`` shared segments and dispatches ``k`` one-row
    convolution shards (negacyclic or cyclic, matching the ring) in a
    single pool batch — every prime's NTTs run concurrently instead of
    the sequential per-prime loop of the in-process engines.

    ``ring`` is an :class:`repro.rns.poly.RnsPolynomialRing` built with
    ``engine="parallel"`` (anything exposing the same per-prime plans
    works). Returns the residue rows as lists of ints.
    """
    primes = ring.basis.primes
    k, n = len(primes), ring.n
    fa = limbs_from_ints(f_residues)
    ga = limbs_from_ints(g_residues)
    # Validate in-process, per prime, so a bad operand fails fast with
    # the fast engine's error instead of a retried worker failure.
    for i, q in enumerate(primes):
        plan = ring._ntt[q]
        fast_ntt = plan.fast_plan.plan if ring.negacyclic else plan.fast_plan
        fast_ntt.mod.check_reduced(fa[i])
        fast_ntt.mod.check_reduced(ga[i])
    record_engine_call("parallel", "rns.mul", k * n)
    executor = executor or default_executor()
    shape = (k, n, 2)
    segments = []
    batch_span = span("par.batch", op="rns.mul", axis="rows", total=k)
    batch_span.__enter__()
    try:
        x_seg, x_view = executor.arena.lease(shape)
        x_view[...] = fa
        del x_view
        segments.append(x_seg)
        y_seg, y_view = executor.arena.lease(shape)
        y_view[...] = ga
        del y_view
        segments.append(y_seg)
        out_seg, out_view = executor.arena.lease(shape)
        segments.append(out_seg)
        sums_name = None
        if executor.integrity:
            sums_seg, sums_view = executor.arena.lease((k,))
            del sums_view
            segments.append(sums_seg)
            sums_name = sums_seg.name
        specs = []
        for i, q in enumerate(primes):
            plan = ring._ntt[q]
            if ring.negacyclic:
                neg = plan.fast_plan
                spec = {
                    "op": "negacyclic_mul",
                    "n": n,
                    "q": q,
                    "psi": neg.psi,
                    "root": neg.plan.table.root,
                }
            else:
                spec = {
                    "op": "cyclic_mul",
                    "n": n,
                    "q": q,
                    "root": plan.fast_plan.table.root,
                }
            spec.update(
                x=x_seg.name,
                y=y_seg.name,
                out=out_seg.name,
                shape=list(shape),
                rows=[i, i + 1],
            )
            if sums_name is not None:
                spec.update(shard_index=i, sums=sums_name, sums_len=k)
            specs.append(spec)
        executor.run(specs)
        executor.audit(specs)
        out = np.array(out_view, copy=True)
        del out_view
    finally:
        for seg in segments:
            executor.arena.release(seg)
        batch_span.__exit__(None, None, None)
    return [limbs_to_ints(out[i]) for i in range(k)]
