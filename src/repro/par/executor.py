"""The persistent, fault-tolerant worker pool behind ``engine="parallel"``.

:class:`ParallelExecutor` owns N long-lived worker processes (forked
when available, so they inherit the loaded library), a task queue of
small shard specs, and a result queue. Shard payloads travel through
shared memory (:mod:`repro.par.shm`); the queues carry only metadata.

Fault tolerance
---------------

Each worker advertises the task it is currently executing in a shared
``current`` array — a direct memory write that, unlike a queue message,
cannot be lost in a buffered feeder thread when the worker dies. The
coordinator's event loop therefore knows exactly which shard a crashed
or killed worker was holding:

* a **crashed** worker (process exited) is replaced and its in-flight
  shard is re-enqueued under the executor's
  :class:`~repro.resil.policy.RetryPolicy` (bounded attempts,
  exponential backoff with deterministic jitter);
* a **hung** worker (shard in flight longer than ``task_timeout``) is
  terminated, which turns it into the crashed case;
* a shard whose shared-memory payload fails **checksum verification**
  on collection (:mod:`repro.resil.integrity`) is treated as a
  retryable fault and re-dispatched;
* a shard that exhausts its retry budget — or is still pending when
  the batch's :class:`~repro.resil.policy.Deadline` expires —
  **degrades gracefully**: the coordinator runs it in-process via the
  same :func:`~repro.par.worker.execute_spec` code path, so the batch
  still completes with correct results.

Every re-enqueue bumps the shard's *generation* counter, and workers
echo the generation in their result messages; a straggler completing a
superseded execution is discarded (``par.stale_results``) instead of
double-counting a shard that was already recovered.

A per-executor :class:`~repro.resil.policy.CircuitBreaker` watches
consecutive shard failures. While it is open, whole batches bypass the
pool and run in-process on the fast engine (``resil.degraded``); after
the cooldown one probe batch goes back through the pool, and its
outcome closes or re-opens the breaker. Pool-*start* failures
additionally notify :mod:`repro.resil.degrade`, so new
``engine="parallel"`` construction sites cascade to ``"fast"``.

Every decision is mirrored to ``par.*`` / ``resil.*`` observability
counters (``par.shards.dispatched``, ``par.retries``,
``par.fallbacks``, ``par.workers.restarted``, ``par.integrity.corrupt``,
``par.stale_results``, ``resil.degraded``, ``resil.breaker.*``, the
``par.shard.wall_s`` histogram) and the whole batch runs under a
``par.run`` span.

Entering the executor as a context manager installs it as the process
default, so ``engine="parallel"`` plans created inside the ``with``
block dispatch to it::

    with ParallelExecutor(workers=8) as pool:
        ring = RnsPolynomialRing(n, basis, backend, engine="parallel")
        product = ring.mul(f, g)   # residue channels sharded across 8 workers
"""

from __future__ import annotations

import atexit
import heapq
import multiprocessing
import os
import queue as queue_mod
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParallelExecutionError
from repro.obs import dist
from repro.obs.hooks import (
    record_adaptive_shards,
    record_breaker_transition,
    record_deadline_expired,
    record_integrity_corrupt,
    record_par_dispatch,
    record_par_fallback,
    record_par_interrupted,
    record_par_limbo_requeue,
    record_par_pin_unsupported,
    record_par_retry,
    record_par_shard_done,
    record_par_stale_result,
    record_par_worker_hung,
    record_par_worker_pinned,
    record_par_worker_restart,
    record_resil_degraded,
    record_retry_backoff,
    record_shard_event,
    record_shm_reclaimed,
    record_slot_retry,
    record_telemetry_stale,
    record_worker_blob,
)
from repro.obs.session import current as obs_current
from repro.obs.spans import span
from repro.par import shm
from repro.par.worker import execute_spec, worker_main
from repro.resil import degrade
from repro.resil.inject import Fault, FaultPlan, strip_transient_fault
from repro.resil.policy import CircuitBreaker, Deadline, RetryPolicy

#: Seconds between event-loop polls of the result queue.
_POLL_S = 0.02

#: ``current``-array value meaning "no task in flight".
_IDLE = -1

#: Process-wide once-guard for the "pinning unsupported here" warning.
_PIN_WARNED = False


def _shard_event(event: str, spec: dict, **fields: object) -> None:
    """Log one shard lifecycle event with its correlation ids.

    No-op for specs without a trace-context header (i.e. whenever no
    observability session was active at dispatch), so the event log
    costs nothing on the hot path.
    """
    ctx = spec.get(dist.CTX_KEY)
    if ctx is None:
        return
    record_shard_event(
        event,
        batch=ctx["batch"],
        shard=ctx["shard"],
        attempt=ctx["attempt"],
        **fields,
    )


def _pool_context():
    """Fork where available (workers inherit the loaded library)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ParallelExecutor:
    """A persistent pool of fast-engine workers with crash recovery.

    Args:
        workers: Pool size; defaults to ``os.cpu_count()``.
        task_timeout: Seconds a single shard may run in a worker before
            that worker is declared hung and terminated.
        retries: Times a failed shard is re-enqueued before degrading
            to in-process execution (shorthand for a
            :class:`~repro.resil.policy.RetryPolicy` with
            ``max_attempts=retries + 1`` and no backoff).
        retry_policy: Full retry/backoff policy; overrides ``retries``.
        breaker: Circuit breaker guarding the pool; defaults to a fresh
            :class:`~repro.resil.policy.CircuitBreaker` (5 consecutive
            failures trip it, 30 s cooldown).
        batch_deadline_s: Default wall-clock budget per ``run`` batch;
            ``None`` (default) means unbounded. A per-call ``deadline``
            overrides it.
        integrity: Whether batches carry per-shard checksums that are
            verified on collection (see :mod:`repro.resil.integrity`).
        audit_fraction: Fraction of completed shards re-computed on the
            faithful engine after each batch (``0.0`` disables audit).
        audit_seed: Seed for the audit's shard sampling.
        adaptive: Whether :meth:`suggest_shards` may clamp a batch's
            shard count below the worker count when recorded
            ``par.worker.compute`` history says the shards would be too
            small to amortize dispatch overhead. Tests that assert
            one-shard-per-worker layouts disable this.
        min_shard_compute_s: Adaptive-sizing floor: target compute
            seconds per shard (shards predicted to run shorter are
            merged into fewer, larger ones).
        pin_workers: Worker CPU pinning via ``os.sched_setaffinity``.
            ``None`` (default) pins automatically when more than one CPU
            is available; ``True`` forces pinning; ``False`` disables.
            Best-effort and a no-op on platforms without affinity.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        task_timeout: float = 60.0,
        retries: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        batch_deadline_s: Optional[float] = None,
        integrity: bool = True,
        audit_fraction: float = 0.0,
        audit_seed: int = 0,
        adaptive: bool = True,
        min_shard_compute_s: float = 0.002,
        pin_workers: Optional[bool] = None,
    ) -> None:
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ParallelExecutionError("worker pool needs >= 1 worker")
        if task_timeout <= 0:
            raise ParallelExecutionError("task_timeout must be positive")
        if retries < 0:
            raise ParallelExecutionError("retries must be non-negative")
        if batch_deadline_s is not None and batch_deadline_s <= 0:
            raise ParallelExecutionError("batch_deadline_s must be positive")
        if not 0.0 <= audit_fraction <= 1.0:
            raise ParallelExecutionError("audit_fraction must be in [0, 1]")
        self.task_timeout = float(task_timeout)
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=retries + 1)
        self.retries = self.retry_policy.max_attempts - 1
        self.breaker = breaker or CircuitBreaker(
            on_transition=record_breaker_transition
        )
        if min_shard_compute_s < 0:
            raise ParallelExecutionError(
                "min_shard_compute_s must be non-negative"
            )
        self.batch_deadline_s = batch_deadline_s
        self.integrity = bool(integrity)
        self.audit_fraction = float(audit_fraction)
        self.audit_seed = int(audit_seed)
        self.adaptive = bool(adaptive)
        self.min_shard_compute_s = float(min_shard_compute_s)
        self.pin_workers = pin_workers
        #: Pool-lifetime shm arena: batches lease staging segments here
        #: instead of creating/unlinking per call; ``close()`` drains it.
        self.arena = shm.ArenaPool()
        #: Lifetime tallies, mirrored to ``par.*`` / ``resil.*`` metrics
        #: when a session is active. ``completed`` counts worker-side
        #: completions only; ``fallbacks``/``degraded``/``deadline_expired``
        #: shards finish in-process.
        self.stats: Dict[str, int] = {
            "dispatched": 0,
            "completed": 0,
            "retries": 0,
            "fallbacks": 0,
            "restarts": 0,
            "hung": 0,
            "degraded": 0,
            "corrupt": 0,
            "stale": 0,
            "stale_superseded": 0,
            "stale_recovered": 0,
            "limbo_requeues": 0,
            "deadline_expired": 0,
            "audited": 0,
            "shm_reclaimed": 0,
            "arena_drained": 0,
            "adaptive_clamped": 0,
            "pinned": 0,
            "pin_unsupported": 0,
            "interrupted": 0,
        }
        self._ctx = _pool_context()
        self._procs: List[multiprocessing.Process] = []
        self._tasks = None
        self._results = None
        self._current = None
        self._started = False
        self._closed = False
        self._next_id = 0
        self._inject_crashes = 0
        self._fault_plan: Optional[FaultPlan] = None
        self._fault_index = 0
        self._active_segments: set = set()
        self._previous_default: Optional["ParallelExecutor"] = None
        #: EWMA of per-item worker compute seconds, keyed by op signature
        #: (feeds adaptive shard sizing).
        self._compute_ewma: Dict[str, float] = {}
        self._pin_cpus: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def started(self) -> bool:
        return self._started

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (introspection/tests)."""
        return [p.pid for p in self._procs if p.is_alive()]

    def start(self) -> "ParallelExecutor":
        """Spawn the pool (idempotent; ``run`` calls this lazily).

        A failed spawn notifies :mod:`repro.resil.degrade` — so new
        ``engine="parallel"`` plans cascade to ``"fast"`` — before
        re-raising; ``run`` additionally degrades the affected batch
        in-process instead of surfacing the error.
        """
        if self._closed:
            raise ParallelExecutionError("executor is closed")
        if self._started:
            return self
        try:
            self._tasks = self._ctx.Queue()
            self._results = self._ctx.Queue()
            self._current = self._ctx.Array("q", [_IDLE] * self.workers)
            if self._pin_cpus is None:
                self._pin_cpus = self._resolve_pins()
            self._procs = [self._spawn(slot) for slot in range(self.workers)]
        except Exception:
            degrade.note_pool_start_failure()
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
            self._procs = []
            raise
        degrade.note_pool_start_success()
        self._started = True
        return self

    def _resolve_pins(self) -> List[int]:
        """CPUs to pin workers to (slot -> cpu, round-robin); [] = none.

        Pinning is strictly best-effort: on platforms without the Linux
        affinity syscalls (macOS has neither ``sched_getaffinity`` nor
        ``sched_setaffinity``) an *explicit* ``pin_workers=True`` warns
        once, bumps ``par.workers.pin_unsupported``, and runs unpinned —
        it never raises. Auto mode (``None``) stays silent.
        """
        if self.pin_workers is False:
            return []
        if not (
            hasattr(os, "sched_getaffinity")
            and hasattr(os, "sched_setaffinity")
        ):
            self._note_pin_unsupported("platform lacks sched_setaffinity")
            return []
        try:
            cpus = sorted(os.sched_getaffinity(0))
        except OSError:
            self._note_pin_unsupported("sched_getaffinity failed")
            return []
        if not cpus:
            return []
        if self.pin_workers is None and len(cpus) < 2:
            # Auto mode: pinning everything to the single available CPU
            # buys nothing and forbids the scheduler from doing better.
            return []
        return cpus

    def _note_pin_unsupported(self, why: str) -> None:
        """Meter (and warn once, if explicitly requested) a skipped pin."""
        if self.pin_workers is not True:
            return
        self.stats["pin_unsupported"] += 1
        record_par_pin_unsupported()
        global _PIN_WARNED
        if not _PIN_WARNED:
            _PIN_WARNED = True
            warnings.warn(
                f"pin_workers=True ignored: {why}; workers run unpinned",
                RuntimeWarning,
                stacklevel=3,
            )

    def _spawn(self, slot: int) -> multiprocessing.Process:
        pin_cpu = (
            self._pin_cpus[slot % len(self._pin_cpus)]
            if self._pin_cpus
            else None
        )
        proc = self._ctx.Process(
            target=worker_main,
            args=(slot, self._current, self._tasks, self._results, pin_cpu),
            daemon=True,
            name=f"repro-par-worker-{slot}",
        )
        proc.start()
        if pin_cpu is not None:
            self.stats["pinned"] += 1
            record_par_worker_pinned()
        return proc

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent).

        Also defensively unlinks any shared-memory segment that was
        named in this executor's task specs and is still live — a run
        aborted by a hard error (or a worker dying between a segment's
        registration and interpreter ``atexit``) must not leave
        ``/dev/shm`` dirty for the process's remaining lifetime.
        """
        if self._closed:
            return
        self._closed = True
        # Drain the arena first: its segments are registered in the shm
        # module registry, and draining removes them before the
        # defensive per-name reclaim below would misattribute them.
        drained = self.arena.drain()
        if drained:
            self.stats["arena_drained"] += drained
        self._reclaim_segments()
        if not self._started:
            return
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break
        deadline = time.monotonic() + 2.0
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._tasks, self._results):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
        self._procs = []

    def _reclaim_segments(self) -> None:
        reclaimed = 0
        for name in list(self._active_segments):
            if shm.release_by_name(name):
                reclaimed += 1
        self._active_segments.clear()
        if reclaimed:
            self.stats["shm_reclaimed"] += reclaimed
            record_shm_reclaimed(reclaimed)

    def _abort_batch(self) -> None:
        """Quiesce the pool after an interrupt landed mid-batch.

        Three steps, all best-effort and bounded: (1) drain every
        still-queued task so no worker starts writing into segments the
        interrupted caller will release; (2) wait briefly for in-flight
        slots to go idle so nothing is mid-write when the caller tears
        down; (3) drain the result queue so late completions from this
        batch cannot be misread as results of the *next* batch. Workers
        stay alive — the pool remains usable after the interrupt is
        handled (or close() tears it down normally).
        """
        if not self._started:
            return
        while True:
            try:
                self._tasks.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break
        quiet_until = time.monotonic() + min(self.task_timeout, 2.0)
        while time.monotonic() < quiet_until:
            busy = any(
                self._current[slot] != _IDLE
                for slot in range(self.workers)
                if slot < len(self._current)
            )
            if not busy:
                break
            time.sleep(_POLL_S)
        while True:
            try:
                self._results.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break

    def __enter__(self) -> "ParallelExecutor":
        self.start()
        self._previous_default = _swap_default(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _swap_default(self._previous_default)
        self._previous_default = None
        self.close()

    # ------------------------------------------------------------------
    # Fault injection (tests, chaos harness)
    # ------------------------------------------------------------------

    def inject(self, plan: Optional[FaultPlan]) -> None:
        """Arm a :class:`~repro.resil.inject.FaultPlan` (``None`` disarms).

        Plan indices count every shard this executor dispatches from
        now on, across batches, in dispatch order.
        """
        self._fault_plan = plan
        self._fault_index = 0

    def inject_crash(self, shards: int = 1) -> None:
        """Mark the next ``shards`` dispatched shard specs to kill their
        worker mid-task (every attempt crashes; only the in-process
        fallback, which ignores the flag, can complete them)."""
        self._inject_crashes += int(shards)

    def _next_fault(self) -> Optional[Fault]:
        fault = None
        if self._fault_plan is not None:
            fault = self._fault_plan.fault_for(self._fault_index)
            self._fault_index += 1
        if fault is None and self._inject_crashes > 0:
            self._inject_crashes -= 1
            fault = Fault("crash", sticky=True)
        return fault

    # ------------------------------------------------------------------
    # Adaptive shard sizing
    # ------------------------------------------------------------------

    @staticmethod
    def _op_signature(spec: dict) -> str:
        """History key for adaptive sizing: op + size + chain length."""
        size = spec.get("n") or spec.get("q") or 0
        steps = spec.get("steps")
        suffix = f":{len(steps)}" if steps else ""
        return f"{spec.get('op')}:{size}{suffix}"

    def suggest_shards(self, meta: dict, total: int) -> int:
        """How many shards a batch of ``total`` items should dispatch.

        The ceiling is ``min(workers, total)`` (the historical fixed
        choice). With ``adaptive`` enabled and recorded compute history
        for this op signature, the count is clamped so each shard is
        predicted to run at least ``min_shard_compute_s`` of worker
        compute — a batch too small to amortize dispatch round trips
        collapses into fewer (possibly one) shards.
        """
        ceiling = max(1, min(self.workers, int(total)))
        if not self.adaptive or self.min_shard_compute_s <= 0:
            return ceiling
        per_item = self._compute_ewma.get(self._op_signature(meta))
        if per_item is None or per_item <= 0:
            return ceiling
        ideal = int(total * per_item / self.min_shard_compute_s)
        shards = max(1, min(ceiling, ideal))
        if shards < ceiling:
            self.stats["adaptive_clamped"] += 1
            record_adaptive_shards(shards, ceiling)
        return shards

    def _note_compute(self, spec: dict, wall_s: float, blob) -> None:
        """Fold one completed shard into the per-item compute EWMA.

        Prefers the worker's ``par.worker.compute`` span durations from
        the telemetry blob (pure compute); falls back to the message's
        wall time (compute + plan + shm mapping) when no session was
        active — a coarser but still serviceable signal.
        """
        bounds = spec.get("rows") or spec.get("elems")
        if not bounds:
            return
        items = max(1, int(bounds[1]) - int(bounds[0]))
        seconds = None
        if blob:
            durations = [
                entry[2]
                for entry in blob.get("spans") or ()
                if entry[0] == "par.worker.compute"
            ]
            if durations:
                seconds = float(sum(durations))
        if seconds is None:
            seconds = float(wall_s)
        per_item = max(seconds, 0.0) / items
        key = self._op_signature(spec)
        previous = self._compute_ewma.get(key)
        self._compute_ewma[key] = (
            per_item if previous is None
            else 0.7 * previous + 0.3 * per_item
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self, specs: Sequence[dict], deadline: Optional[Deadline] = None
    ) -> None:
        """Execute all shard specs; returns once every shard completed.

        Results land in the shared-memory segments the specs name; this
        method only coordinates. Raises only for executor misuse or for
        errors that persist through the in-process fallback (e.g. a
        genuinely invalid operand) — engine-availability problems (pool
        won't start, breaker open) degrade the batch to in-process
        fast-engine execution instead.
        """
        if self._closed:
            raise ParallelExecutionError("executor is closed")
        specs = [dict(spec) for spec in specs]
        if not specs:
            return
        for spec in specs:
            fault = self._next_fault()
            if fault is not None:
                spec["fault"] = fault.to_spec()
        self._track_segments(specs)
        self.stats["dispatched"] += len(specs)
        record_par_dispatch(len(specs))
        if deadline is None and self.batch_deadline_s is not None:
            deadline = Deadline(self.batch_deadline_s)
        # A batch correlation id exists only while a session is active:
        # without one, specs carry no context header at all and the
        # telemetry path is never entered (zero pickling overhead).
        batch_id = dist.next_batch_id() if obs_current() is not None else None
        with span("par.run", shards=len(specs), batch=batch_id):
            if not self.breaker.allow():
                self._run_degraded(specs, "breaker_open")
                return
            try:
                self.start()
            except ParallelExecutionError:
                raise  # misuse (closed executor), not availability
            except Exception:
                self.breaker.record_failure()
                self._run_degraded(specs, "pool_start_failed")
                return
            try:
                self._event_loop(specs, deadline, batch_id)
            except KeyboardInterrupt:
                # Ctrl-C mid-batch: quiesce before propagating so queued
                # tasks cannot scribble into arena segments the caller is
                # about to recycle, and close() finds nothing leaked.
                self.stats["interrupted"] += 1
                record_par_interrupted()
                self._abort_batch()
                raise

    def _track_segments(self, specs: Sequence[dict]) -> None:
        """Remember segment names so ``close()`` can reclaim leaks."""
        self._active_segments = {
            name for name in self._active_segments if shm.is_created(name)
        }
        for spec in specs:
            keys = {"x", "y", "z", "out", "sums"}
            keys.update(spec.get("inputs") or ())
            for key in keys:
                name = spec.get(key)
                if isinstance(name, str):
                    self._active_segments.add(name)

    def _run_degraded(self, specs: List[dict], reason: str) -> None:
        """Run a whole batch in-process on the fast engine (no pool)."""
        record_resil_degraded("parallel", "fast", reason)
        self.stats["degraded"] += len(specs)
        for spec in specs:
            execute_spec(spec, in_worker=False)

    def audit(self, specs: Sequence[dict]) -> int:
        """Faithful-engine audit of a completed batch (see resil docs).

        Called by the API layer after ``run`` while the batch's
        segments are still mapped; no-op unless ``audit_fraction > 0``.
        """
        if self.audit_fraction <= 0.0 or not specs:
            return 0
        from repro.resil.integrity import audit_shards

        audited = audit_shards(specs, self.audit_fraction, self.audit_seed)
        self.stats["audited"] += audited
        return audited

    def _verify(self, spec: dict) -> bool:
        """Recompute a collected shard's checksum against its sums slot."""
        if not self.integrity or spec.get("sums") is None:
            return True
        from repro.resil import integrity

        out_seg = shm.attach_segment(spec["out"])
        sums_seg = shm.attach_segment(spec["sums"])
        try:
            out_view = shm.segment_view(out_seg, spec["shape"])
            sums_view = shm.segment_view(sums_seg, (spec["sums_len"],))
            ok = integrity.verify_checksum(spec, out_view, sums_view)
            del out_view, sums_view
        finally:
            shm.detach_segment(out_seg)
            shm.detach_segment(sums_seg)
        return ok

    def _event_loop(
        self,
        specs: List[dict],
        deadline: Optional[Deadline],
        batch_id: Optional[str] = None,
    ) -> None:
        pending: Dict[int, dict] = {}
        attempts: Dict[int, int] = {}
        gen: Dict[int, int] = {}
        with span("par.dispatch", batch=batch_id, shards=len(specs)):
            for index, spec in enumerate(specs):
                task_id = self._next_id
                self._next_id += 1
                if batch_id is not None:
                    spec[dist.CTX_KEY] = dist.make_context(batch_id, index)
                pending[task_id] = spec
                attempts[task_id] = 0
                gen[task_id] = 0
                self._tasks.put((task_id, 0, spec))
                _shard_event("shard.dispatched", spec, task=task_id)

        claimed_at: Dict[Tuple[int, int], float] = {}
        delayed: List[Tuple[float, int]] = []  # (ready_at, task_id) heap
        last_progress = time.monotonic()

        def clear_claims(task_id: int) -> None:
            for key in [k for k in claimed_at if k[1] == task_id]:
                del claimed_at[key]

        def fallback(task_id: int) -> None:
            spec = pending.pop(task_id)
            clear_claims(task_id)
            self.stats["fallbacks"] += 1
            record_par_fallback()
            _shard_event("shard.fallback", spec, task=task_id)
            ctx = spec.get(dist.CTX_KEY)
            if ctx is not None:
                with span(
                    "par.fallback",
                    batch=ctx["batch"],
                    shard=ctx["shard"],
                    attempt=ctx["attempt"],
                ):
                    execute_spec(spec, in_worker=False)
            else:
                execute_spec(spec, in_worker=False)

        def fail(
            task_id: int,
            slot: Optional[int] = None,
            charge_breaker: bool = True,
        ) -> None:
            if task_id not in pending:
                return
            clear_claims(task_id)
            if charge_breaker:
                self.breaker.record_failure()
            attempts[task_id] += 1
            # A new generation supersedes every earlier execution of
            # this shard: stragglers completing the old copy are
            # discarded on arrival instead of double-counted.
            gen[task_id] += 1
            if self.retry_policy.should_retry(attempts[task_id]):
                self.stats["retries"] += 1
                record_par_retry()
                if slot is not None:
                    record_slot_retry(slot)
                spec = strip_transient_fault(pending[task_id])
                # Re-stamp the context header (attempt, generation) so
                # the retried execution's worker spans carry the ids of
                # the attempt that actually produced them.
                dist.refresh_context(spec, attempts[task_id] + 1, gen[task_id])
                pending[task_id] = spec
                ctx = spec.get(dist.CTX_KEY)
                if ctx is not None:
                    with span(
                        "par.retry",
                        batch=ctx["batch"],
                        shard=ctx["shard"],
                        attempt=ctx["attempt"],
                        from_slot=slot,
                    ):
                        pass  # instant marker on the parent lane
                    _shard_event(
                        "shard.retry", spec, task=task_id, from_slot=slot
                    )
                delay = self.retry_policy.delay_s(attempts[task_id])
                if delay > 0.0:
                    record_retry_backoff(delay)
                    heapq.heappush(
                        delayed, (time.monotonic() + delay, task_id)
                    )
                else:
                    self._tasks.put((task_id, gen[task_id], pending[task_id]))
            else:
                fallback(task_id)

        with span("par.collect", batch=batch_id):
            while pending:
                now = time.monotonic()

                # Backoff queue: release retries whose delay has elapsed.
                while delayed and delayed[0][0] <= now:
                    _, task_id = heapq.heappop(delayed)
                    if task_id in pending:
                        self._tasks.put(
                            (task_id, gen[task_id], pending[task_id])
                        )

                # Batch deadline: short-circuit what's left to in-process
                # execution rather than waiting out further retries.
                if deadline is not None and deadline.expired():
                    remaining = list(pending)
                    self.stats["deadline_expired"] += len(remaining)
                    record_deadline_expired(len(remaining))
                    for task_id in remaining:
                        fallback(task_id)
                    break

                try:
                    message = self._results.get(timeout=_POLL_S)
                except queue_mod.Empty:
                    message = None
                now = time.monotonic()

                if message is not None:
                    kind, task_id, msg_gen = (
                        message[0],
                        message[1],
                        message[2],
                    )
                    from_slot = message[3]
                    blob = message[5] if len(message) > 5 else None
                    last_progress = now
                    # Two stale flavors: "superseded" — the task is
                    # still pending but this message carries an old
                    # generation (its re-enqueue won the race) — and
                    # "recovered" — the task already completed through
                    # a retry or fallback, so this straggler is the
                    # double execution the generation counters exist to
                    # surface. Both are discarded *and metered*.
                    superseded = (
                        task_id in pending and msg_gen != gen[task_id]
                    )
                    recovered = task_id not in pending
                    if blob is not None:
                        if superseded or recovered:
                            # Telemetry of a stale execution: discarded
                            # exactly as its result is, but metered.
                            record_telemetry_stale()
                        else:
                            record_worker_blob(blob, from_slot)
                    if superseded or recovered:
                        flavor = (
                            "superseded" if superseded else "recovered"
                        )
                        self.stats["stale"] += 1
                        self.stats[f"stale_{flavor}"] += 1
                        record_par_stale_result(flavor)
                        continue
                    if kind == "done":
                        if task_id in pending:
                            if self._verify(pending[task_id]):
                                spec = pending.pop(task_id)
                                clear_claims(task_id)
                                self.stats["completed"] += 1
                                record_par_shard_done(message[4])
                                self._note_compute(spec, message[4], blob)
                                _shard_event(
                                    "shard.done",
                                    spec,
                                    task=task_id,
                                    slot=from_slot,
                                    wall_s=message[4],
                                )
                                self.breaker.record_success()
                            else:
                                # Payload corrupt in shared memory: a
                                # retryable fault, not a completion.
                                self.stats["corrupt"] += 1
                                record_integrity_corrupt()
                                _shard_event(
                                    "shard.corrupt",
                                    pending[task_id],
                                    task=task_id,
                                    slot=from_slot,
                                )
                                fail(task_id, slot=from_slot)
                    elif kind == "error":
                        if task_id in pending:
                            _shard_event(
                                "shard.error",
                                pending[task_id],
                                task=task_id,
                                slot=from_slot,
                                error=message[4],
                            )
                        fail(task_id, slot=from_slot)
                    continue

                # No message: police the pool.
                for slot, proc in enumerate(self._procs):
                    in_flight = self._current[slot]
                    if proc.is_alive():
                        if in_flight != _IDLE and in_flight in pending:
                            key = (slot, in_flight)
                            if key not in claimed_at:
                                claimed_at[key] = now
                                last_progress = now
                            elif now - claimed_at[key] > self.task_timeout:
                                # Hung: terminate once and clear the
                                # claim — re-signalling every poll tick
                                # until the OS reaps the process was
                                # pure noise. The dead-worker branch
                                # below handles recovery; metered apart
                                # from crashes.
                                del claimed_at[key]
                                self.stats["hung"] += 1
                                record_par_worker_hung()
                                proc.terminate()
                        continue
                    # Dead worker: replace it, recover its shard.
                    self._current[slot] = _IDLE
                    self._procs[slot] = self._spawn(slot)
                    self.stats["restarts"] += 1
                    record_par_worker_restart()
                    last_progress = now
                    if in_flight != _IDLE:
                        fail(in_flight, slot=slot)

                # Safety net: a worker that died between dequeuing a
                # task and advertising it leaves the shard in limbo.
                # After a quiet task_timeout, re-enqueue everything
                # unclaimed — skipping retries waiting out a backoff.
                # Limbo is a dispatch anomaly, not a worker failure:
                # the re-enqueue must not charge the circuit breaker,
                # or a batch of slow-but-healthy shards could trip it
                # and degrade the *next* batch with zero real faults.
                if now - last_progress > self.task_timeout:
                    advertised = {
                        self._current[s] for s in range(self.workers)
                    }
                    waiting = {task_id for _, task_id in delayed}
                    for task_id in list(pending):
                        if (
                            task_id not in advertised
                            and task_id not in waiting
                        ):
                            self.stats["limbo_requeues"] += 1
                            record_par_limbo_requeue()
                            fail(task_id, charge_breaker=False)
                    last_progress = now


# ---------------------------------------------------------------------------
# Process-default executor (what engine="parallel" plans dispatch to)
# ---------------------------------------------------------------------------

_DEFAULT: Optional[ParallelExecutor] = None


def _swap_default(executor: Optional[ParallelExecutor]) -> Optional[ParallelExecutor]:
    global _DEFAULT
    previous, _DEFAULT = _DEFAULT, executor
    return previous


def default_executor() -> ParallelExecutor:
    """The process-default pool, created (not started) on first use."""
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.closed:
        _DEFAULT = ParallelExecutor()
    return _DEFAULT


def shutdown_default_executor() -> None:
    """Close the process-default pool, if any."""
    previous = _swap_default(None)
    if previous is not None:
        previous.close()


atexit.register(shutdown_default_executor)
