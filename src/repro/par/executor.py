"""The persistent, fault-tolerant worker pool behind ``engine="parallel"``.

:class:`ParallelExecutor` owns N long-lived worker processes (forked
when available, so they inherit the loaded library), a task queue of
small shard specs, and a result queue. Shard payloads travel through
shared memory (:mod:`repro.par.shm`); the queues carry only metadata.

Fault tolerance
---------------

Each worker advertises the task it is currently executing in a shared
``current`` array — a direct memory write that, unlike a queue message,
cannot be lost in a buffered feeder thread when the worker dies. The
coordinator's event loop therefore knows exactly which shard a crashed
or killed worker was holding:

* a **crashed** worker (process exited) is replaced and its in-flight
  shard is re-enqueued, up to ``retries`` times;
* a **hung** worker (shard in flight longer than ``task_timeout``) is
  terminated, which turns it into the crashed case;
* a shard that exhausts its retry budget **degrades gracefully**: the
  coordinator runs it in-process via the same
  :func:`~repro.par.worker.execute_spec` code path, so the batch still
  completes with correct results.

Every decision is mirrored to ``par.*`` observability counters
(``par.shards.dispatched``, ``par.retries``, ``par.fallbacks``,
``par.workers.restarted``, the ``par.shard.wall_s`` histogram) and the
whole batch runs under a ``par.run`` span.

Entering the executor as a context manager installs it as the process
default, so ``engine="parallel"`` plans created inside the ``with``
block dispatch to it::

    with ParallelExecutor(workers=8) as pool:
        ring = RnsPolynomialRing(n, basis, backend, engine="parallel")
        product = ring.mul(f, g)   # residue channels sharded across 8 workers
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_mod
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParallelExecutionError
from repro.obs.hooks import (
    record_par_dispatch,
    record_par_fallback,
    record_par_retry,
    record_par_shard_done,
    record_par_worker_restart,
)
from repro.obs.spans import span
from repro.par.worker import execute_spec, worker_main

#: Seconds between event-loop polls of the result queue.
_POLL_S = 0.02

#: ``current``-array value meaning "no task in flight".
_IDLE = -1


def _pool_context():
    """Fork where available (workers inherit the loaded library)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ParallelExecutor:
    """A persistent pool of fast-engine workers with crash recovery.

    Args:
        workers: Pool size; defaults to ``os.cpu_count()``.
        task_timeout: Seconds a single shard may run in a worker before
            that worker is declared hung and terminated.
        retries: Times a failed shard is re-enqueued before degrading
            to in-process execution.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        task_timeout: float = 60.0,
        retries: int = 1,
    ) -> None:
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ParallelExecutionError("worker pool needs >= 1 worker")
        if task_timeout <= 0:
            raise ParallelExecutionError("task_timeout must be positive")
        if retries < 0:
            raise ParallelExecutionError("retries must be non-negative")
        self.task_timeout = float(task_timeout)
        self.retries = int(retries)
        #: Lifetime tallies, mirrored to ``par.*`` metrics when a
        #: session is active: dispatched/completed/retries/fallbacks/restarts.
        self.stats: Dict[str, int] = {
            "dispatched": 0,
            "completed": 0,
            "retries": 0,
            "fallbacks": 0,
            "restarts": 0,
        }
        self._ctx = _pool_context()
        self._procs: List[multiprocessing.Process] = []
        self._tasks = None
        self._results = None
        self._current = None
        self._started = False
        self._closed = False
        self._next_id = 0
        self._inject_crashes = 0
        self._previous_default: Optional["ParallelExecutor"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def started(self) -> bool:
        return self._started

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (introspection/tests)."""
        return [p.pid for p in self._procs if p.is_alive()]

    def start(self) -> "ParallelExecutor":
        """Spawn the pool (idempotent; ``run`` calls this lazily)."""
        if self._closed:
            raise ParallelExecutionError("executor is closed")
        if self._started:
            return self
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._current = self._ctx.Array("q", [_IDLE] * self.workers)
        self._procs = [self._spawn(slot) for slot in range(self.workers)]
        self._started = True
        return self

    def _spawn(self, slot: int) -> multiprocessing.Process:
        proc = self._ctx.Process(
            target=worker_main,
            args=(slot, self._current, self._tasks, self._results),
            daemon=True,
            name=f"repro-par-worker-{slot}",
        )
        proc.start()
        return proc

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):
                break
        deadline = time.monotonic() + 2.0
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._tasks, self._results):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
        self._procs = []

    def __enter__(self) -> "ParallelExecutor":
        self.start()
        self._previous_default = _swap_default(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _swap_default(self._previous_default)
        self._previous_default = None
        self.close()

    # ------------------------------------------------------------------
    # Fault injection (tests)
    # ------------------------------------------------------------------

    def inject_crash(self, shards: int = 1) -> None:
        """Mark the next ``shards`` dispatched shard specs to kill their
        worker mid-task (every attempt crashes; only the in-process
        fallback, which ignores the flag, can complete them)."""
        self._inject_crashes += int(shards)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, specs: Sequence[dict]) -> None:
        """Execute all shard specs; returns once every shard completed.

        Results land in the shared-memory segments the specs name; this
        method only coordinates. Raises only for executor misuse or for
        errors that persist through the in-process fallback (e.g. a
        genuinely invalid operand).
        """
        if self._closed:
            raise ParallelExecutionError("executor is closed")
        specs = [dict(spec) for spec in specs]
        if not specs:
            return
        self.start()
        for spec in specs:
            if self._inject_crashes > 0:
                spec["crash"] = True
                self._inject_crashes -= 1
        self.stats["dispatched"] += len(specs)
        record_par_dispatch(len(specs))
        with span("par.run", shards=len(specs)):
            self._event_loop(specs)

    def _event_loop(self, specs: List[dict]) -> None:
        pending: Dict[int, dict] = {}
        attempts: Dict[int, int] = {}
        for spec in specs:
            task_id = self._next_id
            self._next_id += 1
            pending[task_id] = spec
            attempts[task_id] = 0
            self._tasks.put((task_id, spec))

        claimed_at: Dict[Tuple[int, int], float] = {}
        last_progress = time.monotonic()

        def clear_claims(task_id: int) -> None:
            for key in [k for k in claimed_at if k[1] == task_id]:
                del claimed_at[key]

        def fail(task_id: int) -> None:
            if task_id not in pending:
                return
            clear_claims(task_id)
            attempts[task_id] += 1
            if attempts[task_id] <= self.retries:
                self.stats["retries"] += 1
                record_par_retry()
                self._tasks.put((task_id, pending[task_id]))
            else:
                spec = pending.pop(task_id)
                self.stats["fallbacks"] += 1
                record_par_fallback()
                execute_spec(spec, in_worker=False)
                self.stats["completed"] += 1

        while pending:
            try:
                message = self._results.get(timeout=_POLL_S)
            except queue_mod.Empty:
                message = None
            now = time.monotonic()

            if message is not None:
                kind, task_id = message[0], message[1]
                last_progress = now
                if kind == "done":
                    if task_id in pending:
                        del pending[task_id]
                        clear_claims(task_id)
                        self.stats["completed"] += 1
                        record_par_shard_done(message[3])
                elif kind == "error":
                    fail(task_id)
                continue

            # No message: police the pool.
            for slot, proc in enumerate(self._procs):
                in_flight = self._current[slot]
                if proc.is_alive():
                    if in_flight != _IDLE and in_flight in pending:
                        key = (slot, in_flight)
                        if key not in claimed_at:
                            claimed_at[key] = now
                            last_progress = now
                        elif now - claimed_at[key] > self.task_timeout:
                            proc.terminate()  # hung: reaped as dead below
                    continue
                # Dead worker: replace it, recover its in-flight shard.
                self._current[slot] = _IDLE
                self._procs[slot] = self._spawn(slot)
                self.stats["restarts"] += 1
                record_par_worker_restart()
                last_progress = now
                if in_flight != _IDLE:
                    fail(in_flight)

            # Safety net: a worker that died between dequeuing a task
            # and advertising it leaves the shard in limbo. After a
            # quiet task_timeout, re-enqueue everything unclaimed.
            if now - last_progress > self.task_timeout:
                advertised = {self._current[s] for s in range(self.workers)}
                for task_id in list(pending):
                    if task_id not in advertised:
                        fail(task_id)
                last_progress = now


# ---------------------------------------------------------------------------
# Process-default executor (what engine="parallel" plans dispatch to)
# ---------------------------------------------------------------------------

_DEFAULT: Optional[ParallelExecutor] = None


def _swap_default(executor: Optional[ParallelExecutor]) -> Optional[ParallelExecutor]:
    global _DEFAULT
    previous, _DEFAULT = _DEFAULT, executor
    return previous


def default_executor() -> ParallelExecutor:
    """The process-default pool, created (not started) on first use."""
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.closed:
        _DEFAULT = ParallelExecutor()
    return _DEFAULT


def shutdown_default_executor() -> None:
    """Close the process-default pool, if any."""
    previous = _swap_default(None)
    if previous is not None:
        previous.close()


atexit.register(shutdown_default_executor)
