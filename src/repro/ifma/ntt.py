"""Pease NTT over the IFMA 52-bit-limb kernel.

Three butterfly modes, forming the tuning ladder real IFMA NTTs climb:

* ``"barrett"`` - general-operand Barrett per butterfly (the paper's
  algorithm, re-based to 52-bit limbs);
* ``"shoup"`` - Harvey's precomputed-twiddle product, canonical outputs;
* ``"lazy"`` - Harvey's lazy butterflies: values stay in ``[0, 4q)``
  across stages with no compares/blends on the add/sub paths, reduced to
  canonical form once at the end (the HEXL-style fast path).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NttParameterError
from repro.ifma.kernel import IfmaKernel, LANES
from repro.ntt.twiddles import TwiddleTable, bit_reverse_permutation
from repro.util.checks import check_reduced

MODES = ("barrett", "shoup", "lazy")


class IfmaNtt:
    """An ``n``-point NTT on the IFMA kernel (same dataflow as SimdNtt)."""

    def __init__(
        self,
        n: int,
        q: int,
        root: Optional[int] = None,
        mode: str = "lazy",
    ) -> None:
        self.table = TwiddleTable.get(n, q, root or 0)
        self.kernel = IfmaKernel(q)
        if n < 2 * LANES:
            raise NttParameterError(
                f"a {n}-point NTT cannot fill {LANES}-lane blocks"
            )
        if mode not in MODES:
            raise NttParameterError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self._shoup_cache: Dict = {}

    @property
    def n(self) -> int:
        """Transform size."""
        return self.table.n

    @property
    def q(self) -> int:
        """Modulus."""
        return self.table.q

    def forward(self, values: List[int], natural_order: bool = True) -> List[int]:
        """Forward NTT (canonical output in every mode)."""
        x = self._run_stages(values, inverse=False)
        return bit_reverse_permutation(x) if natural_order else x

    def inverse(self, values: List[int], natural_order: bool = True) -> List[int]:
        """Inverse NTT including the 1/n scaling."""
        x = list(values) if natural_order else bit_reverse_permutation(values)
        x = self._run_stages(x, inverse=True)
        x = bit_reverse_permutation(x)
        kernel = self.kernel
        n_inv = kernel.broadcast_residue(self.table.n_inverse)
        out: List[int] = []
        for base in range(0, len(x), LANES):
            block = kernel.load_block(x[base : base + LANES])
            out.extend(kernel.store_block(kernel.mulmod(block, n_inv)))
        return out

    def _shoup_stage(self, stage: int, inverse: bool) -> List[int]:
        key = (stage, inverse)
        if key not in self._shoup_cache:
            self._shoup_cache[key] = [
                self.kernel.shoup_constant(w)
                for w in self.table.pease_stage_twiddles(stage, inverse)
            ]
        return self._shoup_cache[key]

    def _run_stages(self, values: List[int], inverse: bool) -> List[int]:
        n = self.n
        if len(values) != n:
            raise NttParameterError(f"expected {n} values, got {len(values)}")
        for i, value in enumerate(values):
            check_reduced(value, self.q, f"values[{i}]")

        kernel = self.kernel
        half = n // 2
        lazy = self.mode == "lazy"
        x = list(values)
        for stage in range(self.table.stages):
            twiddles = self.table.pease_stage_twiddles(stage, inverse)
            shoup = (
                self._shoup_stage(stage, inverse)
                if self.mode in ("shoup", "lazy")
                else None
            )
            out = [0] * n
            for base in range(0, half, LANES):
                loader = kernel.load_block_lazy if lazy else kernel.load_block
                top = loader(x[base : base + LANES])
                bottom = loader(x[base + half : base + half + LANES])
                tw = kernel.load_block(twiddles[base : base + LANES])
                if self.mode == "barrett":
                    plus, minus = kernel.butterfly(top, bottom, tw)
                else:
                    # Shoup constants can reach 2^156; load the planes raw.
                    tw_s = kernel._load(
                        shoup[base : base + LANES], bound=1 << 156
                    )
                    if lazy:
                        plus, minus = kernel.butterfly_lazy(top, bottom, tw, tw_s)
                    else:
                        plus, minus = kernel.butterfly_shoup(top, bottom, tw, tw_s)
                blk0, blk1 = kernel.interleave(plus, minus)
                out[2 * base : 2 * base + LANES] = kernel.store_block(blk0)
                out[2 * base + LANES : 2 * base + 2 * LANES] = kernel.store_block(
                    blk1
                )
            x = out

        if lazy:
            # One final normalization pass instead of per-butterfly ones.
            reduced: List[int] = []
            for base in range(0, n, LANES):
                block = kernel.load_block_lazy(x[base : base + LANES])
                reduced.extend(
                    kernel.store_block(kernel.reduce_from_lazy(block))
                )
            x = reduced
        return x
