"""52-bit-limb modular arithmetic on AVX-512 IFMA.

Representation: a residue ``x < q <= 2^124`` is three 52-bit limbs
``(x0, x1, x2)`` with ``x = x0 + x1*2^52 + x2*2^104`` (``x2 < 2^20``),
one ZMM register per limb plane, eight residues per block.

Products column-accumulate with ``vpmadd52luq``/``vpmadd52huq``: the
(i, j) limb product contributes its low 52 bits to column ``i+j`` and its
high bits to column ``i+j+1``; column sums stay below 2^55, far from the
64-bit lane limit, so one carry-normalization pass at the end suffices.
Barrett reduction is the paper's Equation 4 re-derived over the 52-bit
base (moduli of 106-124 bits keep every shift inside a fixed limb
window).

The fast engine reproduces this exact arithmetic as its executable r52
substrate (:mod:`repro.fast.r52`): same 52-bit planes, same
madd52lo/hi column accumulation (via the float64-mantissa high-product
trick), same Shoup products and Harvey-lazy ``[0, 4q)`` stage ranges
with a single final normalization pass. The carry cadence the perf
model charges here (one normalize per stage,
:data:`repro.ifma.perf.LAZY_FINAL_REDUCE_PASSES` whole-transform
reduce passes) is asserted against ``R52Ntt.CARRY_SCHEDULE`` in
``tests/test_ifma.py`` so the model and the engine cannot drift.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.arith.barrett import BarrettParams
from repro.errors import ArithmeticDomainError, BackendError
from repro.isa import avx512 as v
from repro.isa.types import Mask, Vec

LIMB_BITS = 52
MASK52 = (1 << LIMB_BITS) - 1
LANES = 8

#: Supported modulus widths: shifts by beta-1 and beta+1 must land in the
#: limb-2 window (see _shift_down3).
MIN_BETA, MAX_BETA = 106, 124


class IfmaKernel:
    """Modular add/sub/mul/butterfly over 52-bit limbs (8 residues/block)."""

    def __init__(self, q: int) -> None:
        beta = q.bit_length()
        if not MIN_BETA <= beta <= MAX_BETA:
            raise ArithmeticDomainError(
                f"IFMA kernel supports moduli of {MIN_BETA}-{MAX_BETA} bits, "
                f"got {beta}"
            )
        self.q = q
        self.params = BarrettParams(q)
        self.beta = beta

        self.zero = v.mm512_setzero_si512()
        self.m52 = v.mm512_set1_epi64(MASK52)
        self.base = v.mm512_set1_epi64(1 << LIMB_BITS)
        self.base_m1 = v.mm512_set1_epi64((1 << LIMB_BITS) - 1)
        self.q_limbs = self._broadcast_limbs(q)
        self.q2_limbs = self._broadcast_limbs(2 * q)
        self.mu_limbs = self._broadcast_limbs(self.params.mu)

    # ------------------------------------------------------------------
    # Block I/O (52-bit plane layout)
    # ------------------------------------------------------------------

    @staticmethod
    def split_limbs(value: int) -> Tuple[int, int, int]:
        """Split a < 2^156 value into three 52-bit limbs."""
        return (
            value & MASK52,
            (value >> LIMB_BITS) & MASK52,
            value >> (2 * LIMB_BITS),
        )

    def _broadcast_limbs(self, value: int) -> List[Vec]:
        return [v.mm512_set1_epi64(limb) for limb in self.split_limbs(value)]

    def load_block(self, values: Sequence[int]) -> List[Vec]:
        """Load eight residues as three limb-plane registers."""
        return self._load(values, bound=self.q)

    def load_block_lazy(self, values: Sequence[int]) -> List[Vec]:
        """Load a block in Harvey's lazy range ``[0, 4q)``."""
        return self._load(values, bound=4 * self.q)

    def _load(self, values: Sequence[int], bound: int) -> List[Vec]:
        if len(values) != LANES:
            raise BackendError(f"IFMA block takes {LANES} values, got {len(values)}")
        planes = [[], [], []]
        for value in values:
            if not 0 <= value < bound:
                raise ArithmeticDomainError(
                    f"{value} is outside the expected range [0, {bound})"
                )
            limbs = self.split_limbs(value)
            for plane, limb in zip(planes, limbs):
                plane.append(limb)
        return [v.mm512_load_si512(plane) for plane in planes]

    def store_block(self, regs: List[Vec]) -> List[int]:
        """Store three limb planes; returns the residues."""
        for reg in regs:
            v.mm512_store_si512(reg)
        return self.block_values(regs)

    def block_values(self, regs: List[Vec]) -> List[int]:
        """Residue values without memory traffic."""
        return [
            regs[0].lane(i)
            + (regs[1].lane(i) << LIMB_BITS)
            + (regs[2].lane(i) << (2 * LIMB_BITS))
            for i in range(LANES)
        ]

    def broadcast_residue(self, value: int) -> List[Vec]:
        """Broadcast one residue as hoisted constants."""
        if not 0 <= value < self.q:
            raise ArithmeticDomainError(f"{value} is not reduced mod q")
        return self._broadcast_limbs(value)

    # ------------------------------------------------------------------
    # Limb-domain helpers
    # ------------------------------------------------------------------

    def _mul_full(self, a: List[Vec], b: List[Vec]) -> List[Vec]:
        """3x3-limb product, column-accumulated: five canonical limbs.

        The top column's high half is provably zero (both limb-2 operands
        are below 2^21 for 124-bit moduli / Barrett mu), so 17 madd
        instructions cover all contributions.
        """
        cols = [self.zero] * 5
        for i in range(3):
            for j in range(3):
                k = i + j
                cols[k] = v.mm512_madd52lo_epu64(cols[k], a[i], b[j])
                if k + 1 <= 4 and not (i == 2 and j == 2):
                    cols[k + 1] = v.mm512_madd52hi_epu64(cols[k + 1], a[i], b[j])
        # Carry-normalize; the final column needs no mask (t < 2^248).
        out = []
        carry = None
        for k in range(5):
            acc = cols[k] if carry is None else v.mm512_add_epi64(cols[k], carry)
            if k < 4:
                out.append(v.mm512_and_epi64(acc, self.m52))
                carry = v.mm512_srli_epi64(acc, LIMB_BITS)
            else:
                out.append(acc)
        return out

    def _mul_low3(self, a: List[Vec], b: List[Vec]) -> List[Vec]:
        """Low three limbs of a 3x3-limb product (mod 2^156)."""
        cols = [self.zero] * 3
        for i in range(3):
            for j in range(3 - i):
                k = i + j
                cols[k] = v.mm512_madd52lo_epu64(cols[k], a[i], b[j])
                if k + 1 <= 2:
                    cols[k + 1] = v.mm512_madd52hi_epu64(cols[k + 1], a[i], b[j])
        out = []
        carry = None
        for k in range(3):
            acc = cols[k] if carry is None else v.mm512_add_epi64(cols[k], carry)
            out.append(v.mm512_and_epi64(acc, self.m52))
            if k < 2:
                carry = v.mm512_srli_epi64(acc, LIMB_BITS)
        return out

    def _shift_down3(self, limbs5: List[Vec], amount: int) -> List[Vec]:
        """``value >> amount`` of a 5-limb value into 3 limbs.

        ``amount`` must fall in the limb-2 window (104 < amount < 156),
        which the beta range guarantees for both Barrett shifts.
        """
        bit = amount - 2 * LIMB_BITS
        assert 0 < bit < LIMB_BITS, "shift outside the supported window"
        out = []
        for k in range(2):
            low = v.mm512_srli_epi64(limbs5[2 + k], bit)
            high = v.mm512_slli_epi64(limbs5[3 + k], LIMB_BITS - bit)
            out.append(v.mm512_and_epi64(v.mm512_or_epi64(low, high), self.m52))
        out.append(v.mm512_srli_epi64(limbs5[4], bit))
        return out

    def _sub3(self, a: List[Vec], b: List[Vec]) -> Tuple[List[Vec], Mask]:
        """3-limb ``a - b`` mod 2^156 plus a no-borrow mask.

        The base-complement trick: ``v_k = a_k - b_k + (B or B-1) +
        carry``; the final carry word is 1 exactly where no overall
        borrow occurred.
        """
        out = []
        carry = None
        for k in range(3):
            acc = v.mm512_add_epi64(a[k], self.base if k == 0 else self.base_m1)
            if carry is not None:
                acc = v.mm512_add_epi64(acc, carry)
            acc = v.mm512_sub_epi64(acc, b[k])
            out.append(v.mm512_and_epi64(acc, self.m52))
            carry = v.mm512_srli_epi64(acc, LIMB_BITS)
        no_borrow = v.mm512_cmp_epu64_mask(carry, self.zero, v.CMPINT_NLE)
        return out, no_borrow

    def _add3(self, a: List[Vec], b: List[Vec]) -> List[Vec]:
        """3-limb addition with carry normalization (top limb unmasked)."""
        s0 = v.mm512_add_epi64(a[0], b[0])
        s1 = v.mm512_add_epi64(a[1], b[1])
        s2 = v.mm512_add_epi64(a[2], b[2])
        l0 = v.mm512_and_epi64(s0, self.m52)
        c0 = v.mm512_srli_epi64(s0, LIMB_BITS)
        s1 = v.mm512_add_epi64(s1, c0)
        l1 = v.mm512_and_epi64(s1, self.m52)
        c1 = v.mm512_srli_epi64(s1, LIMB_BITS)
        l2 = v.mm512_add_epi64(s2, c1)
        return [l0, l1, l2]

    def _select3(self, mask: Mask, if_true: List[Vec], if_false: List[Vec]) -> List[Vec]:
        return [
            v.mm512_mask_blend_epi64(mask, f, t)
            for t, f in zip(if_true, if_false)
        ]

    def _cond_sub_q(self, c: List[Vec]) -> List[Vec]:
        """``c - q`` where ``c >= q`` (one Barrett correction)."""
        diff, no_borrow = self._sub3(c, self.q_limbs)
        return self._select3(no_borrow, diff, c)

    # ------------------------------------------------------------------
    # Modular operations
    # ------------------------------------------------------------------

    def addmod(self, a: List[Vec], b: List[Vec]) -> List[Vec]:
        """``a + b mod q`` in the 52-bit limb domain."""
        total = self._add3(a, b)
        return self._cond_sub_q(total)

    def submod(self, a: List[Vec], b: List[Vec]) -> List[Vec]:
        """``a - b mod q``: subtract, add ``q`` back where borrowed."""
        diff, no_borrow = self._sub3(a, b)
        fixed = self._add3(diff, self.q_limbs)
        # The add-back wraps mod 2^156, restoring the canonical value; its
        # top limb may carry garbage above bit 52*2+20, masked by use: the
        # wrapped value is < q so limb 2 stays below 2^20.
        fixed = [fixed[0], fixed[1], v.mm512_and_epi64(fixed[2], self.m52)]
        return self._select3(no_borrow, diff, fixed)

    def mulmod(self, a: List[Vec], b: List[Vec]) -> List[Vec]:
        """``a * b mod q``: IFMA product + Barrett over 52-bit limbs."""
        t = self._mul_full(a, b)
        th = self._shift_down3(t, self.beta - 1)
        g = self._mul_full(th, self.mu_limbs)
        estimate = self._shift_down3(g, self.beta + 1)
        p = self._mul_low3(estimate, self.q_limbs)
        c, _ = self._sub3(t[:3], p)
        c = self._cond_sub_q(c)
        return self._cond_sub_q(c)

    def butterfly(
        self, x: List[Vec], y: List[Vec], twiddle: List[Vec]
    ) -> Tuple[List[Vec], List[Vec]]:
        """One NTT butterfly in the limb domain."""
        t = self.mulmod(y, twiddle)
        return self.addmod(x, t), self.submod(x, t)

    # ------------------------------------------------------------------
    # Shoup-twiddle path (Harvey's butterfly, HEXL-style)
    # ------------------------------------------------------------------

    def shoup_constant(self, w: int) -> int:
        """``floor(w * 2^156 / q)``: the per-twiddle Shoup constant.

        2^156 (the limb-domain radix cube) plays the role 2^128 plays in
        the double-word kernels; ``w < q < 2^124`` keeps it in 3 limbs.
        """
        if not 0 <= w < self.q:
            raise ArithmeticDomainError(f"{w} is not reduced mod q")
        return (w << (3 * LIMB_BITS)) // self.q

    def mulmod_shoup(
        self, y: List[Vec], w: List[Vec], w_shoup: List[Vec]
    ) -> List[Vec]:
        """``w * y mod q`` with a precomputed Shoup constant.

        ``t = floor(w' * y / 2^156)`` is the top three limbs of one IFMA
        product; ``r = (w*y - t*q) mod 2^156 < 2q`` needs just the two
        low products and one conditional subtraction - no Barrett shifts,
        no ``mu`` product. (``w'`` has a full-width top limb, so this
        product cannot take :meth:`_mul_full`'s top-column shortcut.)
        """
        full = self._mul_full6(w_shoup, y)
        t_high = full[3:]
        wy_low = self._mul_low3(w, y)
        tq_low = self._mul_low3(t_high, self.q_limbs)
        r, _ = self._sub3(wy_low, tq_low)
        return self._cond_sub_q(r)

    def _mul_full6(self, a: List[Vec], b: List[Vec]) -> List[Vec]:
        """3x3-limb product into six canonical limbs (no shortcuts)."""
        cols = [self.zero] * 6
        for i in range(3):
            for j in range(3):
                k = i + j
                cols[k] = v.mm512_madd52lo_epu64(cols[k], a[i], b[j])
                cols[k + 1] = v.mm512_madd52hi_epu64(cols[k + 1], a[i], b[j])
        out = []
        carry = None
        for k in range(6):
            acc = cols[k] if carry is None else v.mm512_add_epi64(cols[k], carry)
            if k < 5:
                out.append(v.mm512_and_epi64(acc, self.m52))
                carry = v.mm512_srli_epi64(acc, LIMB_BITS)
            else:
                out.append(acc)
        return out

    def butterfly_shoup(
        self,
        x: List[Vec],
        y: List[Vec],
        twiddle: List[Vec],
        twiddle_shoup: List[Vec],
    ) -> Tuple[List[Vec], List[Vec]]:
        """NTT butterfly with the Shoup-precomputed twiddle product."""
        t = self.mulmod_shoup(y, twiddle, twiddle_shoup)
        return self.addmod(x, t), self.submod(x, t)

    # ------------------------------------------------------------------
    # Harvey's lazy butterflies (HEXL-style redundant range [0, 4q))
    # ------------------------------------------------------------------

    def cond_sub_2q(self, x: List[Vec]) -> List[Vec]:
        """``x - 2q`` where ``x >= 2q``: the lazy range restoration."""
        diff, no_borrow = self._sub3(x, self.q2_limbs)
        return self._select3(no_borrow, diff, x)

    def mulmod_shoup_lazy(
        self, y: List[Vec], w: List[Vec], w_shoup: List[Vec]
    ) -> List[Vec]:
        """Shoup product left in ``[0, 2q)`` (Harvey: no final subtract).

        Valid for any ``y < 2^156`` - in particular the lazy range
        ``[0, 4q)`` - because ``w*y - floor(w'*y/2^156)*q < 2q`` holds
        whenever ``y`` fits the radix.
        """
        full = self._mul_full6(w_shoup, y)
        t_high = full[3:]
        wy_low = self._mul_low3(w, y)
        tq_low = self._mul_low3(t_high, self.q_limbs)
        r, _ = self._sub3(wy_low, tq_low)
        return r

    def butterfly_lazy(
        self,
        x: List[Vec],
        y: List[Vec],
        twiddle: List[Vec],
        twiddle_shoup: List[Vec],
    ) -> Tuple[List[Vec], List[Vec]]:
        """Harvey's lazy butterfly: inputs and outputs in ``[0, 4q)``.

        No comparisons or blends on the add/sub paths:

            x~ = x - 2q if x >= 2q        (in [0, 2q))
            t  = lazy Shoup product       (in [0, 2q))
            out+ = x~ + t                 (in [0, 4q))
            out- = x~ - t + 2q            (in (0, 4q))

        A transform using this butterfly reduces its outputs once at the
        end (:meth:`reduce_from_lazy`) instead of inside every butterfly -
        the optimization that makes HEXL-class NTTs fast.
        """
        x_tilde = self.cond_sub_2q(x)
        t = self.mulmod_shoup_lazy(y, twiddle, twiddle_shoup)
        plus = self._add3(x_tilde, t)
        shifted = self._add3(x_tilde, self.q2_limbs)
        minus, _ = self._sub3(shifted, t)
        return plus, minus

    def reduce_from_lazy(self, x: List[Vec]) -> List[Vec]:
        """Bring a lazy-range value (``< 4q``) back to canonical ``[0, q)``."""
        return self._cond_sub_q(self.cond_sub_2q(x))

    def lazy_values(self, regs: List[Vec]) -> List[int]:
        """Lane values of a lazy-range block (may exceed ``q``)."""
        return self.block_values(regs)

    def interleave(self, even: List[Vec], odd: List[Vec]) -> Tuple[List[Vec], List[Vec]]:
        """Pease output shuffle, one permute per limb plane."""
        idx_lo = Vec((0, 8, 1, 9, 2, 10, 3, 11))
        idx_hi = Vec((4, 12, 5, 13, 6, 14, 7, 15))
        out0, out1 = [], []
        for e, o in zip(even, odd):
            out0.append(v.mm512_permutex2var_epi64(e, idx_lo, o))
            out1.append(v.mm512_permutex2var_epi64(e, idx_hi, o))
        return out0, out1
