"""Runtime estimation for IFMA NTTs (mirrors repro.perf.estimator)."""

from __future__ import annotations

import random

from repro.errors import ExperimentError
from repro.ifma.kernel import IfmaKernel, LANES
from repro.ifma.ntt import MODES
from repro.isa.trace import Tracer, tracing
from repro.machine.cache import CacheModel
from repro.machine.cpu import CpuSpec
from repro.machine.scheduler import schedule_trace
from repro.machine.uops import get_microarch
from repro.perf.estimator import KernelCost, NttEstimate, _trace_bytes

_SEED = 0x1F3A

#: Whole-transform normalization passes the lazy mode pays after the
#: last stage (one ``reduce_from_lazy`` sweep over all ``n`` residues).
#: The fast engine's r52 substrate implements the same cadence — its
#: ``R52Ntt.CARRY_SCHEDULE["final_reduce_passes"]`` is asserted equal
#: to this constant in ``tests/test_ifma.py`` so the model and the
#: executable engine cannot drift apart.
LAZY_FINAL_REDUCE_PASSES = 1

#: Harvey's lazy bound: butterflies keep values in ``[0, 4q)`` between
#: stages (must match ``R52Ntt.CARRY_SCHEDULE["lazy_bound_multiple"]``
#: and the ``load_block_lazy`` bound in :mod:`repro.ifma.kernel`).
LAZY_BOUND_MULTIPLE = 4


def _trace_stage_block(kernel: IfmaKernel, q: int, mode: str) -> Tracer:
    """One Pease stage block in the requested butterfly mode."""
    rng = random.Random(_SEED)
    top_vals = [rng.randrange(q) for _ in range(LANES)]
    bot_vals = [rng.randrange(q) for _ in range(LANES)]
    w = rng.randrange(q)
    with tracing(f"ifma-{mode}-stage-block") as trace:
        loader = kernel.load_block_lazy if mode == "lazy" else kernel.load_block
        top = loader(top_vals)
        bottom = loader(bot_vals)
        tw = kernel.load_block([w] * LANES)
        if mode == "barrett":
            plus, minus = kernel.butterfly(top, bottom, tw)
        else:
            tw_s = kernel._load([kernel.shoup_constant(w)] * LANES, bound=1 << 156)
            if mode == "lazy":
                plus, minus = kernel.butterfly_lazy(top, bottom, tw, tw_s)
            else:
                plus, minus = kernel.butterfly_shoup(top, bottom, tw, tw_s)
        blk0, blk1 = kernel.interleave(plus, minus)
        kernel.store_block(blk0)
        kernel.store_block(blk1)
    return trace


def _trace_reduce_block(kernel: IfmaKernel, q: int) -> Tracer:
    """One block of the lazy mode's final normalization pass."""
    rng = random.Random(_SEED)
    vals = [rng.randrange(4 * q) for _ in range(LANES)]
    with tracing("ifma-lazy-reduce") as trace:
        block = kernel.load_block_lazy(vals)
        kernel.store_block(kernel.reduce_from_lazy(block))
    return trace


def estimate_ifma_ntt(
    n: int, q: int, cpu: CpuSpec, mode: str = "lazy"
) -> NttEstimate:
    """Model an ``n``-point IFMA NTT on one core."""
    if mode not in MODES:
        raise ExperimentError(f"mode must be one of {MODES}, got {mode!r}")
    if n < 2 * LANES:
        raise ExperimentError(f"n={n} cannot fill {LANES}-lane blocks")
    kernel = IfmaKernel(q)
    stages = n.bit_length() - 1
    blocks_per_stage = n // (2 * LANES)

    trace = _trace_stage_block(kernel, q, mode)
    microarch = get_microarch(cpu.microarch)
    schedule = schedule_trace(trace, microarch)
    cost = KernelCost(schedule, _trace_bytes(trace))
    cache = CacheModel(cpu)

    # Residues are three 64-bit planes (24 bytes); Shoup/lazy modes keep a
    # second, wider twiddle table resident.
    bytes_per_residue = 24
    twiddle_tables = 2 if mode in ("shoup", "lazy") else 1
    working_set = (
        2 * n * bytes_per_residue + twiddle_tables * (n // 2) * bytes_per_residue
    )
    per_block = cost.cycles_per_block(
        cache, working_set, independent_blocks=max(1, blocks_per_stage)
    )
    compute = schedule.throughput_cycles(max(1, blocks_per_stage))
    memory = cache.memory_cycles(cost.traffic, working_set)

    cycles = per_block * blocks_per_stage * stages
    if mode == "lazy":
        reduce_trace = _trace_reduce_block(kernel, q)
        reduce_sched = schedule_trace(reduce_trace, microarch)
        reduce_cost = KernelCost(reduce_sched, _trace_bytes(reduce_trace))
        cycles += (
            reduce_cost.cycles_per_block(
                cache, working_set, independent_blocks=max(1, n // LANES)
            )
            * (n // LANES)
            * LAZY_FINAL_REDUCE_PASSES
        )

    ns = cycles / cpu.measured_ghz
    butterflies = (n // 2) * stages
    return NttEstimate(
        backend=f"ifma-{mode}",
        cpu=cpu.key,
        n=n,
        q=q,
        algorithm="ifma52",
        cycles=cycles,
        ns=ns,
        ns_per_butterfly=ns / butterflies,
        compute_bound=compute >= memory,
        memory_level=cache.level_name(working_set),
        block_schedule=schedule,
    )
