"""AVX-512 IFMA52 kernels: the platform-tuned alternative (extension).

Both evaluation CPUs support AVX-512 IFMA (``vpmadd52luq``/``vpmadd52huq``),
the fused 52-bit multiply-add that Intel HEXL builds its big-integer
kernels on - one instruction where the portable AVX-512F/DQ emulation of a
widening multiply needs ~15. The paper's printed kernels are portable
(Listing 2 style); its measured binaries are further tuned, and IFMA is
the most plausible tuning lever. This package implements that lever:

* residues live in base 2^52 (three limbs per 124-bit value),
* products are column-accumulated with ``vpmadd52``,
* the Barrett algorithm is unchanged, re-derived over 52-bit limbs.

The extension experiment shows IFMA roughly doubles the portable AVX-512
kernel's throughput in the model - which closes most of the documented
divergence between our modeled AVX-512-over-scalar gap and the paper's
measured 2.4x.
"""

from repro.ifma.kernel import IfmaKernel
from repro.ifma.ntt import IfmaNtt

__all__ = ["IfmaKernel", "IfmaNtt"]
