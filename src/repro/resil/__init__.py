"""repro.resil: resilience for the parallel batch engine.

Fault-injection, retry/backoff, circuit breaking, deadline budgets,
payload integrity, and engine-cascade degradation for :mod:`repro.par`
(see docs/RESILIENCE.md):

* :mod:`repro.resil.policy` — :class:`RetryPolicy` (exponential backoff,
  deterministic seedable jitter), :class:`Deadline` batch budgets,
  :class:`CircuitBreaker` (closed/open/half-open);
* :mod:`repro.resil.integrity` — per-shard CRC-32 checksums over the
  shared-memory limb buffers, plus sampled cross-engine audits against
  the faithful engine (:func:`audit_shards`);
* :mod:`repro.resil.inject` — the deterministic chaos harness
  (:class:`FaultPlan`: crash / hang / corrupt / slow at chosen shard
  indices), also driving ``python -m repro chaos``;
* :mod:`repro.resil.degrade` — :func:`resolve_engine`, the
  parallel → fast → faithful cascade that keeps ``engine="parallel"``
  construction sites from hard-failing on availability problems.

Everything reports through ``resil.*`` / ``par.integrity.*`` metrics on
the active :mod:`repro.obs` session.
"""

from repro.resil.degrade import (
    EngineDegradedWarning,
    numpy_available,
    resolve_engine,
)
from repro.resil.inject import FAULT_KINDS, Fault, FaultPlan
from repro.resil.policy import (
    BREAKER_STATES,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)

#: Names served lazily from :mod:`repro.resil.integrity`, which needs
#: NumPy — deferring keeps ``repro.resil`` (and through it the
#: faithful-engine call sites) importable without it.
_INTEGRITY_NAMES = ("audit_shards", "shard_checksum")


def __getattr__(name: str):
    if name in _INTEGRITY_NAMES:
        from repro.resil import integrity

        return getattr(integrity, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "Deadline",
    "EngineDegradedWarning",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "RetryPolicy",
    "audit_shards",
    "numpy_available",
    "resolve_engine",
    "shard_checksum",
]
