"""Payload integrity for shared-memory shards: checksums + faithful audit.

Two independent lines of defence around the ``repro.par`` data path:

**Checksums (cheap, always-on by default).** Each batch allocates one
extra tiny shared segment holding a uint64 slot per shard. After a
worker writes its result rows into the output segment, it computes a
CRC-32 over a shape/dtype/bounds header plus the written payload bytes
and stores it in its slot. On collection the executor recomputes the
CRC from the shared pages it is about to trust; a mismatch means the
payload changed between the worker's write and collection (or the
worker wrote garbage) and is treated as a *retryable fault*
(``par.integrity.corrupt``), re-dispatching the shard.

**Cross-engine audit (sampled, opt-in).** :func:`audit_shards`
re-computes a seeded sample of completed shards on the *faithful*
engine — the lane-accurate ISA simulation the fast and parallel engines
are bit-exact against — directly from the input segments, and compares
against the collected payload. Divergence here means corruption
survived every checksum and retry, so it raises
:class:`~repro.errors.ResilIntegrityError` instead of recovering.
This mirrors the self-check practice of production kernels (HEXL-style
correctness checks around AVX512-IFMA, reference validation in GPU
modular-arithmetic codegen stacks).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ResilienceError, ResilIntegrityError
from repro.obs.hooks import record_integrity_audit, record_integrity_divergence

#: Spec key naming the checksum segment (absent = integrity disabled).
SUMS_KEY = "sums"


def spec_bounds(spec: dict) -> Tuple[int, int]:
    """The ``[start, stop)`` slice of the output axis a spec owns."""
    bounds = spec["rows"] if "rows" in spec else spec["elems"]
    return int(bounds[0]), int(bounds[1])


def shard_checksum(view: np.ndarray, bounds: Sequence[int], shape: Sequence[int]) -> int:
    """CRC-32 of one shard: shape/dtype/bounds header + payload bytes.

    The header pins down the geometry, so a checksum can never validate
    bytes reinterpreted under a different shape or slice.
    """
    header = (
        f"{tuple(int(s) for s in shape)}|{view.dtype.str}|"
        f"{int(bounds[0])}:{int(bounds[1])}"
    ).encode()
    crc = zlib.crc32(header)
    payload = np.ascontiguousarray(view[int(bounds[0]) : int(bounds[1])])
    return zlib.crc32(payload.tobytes(), crc) & 0xFFFFFFFF


def write_checksum(spec: dict, out_view: np.ndarray, sums_view: np.ndarray) -> None:
    """Worker side: store this shard's checksum in its sums slot."""
    bounds = spec_bounds(spec)
    sums_view[int(spec["shard_index"])] = shard_checksum(
        out_view, bounds, spec["shape"]
    )


def verify_checksum(spec: dict, out_view: np.ndarray, sums_view: np.ndarray) -> bool:
    """Collector side: recompute the shard CRC and compare to the slot."""
    bounds = spec_bounds(spec)
    expected = int(sums_view[int(spec["shard_index"])])
    return shard_checksum(out_view, bounds, spec["shape"]) == expected


# ---------------------------------------------------------------------------
# Cross-engine audit (faithful recomputation of sampled shards)
# ---------------------------------------------------------------------------


def _faithful_rows(view: np.ndarray, bounds: Tuple[int, int]) -> List[List[int]]:
    from repro.fast.limbs import limbs_to_ints

    return [limbs_to_ints(view[i]) for i in range(bounds[0], bounds[1])]


def _recompute_faithful(spec: dict, views: Dict[str, np.ndarray]) -> List[List[int]]:
    """One shard's rows, recomputed on the faithful (ISA-simulated) engine."""
    from repro.blas.ops import BlasPlan
    from repro.fast.limbs import limbs_to_ints
    from repro.kernels import get_backend
    from repro.ntt.negacyclic import NegacyclicNtt
    from repro.ntt.simd import SimdNtt

    backend = get_backend("scalar")
    op = spec["op"]
    bounds = spec_bounds(spec)
    if op == "ntt":
        plan = SimdNtt(spec["n"], spec["q"], backend, root=spec["root"])
        method = plan.forward if spec["direction"] == "forward" else plan.inverse
        return [
            method(row, natural_order=spec["natural_order"])
            for row in _faithful_rows(views["x"], bounds)
        ]
    if op == "negacyclic_mul":
        plan = NegacyclicNtt(spec["n"], spec["q"], backend, psi=spec["psi"])
        return [
            plan.multiply(f, g)
            for f, g in zip(
                _faithful_rows(views["x"], bounds),
                _faithful_rows(views["y"], bounds),
            )
        ]
    if op == "cyclic_mul":
        plan = SimdNtt(spec["n"], spec["q"], backend, root=spec["root"])
        q = spec["q"]
        out = []
        for f, g in zip(
            _faithful_rows(views["x"], bounds), _faithful_rows(views["y"], bounds)
        ):
            fa = plan.forward(f, natural_order=False)
            ga = plan.forward(g, natural_order=False)
            prod = [a * b % q for a, b in zip(fa, ga)]
            out.append(plan.inverse(prod, natural_order=False))
        return out
    if op == "blas":
        plan = BlasPlan(spec["q"], backend)
        x = limbs_to_ints(views["x"][bounds[0] : bounds[1]])
        y = limbs_to_ints(views["y"][bounds[0] : bounds[1]])
        blas_op = spec["blas_op"]
        if blas_op == "axpy":
            return [plan.axpy(spec["a"], x, y)]
        return [getattr(plan, blas_op)(x, y)]
    if op == "chain":
        return _faithful_chain(spec, views, bounds, backend)
    raise ResilienceError(f"cannot audit unknown parallel op {op!r}")


def _faithful_chain(
    spec: dict,
    views: Dict[str, np.ndarray],
    bounds: Tuple[int, int],
    backend,
) -> List[List[int]]:
    """Interpret a fused chain step-by-step on the faithful engine.

    Mirrors :func:`repro.fast.chain.run_chain` with every primitive
    replaced by its ISA-simulated (or exact big-int) counterpart:
    :class:`~repro.ntt.simd.SimdNtt` transforms, explicit psi-power
    twists, schoolbook pointwise products and
    :class:`~repro.blas.ops.BlasPlan` vector ops.
    """
    from repro.arith.modular import inv_mod
    from repro.blas.ops import BlasPlan
    from repro.ntt.simd import SimdNtt

    n, q = int(spec["n"]), int(spec["q"])
    plan = SimdNtt(n, q, backend, root=spec["root"])
    blas = BlasPlan(q, backend)
    psi = spec.get("psi")
    twist = untwist = None
    if psi is not None:
        psi_inv = inv_mod(int(psi), q)
        twist = [pow(int(psi), i, q) for i in range(n)]
        untwist = [pow(psi_inv, i, q) for i in range(n)]
    input_rows = {
        name: _faithful_rows(views[name], bounds) for name in spec["inputs"]
    }
    out: List[List[int]] = []
    for row in range(bounds[1] - bounds[0]):
        regs = {name: rows[row] for name, rows in input_rows.items()}
        for step in spec["steps"]:
            kind = step["kind"]
            if kind == "ntt":
                method = (
                    plan.inverse
                    if step["direction"] == "inverse"
                    else plan.forward
                )
                regs[step["dst"]] = method(
                    regs[step["src"]],
                    natural_order=bool(step.get("natural", False)),
                )
            elif kind == "twist":
                tw = untwist if step["which"] == "untwist" else twist
                if tw is None:
                    raise ResilienceError(
                        "cannot audit a chain twist step without psi"
                    )
                regs[step["dst"]] = [
                    v * t % q for v, t in zip(regs[step["src"]], tw)
                ]
            elif kind == "pointwise":
                regs[step["dst"]] = [
                    a * b % q
                    for a, b in zip(regs[step["a"]], regs[step["b"]])
                ]
            elif kind == "blas":
                blas_op = step["blas_op"]
                if blas_op == "axpy":
                    regs[step["dst"]] = blas.axpy(
                        int(step["a"]), regs[step["x"]], regs[step["y"]]
                    )
                else:
                    regs[step["dst"]] = getattr(blas, blas_op)(
                        regs[step["x"]], regs[step["y"]]
                    )
            else:
                raise ResilienceError(
                    f"cannot audit unknown chain step kind {kind!r}"
                )
        out.append(regs["out"])
    return out


def sample_specs(
    specs: Sequence[dict], fraction: float, seed: int
) -> List[dict]:
    """A seeded sample of ``specs``; at least one when ``fraction > 0``."""
    if not 0.0 <= fraction <= 1.0:
        raise ResilienceError("audit fraction must be within [0, 1]")
    if fraction == 0.0 or not specs:
        return []
    rng = random.Random(seed)
    sampled = [spec for spec in specs if rng.random() < fraction]
    if not sampled:
        sampled = [specs[rng.randrange(len(specs))]]
    return sampled


def audit_shards(
    specs: Sequence[dict],
    fraction: float,
    seed: int = 0,
    attach=None,
) -> int:
    """Re-run a sample of completed shards on the faithful engine.

    ``specs`` are the (completed) task specs of one batch; segments they
    name must still be mapped. ``attach`` overrides the segment
    attacher (tests); it defaults to :func:`repro.par.shm.attach_segment`.
    Returns the number of shards audited; raises
    :class:`~repro.errors.ResilIntegrityError` on any divergence.
    """
    from repro.fast.limbs import limbs_to_ints
    from repro.par import shm

    attach = attach or shm.attach_segment
    sampled = sample_specs(specs, fraction, seed)
    if not sampled:
        return 0
    for spec in sampled:
        segments = []
        try:
            views: Dict[str, np.ndarray] = {}
            keys = list(
                dict.fromkeys(["x", "y", "out", *(spec.get("inputs") or ())])
            )
            for key in keys:
                if key in spec and isinstance(spec[key], str):
                    seg = attach(spec[key])
                    segments.append(seg)
                    views[key] = shm.segment_view(seg, spec["shape"])
            expected = _recompute_faithful(spec, views)
            bounds = spec_bounds(spec)
            if spec["op"] == "blas":
                got = [limbs_to_ints(views["out"][bounds[0] : bounds[1]])]
            else:
                got = _faithful_rows(views["out"], bounds)
            del views
            if got != expected:
                record_integrity_divergence()
                raise ResilIntegrityError(
                    f"faithful audit diverged for op {spec['op']!r} "
                    f"shard {spec.get('shard_index', '?')} "
                    f"(bounds {bounds}): parallel result does not match "
                    f"the faithful engine"
                )
        finally:
            for seg in segments:
                shm.detach_segment(seg)
    record_integrity_audit(len(sampled))
    return len(sampled)
