"""Retry, deadline, and circuit-breaker policies for the parallel engine.

Three small, composable primitives that :class:`~repro.par.executor.ParallelExecutor`
threads through its event loop:

* :class:`RetryPolicy` — how many times a failed shard is re-enqueued
  and how long to wait between attempts (exponential backoff with
  *deterministic, seedable* jitter: the same ``(seed, attempt)`` pair
  always yields the same delay, so chaos tests replay exactly).
* :class:`Deadline` — a wall-clock budget for one whole batch. When it
  expires, every still-pending shard short-circuits to the in-process
  fallback instead of waiting out further retries.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine over consecutive shard failures. An open breaker routes whole
  batches to the in-process fast engine; after ``cooldown_s`` one probe
  batch is allowed through the pool, and its outcome closes or re-opens
  the breaker.

All three take an injectable ``clock`` (defaulting to
:func:`time.monotonic`) so tests control time instead of sleeping.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from repro.errors import ResilienceError

#: Breaker states (:attr:`CircuitBreaker.state` is always one of these).
BREAKER_STATES = ("closed", "open", "half_open")


class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Args:
        max_attempts: Total tries per shard (first execution included);
            a shard that fails ``max_attempts`` times degrades to the
            in-process fallback. Must be >= 1.
        base_delay_s: Delay before the first retry; ``0.0`` (the
            default) re-enqueues immediately, preserving the historical
            executor behavior.
        multiplier: Backoff growth factor per additional attempt.
        max_delay_s: Upper clamp on any single delay.
        jitter: Fraction in ``[0, 1]`` of symmetric random spread applied
            to each delay (``0.1`` means +-10%).
        seed: Seed for the jitter stream. Jitter is a pure function of
            ``(seed, attempt)`` — no global RNG, no wall clock — so two
            runs with the same policy back off identically.
    """

    def __init__(
        self,
        max_attempts: int = 2,
        base_delay_s: float = 0.0,
        multiplier: float = 2.0,
        max_delay_s: float = 1.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ResilienceError("max_attempts must be >= 1")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ResilienceError("delays must be non-negative")
        if multiplier < 1.0:
            raise ResilienceError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ResilienceError("jitter must be within [0, 1]")
        self.max_attempts = int(max_attempts)
        self.base_delay_s = float(base_delay_s)
        self.multiplier = float(multiplier)
        self.max_delay_s = float(max_delay_s)
        self.jitter = float(jitter)
        self.seed = int(seed)

    def should_retry(self, attempts: int) -> bool:
        """Whether a shard that failed ``attempts`` times gets another try."""
        return attempts < self.max_attempts

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), in seconds."""
        if attempt < 1:
            raise ResilienceError(f"attempt must be >= 1, got {attempt}")
        if self.base_delay_s == 0.0:
            return 0.0
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter:
            # Deterministic per (seed, attempt): replayable chaos runs.
            rng = random.Random(f"{self.seed}:{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay_s={self.base_delay_s}, multiplier={self.multiplier}, "
            f"max_delay_s={self.max_delay_s}, jitter={self.jitter}, "
            f"seed={self.seed})"
        )


class Deadline:
    """A wall-clock budget for one batch of shards.

    ``Deadline(5.0)`` expires five seconds after construction; the
    executor checks it each event-loop turn and short-circuits every
    still-pending shard to the in-process fallback once it expires.

    Thread-safe: the serve layer checks one deadline from the asyncio
    loop while the dispatcher thread polls it, so reads take a lock.
    """

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s <= 0:
            raise ResilienceError("deadline budget must be positive")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._expires_at = clock() + self.budget_s

    def remaining_s(self) -> float:
        """Seconds until expiry (never negative)."""
        with self._lock:
            return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """Whether the budget is spent."""
        with self._lock:
            return self._clock() >= self._expires_at


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive shard failures.

    *Closed* (healthy): every dispatch is allowed; ``failure_threshold``
    consecutive failures trip the breaker. *Open*: dispatches are
    refused (the executor runs those batches in-process on the fast
    engine) until ``cooldown_s`` has elapsed. *Half-open*: exactly one
    probe dispatch is allowed through the pool; a success closes the
    breaker, a failure re-opens it and restarts the cooldown.

    State transitions are reported through ``on_transition(new_state)``
    when provided (the executor wires this to the ``resil.breaker.*``
    metrics).

    Thread-safe: the serve layer shares one breaker between the asyncio
    loop, the executor's poll path, and exporter threads, so every state
    read and transition holds an internal re-entrant lock. Without it,
    two racing ``allow()`` calls in half-open state could both observe
    ``_probe_outstanding == False`` and double-admit the single probe.
    ``on_transition`` is invoked while the lock is held; callbacks must
    not call back into the breaker (metric bumps are fine).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ResilienceError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ResilienceError("cooldown_s must be non-negative")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.RLock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False

    @property
    def state(self) -> str:
        """Current state, cooldown-aware (an elapsed open reads half_open)."""
        with self._lock:
            if self._state == "open" and (
                self._clock() - self._opened_at >= self.cooldown_s
            ):
                self._transition("half_open")
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def _transition(self, state: str) -> None:
        # Caller holds self._lock.
        if state == self._state:
            return
        self._state = state
        if state != "half_open":
            self._probe_outstanding = False
        if self._on_transition is not None:
            self._on_transition(state)

    def allow(self) -> bool:
        """Whether the next dispatch may use the pool.

        In half-open state only the first caller gets ``True`` (the
        probe); everyone else is refused until the probe resolves.
        """
        with self._lock:
            state = self.state
            if state == "closed":
                return True
            if state == "half_open" and not self._probe_outstanding:
                self._probe_outstanding = True
                return True
            return False

    def record_failure(self) -> None:
        """Account one shard failure (crash, hang, corrupt payload)."""
        with self._lock:
            if self.state == "half_open":
                # The probe failed: back to open, restart the cooldown.
                self._opened_at = self._clock()
                self._transition("open")
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition("open")

    def record_success(self) -> None:
        """Account one shard completed (and verified) by the pool."""
        with self._lock:
            self._consecutive_failures = 0
            if self.state == "half_open":
                self._transition("closed")

    def reset(self) -> None:
        """Force-close the breaker (tests, operator intervention)."""
        with self._lock:
            self._consecutive_failures = 0
            self._transition("closed")

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
