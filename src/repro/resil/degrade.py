"""The engine cascade: parallel → fast → faithful, never hard-fail.

``engine="parallel"`` (and ``engine="fast"``) are *performance*
requests, not correctness requests — all three engines are bit-exact.
So a plan construction site should never raise because the requested
engine happens to be unavailable; it should run the same computation on
the next engine down and say so. :func:`resolve_engine` encodes that
cascade and is called by every engine-switch call site
(:class:`~repro.ntt.simd.SimdNtt`, :class:`~repro.ntt.negacyclic.NegacyclicNtt`,
:class:`~repro.blas.ops.BlasPlan`, :class:`~repro.rns.poly.RnsPolynomialRing`).

Degradation triggers:

* **missing NumPy** — both the fast and parallel engines need it;
  requests degrade all the way to ``"faithful"``;
* **open circuit breaker** — the process-default pool's breaker is
  open (too many consecutive shard failures), so ``"parallel"``
  degrades to ``"fast"`` until the breaker's half-open probe succeeds;
* **pool-start failure** — the last attempt to spawn workers failed
  (fork refused, resource limits); ``"parallel"`` degrades to
  ``"fast"`` for :data:`POOL_START_RETRY_S` seconds before the pool is
  eligible again;
* **operator override** — ``REPRO_DISABLE_PARALLEL=1`` in the
  environment forces ``"parallel"`` requests onto ``"fast"``.

Every degradation emits an :class:`EngineDegradedWarning` and a
``resil.degraded`` metric (with a per-reason sibling counter), so a
service that silently stopped using the pool is visible in any profile.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Optional, Tuple

from repro.obs.hooks import record_resil_degraded

#: Seconds a failed pool start keeps ``"parallel"`` degraded to
#: ``"fast"`` before construction sites try the pool again.
POOL_START_RETRY_S = 60.0


class EngineDegradedWarning(UserWarning):
    """A requested execution engine was unavailable; a slower one ran."""


_numpy_probe: Optional[bool] = None
_pool_start_failed_at: Optional[float] = None


def numpy_available() -> bool:
    """Whether the NumPy-backed engines can run (probe result cached)."""
    if os.environ.get("REPRO_FORCE_NO_NUMPY") == "1":
        return False
    global _numpy_probe
    if _numpy_probe is None:
        try:
            import numpy  # noqa: F401

            _numpy_probe = True
        except ImportError:
            _numpy_probe = False
    return _numpy_probe


def note_pool_start_failure() -> None:
    """Record that spawning the worker pool failed (executor calls this)."""
    global _pool_start_failed_at
    _pool_start_failed_at = time.monotonic()


def note_pool_start_success() -> None:
    """Record a healthy pool start, clearing any degradation window."""
    global _pool_start_failed_at
    _pool_start_failed_at = None


def _pool_start_blocked() -> bool:
    if _pool_start_failed_at is None:
        return False
    if time.monotonic() - _pool_start_failed_at >= POOL_START_RETRY_S:
        note_pool_start_success()
        return False
    return True


def _default_pool_breaker_open() -> bool:
    """Whether the process-default executor's breaker refuses dispatches.

    Peeks without creating an executor: an app that never touched the
    pool should not pay for one here.
    """
    from repro.par import executor as par_executor

    pool = par_executor._DEFAULT
    return pool is not None and not pool.closed and pool.breaker.state == "open"


def _resolve(requested: str) -> Tuple[str, Optional[str]]:
    if requested == "parallel":
        if not numpy_available():
            return "faithful", "numpy_missing"
        if os.environ.get("REPRO_DISABLE_PARALLEL") == "1":
            return "fast", "disabled"
        if _pool_start_blocked():
            return "fast", "pool_start_failed"
        if _default_pool_breaker_open():
            return "fast", "breaker_open"
    elif requested == "fast":
        if not numpy_available():
            return "faithful", "numpy_missing"
    return requested, None


def resolve_engine(requested: str, site: str = "plan") -> str:
    """The engine that will actually run, after the availability cascade.

    ``requested`` must already be a valid engine name (call sites
    validate first, with their own error types). ``site`` names the
    construction site in the warning text. Identity for ``"faithful"``
    and for available engines; otherwise returns the next engine down,
    warns, and bumps ``resil.degraded`` metrics.
    """
    resolved, reason = _resolve(requested)
    if resolved != requested:
        record_resil_degraded(requested, resolved, reason)
        warnings.warn(
            f"{site}: engine {requested!r} unavailable ({reason}); "
            f"degrading to {resolved!r} (results stay bit-identical)",
            EngineDegradedWarning,
            stacklevel=3,
        )
    return resolved
