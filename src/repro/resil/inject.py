"""Deterministic fault injection for the parallel batch engine.

A :class:`FaultPlan` maps *dispatch-order shard indices* to
:class:`Fault` instances. The executor consumes the plan as it
dispatches: shard number ``i`` (counting every shard the executor has
dispatched since the plan was armed, across batches) receives
``plan.fault_for(i)``, serialized into its task spec. Workers act on
the fault *only inside a real worker process* — the in-process fallback
ignores faults, which is what lets every chaos scenario still converge
to bit-exact results.

Fault kinds:

* ``"crash"`` — the worker ``os._exit``\\ s before computing (the
  executor sees a dead process and recovers the advertised shard);
* ``"hang"`` — the worker sleeps past ``task_timeout`` and is
  terminated (recovered like a crash);
* ``"corrupt"`` — the worker computes the shard, writes the *correct*
  checksum, then flips bits in the shared-memory payload — modelling
  in-flight corruption that only the integrity check can catch;
* ``"slow"`` — the worker sleeps briefly, then completes normally
  (exercises late completions racing the executor's re-enqueue logic).

Faults are one-shot by default: a retried shard runs clean. ``sticky``
faults persist across retries (the legacy ``inject_crash`` semantics,
where only the in-process fallback can complete the shard).

Plans are deterministic: :meth:`FaultPlan.random` derives placements
from an explicit seed, so a failing chaos run is replayable from its
seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

from repro.errors import ResilienceError

#: Fault kinds a worker knows how to act on.
FAULT_KINDS = ("crash", "hang", "corrupt", "slow")


@dataclass(frozen=True)
class Fault:
    """One injected fault: what goes wrong and for how long.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        seconds: Sleep duration for ``"hang"`` / ``"slow"`` faults.
        sticky: Whether the fault survives re-enqueue (every retry
            fails too, forcing the in-process fallback).
    """

    kind: str
    seconds: float = 0.0
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ResilienceError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.seconds < 0:
            raise ResilienceError("fault seconds must be non-negative")

    def to_spec(self) -> Dict[str, object]:
        """The picklable form embedded in a task spec."""
        return {"kind": self.kind, "seconds": self.seconds, "sticky": self.sticky}


class FaultPlan:
    """Faults keyed by dispatch-order shard index.

    ``FaultPlan({0: Fault("crash"), 3: Fault("corrupt")})`` crashes the
    first dispatched shard's worker and corrupts the fourth's payload.
    Indices count *every* shard dispatched while the plan is armed, so
    one plan can span several batches.
    """

    def __init__(self, faults: Optional[Mapping[int, Fault]] = None) -> None:
        self._faults: Dict[int, Fault] = {}
        for index, fault in (faults or {}).items():
            if index < 0:
                raise ResilienceError(
                    f"shard index must be non-negative, got {index}"
                )
            if not isinstance(fault, Fault):
                raise ResilienceError(
                    f"fault for shard {index} must be a Fault, got {fault!r}"
                )
            self._faults[int(index)] = fault

    @classmethod
    def random(
        cls,
        seed: int,
        shards: int,
        crash: float = 0.0,
        hang: float = 0.0,
        corrupt: float = 0.0,
        slow: float = 0.0,
        hang_s: float = 60.0,
        slow_s: float = 0.05,
    ) -> "FaultPlan":
        """A seeded random plan over ``shards`` dispatch slots.

        Each rate is an independent per-shard probability; when several
        kinds are drawn for one shard, the most destructive wins
        (crash > hang > corrupt > slow). The same ``seed`` always yields
        the same plan.
        """
        if shards < 0:
            raise ResilienceError("shards must be non-negative")
        for name, rate in (
            ("crash", crash), ("hang", hang), ("corrupt", corrupt), ("slow", slow)
        ):
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(f"{name} rate must be within [0, 1]")
        rng = random.Random(seed)
        faults: Dict[int, Fault] = {}
        for index in range(shards):
            draws = {kind: rng.random() for kind in FAULT_KINDS}
            if draws["crash"] < crash:
                faults[index] = Fault("crash")
            elif draws["hang"] < hang:
                faults[index] = Fault("hang", seconds=hang_s)
            elif draws["corrupt"] < corrupt:
                faults[index] = Fault("corrupt")
            elif draws["slow"] < slow:
                faults[index] = Fault("slow", seconds=slow_s)
        return cls(faults)

    def fault_for(self, index: int) -> Optional[Fault]:
        """The fault assigned to dispatch slot ``index``, if any."""
        return self._faults.get(index)

    def counts(self) -> Dict[str, int]:
        """Number of planned faults by kind (reporting)."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for fault in self._faults.values():
            out[fault.kind] += 1
        return out

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._faults))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{kind}={count}" for kind, count in self.counts().items() if count
        )
        return f"FaultPlan({len(self)} faults{': ' + parts if parts else ''})"


def apply_fault_to_spec(spec: dict, fault: Optional[Fault]) -> dict:
    """Embed ``fault`` into a task spec (no-op for ``None``)."""
    if fault is not None:
        spec["fault"] = fault.to_spec()
    return spec


def strip_transient_fault(spec: dict) -> dict:
    """Drop a non-sticky fault before re-enqueue (retries run clean)."""
    fault = spec.get("fault")
    if fault is not None and not fault.get("sticky"):
        spec = dict(spec)
        del spec["fault"]
    return spec
