"""The ``python -m repro chaos`` harness: injected faults, exact results.

Runs the parallel batch engine through a gauntlet of deterministic fault
scenarios — worker crashes, hangs past ``task_timeout``, payload
corruption behind a valid checksum, slow stragglers, a tripped circuit
breaker, an instantly-expired batch deadline — and verifies after every
one that the results are **bit-identical** to the fast engine (plus a
faithful-engine spot check), that the breaker recovers, and that no
shared-memory segment leaks. Every scenario derives its fault placement
from the ``--seed``, so a failing run is replayable from its command
line alone.

This is the acceptance harness for :mod:`repro.resil` (see
docs/RESILIENCE.md) and runs as a CI smoke job.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.resil.inject import Fault, FaultPlan
from repro.resil.policy import CircuitBreaker

#: Scenario registry order (reporting only).
SCENARIOS = (
    "ntt.roundtrip",
    "negacyclic.multiply",
    "blas.ops",
    "rns.fused_mul",
    "chain.multiply_add",
    "stale.stragglers",
    "telemetry.merged_trace",
    "breaker.trip_recover",
    "deadline.short_circuit",
    "serve.breaker_live_load",
    "serve.kill_worker",
    "interrupt.during_batch",
)


def _merged_plan(seed: int, slots: int, forced: Dict[int, Fault], **rates) -> FaultPlan:
    """A seeded random plan with deterministic faults forced on top."""
    plan = FaultPlan.random(seed, slots, **rates)
    faults = {index: plan.fault_for(index) for index in plan}
    faults.update(forced)
    return FaultPlan(faults)


def run_chaos(
    workers: int = 2,
    seed: int = 0,
    logn: int = 8,
    batch: int = 8,
    limbs: int = 3,
    crash: float = 0.2,
    hang: float = 0.0,
    corrupt: float = 0.2,
    slow: float = 0.15,
    task_timeout: float = 3.0,
    audit: float = 0.25,
    rounds: int = 2,
    export: str = "none",
    output_dir: str = ".",
    incident_dir: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> int:
    """Run every chaos scenario; returns a process exit code (0 = pass).

    With ``incident_dir`` set, a :class:`~repro.obs.flight.FlightRecorder`
    rides along for the whole gauntlet and the breaker-trip scenarios
    additionally assert that tripping the breaker under live load dumped
    an ``incident-*.json`` whose trace slice reaches back before the
    trigger (the flight recorder's whole point: the lead-up is captured).
    """
    import numpy as np  # noqa: F401  (the engines under test need it)

    from repro.fast.blas import FastBlasPlan
    from repro.fast.ntt import FastNegacyclic, FastNtt
    from repro.kernels import get_backend
    from repro.ntt.simd import SimdNtt
    from repro.obs import observing
    from repro.par import shm
    from repro.par.api import ParBlasPlan, ParNegacyclic, ParNtt
    from repro.par.executor import ParallelExecutor
    from repro.rns.basis import RnsBasis
    from repro.rns.poly import RnsPolynomialRing

    n = 1 << logn
    arena_base = shm.arena_segments()  # other live pools' arenas
    rng = random.Random(seed)
    basis = RnsBasis.generate(limbs, 62, 2 * n)
    q = basis.primes[0]
    scalar = get_backend("scalar")
    results: List[Tuple[str, bool, str]] = []

    def scenario(name: str, fn: Callable[[], None]) -> None:
        started = time.perf_counter()
        try:
            fn()
        except Exception as exc:  # a failed scenario must not stop the rest
            results.append((name, False, f"{type(exc).__name__}: {exc}"))
        else:
            results.append((name, True, ""))
        status = "PASS" if results[-1][1] else "FAIL"
        emit(
            f"  [{status}] {name:24s} ({time.perf_counter() - started:5.2f}s)"
            + (f" — {results[-1][2]}" if results[-1][2] else "")
        )

    def expect(condition: bool, message: str) -> None:
        if not condition:
            raise AssertionError(message)

    rates = dict(
        crash=crash, hang=hang, corrupt=corrupt, slow=slow,
        hang_s=task_timeout + 1.0, slow_s=0.05,
    )
    shards_per_call = min(workers, batch)

    emit(
        f"chaos: n=2^{logn}, batch={batch}, {workers} workers, seed={seed}, "
        f"rates crash={crash} hang={hang} corrupt={corrupt} slow={slow}"
    )

    flight = None
    if incident_dir is not None:
        from repro.obs.flight import FlightRecorder

        # cooldown_s=0: the gauntlet trips the breaker in two separate
        # scenarios minutes of real time apart from nothing — each must
        # produce its own dump rather than being rate-limited away.
        flight = FlightRecorder(
            out_dir=incident_dir, cooldown_s=0.0, post_trigger_s=0.2
        )

    with observing() as session:
        if flight is not None:
            flight.attach(session)
        # adaptive=False: scenarios seed fault plans against a known
        # shards-per-call, so shard counts must stay deterministic.
        with ParallelExecutor(
            workers=workers,
            task_timeout=task_timeout,
            audit_fraction=audit,
            audit_seed=seed,
            adaptive=False,
        ) as pool:

            def ntt_roundtrip() -> None:
                plan = ParNtt(n, q, executor=pool)
                reference = FastNtt(n, q, table=plan.plan.table)
                faithful = SimdNtt(n, q, scalar, root=plan.plan.table.root)
                pool.inject(_merged_plan(
                    seed,
                    rounds * 2 * shards_per_call,
                    {0: Fault("crash"), 1: Fault("corrupt"),
                     2: Fault("slow", seconds=0.05)},
                    **rates,
                ))
                for _ in range(rounds):
                    data = [
                        [rng.randrange(q) for _ in range(n)]
                        for _ in range(batch)
                    ]
                    spectra = plan.forward(data)
                    expect(
                        spectra == reference.forward(data),
                        "forward diverged from the fast engine",
                    )
                    expect(
                        spectra[0] == faithful.forward(data[0]),
                        "forward diverged from the faithful engine",
                    )
                    expect(
                        plan.inverse(spectra) == data,
                        "inverse did not round-trip",
                    )
                pool.inject(None)

            def negacyclic_multiply() -> None:
                plan = ParNegacyclic(n, q, executor=pool)
                reference = FastNegacyclic(n, q, psi=plan.psi)
                pool.inject(_merged_plan(
                    seed + 1,
                    rounds * shards_per_call,
                    {0: Fault("hang", seconds=task_timeout + 1.0)},
                    **rates,
                ))
                for _ in range(rounds):
                    f = [
                        [rng.randrange(q) for _ in range(n)]
                        for _ in range(batch)
                    ]
                    g = [
                        [rng.randrange(q) for _ in range(n)]
                        for _ in range(batch)
                    ]
                    expect(
                        plan.multiply(f, g) == reference.multiply(f, g),
                        "negacyclic product diverged from the fast engine",
                    )
                pool.inject(None)

            def blas_ops() -> None:
                plan = ParBlasPlan(q, executor=pool)
                reference = FastBlasPlan(q)
                pool.inject(_merged_plan(
                    seed + 2,
                    rounds * 2 * workers,
                    {0: Fault("corrupt")},
                    **rates,
                ))
                for _ in range(rounds):
                    x = [rng.randrange(q) for _ in range(batch * n)]
                    y = [rng.randrange(q) for _ in range(batch * n)]
                    a = rng.randrange(q)
                    expect(
                        plan.vector_mul(x, y) == reference.vector_mul(x, y),
                        "vector_mul diverged from the fast engine",
                    )
                    expect(
                        plan.axpy(a, x, y) == reference.axpy(a, x, y),
                        "axpy diverged from the fast engine",
                    )
                pool.inject(None)

            def rns_fused_mul() -> None:
                backend = get_backend("mqx")
                ring = RnsPolynomialRing(
                    n, basis, backend, engine="parallel"
                )
                ring_fast = RnsPolynomialRing(
                    n, basis, backend, engine="fast"
                )
                pool.inject(_merged_plan(
                    seed + 3,
                    rounds * limbs,
                    {0: Fault("crash")},
                    **rates,
                ))
                for _ in range(rounds):
                    coeffs_f = [
                        rng.randrange(basis.modulus) for _ in range(n)
                    ]
                    coeffs_g = [
                        rng.randrange(basis.modulus) for _ in range(n)
                    ]
                    product = ring.mul(ring.encode(coeffs_f), ring.encode(coeffs_g))
                    expected = ring_fast.mul(
                        ring_fast.encode(coeffs_f), ring_fast.encode(coeffs_g)
                    )
                    expect(
                        product.residues == expected.residues,
                        "fused RNS product diverged from the fast engine",
                    )
                pool.inject(None)

            def chain_multiply_add() -> None:
                plan = ParNegacyclic(n, q, executor=pool)
                reference = FastNegacyclic(n, q, psi=plan.psi)
                blas = FastBlasPlan(q)
                pool.inject(_merged_plan(
                    seed + 4,
                    rounds * shards_per_call,
                    {0: Fault("crash"), 1: Fault("corrupt")},
                    **rates,
                ))
                for _ in range(rounds):
                    f = [
                        [rng.randrange(q) for _ in range(n)]
                        for _ in range(batch)
                    ]
                    g = [
                        [rng.randrange(q) for _ in range(n)]
                        for _ in range(batch)
                    ]
                    acc = [
                        [rng.randrange(q) for _ in range(n)]
                        for _ in range(batch)
                    ]
                    expected = blas.vector_add(reference.multiply(f, g), acc)
                    expect(
                        plan.multiply_add(f, g, acc) == expected,
                        "fused multiply_add diverged from the fast engine",
                    )
                pool.inject(None)
                chains = session.metrics.get("par.fused.chains")
                expect(
                    chains is not None and chains.value >= shards_per_call,
                    "fused chain shards were not metered",
                )

            def stale_stragglers() -> None:
                plan = ParNtt(n, q, executor=pool)
                reference = FastNtt(n, q, table=plan.plan.table)
                base = {
                    key: pool.stats[key]
                    for key in ("stale", "stale_superseded", "stale_recovered")
                }
                # Forge the two straggler flavors into the results queue:
                # a task id that no batch owns (an already-*recovered*
                # shard reporting after its retry won), and the next real
                # task id carrying a wrong generation (*superseded* by
                # its own re-enqueue). Both must be discarded — the batch
                # stays bit-exact — and both must be metered.
                pool._results.put(("done", 10**9, 0, 0, 0.0))
                pool._results.put(("done", pool._next_id, 99, 0, 0.0))
                data = [
                    [rng.randrange(q) for _ in range(n)] for _ in range(batch)
                ]
                expect(
                    plan.forward(data) == reference.forward(data),
                    "batch with forged stragglers diverged",
                )
                expect(
                    pool.stats["stale"] - base["stale"] >= 2,
                    "forged stragglers were not counted as stale",
                )
                expect(
                    pool.stats["stale_recovered"]
                    - base["stale_recovered"] >= 1,
                    "recovered-flavor straggler was dropped unmetered",
                )
                expect(
                    pool.stats["stale_superseded"]
                    - base["stale_superseded"] >= 1,
                    "superseded-flavor straggler was dropped unmetered",
                )
                for name in (
                    "par.stale_results",
                    "par.stale_results.recovered",
                    "par.stale_results.superseded",
                ):
                    metric = session.metrics.get(name)
                    expect(
                        metric is not None and metric.value >= 1,
                        f"{name} was not recorded",
                    )

            def telemetry_merged_trace() -> None:
                from repro.obs import dist

                plan = ParNtt(n, q, executor=pool)
                data = [
                    [rng.randrange(q) for _ in range(n)] for _ in range(batch)
                ]
                plan.forward(data)
                compute = [
                    record
                    for record in session.spans.records
                    if record.name == "par.worker.compute"
                ]
                expect(bool(compute), "no worker compute spans were merged")
                for record in compute:
                    expect(
                        record.attrs.get("batch") is not None
                        and record.attrs.get("shard") is not None
                        and record.attrs.get("attempt") is not None,
                        "merged worker span lost its correlation ids",
                    )
                lanes = dist.worker_lane_pids(session.spans.records)
                expect(
                    len(lanes) >= 1, "no worker lanes in the merged spans"
                )
                blobs = session.metrics.get("par.telemetry.blobs")
                expect(
                    blobs is not None and blobs.value >= 1,
                    "no worker telemetry blobs were merged",
                )

            scenario("ntt.roundtrip", ntt_roundtrip)
            scenario("negacyclic.multiply", negacyclic_multiply)
            scenario("blas.ops", blas_ops)
            scenario("rns.fused_mul", rns_fused_mul)
            scenario("chain.multiply_add", chain_multiply_add)
            scenario("stale.stragglers", stale_stragglers)
            scenario("telemetry.merged_trace", telemetry_merged_trace)

        def breaker_trip_recover() -> None:
            from repro.obs.hooks import record_breaker_transition

            breaker = CircuitBreaker(
                failure_threshold=2,
                cooldown_s=0.5,
                on_transition=record_breaker_transition,
            )
            with ParallelExecutor(
                workers=workers,
                task_timeout=task_timeout,
                retries=0,
                breaker=breaker,
                adaptive=False,
            ) as pool2:
                plan = ParNtt(n, q, executor=pool2)
                reference = FastNtt(n, q, table=plan.plan.table)
                data = [
                    [rng.randrange(q) for _ in range(n)] for _ in range(batch)
                ]
                # Every shard of the first batch crashes; with no retry
                # budget each one falls back in-process and counts a
                # consecutive failure, tripping the breaker.
                pool2.inject(FaultPlan({
                    index: Fault("crash", sticky=True)
                    for index in range(shards_per_call)
                }))
                expect(
                    plan.forward(data) == reference.forward(data),
                    "crashing batch diverged",
                )
                pool2.inject(None)
                expect(
                    breaker.state == "open",
                    f"breaker should be open, is {breaker.state!r}",
                )
                # Open breaker: the next batch routes around the pool
                # (in-process fast engine), still bit-exact.
                expect(
                    plan.forward(data) == reference.forward(data),
                    "degraded batch diverged",
                )
                degraded = session.metrics.get("resil.degraded.breaker_open")
                expect(
                    degraded is not None and degraded.value >= 1,
                    "open breaker did not record a degradation",
                )
                time.sleep(breaker.cooldown_s + 0.05)
                expect(
                    breaker.state == "half_open",
                    f"cooldown elapsed but breaker is {breaker.state!r}",
                )
                # Half-open: the next batch is the probe; it runs clean,
                # closing the breaker.
                expect(
                    plan.forward(data) == reference.forward(data),
                    "probe batch diverged",
                )
                expect(
                    breaker.state == "closed",
                    f"probe succeeded but breaker is {breaker.state!r}",
                )

        def deadline_short_circuit() -> None:
            with ParallelExecutor(
                workers=workers,
                task_timeout=task_timeout,
                batch_deadline_s=1e-9,
                adaptive=False,
            ) as pool3:
                plan = ParNtt(n, q, executor=pool3)
                reference = FastNtt(n, q, table=plan.plan.table)
                data = [
                    [rng.randrange(q) for _ in range(n)] for _ in range(batch)
                ]
                # The budget is already spent when the event loop first
                # checks it: every shard short-circuits to in-process
                # execution instead of waiting on the pool.
                expect(
                    plan.forward(data) == reference.forward(data),
                    "deadline-expired batch diverged",
                )
                expired = session.metrics.get("resil.deadline.expired")
                expect(
                    expired is not None and expired.value >= 1,
                    "expired deadline was not recorded",
                )

        def serve_breaker_live_load() -> None:
            import asyncio

            from repro.obs.hooks import record_breaker_transition
            from repro.serve import ReproService, ServeConfig

            incidents_before = len(flight.incidents) if flight is not None else 0
            breaker = CircuitBreaker(
                failure_threshold=2,
                cooldown_s=0.4,
                on_transition=record_breaker_transition,
            )
            reference = None

            def make_pairs(count: int) -> list:
                return [
                    (
                        [rng.randrange(q) for _ in range(n)],
                        [rng.randrange(q) for _ in range(n)],
                    )
                    for _ in range(count)
                ]

            async def drive(pool4) -> None:
                service = ReproService(
                    executor=pool4,
                    config=ServeConfig(
                        engine="parallel",
                        max_batch=4,
                        max_wait_s=0.002,
                        breaker_mode="degrade",
                    ),
                )
                await service.start()
                try:
                    # Wave 1: every shard crashes sticky; the breaker
                    # trips mid-load while requests are still in flight.
                    pool4.inject(FaultPlan({
                        index: Fault("crash", sticky=True)
                        for index in range(64)
                    }))
                    pairs = make_pairs(12)
                    got = await asyncio.gather(*(
                        service.submit("polymul", pair, n, q)
                        for pair in pairs
                    ))
                    pool4.inject(None)
                    expect(
                        got == [reference.multiply([f], [g])[0]
                                for f, g in pairs],
                        "responses diverged while the breaker tripped",
                    )
                    expect(
                        breaker.state == "open",
                        f"breaker should be open, is {breaker.state!r}",
                    )
                    # Wave 2: open breaker — the service degrades every
                    # batch to the in-process fast engine, still exact.
                    pairs = make_pairs(8)
                    got = await asyncio.gather(*(
                        service.submit("polymul", pair, n, q)
                        for pair in pairs
                    ))
                    expect(
                        got == [reference.multiply([f], [g])[0]
                                for f, g in pairs],
                        "degraded responses diverged",
                    )
                    # Wave 3: after cooldown the next batch is the
                    # half-open probe; it runs clean and closes the
                    # breaker.
                    await asyncio.sleep(breaker.cooldown_s + 0.05)
                    pairs = make_pairs(8)
                    got = await asyncio.gather(*(
                        service.submit("polymul", pair, n, q)
                        for pair in pairs
                    ))
                    expect(
                        got == [reference.multiply([f], [g])[0]
                                for f, g in pairs],
                        "post-recovery responses diverged",
                    )
                finally:
                    await service.close()
                expect(
                    service.stats["completed"] == service.stats["submitted"],
                    "serve accounting lost a request",
                )

            with ParallelExecutor(
                workers=workers,
                task_timeout=task_timeout,
                retries=0,
                breaker=breaker,
                adaptive=False,
            ) as pool4:
                plan = ParNegacyclic(n, q, executor=pool4)
                reference = FastNegacyclic(n, q, psi=plan.psi)
                asyncio.run(drive(pool4))
            expect(
                breaker.state == "closed",
                f"probe succeeded but breaker is {breaker.state!r}",
            )
            degraded = session.metrics.get("serve.degraded.breaker_open")
            expect(
                degraded is not None and degraded.value >= 1,
                "open-breaker degradation was not metered by serve",
            )
            if flight is not None:
                # The breaker opening mid-load must have dumped an
                # incident whose trace slice starts before the trigger.
                import json as json_mod

                flight.flush()
                fresh = flight.incidents[incidents_before:]
                expect(
                    bool(fresh),
                    "breaker tripped under live load but no incident "
                    "was dumped",
                )
                dump = None
                for path in fresh:
                    candidate = json_mod.loads(path.read_text())
                    trig = candidate.get("trigger", {})
                    rules = [trig.get("rule")] + [
                        extra.get("rule")
                        for extra in trig.get("also", [])
                    ]
                    if "breaker_open" in rules:
                        dump = candidate
                        break
                expect(
                    dump is not None,
                    "no fresh incident carries the breaker_open trigger",
                )
                expect(
                    dump.get("captured", {}).get("pre_trigger_spans", 0) >= 1,
                    "incident trace slice holds no pre-trigger spans",
                )
                expect(
                    bool(dump.get("trace", {}).get("traceEvents")),
                    "incident dump has an empty Perfetto trace slice",
                )

        def serve_kill_worker() -> None:
            import asyncio
            import os
            import signal

            from repro.serve import ReproService, ServeConfig

            reference = None

            async def drive(pool5) -> None:
                service = ReproService(
                    executor=pool5,
                    config=ServeConfig(
                        engine="parallel",
                        max_batch=4,
                        max_wait_s=0.002,
                    ),
                )
                await service.start()
                try:
                    pairs = [
                        (
                            [rng.randrange(q) for _ in range(n)],
                            [rng.randrange(q) for _ in range(n)],
                        )
                        for _ in range(32)
                    ]
                    tasks = [
                        asyncio.ensure_future(
                            service.submit("polymul", pair, n, q)
                        )
                        for pair in pairs
                    ]
                    # Let the first batches reach the pool, then kill a
                    # live worker outright mid-load.
                    await asyncio.sleep(0.01)
                    victims = pool5.worker_pids()
                    expect(bool(victims), "pool reported no worker pids")
                    os.kill(victims[0], signal.SIGKILL)
                    got = await asyncio.gather(*tasks)
                    expect(
                        got == [reference.multiply([f], [g])[0]
                                for f, g in pairs],
                        "a killed worker corrupted a response",
                    )
                finally:
                    await service.close()
                expect(
                    service.stats["completed"] == service.stats["submitted"],
                    "serve accounting lost a request",
                )

            with ParallelExecutor(
                workers=workers,
                task_timeout=task_timeout,
                adaptive=False,
            ) as pool5:
                plan = ParNegacyclic(n, q, executor=pool5)
                reference = FastNegacyclic(n, q, psi=plan.psi)
                asyncio.run(drive(pool5))
                expect(
                    pool5.stats["restarts"] >= 1,
                    "killed worker was never restarted",
                )

        def interrupt_during_batch() -> None:
            import signal as signal_mod

            with ParallelExecutor(
                workers=workers,
                task_timeout=task_timeout,
                adaptive=False,
            ) as pool6:
                plan = ParNtt(n, q, executor=pool6)
                reference = FastNtt(n, q, table=plan.plan.table)
                data = [
                    [rng.randrange(q) for _ in range(n)] for _ in range(batch)
                ]
                # Slow every shard so the batch outlives the alarm; the
                # interrupt lands while the event loop is polling.
                pool6.inject(FaultPlan({
                    index: Fault("slow", seconds=0.5)
                    for index in range(shards_per_call)
                }))

                def on_alarm(signum, frame):  # noqa: ARG001
                    raise KeyboardInterrupt

                previous = signal_mod.signal(signal_mod.SIGALRM, on_alarm)
                interrupted = False
                try:
                    signal_mod.setitimer(signal_mod.ITIMER_REAL, 0.1)
                    try:
                        plan.forward(data)
                    except KeyboardInterrupt:
                        interrupted = True
                finally:
                    signal_mod.setitimer(signal_mod.ITIMER_REAL, 0.0)
                    signal_mod.signal(signal_mod.SIGALRM, previous)
                pool6.inject(None)
                expect(interrupted, "the interrupt never reached the batch")
                expect(
                    pool6.stats["interrupted"] >= 1,
                    "the interrupt was not metered",
                )
                # The pool must still be serviceable after the abort:
                # a fresh batch runs clean and bit-exact.
                expect(
                    plan.forward(data) == reference.forward(data),
                    "post-interrupt batch diverged",
                )
            metric = session.metrics.get("par.interrupted")
            expect(
                metric is not None and metric.value >= 1,
                "par.interrupted was not recorded",
            )

        scenario("breaker.trip_recover", breaker_trip_recover)
        scenario("deadline.short_circuit", deadline_short_circuit)
        scenario("serve.breaker_live_load", serve_breaker_live_load)
        scenario("serve.kill_worker", serve_kill_worker)
        scenario("interrupt.during_batch", interrupt_during_batch)

        emit("")
        for name in (
            "par.shards.dispatched",
            "par.shards.completed",
            "par.retries",
            "par.fallbacks",
            "par.workers.restarted",
            "par.workers.hung",
            "par.stale_results",
            "par.stale_results.superseded",
            "par.stale_results.recovered",
            "par.limbo.requeued",
            "par.arena.leases",
            "par.arena.reuses",
            "par.fused.chains",
            "par.fused.steps",
            "par.integrity.corrupt",
            "par.integrity.audited",
            "par.interrupted",
            "resil.degraded",
            "resil.breaker.open",
            "resil.breaker.closed",
            "resil.deadline.expired",
            "serve.requests.admitted",
            "serve.requests.completed",
            "serve.batches",
            "serve.degraded",
        ):
            metric = session.metrics.get(name)
            emit(f"  {name}: {metric.value if metric is not None else 0:g}")

        if flight is not None:
            flight.flush()  # finalize any trigger still in its aftermath
            flight.detach()
            emit("")
            emit(
                f"  incidents: {len(flight.incidents)} dumped to "
                f"{incident_dir}/"
            )
            for path in flight.incidents:
                emit(f"    {path}")

    formats = [] if export == "none" else export.split("+")
    if formats:
        # A gauntlet failure ships with a timeline: the merged trace
        # shows every retry, fallback, and worker lane of the run.
        import json
        from pathlib import Path

        from repro.obs.export import (
            to_chrome_trace,
            to_jsonl,
            validate_chrome_trace,
        )

        try:
            out = Path(output_dir)
            out.mkdir(parents=True, exist_ok=True)
            if "chrome" in formats:
                trace = to_chrome_trace(session.spans.records, "repro:chaos")
                validate_chrome_trace(trace)
                path = out / "trace_chaos.json"
                path.write_text(json.dumps(trace, indent=1))
                emit(f"  wrote {path}")
            if "jsonl" in formats:
                path = out / "obs_chaos.jsonl"
                path.write_text(
                    to_jsonl(
                        session.spans.records,
                        session.metrics.snapshot(),
                        session.events,
                    )
                )
                emit(f"  wrote {path}")
        except Exception as exc:
            results.append(
                ("trace.export", False, f"{type(exc).__name__}: {exc}")
            )
        else:
            results.append(("trace.export", True, ""))

    leaked = shm.created_segments()
    if leaked:
        results.append(("shm.no_leaks", False, f"{leaked} segments leaked"))
        emit(f"  [FAIL] shm.no_leaks — {leaked} segments leaked")
    else:
        results.append(("shm.no_leaks", True, ""))
    held = shm.arena_segments() - arena_base
    if held:
        results.append(
            ("shm.arena_reclaimed", False, f"{held} arena segments held")
        )
        emit(f"  [FAIL] shm.arena_reclaimed — {held} arena segments held")
    else:
        results.append(("shm.arena_reclaimed", True, ""))

    passed = sum(1 for _, ok, _ in results if ok)
    emit("")
    emit(f"chaos: {passed}/{len(results)} checks passed")
    return 0 if passed == len(results) else 1
