"""Deterministic load generator + latency benchmark for the serve layer.

Three phases, all seeded and all inside one ``observing()`` session so
the run leaves a single merged trace:

1. **Batched** — drive ``requests`` concurrent client submissions per
   op through a coalescing service (``max_batch``, ``max_wait_s``),
   recording per-request p50/p99 latency and throughput, and verifying
   every response bit-exact against a direct fast-engine reference.
2. **Baseline** — the same traffic one-request-at-a-time (``max_batch=1``,
   sequential closed loop). ``coalesce_gain`` is batched throughput
   over baseline throughput; the CI gate demands >= 3x.
3. **Overload** — an open-loop burst at 2x the measured batched
   capacity against a deliberately small admission queue. Asserts the
   service sheds (typed, metered), that *every* submitted request is
   accounted (completed + failed + shed == submitted — overload is
   never silent), and that the p99 of *admitted* requests stays bounded
   by the queue-depth cap rather than growing with offered load.

Results land in ``BENCH_serve.json`` via the snapshot store (p50/p99 as
``_ms`` keys, so ``python -m repro perfgate`` trend-gates them;
ratios/rates as ungated keys), and the merged trace exports to
``trace_serve.json`` with the usual worker lanes.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arith.primes import find_ntt_prime
from repro.errors import ServeOverloadError
from repro.serve.service import ReproService, ServeConfig

#: Ops the default loadgen mix drives (one transform-ish, one BLAS).
DEFAULT_OPS: Tuple[str, ...] = ("polymul", "blas.vector_mul")

#: Snapshot keys gated by the in-process tail check (p99 <= tail x p50).
GATE_SUFFIXES = ("p50_ms", "p99_ms")


def _percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _payloads(
    op: str, n: int, q: int, count: int, rng: random.Random
) -> List[Tuple[List[int], List[int]]]:
    return [
        (
            [rng.randrange(q) for _ in range(n)],
            [rng.randrange(q) for _ in range(n)],
        )
        for _ in range(count)
    ]


def _reference(op: str, n: int, q: int, payloads) -> List[List[int]]:
    """Direct fast-engine results to verify served responses against."""
    from repro.fast import FastBlasPlan, FastNegacyclic

    if op == "polymul":
        plan = FastNegacyclic(n, q)
        return plan.multiply([p[0] for p in payloads], [p[1] for p in payloads])
    if op.startswith("blas."):
        plan = FastBlasPlan(q)
        method = getattr(plan, op[len("blas."):])
        return method([p[0] for p in payloads], [p[1] for p in payloads])
    raise ValueError(f"loadgen has no reference for op {op!r}")


async def _drive_concurrent(
    service: ReproService, op: str, n: int, q: int, payloads, tenants: int = 1
) -> Tuple[List[object], List[float], float]:
    """Submit all payloads concurrently; returns (results, latencies, wall_s).

    Requests rotate round-robin over ``tenants`` synthetic tenant names
    (``t0``..) so the per-tenant latency histograms and SLO windows see
    a multi-tenant mix instead of one aggregate stream.
    """
    latencies: List[float] = []

    async def one(idx, payload):
        started = time.perf_counter()
        result = await service.submit(
            op, payload, n, q, tenant=f"t{idx % tenants}"
        )
        latencies.append(time.perf_counter() - started)
        return result

    started = time.perf_counter()
    results = await asyncio.gather(
        *(one(i, p) for i, p in enumerate(payloads))
    )
    await service.flush()
    await service.join()
    wall_s = time.perf_counter() - started
    return list(results), latencies, wall_s


def _hist_p99_ms(name: str) -> float:
    """p99 of a live-session histogram, in ms (0.0 without session/data)."""
    from repro.obs.session import current

    session = current()
    if session is None or name not in session.metrics:
        return 0.0
    snap = session.metrics.histogram(name).snapshot()
    if not snap.get("count"):
        return 0.0
    return float(snap.get("p99", 0.0)) * 1e3


async def _drive_sequential(
    service: ReproService, op: str, n: int, q: int, payloads
) -> Tuple[List[object], float]:
    """One-request-at-a-time closed loop (the un-coalesced baseline)."""
    results = []
    started = time.perf_counter()
    for payload in payloads:
        results.append(await service.submit(op, payload, n, q))
    wall_s = time.perf_counter() - started
    return results, wall_s


async def _drive_overload(
    service: ReproService, op: str, n: int, q: int, payloads, rate_rps: float
) -> Dict[str, object]:
    """Open-loop submission at ``rate_rps``; classify every outcome."""
    loop = asyncio.get_running_loop()
    latencies: List[float] = []
    outcomes = {"completed": 0, "shed": 0, "failed": 0}

    async def one(payload):
        started = time.perf_counter()
        try:
            await service.submit(op, payload, n, q)
        except ServeOverloadError:
            outcomes["shed"] += 1
        except Exception:
            outcomes["failed"] += 1
        else:
            outcomes["completed"] += 1
            latencies.append(time.perf_counter() - started)

    interval = 1.0 / rate_rps if rate_rps > 0 else 0.0
    tasks = []
    next_at = loop.time()
    for payload in payloads:
        tasks.append(loop.create_task(one(payload)))
        next_at += interval
        delay = next_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
    await asyncio.gather(*tasks)
    await service.flush()
    await service.join()
    return {"outcomes": outcomes, "latencies": latencies}


def run_loadgen(
    ops: Sequence[str] = DEFAULT_OPS,
    logn: int = 8,
    requests: int = 192,
    baseline_requests: int = 48,
    workers: int = 2,
    seed: int = 0,
    engine: str = "parallel",
    max_batch: int = 32,
    max_wait_s: float = 0.005,
    tenants: int = 4,
    slo_p99_ms: Optional[float] = None,
    overload_queue_depth: int = 64,
    overload_factor: float = 2.0,
    overload_duration_s: float = 0.75,
    min_gain: float = 3.0,
    gate_tail: Optional[float] = 50.0,
    snapshot: Optional[str] = None,
    export_formats: Sequence[str] = (),
    output_dir: str = ".",
    emit: Callable[[str], None] = print,
) -> int:
    """Run the full loadgen gauntlet; returns a process exit code."""
    from repro.obs import observing
    from repro.obs.export import to_chrome_trace

    n = 1 << logn
    q = find_ntt_prime(60, 2 * n)
    rng = random.Random(seed)
    failures: List[str] = []
    values: Dict[str, float] = {}

    emit(
        f"loadgen: n=2^{logn}, q={q.bit_length()}-bit, engine={engine}, "
        f"{workers} workers, {requests} reqs/op batched "
        f"(max_batch={max_batch}, max_wait={max_wait_s * 1e3:g}ms), "
        f"{baseline_requests} baseline, seed={seed}"
    )

    with observing() as session:
        asyncio.run(
            _run_phases(
                ops, n, q, rng, requests, baseline_requests, workers, engine,
                max_batch, max_wait_s, tenants, slo_p99_ms,
                overload_queue_depth, overload_factor,
                overload_duration_s, min_gain, gate_tail, values, failures,
                emit,
            )
        )
        if "chrome" in export_formats:
            out = Path(output_dir)
            out.mkdir(parents=True, exist_ok=True)
            trace = to_chrome_trace(session.spans.records, "repro:serve")
            path = out / "trace_serve.json"
            path.write_text(json.dumps(trace, indent=1))
            emit(f"trace: {path} ({len(trace['traceEvents'])} events)")

    if snapshot:
        from repro.obs.snapshot import SnapshotStore

        SnapshotStore(snapshot).record(values, label="loadgen")
        emit(f"snapshot: {snapshot} ({len(values)} keys)")

    for failure in failures:
        emit(f"FAIL: {failure}")
    emit("loadgen: " + ("FAIL" if failures else "PASS"))
    return 1 if failures else 0


async def _run_phases(
    ops, n, q, rng, requests, baseline_requests, workers, engine,
    max_batch, max_wait_s, tenants, slo_p99_ms,
    overload_queue_depth, overload_factor,
    overload_duration_s, min_gain, gate_tail, values, failures, emit,
) -> None:
    from repro.par.executor import ParallelExecutor

    executor = (
        ParallelExecutor(workers=workers) if engine == "parallel" else None
    )
    try:
        capacity_rps = 0.0
        for op in ops:
            slug = op.replace(".", "_")
            payloads = _payloads(op, n, q, requests, rng)
            expected = _reference(op, n, q, payloads)

            # Phase 1: batched, with tenant rotation so the per-tenant
            # histograms and (when slo_p99_ms is set) the SLO windows
            # see a realistic multi-tenant mix.
            service = ReproService(
                executor=executor,
                config=ServeConfig(
                    engine=engine,
                    max_batch=max_batch,
                    max_wait_s=max_wait_s,
                    slo_p99_ms=slo_p99_ms,
                ),
            )
            await service.start()
            # Warm plans/pool outside the timed window.
            await service.submit(op, payloads[0], n, q)
            results, latencies, wall_s = await _drive_concurrent(
                service, op, n, q, payloads, tenants=max(1, tenants)
            )
            await service.close()
            if list(map(list, results)) != list(map(list, expected)):
                failures.append(f"{op}: batched responses diverge from reference")
            p50 = _percentile(latencies, 50) * 1e3
            p99 = _percentile(latencies, 99) * 1e3
            rps = len(payloads) / wall_s if wall_s > 0 else 0.0
            capacity_rps = max(capacity_rps, rps)
            batches = max(1, service.stats["batches"])
            emit(
                f"{op}: batched {len(payloads)} reqs in {wall_s * 1e3:7.1f} ms "
                f"({rps:8.1f} rps, {len(payloads) / batches:.1f} reqs/batch) "
                f"p50 {p50:6.2f} ms  p99 {p99:6.2f} ms"
            )
            values[f"serve.{slug}.p50_ms"] = p50
            values[f"serve.{slug}.p99_ms"] = p99
            values[f"serve.{slug}.throughput_rps"] = rps

            # Where the time went: the dispatcher-side decomposition of
            # phase 1 (read now, before the baseline phase re-runs the
            # same op and mixes its samples in).
            queue_wait_p99 = _hist_p99_ms(f"serve.queue_wait_s.{op}")
            service_p99 = _hist_p99_ms(f"serve.compute_s.{op}")
            coalesce_p99 = _hist_p99_ms(f"serve.coalesce_wait_s.{op}")
            values[f"serve.{slug}.queue_wait_p99_ms"] = queue_wait_p99
            values[f"serve.{slug}.service_p99_ms"] = service_p99
            emit(
                f"{op}: decomposition p99 — coalesce {coalesce_p99:6.2f} ms, "
                f"queue wait {queue_wait_p99:6.2f} ms, "
                f"service {service_p99:6.2f} ms"
            )

            if gate_tail is not None and p50 > 0 and p99 > gate_tail * p50:
                failures.append(
                    f"{op}: p99 {p99:.2f} ms > {gate_tail:g}x p50 {p50:.2f} ms"
                )

            # Phase 2: one-request-at-a-time baseline.
            service = ReproService(
                executor=executor,
                config=ServeConfig(engine=engine, max_batch=1, max_wait_s=0.0),
            )
            await service.start()
            await service.submit(op, payloads[0], n, q)  # warm
            base_payloads = payloads[:baseline_requests]
            base_results, base_wall_s = await _drive_sequential(
                service, op, n, q, base_payloads
            )
            await service.close()
            if list(map(list, base_results)) != list(
                map(list, expected[: len(base_payloads)])
            ):
                failures.append(f"{op}: baseline responses diverge from reference")
            base_rps = (
                len(base_payloads) / base_wall_s if base_wall_s > 0 else 0.0
            )
            gain = rps / base_rps if base_rps > 0 else float("inf")
            emit(
                f"{op}: baseline {len(base_payloads)} reqs "
                f"({base_rps:8.1f} rps) -> coalesce gain {gain:5.2f}x"
            )
            values[f"serve.{slug}.baseline_rps"] = base_rps
            values[f"serve.{slug}.coalesce_gain"] = gain
            if gain < min_gain:
                failures.append(
                    f"{op}: coalesce gain {gain:.2f}x < required {min_gain:g}x"
                )

        # Per-tenant tails over the batched mix (rotated tenants only;
        # the baseline and overload phases run under "default").
        tenant_bits = []
        for t in range(max(1, tenants)):
            p99_t = _hist_p99_ms(f"serve.tenant.t{t}.latency_s")
            if p99_t > 0:
                values[f"serve.tenant.t{t}.p99_ms"] = p99_t
                tenant_bits.append(f"t{t} {p99_t:.2f}")
        if tenant_bits:
            emit("tenant p99 ms: " + "  ".join(tenant_bits))

        # Phase 3: overload at overload_factor x measured capacity.
        op = ops[0]
        offered_rps = max(capacity_rps, 1.0) * overload_factor
        total = max(overload_queue_depth * 2, int(offered_rps * overload_duration_s))
        service = ReproService(
            executor=executor,
            config=ServeConfig(
                engine=engine,
                max_batch=max_batch,
                max_wait_s=max_wait_s,
                max_queue_depth=overload_queue_depth,
            ),
        )
        await service.start()
        overload_payloads = _payloads(op, n, q, min(total, 4096), rng)
        report = await _drive_overload(
            service, op, n, q, overload_payloads, offered_rps
        )
        await service.close()
        outcomes = report["outcomes"]
        submitted = service.stats["submitted"]
        accounted = (
            service.stats["completed"]
            + service.stats["failed"]
            + service.stats["shed"]
        )
        unaccounted = submitted - accounted
        shed_fraction = (
            outcomes["shed"] / len(overload_payloads) if overload_payloads else 0.0
        )
        admitted_p99 = _percentile(report["latencies"], 99) * 1e3
        emit(
            f"overload: offered {offered_rps:8.1f} rps "
            f"({overload_factor:g}x capacity, queue cap {overload_queue_depth}) "
            f"-> {outcomes['completed']} ok, {outcomes['shed']} shed, "
            f"{outcomes['failed']} failed; admitted p99 {admitted_p99:6.2f} ms"
        )
        values["serve.overload.offered_rps"] = offered_rps
        values["serve.overload.shed_fraction"] = shed_fraction
        values["serve.overload.admitted_p99_ms"] = admitted_p99
        values["serve.overload.unaccounted"] = float(unaccounted)
        if outcomes["shed"] == 0:
            failures.append(
                "overload: no requests shed at "
                f"{overload_factor:g}x capacity (admission control inert)"
            )
        if unaccounted != 0:
            failures.append(
                f"overload: {unaccounted} requests dropped without being "
                f"accounted (submitted={submitted}, accounted={accounted})"
            )
        if outcomes["failed"]:
            failures.append(
                f"overload: {outcomes['failed']} admitted requests errored"
            )
    finally:
        if executor is not None:
            executor.close()
