"""repro.serve — the async batching front door over the engine cascade.

See docs/SERVING.md for the architecture. Public surface:

* :class:`ReproService` / :class:`ServeConfig` — the asyncio service:
  admission control, per-``(op, n, q)`` coalescing, breaker-aware
  engine dispatch, deadline propagation, graceful shutdown.
* :class:`Coalescer` / :class:`Request` — the batching data structure.
* :class:`AdmissionController` / :class:`TokenBucket` — quota and
  queue-depth shedding.
* :func:`run_loadgen` — the deterministic p50/p99 load benchmark behind
  ``python -m repro loadgen``.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.coalesce import SERVE_OPS, Coalescer, Request
from repro.serve.loadgen import run_loadgen
from repro.serve.service import ReproService, ServeConfig

__all__ = [
    "AdmissionController",
    "Coalescer",
    "ReproService",
    "Request",
    "SERVE_OPS",
    "ServeConfig",
    "TokenBucket",
    "run_loadgen",
]
