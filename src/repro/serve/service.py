"""The asyncio serving front door over the engine cascade.

:class:`ReproService` is what turns the engine stack into a system: an
asyncio layer that accepts many small client requests (negacyclic
polymuls, BLAS ops, RNS ring multiplications), coalesces them per
``(op, n, q)`` into engine-sized batches (:mod:`repro.serve.coalesce`),
and dispatches each batch through the existing cascade — parallel pool
when healthy, fast engine when degraded, faithful as the last resort —
with the PR-4 resilience policies in front:

* **Admission control** (:mod:`repro.serve.admission`): queue-depth
  shedding plus per-tenant token-bucket quotas. A rejected request gets
  a typed :class:`~repro.errors.ServeOverloadError` and a
  ``serve.shed.<reason>`` metric bump — overload is never silent.
* **Breaker-aware dispatch**: an open :class:`CircuitBreaker` on the
  pool either degrades the batch to the in-process fast engine
  (``breaker_mode="degrade"``, the default — results stay bit-exact)
  or sheds it explicitly (``"shed"``); it never hard-fails.
* **Deadline propagation**: the earliest per-request deadline in a
  batch becomes the executor's ``batch_deadline_s``, so an expiring
  batch short-circuits to in-process fallback instead of waiting out
  retries. Requests that expire *before* dispatch fail individually
  with :class:`~repro.errors.ServeDeadlineError` without poisoning
  their batchmates.
* **Graceful shutdown**: ``close(drain=True)`` dispatches everything
  queued, waits for in-flight batches, and rejects new work with
  ``ServeOverloadError(reason="shutting_down")``.

Threading model: the asyncio event loop owns admission + coalescing;
all engine work runs on one dedicated dispatcher thread (a
``ThreadPoolExecutor(max_workers=1)``), so every ``serve.*`` span and
the ``par.*`` spans nested under it live on a single thread — the span
sink's stack is per-session, not per-thread, and a single dispatcher
keeps the request → coalesce → shard → worker story on one coherent
Perfetto timeline.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import ServeDeadlineError, ServeError, ServeOverloadError
from repro.obs.hooks import (
    record_serve_admitted,
    record_serve_batch,
    record_serve_completed,
    record_serve_degraded,
    record_serve_failed,
    record_serve_latency_slices,
    record_serve_queue_depth,
    record_serve_shed,
)
from repro.obs.session import current as obs_current
from repro.obs.slo import SloTracker
from repro.obs.spans import span
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import SERVE_OPS, Coalescer, Request

_ENGINES = ("parallel", "fast", "faithful")


@dataclass
class ServeConfig:
    """Tuning knobs for one :class:`ReproService`.

    ``max_wait_s`` is the coalesce window — the latency a sparse key
    pays to fill a batch; ``max_batch`` caps how much traffic one
    dispatch carries (see docs/SERVING.md for tuning guidance).
    ``breaker_mode`` picks what an open pool breaker does to admitted
    batches: ``"degrade"`` (in-process fast engine, bit-exact) or
    ``"shed"`` (explicit ``ServeOverloadError(reason="breaker_open")``).

    ``slo_p99_ms`` declares the latency objective: when set, every
    completed request feeds an :class:`~repro.obs.slo.SloTracker` that
    windows tail latency per op/tenant (``slo_window_s`` wide windows),
    publishes ``serve.slo.*`` gauges, and — after ``slo_burn_windows``
    consecutive breached windows — raises the flight recorder's
    ``slo_burn`` incident trigger. ``slo_error_budget`` is the allowed
    violation fraction the burn rate is measured against.
    """

    engine: str = "parallel"
    max_batch: int = 32
    max_wait_s: float = 0.002
    max_queue_depth: int = 1024
    default_deadline_s: Optional[float] = None
    tenant_rate: Optional[float] = None
    tenant_burst: Optional[float] = None
    breaker_mode: str = "degrade"
    workers: Optional[int] = None
    slo_p99_ms: Optional[float] = None
    slo_window_s: float = 1.0
    slo_burn_windows: int = 3
    slo_error_budget: float = 0.01

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ServeError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.breaker_mode not in ("degrade", "shed"):
            raise ServeError(
                f"breaker_mode must be 'degrade' or 'shed', "
                f"got {self.breaker_mode!r}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ServeError("default_deadline_s must be positive when set")
        if self.slo_p99_ms is not None and self.slo_p99_ms <= 0:
            raise ServeError("slo_p99_ms must be positive when set")
        if self.slo_window_s <= 0:
            raise ServeError("slo_window_s must be positive")
        if self.slo_burn_windows < 1:
            raise ServeError("slo_burn_windows must be >= 1")
        if not 0 < self.slo_error_budget <= 1:
            raise ServeError("slo_error_budget must be in (0, 1]")


class ReproService:
    """Async batching service over the engine cascade (see module docs).

    Args:
        executor: A started-or-lazy :class:`~repro.par.executor.ParallelExecutor`
            for ``engine="parallel"``; one is created (and owned —
            closed on ``close()``) when omitted.
        config: A :class:`ServeConfig`; defaults throughout.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        executor: Optional[Any] = None,
        config: Optional[ServeConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServeConfig()
        self._clock = clock
        self._executor = executor
        self._own_executor = executor is None
        self._admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            clock=clock,
        )
        self._coalescer = Coalescer(
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s,
            clock=clock,
        )
        #: Sliding-window SLO accounting; publishes ``serve.slo.*``
        #: through the live obs session and raises the ``slo_burn``
        #: flight trigger on sustained breaches (docs/OBSERVABILITY.md).
        self.slo = SloTracker(
            slo_p99_ms=self.config.slo_p99_ms,
            window_s=self.config.slo_window_s,
            burn_windows=self.config.slo_burn_windows,
            error_budget=self.config.slo_error_budget,
            clock=clock,
        )
        # ONE dispatcher thread, on purpose: every serve.*/par.* span of
        # every batch nests on a single thread's span stack (the sink is
        # not thread-safe) and pool dispatch is serialized, which is the
        # batching model anyway.
        self._dispatcher = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._pending: set = set()
        self._rings: Dict[Tuple[int, Hashable], Any] = {}
        self._plans: Dict[Tuple[str, str, int, Hashable], Any] = {}
        self._state = "new"
        # Admitted-but-unresolved requests (coalescing + dispatched).
        # This — not the coalescer depth alone — is what admission
        # bounds: batches leave the coalescer the moment they fill, so
        # under overload the backlog lives in front of the dispatcher,
        # and an unbounded backlog is exactly unbounded p99. Mutated
        # only on the event-loop thread (resolutions arrive via
        # call_soon_threadsafe), so no lock is needed.
        self._backlog = 0
        #: Lifetime tallies. Invariants the load generator asserts:
        #: ``submitted == admitted + shed`` and (once idle)
        #: ``admitted == completed + failed`` — no request is ever
        #: dropped without being accounted somewhere.
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "admitted": 0,
            "shed": 0,
            "completed": 0,
            "failed": 0,
            "batches": 0,
            "degraded": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def executor(self):
        """The pool executor (lazily created for ``engine="parallel"``)."""
        if self._executor is None and self.config.engine == "parallel":
            from repro.par.executor import ParallelExecutor

            self._executor = ParallelExecutor(workers=self.config.workers)
        return self._executor

    async def start(self) -> "ReproService":
        """Bind to the running loop and start the flush task (idempotent)."""
        if self._state == "running":
            return self
        if self._state != "new":
            raise ServeError(f"cannot start a {self._state} service")
        self._loop = asyncio.get_running_loop()
        self._state = "running"
        self._flush_task = self._loop.create_task(self._flush_loop())
        return self

    async def close(self, drain: bool = True) -> None:
        """Stop accepting work and shut the dispatcher down.

        ``drain=True`` (default) dispatches every queued request and
        waits for all in-flight batches; ``drain=False`` fails queued
        requests with ``ServeOverloadError(reason="shutting_down")``
        (metered as ``serve.failed.shutdown`` — they were admitted, so
        they are failed, not shed). Either way new ``submit`` calls are
        shed with reason ``"shutting_down"`` from the moment this is
        entered, and the owned executor (if any) is closed so its arena
        and shm segments are reclaimed.
        """
        if self._state in ("draining", "closed"):
            return
        self._state = "draining"
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        leftover = self._coalescer.drain()
        if drain:
            for batch in leftover:
                self._dispatch(batch)
        else:
            for batch in leftover:
                for req in batch:
                    self._resolve_error(
                        req,
                        ServeOverloadError("shutting_down", tenant=req.tenant),
                        kind="shutdown",
                    )
        if self._pending:
            await asyncio.gather(*list(self._pending), return_exceptions=True)
        await asyncio.get_running_loop().run_in_executor(
            None, self._dispatcher.shutdown
        )
        if self._own_executor and self._executor is not None:
            self._executor.close()
        self._state = "closed"

    async def __aenter__(self) -> "ReproService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=exc_type is None)

    def register_ring(self, ring) -> None:
        """Register an :class:`~repro.rns.poly.RnsPolynomialRing` for ``rns.mul``.

        Requests then address it as ``op="rns.mul", n=ring.n,
        q=ring.basis.modulus`` with ``payload=(f_residues, g_residues)``.
        Only negacyclic rings are served (the RLWE shape the paper's
        kernels target).
        """
        if not getattr(ring, "negacyclic", False):
            raise ServeError("rns.mul serving requires a negacyclic ring")
        self._rings[(ring.n, ring.basis.modulus)] = ring

    # ------------------------------------------------------------------
    # Request path (event-loop thread)
    # ------------------------------------------------------------------

    async def submit(
        self,
        op: str,
        payload: Tuple[Any, ...],
        n: int,
        q: Hashable,
        tenant: str = "default",
        deadline_s: Optional[float] = None,
    ) -> Any:
        """Submit one request; resolves with the op result.

        Raises :class:`ServeOverloadError` when shed (quota, queue
        depth, shutdown, or breaker in ``"shed"`` mode),
        :class:`ServeDeadlineError` when the deadline expired before
        dispatch, or whatever the engine raised for a genuinely invalid
        operand.
        """
        if op not in SERVE_OPS:
            raise ServeError(f"unknown op {op!r}; serveable: {SERVE_OPS}")
        self.stats["submitted"] += 1
        if self._state != "running":
            exc = ServeOverloadError("shutting_down", tenant=tenant)
            self._count_shed(exc.reason)
            raise exc
        try:
            self._admission.admit(tenant, self._backlog)
        except ServeOverloadError as exc:
            self._count_shed(exc.reason)
            raise
        self.stats["admitted"] += 1
        self._backlog += 1
        record_serve_admitted(op)
        now = self._clock()
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        request = Request(
            op=op,
            n=n,
            q=q,
            payload=payload,
            tenant=tenant,
            enqueued_at=now,
            expires_at=(now + deadline_s) if deadline_s is not None else None,
            future=self._loop.create_future(),
        )
        full = self._coalescer.add(request)
        record_serve_queue_depth(self._backlog)
        if full is not None:
            self._dispatch(full)
        return await request.future

    async def flush(self) -> None:
        """Dispatch everything queued now (tests, checkpointing)."""
        for batch in self._coalescer.drain():
            self._dispatch(batch)
        record_serve_queue_depth(0)

    async def join(self) -> None:
        """Wait until every dispatched batch has finished."""
        while self._pending:
            await asyncio.gather(*list(self._pending), return_exceptions=True)

    def _count_shed(self, reason: str) -> None:
        self.stats["shed"] += 1
        record_serve_shed(reason)

    async def _flush_loop(self) -> None:
        tick = max(self.config.max_wait_s / 4.0, 1e-4)
        while self._state == "running":
            await asyncio.sleep(tick)
            for batch in self._coalescer.due():
                self._dispatch(batch)

    def _dispatch(self, batch: List[Request]) -> None:
        # Coalesce wait ends here: the batch leaves the coalescer for
        # the dispatcher queue. Dispatcher wait (the next slice) runs
        # until _run_batch picks the batch up on its own thread.
        dequeued_at = self._clock()
        for req in batch:
            req.dequeued_at = dequeued_at
        future = self._loop.run_in_executor(
            self._dispatcher, self._run_batch, batch
        )
        self._pending.add(future)
        future.add_done_callback(self._pending.discard)

    # ------------------------------------------------------------------
    # Batch path (dispatcher thread)
    # ------------------------------------------------------------------

    def _run_batch(self, batch: List[Request]) -> None:
        """Execute one coalesced batch; resolves every request future.

        Never raises: an unexpected error resolves every still-pending
        future so no caller is left hanging (the zero-dropped invariant).
        """
        try:
            self._run_batch_inner(batch)
        except BaseException as exc:  # noqa: BLE001 — must not lose requests
            for req in batch:
                if not req.future.done():
                    self._resolve_error(req, exc, kind="error")

    def _run_batch_inner(self, batch: List[Request]) -> None:
        now = self._clock()
        op = batch[0].op
        live: List[Request] = []
        for req in batch:
            if req.expires_at is not None and now >= req.expires_at:
                # Expired while coalescing: fail this request alone; its
                # batchmates still dispatch below.
                self._resolve_error(
                    req,
                    ServeDeadlineError(
                        f"deadline expired {now - req.expires_at:.4f}s "
                        f"before dispatch (op={op})"
                    ),
                    kind="deadline",
                )
            else:
                live.append(req)
        if not live:
            return
        self.stats["batches"] += 1
        wait_s = now - min(r.enqueued_at for r in live)
        record_serve_batch(op, len(live), wait_s)
        with span(
            "serve.batch",
            op=op,
            n=live[0].n,
            requests=len(live),
            wait_ms=round(wait_s * 1e3, 3),
        ):
            engine = self._resolve_batch_engine(live)
            if engine is None:
                return  # breaker_mode="shed" already resolved the futures
            with span("serve.dispatch", engine=engine, op=op):
                with self._propagate_deadline(engine, live, now):
                    try:
                        results = self._execute(
                            engine, op, live[0].n, live[0].q,
                            [r.payload for r in live],
                        )
                    except Exception:
                        # One bad operand must not poison the batch:
                        # rerun each request alone so only the guilty
                        # one fails.
                        self._run_individually(engine, live)
                        return
            done = self._clock()
            for req, result in zip(live, results):
                self._resolve_ok(req, result, done, started_at=now)

    def _resolve_batch_engine(self, live: List[Request]) -> Optional[str]:
        """The engine this batch runs on, after cascade + breaker checks.

        Returns ``None`` when ``breaker_mode="shed"`` shed the batch
        (every future already resolved).
        """
        from repro.resil.degrade import resolve_engine

        engine = self.config.engine
        # The service's own breaker check comes first: resolve_engine
        # peeks only at the process-default pool, which may not be the
        # executor this service dispatches to.
        if (
            engine == "parallel"
            and self._executor is not None
            and self._executor.breaker.state == "open"
        ):
            if self.config.breaker_mode == "shed":
                for req in live:
                    exc = ServeOverloadError("breaker_open", tenant=req.tenant)
                    self._count_shed(exc.reason)
                    self._resolve_error(req, exc, kind=None)
                return None
            self.stats["degraded"] += 1
            record_serve_degraded("breaker_open")
            engine = "fast"
        resolved = resolve_engine(engine, site="serve")
        if resolved != engine:
            self.stats["degraded"] += 1
            record_serve_degraded("engine_unavailable")
        return resolved

    @contextmanager
    def _propagate_deadline(self, engine: str, live: List[Request], now: float):
        """Temporarily narrow the executor's batch deadline to this batch.

        The earliest request deadline becomes ``batch_deadline_s``, so
        the pool short-circuits still-pending shards in-process before
        the clients give up. Single dispatcher thread ⇒ the temporary
        mutation cannot race another batch.
        """
        executor = self._executor
        deadlines = [r.expires_at for r in live if r.expires_at is not None]
        if engine != "parallel" or executor is None or not deadlines:
            yield
            return
        remaining = max(min(deadlines) - now, 1e-6)
        previous = executor.batch_deadline_s
        executor.batch_deadline_s = (
            min(remaining, previous) if previous is not None else remaining
        )
        try:
            yield
        finally:
            executor.batch_deadline_s = previous

    def _run_individually(self, engine: str, live: List[Request]) -> None:
        for req in live:
            started_at = self._clock()
            try:
                result = self._execute(
                    engine, req.op, req.n, req.q, [req.payload]
                )[0]
            except Exception as exc:  # noqa: BLE001 — per-request verdict
                self._resolve_error(req, exc, kind="error")
            else:
                self._resolve_ok(
                    req, result, self._clock(), started_at=started_at
                )

    # ------------------------------------------------------------------
    # Future resolution (marshalled back to the event loop)
    # ------------------------------------------------------------------

    def _resolve_ok(
        self,
        req: Request,
        result: Any,
        done_at: float,
        started_at: Optional[float] = None,
    ) -> None:
        self.stats["completed"] += 1
        total_s = max(0.0, done_at - req.enqueued_at)
        record_serve_completed(req.op, total_s)
        # Decompose end-to-end time: coalesce wait (enqueue → batch left
        # the coalescer), dispatcher-queue wait (→ compute start), and
        # compute (→ done). ``started_at`` is when the dispatcher thread
        # picked the batch up; a request resolved without dispatching
        # (dequeued_at == 0.0) records no slices.
        if req.dequeued_at and started_at is not None:
            record_serve_latency_slices(
                req.op,
                req.tenant,
                total_s,
                coalesce_wait_s=max(0.0, req.dequeued_at - req.enqueued_at),
                queue_wait_s=max(0.0, started_at - req.dequeued_at),
                compute_s=max(0.0, done_at - started_at),
            )
        self.slo.record(req.op, req.tenant, total_s, ok=True)
        self._loop.call_soon_threadsafe(self._finish, req.future, result, None)

    def _resolve_error(
        self, req: Request, exc: BaseException, kind: Optional[str]
    ) -> None:
        if kind is not None:
            self.stats["failed"] += 1
            record_serve_failed(req.op, kind)
            # Failures spend error budget: a deadline expiry or engine
            # error is an SLO violation even though it has no latency
            # sample to contribute.
            self.slo.record(
                req.op,
                req.tenant,
                max(0.0, self._clock() - req.enqueued_at),
                ok=False,
            )
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._finish, req.future, None, exc)
        else:
            self._backlog = max(0, self._backlog - 1)
            _set_exception(req.future, exc)

    def _finish(self, future, result, exc: Optional[BaseException]) -> None:
        """Event-loop side of resolution: backlog release + future wakeup."""
        self._backlog = max(0, self._backlog - 1)
        record_serve_queue_depth(self._backlog)
        if exc is not None:
            _set_exception(future, exc)
        else:
            _set_result(future, result)

    # ------------------------------------------------------------------
    # Engine dispatch
    # ------------------------------------------------------------------

    def _execute(
        self,
        engine: str,
        op: str,
        n: int,
        q: Hashable,
        payloads: List[Tuple[Any, ...]],
    ) -> List[Any]:
        """Run ``payloads`` as one engine batch; one result per payload."""
        if op == "rns.mul":
            return self._execute_rns(engine, n, q, payloads)
        if op == "polymul":
            plan = self._plan(engine, "polymul", n, q)
            if engine == "faithful":
                return [plan.multiply(f, g) for f, g in payloads]
            return plan.multiply(
                [p[0] for p in payloads], [p[1] for p in payloads]
            )
        if op == "ntt":
            plan = self._plan(engine, "ntt", n, q)
            if engine == "faithful":
                return [plan.forward(p[0]) for p in payloads]
            return plan.forward([p[0] for p in payloads])
        if op.startswith("blas."):
            plan = self._plan(engine, "blas", n, q)
            method = getattr(plan, op[len("blas."):])
            if engine == "faithful":
                return [method(x, y) for x, y in payloads]
            return method([p[0] for p in payloads], [p[1] for p in payloads])
        raise ServeError(f"unknown op {op!r}")  # unreachable (submit checks)

    def _execute_rns(
        self, engine: str, n: int, q: Hashable, payloads: List[Tuple[Any, ...]]
    ) -> List[Any]:
        ring = self._rings.get((n, q))
        if ring is None:
            raise ServeError(
                f"no ring registered for rns.mul n={n}, Q={q}; "
                f"call register_ring() first"
            )
        if engine == "parallel":
            from repro.par.api import parallel_rns_mul

            # Each rns.mul already fans its k residue channels out as
            # one fused pool batch; requests run back to back.
            return [
                parallel_rns_mul(ring, f, g, self._executor)
                for f, g in payloads
            ]
        from repro.rns.poly import RnsPolynomial

        return [
            ring.mul(
                RnsPolynomial(ring, [list(r) for r in f]),
                RnsPolynomial(ring, [list(r) for r in g]),
            ).residues
            for f, g in payloads
        ]

    def _plan(self, engine: str, family: str, n: int, q: Hashable):
        """Cached per-(engine, family, n, q) plan construction."""
        key = (engine, family, n, q)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._build_plan(engine, family, n, q)
            self._plans[key] = plan
        return plan

    def _build_plan(self, engine: str, family: str, n: int, q: Hashable):
        if engine == "parallel":
            from repro.par.api import ParBlasPlan, ParNegacyclic, ParNtt

            if family == "polymul":
                return ParNegacyclic(n, q, executor=self.executor)
            if family == "ntt":
                return ParNtt(n, q, executor=self.executor)
            return ParBlasPlan(q, executor=self.executor)
        if engine == "fast":
            from repro.fast import FastBlasPlan, FastNegacyclic, FastNtt

            if family == "polymul":
                return FastNegacyclic(n, q)
            if family == "ntt":
                return FastNtt(n, q)
            return FastBlasPlan(q)
        from repro.blas.ops import BlasPlan
        from repro.kernels import get_backend
        from repro.ntt.negacyclic import NegacyclicNtt
        from repro.ntt.simd import SimdNtt

        backend = get_backend("avx512")
        if family == "polymul":
            return NegacyclicNtt(n, q, backend)
        if family == "ntt":
            return SimdNtt(n, q, backend)
        return BlasPlan(q, backend)


def _set_result(future, result) -> None:
    if not future.done():
        future.set_result(result)


def _set_exception(future, exc) -> None:
    if not future.done():
        future.set_exception(exc)
    else:  # pragma: no cover — late duplicate resolution
        pass
