"""Request coalescing: many small client ops become one engine batch.

The whole premise of the serve layer (and of ROADMAP item 3) is that
the engine cascade wins on *large batches*: a single 64-row negacyclic
multiply through the fast or parallel engine costs far less than 64
one-row calls, because coercion, twiddle lookups, dispatch, and (for
the pool) shared-memory staging are paid once per batch instead of once
per request. The :class:`Coalescer` is the data structure that converts
request-level traffic into that shape: requests queue per
``(op, n, q)`` key and leave as a batch when either

* the queue reaches ``max_batch`` (size trigger — returned directly by
  :meth:`add` so full batches dispatch with zero added latency), or
* the oldest request has waited ``max_wait_s`` (time trigger — polled
  by the service's flush loop via :meth:`due`), bounding the latency
  cost a sparse key pays for batching.

Everything here is synchronous and lock-free by design: the service
calls it only from the asyncio event-loop thread, and the unit tests
drive it directly with a fake clock.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import ServeError

#: Operations the serve layer accepts (dispatch table in service.py).
SERVE_OPS = (
    "polymul",
    "ntt",
    "blas.vector_add",
    "blas.vector_sub",
    "blas.vector_mul",
    "rns.mul",
)

_request_ids = itertools.count()


@dataclass
class Request:
    """One client request, queued until its batch dispatches.

    ``payload`` is the op-specific operand tuple (e.g. ``(f, g)`` for a
    polymul). ``expires_at`` is an absolute clock value or ``None`` for
    no deadline; the dispatcher fails expired requests individually
    without poisoning the rest of their batch. ``future`` is resolved
    with the result (or exception) by the service; it stays ``None`` in
    pure coalescer unit tests.
    """

    op: str
    n: int
    q: Hashable  # int modulus, or the composite modulus for rns.mul
    payload: Tuple[Any, ...]
    tenant: str = "default"
    enqueued_at: float = 0.0
    #: Stamped by the service when the request's batch leaves the
    #: coalescer for the dispatcher: ``dequeued_at - enqueued_at`` is
    #: the coalesce wait, the first slice of the latency decomposition.
    dequeued_at: float = 0.0
    expires_at: Optional[float] = None
    future: Any = None
    req_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def key(self) -> Tuple[str, int, Hashable]:
        """The coalescing key: requests batch only within one key."""
        return (self.op, self.n, self.q)


class Coalescer:
    """Per-``(op, n, q)`` FIFO queues with size + age dispatch triggers."""

    def __init__(
        self,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ServeError("max_wait_s must be non-negative")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._clock = clock
        self._queues: Dict[Tuple[str, int, Hashable], List[Request]] = {}
        self._depth = 0

    def add(self, request: Request) -> Optional[List[Request]]:
        """Queue one request; return a full batch if this filled one.

        The size trigger lives here (not in the flush loop) so a hot key
        dispatches the moment it fills — its requests never wait on the
        poll cadence.
        """
        queue = self._queues.setdefault(request.key, [])
        queue.append(request)
        self._depth += 1
        if len(queue) >= self.max_batch:
            del self._queues[request.key]
            self._depth -= len(queue)
            return queue
        return None

    def due(self, now: Optional[float] = None) -> List[List[Request]]:
        """Pop every batch whose oldest request waited ``max_wait_s``."""
        if now is None:
            now = self._clock()
        ready: List[List[Request]] = []
        for key in list(self._queues):
            queue = self._queues[key]
            if queue and now - queue[0].enqueued_at >= self.max_wait_s:
                del self._queues[key]
                self._depth -= len(queue)
                ready.append(queue)
        return ready

    def drain(self) -> List[List[Request]]:
        """Pop everything queued, regardless of age (flush/shutdown)."""
        batches = [q for q in self._queues.values() if q]
        self._queues.clear()
        self._depth = 0
        return batches

    def depth(self) -> int:
        """Total queued requests across all keys (admission input)."""
        return self._depth

    def oldest_wait_s(self, now: Optional[float] = None) -> float:
        """Age of the oldest queued request (0.0 when empty)."""
        if not self._queues:
            return 0.0
        if now is None:
            now = self._clock()
        return max(
            now - q[0].enqueued_at for q in self._queues.values() if q
        )
