"""Admission control for the serve layer: quotas and queue-depth shedding.

Two small primitives the service consults *before* a request is allowed
to join a coalesce queue:

* :class:`TokenBucket` — the classic rate limiter (``rate`` tokens per
  second, up to ``burst`` banked). One bucket per tenant enforces the
  per-tenant quota.
* :class:`AdmissionController` — the single decision point. ``admit``
  either returns (request may queue) or raises a typed
  :class:`~repro.errors.ServeOverloadError` whose ``reason`` says
  exactly why (``"queue_full"``, ``"quota"``), so every rejection is an
  explicit, meterable outcome rather than a timeout or a silent drop.

Both take an injectable ``clock`` (defaulting to
:func:`time.monotonic`) so tests control time instead of sleeping, the
same convention as :mod:`repro.resil.policy`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ServeError, ServeOverloadError


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s, ``burst`` banked.

    ``try_acquire`` never blocks — admission control sheds instead of
    queueing, because the coalesce queue is the only place requests are
    allowed to wait (that wait is bounded by ``max_wait_s``; a rate
    limiter that parks callers would hide overload as latency).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ServeError("token bucket rate must be positive")
        if burst < 1:
            raise ServeError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last = clock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False (no wait) otherwise."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def available(self) -> float:
        """Tokens currently banked (diagnostic; racy by nature)."""
        with self._lock:
            now = self._clock()
            return min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )


class AdmissionController:
    """Decides, per request, between "may queue" and a typed rejection.

    Checks run cheapest-first and each failure names its reason:

    1. **Queue depth** — if the coalescer already holds
       ``max_queue_depth`` requests the service is not keeping up;
       admitting more only grows latency without bound. Reason:
       ``"queue_full"``.
    2. **Per-tenant quota** — when ``tenant_rate`` is set, each tenant
       gets its own :class:`TokenBucket` (``tenant_burst`` banked), so
       one chatty client cannot starve the rest. Reason: ``"quota"``.

    The controller only *decides*; the service is the single place that
    meters sheds (``serve.shed.<reason>``) and re-raises, which keeps
    the shed accounting exactly-once.
    """

    def __init__(
        self,
        max_queue_depth: int = 1024,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue_depth < 1:
            raise ServeError("max_queue_depth must be >= 1")
        if tenant_rate is not None and tenant_rate <= 0:
            raise ServeError("tenant_rate must be positive when set")
        self.max_queue_depth = int(max_queue_depth)
        self.tenant_rate = tenant_rate
        self.tenant_burst = (
            float(tenant_burst)
            if tenant_burst is not None
            else (max(1.0, tenant_rate) if tenant_rate else 1.0)
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}

    def admit(self, tenant: str, queue_depth: int) -> None:
        """Raise :class:`ServeOverloadError` unless the request may queue."""
        if queue_depth >= self.max_queue_depth:
            raise ServeOverloadError(
                "queue_full",
                tenant=tenant,
                detail=f"{queue_depth} queued >= limit {self.max_queue_depth}",
            )
        if self.tenant_rate is not None:
            if not self._bucket(tenant).try_acquire():
                raise ServeOverloadError(
                    "quota",
                    tenant=tenant,
                    detail=f"over {self.tenant_rate}/s (burst {self.tenant_burst})",
                )

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.tenant_rate, self.tenant_burst, clock=self._clock
                )
                self._buckets[tenant] = bucket
            return bucket
