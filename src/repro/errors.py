"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Each subsystem raises the most specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IsaError(ReproError):
    """An ISA-level simulation error (bad lane count, width mismatch...)."""


class LaneMismatchError(IsaError):
    """Two vector operands with different lane counts or widths were mixed."""


class MaskWidthError(IsaError):
    """A mask was used with a vector of a different lane count."""


class MachineModelError(ReproError):
    """The machine model could not schedule or cost an instruction trace."""


class UnknownInstructionError(MachineModelError):
    """An instruction in a trace has no entry in the active uop table."""


class ArithmeticDomainError(ReproError):
    """An operand is outside the domain required by an arithmetic routine.

    For example: a modulus wider than 124 bits handed to Barrett-based
    double-word modular arithmetic, or a residue not reduced mod q.
    """


class NttParameterError(ReproError):
    """NTT parameters are invalid (size not a power of two, no root...)."""


class BackendError(ReproError):
    """A kernel backend was configured or used inconsistently."""


class ExperimentError(ReproError):
    """An experiment harness was given inconsistent configuration."""


class ObservabilityError(ReproError):
    """The observability layer was misused (metric type clash, bad export)."""


class ParallelExecutionError(ReproError):
    """The process-pool execution layer was misconfigured or failed hard.

    Raised for invalid pool parameters, use-after-close, and shards that
    could not be completed even by the in-process fallback.
    """


class ResilienceError(ReproError):
    """The resilience layer was misconfigured (bad policy, bad fault plan)."""


class ServeError(ReproError):
    """The serve layer was misconfigured or failed to process a request."""


class ServeOverloadError(ServeError):
    """A request was shed by admission control instead of being queued.

    Overload is an explicit, metered outcome: every raised instance
    carries a machine-readable ``reason`` (``"queue_full"``, ``"quota"``,
    ``"breaker_open"``, ``"shutting_down"``) and is counted under the
    ``serve.shed.<reason>`` metric, so no rejection is ever silent.
    """

    def __init__(self, reason: str, tenant: str = "", detail: str = "") -> None:
        self.reason = reason
        self.tenant = tenant
        message = f"request shed: {reason}"
        if tenant:
            message += f" (tenant={tenant})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class ServeDeadlineError(ServeError):
    """A request's deadline expired before its batch was dispatched."""


class ResilIntegrityError(ResilienceError):
    """A cross-engine integrity audit found divergent shard results.

    Raised only by the audit path: a checksum mismatch alone is treated
    as a retryable fault, but a shard whose *recomputed* faithful-engine
    result disagrees with the collected payload means corruption made it
    past every retry — the batch result cannot be trusted.
    """
