"""RNS polynomial rings: the FHE workload layer.

A polynomial over ``Z_Q`` (``Q`` = product of the basis primes) is held as
one residue polynomial per prime. Additions and subtractions are per-prime
BLAS vector operations; multiplications run one NTT convolution per prime
(cyclic or negacyclic) - all on a configurable kernel backend, so an
entire FHE-style polynomial multiply exercises exactly the pipeline the
paper accelerates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.blas.ops import BlasPlan
from repro.errors import ArithmeticDomainError, NttParameterError
from repro.kernels.backend import Backend
from repro.ntt.negacyclic import NegacyclicNtt
from repro.ntt.simd import SimdNtt
from repro.rns.basis import RnsBasis
from repro.util.checks import check_power_of_two


class RnsPolynomial:
    """A degree < n polynomial over ``Z_Q`` in per-prime residue form."""

    def __init__(self, ring: "RnsPolynomialRing", residues: List[List[int]]) -> None:
        self.ring = ring
        self.residues = residues  # residues[i] = coefficients mod primes[i]

    def coefficients(self) -> List[int]:
        """CRT-reconstruct the big-integer coefficient vector."""
        basis = self.ring.basis
        n = self.ring.n
        return [
            basis.from_rns([self.residues[k][i] for k in range(len(basis))])
            for i in range(n)
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPolynomial):
            return NotImplemented
        return self.ring is other.ring and self.residues == other.residues

    def __repr__(self) -> str:
        return f"RnsPolynomial(n={self.ring.n}, limbs={len(self.ring.basis)})"


class RnsPolynomialRing:
    """``Z_Q[x] / (x^n -+ 1)`` with per-prime SIMD NTT pipelines.

    Args:
        n: Ring dimension (power of two).
        basis: The RNS prime basis (every prime must support the ring:
            ``n | q - 1`` for cyclic, ``2n | q - 1`` for negacyclic).
        backend: Kernel backend shared by all per-prime pipelines.
        negacyclic: ``True`` for the RLWE ring ``x^n + 1`` (default),
            ``False`` for the cyclic ring ``x^n - 1``.
        engine: ``"faithful"`` (ISA-simulated, traceable), ``"fast"``
            (NumPy-vectorized, bit-identical results) or ``"parallel"``
            (fast-engine residue channels sharded across the
            :mod:`repro.par` worker pool — ``mul`` dispatches all
            primes as one fused batch) for every per-prime BLAS and
            NTT pipeline (see docs/PERFORMANCE.md).
        fast_mode: Arithmetic substrate for the fast/parallel engines,
            handed to every per-prime plan (``"dw"``/``"r52"``/
            ``"auto"``, see :class:`repro.fast.modular.FastModulus`) —
            with ``"auto"`` each channel prime picks r52 exactly when
            it fits the fast range. Ignored by the faithful engine.
    """

    def __init__(
        self,
        n: int,
        basis: RnsBasis,
        backend: Backend,
        negacyclic: bool = True,
        engine: str = "faithful",
        fast_mode: Optional[str] = None,
    ) -> None:
        check_power_of_two(n, "n")
        self.n = n
        self.basis = basis
        self.backend = backend
        self.negacyclic = negacyclic
        # Resolve the availability cascade once for the whole ring and
        # hand the already-resolved engine to every per-prime plan (so
        # k primes don't emit k degradation warnings, and ``mul`` only
        # dispatches the fused pool batch when the pool can run).
        if engine in ("fast", "parallel"):
            from repro.resil.degrade import resolve_engine

            engine = resolve_engine(engine, site="RnsPolynomialRing")
        self.engine = engine
        self._blas: Dict[int, BlasPlan] = {}
        self._ntt: Dict[int, object] = {}
        required = 2 * n if negacyclic else n
        for q in basis.primes:
            if (q - 1) % required:
                raise NttParameterError(
                    f"prime {q} does not support a "
                    f"{'negacyclic' if negacyclic else 'cyclic'} ring of "
                    f"dimension {n}"
                )
            self._blas[q] = BlasPlan(
                q, backend, engine=engine, fast_mode=fast_mode
            )
            if negacyclic:
                self._ntt[q] = NegacyclicNtt(
                    n, q, backend, engine=engine, fast_mode=fast_mode
                )
            else:
                self._ntt[q] = SimdNtt(
                    n, q, backend, engine=engine, fast_mode=fast_mode
                )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, coefficients: Sequence[int]) -> RnsPolynomial:
        """Decompose big-integer coefficients into per-prime residues."""
        if len(coefficients) != self.n:
            raise ArithmeticDomainError(
                f"expected {self.n} coefficients, got {len(coefficients)}"
            )
        residues = []
        for q in self.basis.primes:
            residues.append([c % q for c in coefficients])
        for c in coefficients:
            if not 0 <= c < self.basis.modulus:
                raise ArithmeticDomainError(
                    "coefficients must be reduced modulo Q"
                )
        return RnsPolynomial(self, residues)

    def zero(self) -> RnsPolynomial:
        """The zero polynomial."""
        return RnsPolynomial(
            self, [[0] * self.n for _ in self.basis.primes]
        )

    def one(self) -> RnsPolynomial:
        """The multiplicative identity."""
        coeffs = [1] + [0] * (self.n - 1)
        return self.encode(coeffs)

    # ------------------------------------------------------------------
    # Ring operations
    # ------------------------------------------------------------------

    def _check_membership(self, *polys: RnsPolynomial) -> None:
        for poly in polys:
            if poly.ring is not self:
                raise ArithmeticDomainError(
                    "polynomial belongs to a different ring"
                )

    def add(self, f: RnsPolynomial, g: RnsPolynomial) -> RnsPolynomial:
        """``f + g``: one BLAS vector addition per prime."""
        self._check_membership(f, g)
        residues = [
            self._blas[q].vector_add(fr, gr)
            for q, fr, gr in zip(self.basis.primes, f.residues, g.residues)
        ]
        return RnsPolynomial(self, residues)

    def sub(self, f: RnsPolynomial, g: RnsPolynomial) -> RnsPolynomial:
        """``f - g``: one BLAS vector subtraction per prime."""
        self._check_membership(f, g)
        residues = [
            self._blas[q].vector_sub(fr, gr)
            for q, fr, gr in zip(self.basis.primes, f.residues, g.residues)
        ]
        return RnsPolynomial(self, residues)

    def scalar_mul(self, a: int, f: RnsPolynomial) -> RnsPolynomial:
        """``a * f`` for a big-integer scalar ``a``: per-prime axpy."""
        self._check_membership(f)
        residues = []
        for q, fr in zip(self.basis.primes, f.residues):
            zeros = [0] * self.n
            residues.append(self._blas[q].axpy(a % q, fr, zeros))
        return RnsPolynomial(self, residues)

    def mul(self, f: RnsPolynomial, g: RnsPolynomial) -> RnsPolynomial:
        """``f * g`` in the ring: one NTT convolution per prime.

        Negacyclic rings multiply directly at dimension ``n`` (via the
        psi-twisted transform); cyclic rings compute the length-``n``
        cyclic convolution. With ``engine="parallel"`` all residue
        channels are dispatched to the worker pool as one fused batch
        instead of this sequential per-prime loop.
        """
        self._check_membership(f, g)
        if self.engine == "parallel":
            from repro.par.api import parallel_rns_mul

            return RnsPolynomial(
                self, parallel_rns_mul(self, f.residues, g.residues)
            )
        residues = []
        for q, fr, gr in zip(self.basis.primes, f.residues, g.residues):
            if self.negacyclic:
                residues.append(self._ntt[q].multiply(fr, gr))
            else:
                residues.append(self._cyclic_mul(q, fr, gr))
        return RnsPolynomial(self, residues)

    def _cyclic_mul(self, q: int, f: List[int], g: List[int]) -> List[int]:
        plan: SimdNtt = self._ntt[q]  # type: ignore[assignment]
        if plan.fast_plan is not None:
            return plan.fast_plan.cyclic_multiply(f, g)
        fa = plan.forward(f, natural_order=False)
        ga = plan.forward(g, natural_order=False)
        backend = self.backend
        lanes = backend.lanes
        prod: List[int] = []
        for base in range(0, self.n, lanes):
            a = backend.load_block(fa[base : base + lanes])
            b = backend.load_block(ga[base : base + lanes])
            prod.extend(backend.store_block(backend.mulmod(a, b, plan.ctx)))
        return plan.inverse(prod, natural_order=False)

    @property
    def ntt_count_per_mul(self) -> int:
        """Independent NTT invocations per ring multiplication.

        2 forward + 1 inverse per prime - the batch-parallel workload
        behind the Section 6 scaling argument.
        """
        return 3 * len(self.basis)
