"""Residue number system (RNS) polynomial arithmetic.

The paper's motivation (Section 1): FHE coefficients exceed 1,000 bits and
are decomposed by RNS into residues that fit machine arithmetic; recent
work (including the paper) uses 128-bit residues to reduce the limb count.
This package provides that application layer on top of the kernels:

* :class:`~repro.rns.basis.RnsBasis` - a basis of pairwise-distinct
  NTT-friendly primes with CRT recombination,
* :class:`~repro.rns.poly.RnsPolynomialRing` - polynomial rings
  ``Z_Q[x]/(x^n - 1)`` (cyclic) or ``Z_Q[x]/(x^n + 1)`` (negacyclic, the
  RLWE ring) with add/sub/mul running one SIMD NTT pipeline per prime.

Per-prime transforms are mutually independent - exactly the batch
parallelism the Section 6 multi-core argument relies on
(:mod:`repro.multicore`).
"""

from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomial, RnsPolynomialRing

__all__ = ["RnsBasis", "RnsPolynomial", "RnsPolynomialRing"]
