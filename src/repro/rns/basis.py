"""RNS bases: prime sets with CRT decomposition/recombination."""

from __future__ import annotations

from typing import List, Sequence

from repro.arith.modular import inv_mod
from repro.arith.primes import find_ntt_prime, is_prime
from repro.errors import ArithmeticDomainError
from repro.util.checks import check_power_of_two


class RnsBasis:
    """A residue number system over pairwise-distinct primes.

    An integer ``x`` in ``[0, Q)`` (``Q`` the prime product) is represented
    by its residues ``x mod q_i``; the Chinese remainder theorem
    reconstructs it. CRT constants (``Q/q_i`` and their inverses) are
    precomputed once, as any RNS-based FHE implementation does.
    """

    def __init__(self, primes: Sequence[int]) -> None:
        if not primes:
            raise ArithmeticDomainError("an RNS basis needs at least one prime")
        if len(set(primes)) != len(primes):
            raise ArithmeticDomainError("RNS primes must be distinct")
        for q in primes:
            if not is_prime(q):
                raise ArithmeticDomainError(f"{q} is not prime")
        self.primes: List[int] = list(primes)
        self.modulus = 1
        for q in self.primes:
            self.modulus *= q
        # CRT constants: Q_i = Q / q_i and Q_i^-1 mod q_i.
        self._quotients = [self.modulus // q for q in self.primes]
        self._inverses = [
            inv_mod(quotient % q, q)
            for quotient, q in zip(self._quotients, self.primes)
        ]

    @classmethod
    def generate(cls, count: int, bits: int, order: int) -> "RnsBasis":
        """Generate ``count`` distinct NTT primes of about ``bits`` bits.

        Every prime satisfies ``q = 1 mod order`` so the basis supports
        cyclic NTTs up to ``order`` points and negacyclic up to
        ``order/2`` (see :class:`repro.rns.poly.RnsPolynomialRing`).
        """
        check_power_of_two(order, "order")
        if count < 1:
            raise ArithmeticDomainError("count must be at least 1")
        primes: List[int] = []
        width = bits
        while len(primes) < count:
            if width < order.bit_length() + 1:
                raise ArithmeticDomainError(
                    f"cannot find {count} distinct primes near {bits} bits "
                    f"with order {order}"
                )
            q = find_ntt_prime(width, order)
            if q not in primes:
                primes.append(q)
            width -= 1
        return cls(primes)

    def __len__(self) -> int:
        return len(self.primes)

    def to_rns(self, value: int) -> List[int]:
        """Decompose ``value`` in ``[0, Q)`` into residues."""
        if not 0 <= value < self.modulus:
            raise ArithmeticDomainError(
                f"value must be in [0, Q); Q has {self.modulus.bit_length()} bits"
            )
        return [value % q for q in self.primes]

    def from_rns(self, residues: Sequence[int]) -> int:
        """CRT reconstruction of residues into ``[0, Q)``."""
        if len(residues) != len(self.primes):
            raise ArithmeticDomainError(
                f"expected {len(self.primes)} residues, got {len(residues)}"
            )
        total = 0
        for r, q, quotient, inverse in zip(
            residues, self.primes, self._quotients, self._inverses
        ):
            if not 0 <= r < q:
                raise ArithmeticDomainError(f"residue {r} not reduced mod {q}")
            total += r * inverse % q * quotient
        return total % self.modulus

    def __repr__(self) -> str:
        bits = [q.bit_length() for q in self.primes]
        return (
            f"RnsBasis({len(self.primes)} primes, {bits} bits, "
            f"Q = {self.modulus.bit_length()} bits)"
        )
