"""Mathematical reference layer: modular and double-word arithmetic.

Everything in this package is pure-Python, exact, and untraced - it defines
*what* the kernels must compute. The ISA-level kernel backends in
:mod:`repro.kernels` are verified bit-for-bit against these references.
"""

from repro.arith.barrett import BarrettParams
from repro.arith.doubleword import (
    dw_add,
    dw_add_with_carry,
    dw_mul_karatsuba,
    dw_mul_schoolbook,
    dw_sub,
)
from repro.arith.modular import (
    add_mod,
    inv_mod,
    mul_mod,
    pow_mod,
    sub_mod,
)
from repro.arith.dwmod import (
    MAX_MODULUS_BITS,
    addmod128,
    check_modulus_128,
    mulmod128,
    submod128,
)
from repro.arith.primes import (
    default_modulus,
    find_ntt_prime,
    find_primitive_root,
    is_prime,
    root_of_unity,
)

__all__ = [
    "BarrettParams",
    "dw_add",
    "dw_add_with_carry",
    "dw_sub",
    "dw_mul_schoolbook",
    "dw_mul_karatsuba",
    "add_mod",
    "sub_mod",
    "mul_mod",
    "pow_mod",
    "inv_mod",
    "MAX_MODULUS_BITS",
    "check_modulus_128",
    "addmod128",
    "submod128",
    "mulmod128",
    "default_modulus",
    "find_ntt_prime",
    "find_primitive_root",
    "is_prime",
    "root_of_unity",
]
