"""Pseudo-Mersenne (special-prime) modular reduction.

The paper deliberately targets *general* primes via Barrett reduction
(Section 2.1), noting that related work - Goldilocks-style primes, van der
Hoeven & Lecerf's specialized-modulus NTTs - gains speed by restricting
the modulus shape. This module implements that alternative so the
trade-off can be measured: for ``q = 2^e - c`` with small ``c``,

    2^e = c  (mod q)

so reduction is *folding*: split ``x = x1 * 2^e + x0`` and replace with
``x1 * c + x0``; two folds plus one conditional subtraction reduce a full
``2e``-bit product. No ``mu``, one narrow multiply per fold.

The kernel (:class:`SpecialPrimeKernel`) is built on the word-operation
adapter, so it exists on all four ISA backends. The ablation benchmark
compares it against general Barrett and against Shoup twiddles.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, List, Tuple

from repro.arith.primes import is_prime
from repro.errors import ArithmeticDomainError
from repro.kernels.backend import Backend
from repro.multiword.wordops import WordOps, word_ops_for
from repro.util.bits import MASK64

#: Fixed exponent: the paper's 124-bit modulus regime.
EXPONENT = 124

#: Largest fold constant the two-fold reduction supports comfortably.
MAX_C_BITS = 44


@lru_cache(maxsize=None)
def find_pseudo_mersenne(order: int = 1 << 20) -> Tuple[int, int]:
    """Find the smallest ``c`` with ``q = 2^124 - c`` prime and NTT-friendly.

    NTT-friendliness needs ``q = 1 mod order``; since ``2^124 = 0 mod
    order`` for power-of-two orders up to 2^124, that forces
    ``c = -1 mod order``.
    """
    if order & (order - 1) or order < 2:
        raise ArithmeticDomainError("order must be a power of two >= 2")
    c = order - 1
    while c.bit_length() <= MAX_C_BITS:
        q = (1 << EXPONENT) - c
        if is_prime(q):
            return q, c
        c += order
    raise ArithmeticDomainError(
        f"no pseudo-Mersenne prime 2^{EXPONENT} - c with c < 2^{MAX_C_BITS} "
        f"and order {order}"
    )


def reduce_pseudo_mersenne(x: int, q: int, c: int) -> int:
    """Reference folding reduction of ``x < q**2`` (pure Python)."""
    if q + c != 1 << EXPONENT:
        raise ArithmeticDomainError("q must equal 2^124 - c")
    if not 0 <= x < q * q:
        raise ArithmeticDomainError("reduction input must be in [0, q^2)")
    mask = (1 << EXPONENT) - 1
    # Two folds bring x under 2q; one conditional subtraction finishes.
    x = (x >> EXPONENT) * c + (x & mask)
    x = (x >> EXPONENT) * c + (x & mask)
    if x >= q:
        x -= q
    assert x < q
    return x


class SpecialPrimeKernel:
    """``mulmod`` for ``q = 2^124 - c`` on any kernel backend.

    Residues are (high, low) word pairs like the double-word kernels;
    blocks are lists of two word-plane registers.
    """

    #: Bit position of the fold boundary inside the high word.
    _HI_BITS = EXPONENT - 64  # 60

    def __init__(self, backend: Backend, q: int, c: int) -> None:
        if q + c != 1 << EXPONENT:
            raise ArithmeticDomainError("q must equal 2^124 - c")
        if c.bit_length() > MAX_C_BITS:
            raise ArithmeticDomainError(
                f"fold constant must fit {MAX_C_BITS} bits, got {c.bit_length()}"
            )
        if not is_prime(q):
            raise ArithmeticDomainError(f"{q} is not prime")
        self.backend = backend
        self.ops: WordOps = word_ops_for(backend)
        self.q = q
        self.c = c
        ops = self.ops
        self.c_reg = ops.broadcast(c)
        self.q_lo = ops.broadcast(q & MASK64)
        self.q_hi = ops.broadcast(q >> 64)
        self.mask_hi = ops.broadcast((1 << self._HI_BITS) - 1)

    # ------------------------------------------------------------------
    # Block I/O (same layout as the double-word kernels)
    # ------------------------------------------------------------------

    def load_block(self, values: List[int]) -> List[Any]:
        ops = self.ops
        lo = ops.load([v & MASK64 for v in values])
        hi = ops.load([v >> 64 for v in values])
        return [lo, hi]

    def block_values(self, regs: List[Any]) -> List[int]:
        ops = self.ops
        los, his = ops.values(regs[0]), ops.values(regs[1])
        return [(h << 64) | l for h, l in zip(his, los)]

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------

    def mulmod(self, a: List[Any], b: List[Any]) -> List[Any]:
        """``a * b mod q`` via full product + two folds + one subtract."""
        ops = self.ops
        s = self._HI_BITS

        # Full 128x128 -> 256 product (4 widening multiplies + chains).
        t = self._mul_full(a, b)

        # Fold 1: x1 = t >> 124 (two words), x0 = t mod 2^124.
        x1_lo = ops.shrd(t[2], t[1], s)
        x1_hi = ops.shrd(t[3], t[2], s)
        x0_lo = t[0]
        x0_hi = ops.band(t[1], self.mask_hi)

        # p = x1 * c: two widening multiplies, 3-word result.
        p0_hi, p0_lo = ops.wide_mul(x1_lo, self.c_reg)
        p1_hi, p1_lo = ops.wide_mul(x1_hi, self.c_reg)
        mid, cy = ops.add_carry_out(p0_hi, p1_lo)
        top = ops.add_nocarry(p1_hi, ops.zero, cy)

        # f = x0 + p (3 words; top stays tiny).
        f0, c1 = ops.add_carry_out(x0_lo, p0_lo)
        f1, c2 = ops.adc(x0_hi, mid, c1)
        f2 = ops.add_nocarry(top, ops.zero, c2)

        # Fold 2: y1 = f >> 124 (single small word), y0 = f mod 2^124.
        y1 = ops.shrd(f2, f1, s)
        y0_lo = f0
        y0_hi = ops.band(f1, self.mask_hi)
        q_hi, q_lo = ops.wide_mul(y1, self.c_reg)
        r0, c3 = ops.add_carry_out(y0_lo, q_lo)
        r1 = ops.add_nocarry(y0_hi, q_hi, c3)

        # r < 2q: one conditional subtraction.
        d0, b1 = ops.sub_borrow_out(r0, self.q_lo)
        d1, b2 = ops.sbb(r1, self.q_hi, b1)
        keep = ops.cond_not(b2)
        out_lo = ops.select(keep, d0, r0)
        out_hi = ops.select(keep, d1, r1)
        return [out_lo, out_hi]

    def _mul_full(self, a: List[Any], b: List[Any]) -> List[Any]:
        """Schoolbook 2x2-word full product (little-endian 4 words)."""
        ops = self.ops
        ll_hi, ll_lo = ops.wide_mul(a[0], b[0])
        lh_hi, lh_lo = ops.wide_mul(a[0], b[1])
        hl_hi, hl_lo = ops.wide_mul(a[1], b[0])
        hh_hi, hh_lo = ops.wide_mul(a[1], b[1])

        s1, c1 = ops.add_carry_out(lh_lo, hl_lo)
        w1, c2 = ops.add_carry_out(s1, ll_hi)
        s2, c3 = ops.adc(lh_hi, hl_hi, c1)
        w2, c4 = ops.adc(s2, hh_lo, c2)
        w3 = ops.add_nocarry(hh_hi, ops.zero, c3)
        w3 = ops.add_nocarry(w3, ops.zero, c4)
        return [ll_lo, w1, w2, w3]
