"""Reference double-word (128-bit) modular arithmetic (Section 3.1).

These are the pure-Python ports of the paper's scalar algorithms - the
branch-structured logic of Listing 1 for addition, Equation 7 plus a
conditional correction for subtraction, and double-word multiplication with
Barrett reduction. They operate on ``(high, low)`` tuples of plain ints and
are the ground truth every kernel backend is tested against.

The Barrett constraint ``q <= 2^124`` (Section 2.1) matters structurally: it
guarantees that ``a + b < 2^125`` never overflows the 128-bit double-word,
which is what lets the optimized kernels drop carry-out handling for the
high words (the Table 1 discussion).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arith.barrett import BarrettParams
from repro.arith.doubleword import (
    DW,
    dw_from_int,
    dw_mul_karatsuba,
    dw_mul_schoolbook,
    dw_value,
)
from repro.errors import ArithmeticDomainError
from repro.util.bits import MASK64

#: The paper's modulus-width bound for 128-bit Barrett reduction.
MAX_MODULUS_BITS = 124


def check_modulus_128(q: int) -> int:
    """Validate a modulus for 128-bit double-word modular arithmetic."""
    if q < 3:
        raise ArithmeticDomainError(f"modulus must be >= 3, got {q}")
    if q.bit_length() > MAX_MODULUS_BITS:
        raise ArithmeticDomainError(
            f"128-bit Barrett reduction requires a modulus of at most "
            f"{MAX_MODULUS_BITS} bits, got {q.bit_length()} bits"
        )
    return q


def _check_operand(x: DW, m: DW, name: str) -> None:
    if dw_value(x) >= dw_value(m):
        raise ArithmeticDomainError(f"{name} is not reduced modulo the modulus")


def addmod128(a: DW, b: DW, m: DW) -> DW:
    """Listing 1: double-word modular addition using only 64-bit words.

    Computes ``a + b mod m`` with the carry/compare structure of the scalar
    kernel: low-word add producing carry ``c1``, high-word add-with-carry,
    then a fused comparison against the modulus and a conditional
    double-word subtraction.
    """
    check_modulus_128(dw_value(m))
    _check_operand(a, m, "a")
    _check_operand(b, m, "b")
    ah, al = a
    bh, bl = b
    mh, ml = m

    t30 = al + bl
    c1 = t30 >> 64
    t30 &= MASK64
    t29 = ah + bh + c1
    c2 = t29 >> 64  # always 0 for q <= 2^124, kept for structural fidelity
    t29 &= MASK64

    # i28: does the (possibly overflowed) sum reach the modulus?
    a31 = mh < t29
    a34 = (mh == t29) and (ml <= t30)
    i28 = bool(c2) or a31 or a34

    if i28:
        d1 = (t30 - ml) & MASK64
        b1 = 0 if ml <= t30 else 1
        d3 = (t29 - mh - b1) & MASK64
        return (d3, d1)
    return (t29, t30)


def submod128(a: DW, b: DW, m: DW) -> DW:
    """Double-word modular subtraction (Equation 3 over double-words).

    ``a - b`` with borrow propagation (Equation 7); when the subtraction
    borrows out, the modulus is added back.
    """
    check_modulus_128(dw_value(m))
    _check_operand(a, m, "a")
    _check_operand(b, m, "b")
    ah, al = a
    bh, bl = b
    mh, ml = m

    low = al - bl
    delta = 1 if low < 0 else 0
    high = ah - bh - delta
    borrow = 1 if high < 0 else 0
    low &= MASK64
    high &= MASK64

    if borrow:
        low2 = low + ml
        carry = low2 >> 64
        high = (high + mh + carry) & MASK64
        low = low2 & MASK64
    return (high, low)


def mulmod128(
    a: DW,
    b: DW,
    m: DW,
    params: Optional[BarrettParams] = None,
    algorithm: str = "schoolbook",
) -> DW:
    """Double-word modular multiplication with Barrett reduction.

    ``algorithm`` selects the 128x128->256 multiplication: ``"schoolbook"``
    (Equation 8, four word multiplications - the paper's default since it
    consistently wins on CPUs) or ``"karatsuba"`` (Equation 9, three word
    multiplications - faster on GPUs per MoMA, slower here).
    """
    q = dw_value(m)
    check_modulus_128(q)
    _check_operand(a, m, "a")
    _check_operand(b, m, "b")
    if params is None:
        params = BarrettParams(q)
    elif params.q != q:
        raise ArithmeticDomainError(
            f"Barrett parameters are for modulus {params.q}, not {q}"
        )
    params.check_width(128)

    if algorithm == "schoolbook":
        t_high, t_low = dw_mul_schoolbook(a, b)
    elif algorithm == "karatsuba":
        t_high, t_low = dw_mul_karatsuba(a, b)
    else:
        raise ArithmeticDomainError(f"unknown multiplication algorithm {algorithm!r}")

    beta = params.beta
    t_words = (t_low[1], t_low[0], t_high[1], t_high[0])

    # Quotient estimate: ((t >> (beta-1)) * mu) >> (beta+1), all in
    # double-word pieces exactly as the SIMD kernels do it.
    t_shifted = _shift_right_4words(t_words, beta - 1)
    mu_dw = dw_from_int(params.mu)
    g_high, g_low = dw_mul_schoolbook(t_shifted, mu_dw)
    g_words = (g_low[1], g_low[0], g_high[1], g_high[0])
    estimate = _shift_right_4words(g_words, beta + 1)

    # c = t - estimate * q, computed modulo 2^128 (c < 3q < 2^126).
    est_q_low = _dw_mullo(estimate, m)
    c = (dw_value(t_low) - dw_value(est_q_low)) % (1 << 128)

    # At most two conditional corrections (classical Barrett bound).
    if c >= q:
        c -= q
    if c >= q:
        c -= q
    assert c < q, "Barrett estimate off by more than 2"
    return dw_from_int(c)


def _shift_right_4words(words: Tuple[int, int, int, int], amount: int) -> DW:
    """Right-shift a 256-bit little-endian value into a double-word."""
    value = 0
    for i, word in enumerate(words):
        value |= word << (64 * i)
    shifted = value >> amount
    if shifted >> 128:
        raise ArithmeticDomainError(
            f"Barrett intermediate does not fit in 128 bits (shift={amount})"
        )
    return dw_from_int(shifted)


def _dw_mullo(a: DW, b: DW) -> DW:
    """Low 128 bits of a 128x128 product (three word multiplications)."""
    a0, a1 = a
    b0, b1 = b
    low = a1 * b1
    cross = (a1 * b0 + a0 * b1) & MASK64
    total = (low + (cross << 64)) % (1 << 128)
    return dw_from_int(total)
