"""Double-word (two 64-bit words) integer arithmetic (Section 2.2).

A 128-bit value ``x`` is the pair ``(x0, x1)`` with ``x = x0 * 2^64 + x1``
(``x0`` high, ``x1`` low, Equation 5). The routines here implement
Equations 6-9 word-by-word in pure Python - the mathematical reference for
the traced kernel backends, and the arithmetic core of the baseline
substitutes.

All functions take and return ``(high, low)`` tuples of plain ints.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ArithmeticDomainError
from repro.util.bits import MASK64

DW = Tuple[int, int]


def _check_dw(x: DW, name: str) -> None:
    high, low = x
    if not (0 <= high <= MASK64 and 0 <= low <= MASK64):
        raise ArithmeticDomainError(f"{name} = {x} is not a valid double-word")


def dw_value(x: DW) -> int:
    """The integer value of a double-word pair."""
    return (x[0] << 64) | x[1]


def dw_from_int(value: int) -> DW:
    """Split a 128-bit integer into a ``(high, low)`` double-word pair."""
    if not 0 <= value < (1 << 128):
        raise ArithmeticDomainError(f"{value} does not fit in a double-word")
    return (value >> 64, value & MASK64)


def dw_add(a: DW, b: DW) -> Tuple[DW, int]:
    """Equation 6: double-word addition; returns ``(sum, carry_out)``.

    The low words are added first producing an intermediate carry ``delta``,
    which feeds the high-word addition (add-with-carry, Table 1).
    """
    _check_dw(a, "a")
    _check_dw(b, "b")
    low_sum = a[1] + b[1]
    delta = low_sum >> 64
    high_sum = a[0] + b[0] + delta
    return ((high_sum & MASK64, low_sum & MASK64), high_sum >> 64)


def dw_add_with_carry(a: DW, b: DW, carry_in: int) -> Tuple[DW, int]:
    """Double-word addition with an incoming carry bit."""
    if carry_in not in (0, 1):
        raise ArithmeticDomainError(f"carry_in must be 0 or 1, got {carry_in}")
    _check_dw(a, "a")
    _check_dw(b, "b")
    low_sum = a[1] + b[1] + carry_in
    delta = low_sum >> 64
    high_sum = a[0] + b[0] + delta
    return ((high_sum & MASK64, low_sum & MASK64), high_sum >> 64)


def dw_sub(a: DW, b: DW) -> Tuple[DW, int]:
    """Equation 7: double-word subtraction; returns ``(diff, borrow_out)``.

    ``delta`` is 1 when the low words borrow (``a1 < b1``).
    """
    _check_dw(a, "a")
    _check_dw(b, "b")
    low_diff = a[1] - b[1]
    delta = 1 if low_diff < 0 else 0
    high_diff = a[0] - b[0] - delta
    borrow = 1 if high_diff < 0 else 0
    return ((high_diff & MASK64, low_diff & MASK64), borrow)


def dw_mul_schoolbook(a: DW, b: DW) -> Tuple[DW, DW]:
    """Equation 8: schoolbook 128x128->256 multiplication.

    Four single-word multiplications:
    ``c = (a0 b0) 2^128 + (a0 b1 + a1 b0) 2^64 + a1 b1``.
    Returns ``(high_dw, low_dw)`` - the upper and lower 128 bits.
    """
    _check_dw(a, "a")
    _check_dw(b, "b")
    a0, a1 = a
    b0, b1 = b

    hh = a0 * b0
    hl = a0 * b1
    lh = a1 * b0
    ll = a1 * b1

    # Accumulate: ll + (hl + lh) << 64 + hh << 128, word by word.
    w0 = ll & MASK64
    mid = (ll >> 64) + (hl & MASK64) + (lh & MASK64)
    w1 = mid & MASK64
    high = (mid >> 64) + (hl >> 64) + (lh >> 64) + hh
    w2 = high & MASK64
    w3 = (high >> 64) & MASK64
    return ((w3, w2), (w1, w0))


def dw_mul_karatsuba(a: DW, b: DW) -> Tuple[DW, DW]:
    """Equation 9: Karatsuba 128x128->256 multiplication.

    Three single-word multiplications plus extra additions:
    ``c = (a0 b0) 2^128 + ((a0+a1)(b0+b1) - a0 b0 - a1 b1) 2^64 + a1 b1``.
    Note ``a0 + a1`` and ``b0 + b1`` can be 65 bits; the cross product is
    computed exactly (the word-level kernels carry the extra bit
    explicitly). Returns ``(high_dw, low_dw)``.
    """
    _check_dw(a, "a")
    _check_dw(b, "b")
    a0, a1 = a
    b0, b1 = b

    hh = a0 * b0
    ll = a1 * b1
    cross = (a0 + a1) * (b0 + b1) - hh - ll

    total = (hh << 128) + (cross << 64) + ll
    return (
        ((total >> 192) & MASK64, (total >> 128) & MASK64),
        ((total >> 64) & MASK64, total & MASK64),
    )


def dw_shift_right(words: Tuple[int, int, int, int], amount: int) -> DW:
    """Shift a 256-bit little-endian 4-word value right into a double-word.

    Used by Barrett reduction to form ``t >> (beta - 1)``; the caller
    guarantees the shifted value fits in 128 bits.
    """
    if not 0 <= amount < 256:
        raise ArithmeticDomainError(f"shift amount {amount} out of range")
    value = 0
    for i, word in enumerate(words):
        value |= word << (64 * i)
    shifted = value >> amount
    if shifted >> 128:
        raise ArithmeticDomainError(
            f"shifted value does not fit in a double-word (shift={amount})"
        )
    return dw_from_int(shifted)
