"""NTT-friendly prime generation and roots of unity.

An ``n``-point NTT over ``Z_q`` needs a primitive ``n``-th root of unity
``omega_n`` (Equation 11), which exists iff ``n | q - 1``. The paper targets
general (non-special) primes of up to 124 bits, so this module provides:

* Miller-Rabin primality testing,
* a search for primes ``q = k * order + 1`` of a requested bit length
  (``order`` a power of two, covering every NTT size up to ``order``),
* primitive ``n``-th roots of unity via cofactor exponentiation (no
  factorization of ``q - 1`` required when ``n`` is a power of two).
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.arith.modular import pow_mod
from repro.errors import ArithmeticDomainError, NttParameterError
from repro.util.checks import check_power_of_two

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)

#: Rounds of Miller-Rabin; error probability < 4^-64 per candidate.
_MR_ROUNDS = 64


def is_prime(n: int, rng: random.Random = None) -> bool:
    """Miller-Rabin primality test (probabilistic for large ``n``)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = rng or random.Random(0xC0FFEE ^ n)
    for _ in range(_MR_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


@lru_cache(maxsize=None)
def find_ntt_prime(bits: int, order: int) -> int:
    """Find the largest ``bits``-bit prime ``q`` with ``q = 1 (mod order)``.

    ``order`` must be a power of two; any NTT of size ``n <= order`` (and
    negacyclic size ``n <= order/2``) is then supported by ``q``.
    """
    if order <= 0 or order & (order - 1):
        raise NttParameterError(
            f"find_ntt_prime(bits={bits}, order={order}): order must be a "
            f"positive power of two (the signature is "
            f"find_ntt_prime(bits, order) - were the arguments swapped?)"
        )
    if bits < order.bit_length() + 1:
        raise ArithmeticDomainError(
            f"find_ntt_prime(bits={bits}, order={order}): a {bits}-bit prime "
            f"cannot satisfy q = 1 mod {order}"
        )
    top = (1 << bits) - 1
    k = (top - 1) // order
    while k > 0:
        candidate = k * order + 1
        if candidate.bit_length() != bits:
            break
        if is_prime(candidate):
            return candidate
        k -= 1
    raise ArithmeticDomainError(
        f"no {bits}-bit prime with q = 1 mod {order} found"
    )


@lru_cache(maxsize=None)
def root_of_unity(n: int, q: int) -> int:
    """Find a primitive ``n``-th root of unity in ``Z_q`` (``n`` = 2^s).

    Draws random elements ``x`` and computes ``w = x^((q-1)/n)``; ``w`` is a
    primitive ``n``-th root iff ``w^(n/2) != 1``. No factorization of
    ``q - 1`` is needed because ``n`` is a power of two.
    """
    check_power_of_two(n, "n")
    if (q - 1) % n:
        raise NttParameterError(f"no {n}-th root of unity exists mod {q}")
    if n == 1:
        return 1
    cofactor = (q - 1) // n
    rng = random.Random(0x5EED ^ q ^ n)
    for _ in range(256):
        x = rng.randrange(2, q - 1)
        w = pow(x, cofactor, q)
        if w != 1 and pow(w, n // 2, q) != 1:
            return w
    raise NttParameterError(f"failed to find a {n}-th root of unity mod {q}")


def find_primitive_root(q: int, limit_bits: int = 24) -> int:
    """Find a generator of ``Z_q*`` for *small* primes (test/demo helper).

    Requires factoring ``q - 1`` by trial division, so it refuses moduli
    wider than ``limit_bits``. Production code never needs a full generator
    (see :func:`root_of_unity`).
    """
    if not is_prime(q):
        raise ArithmeticDomainError(f"{q} is not prime")
    if q.bit_length() > limit_bits:
        raise ArithmeticDomainError(
            f"find_primitive_root is limited to {limit_bits}-bit primes; "
            "use root_of_unity for cryptographic sizes"
        )
    factors = _factorize(q - 1)
    for g in range(2, q):
        if all(pow_mod(g, (q - 1) // p, q) != 1 for p in factors):
            return g
    raise ArithmeticDomainError(f"no primitive root found for {q}")


def _factorize(n: int) -> set:
    factors = set()
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 1
    if n > 1:
        factors.add(n)
    return factors


@lru_cache(maxsize=None)
def default_modulus(bits: int = 124, order: int = 1 << 20) -> int:
    """The library-wide default NTT modulus: largest 124-bit NTT prime.

    124 bits is the maximum the paper's Barrett setup allows at 128-bit data
    width; ``order = 2^20`` covers every NTT size in the evaluation.
    """
    return find_ntt_prime(bits, order)
