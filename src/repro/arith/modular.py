"""Scalar modular arithmetic over ``Z_q`` (Section 2.1).

The conditional-subtraction forms of Equations 2 and 3 and the Barrett form
of Equation 4 are implemented literally; these are the mathematical
specifications the kernel backends must match bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

from repro.arith.barrett import BarrettParams
from repro.errors import ArithmeticDomainError
from repro.util.checks import check_reduced


def add_mod(a: int, b: int, q: int) -> int:
    """Equation 2: ``a + b mod q`` via one conditional subtraction."""
    check_reduced(a, q, "a")
    check_reduced(b, q, "b")
    c = a + b
    return c - q if c >= q else c


def sub_mod(a: int, b: int, q: int) -> int:
    """Equation 3: ``a - b mod q`` via one conditional addition."""
    check_reduced(a, q, "a")
    check_reduced(b, q, "b")
    return a - b + q if a < b else a - b


def mul_mod(a: int, b: int, q: int, params: Optional[BarrettParams] = None) -> int:
    """Equation 4: ``a * b mod q`` via Barrett reduction.

    ``params`` may be passed to reuse precomputed constants across calls
    (the paper computes ``mu`` once per modulus).
    """
    check_reduced(a, q, "a")
    check_reduced(b, q, "b")
    if params is None:
        params = BarrettParams(q)
    elif params.q != q:
        raise ArithmeticDomainError(
            f"Barrett parameters are for modulus {params.q}, not {q}"
        )
    return params.reduce(a * b)


def pow_mod(base: int, exponent: int, q: int) -> int:
    """Square-and-multiply exponentiation built on :func:`mul_mod`."""
    if exponent < 0:
        raise ArithmeticDomainError("exponent must be non-negative")
    params = BarrettParams(q)
    result = 1 % q
    acc = base % q
    e = exponent
    while e:
        if e & 1:
            result = mul_mod(result, acc, q, params)
        acc = mul_mod(acc, acc, q, params)
        e >>= 1
    return result


def inv_mod(a: int, q: int) -> int:
    """Modular inverse via the extended Euclidean algorithm.

    Raises :class:`ArithmeticDomainError` when ``gcd(a, q) != 1``.
    """
    check_reduced(a, q, "a")
    if a == 0:
        raise ArithmeticDomainError("0 has no modular inverse")
    old_r, r = a, q
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    if old_r != 1:
        raise ArithmeticDomainError(f"{a} is not invertible modulo {q}")
    return old_s % q
