"""Barrett reduction parameters (Section 2.1, Equation 4).

Barrett reduction replaces the expensive modulo operation with shifts and
multiplications using a per-modulus precomputed constant ``mu``:

    c = t - floor(t * mu / 2^k) * q,   mu = floor(2^k / q).

We use the classical two-shift refinement (Handbook of Applied Cryptography
Alg. 14.42): instead of the full ``t * mu`` product, first drop the low
``beta - 1`` bits of ``t`` (``beta`` = bit length of ``q``), multiply by
``mu = floor(2^(2 beta) / q)``, then shift right by ``beta + 1``. The
quotient estimate is off by at most 2, so at most two conditional
subtractions complete the reduction.

The paper's key constraint: for a target data width of ``l`` bits, ``q``
must have at most ``l - 4`` bits so that ``mu`` also fits in ``l`` bits.
For the 128-bit double-words used here that means ``q <= 2^124``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArithmeticDomainError


@dataclass(frozen=True)
class BarrettParams:
    """Precomputed Barrett constants for a fixed modulus ``q``.

    Attributes:
        q: The modulus.
        beta: Bit length of ``q``.
        k: The Barrett exponent, ``2 * beta`` (satisfies ``2^(k/2) > q``).
        mu: ``floor(2^k / q)``.
    """

    q: int
    beta: int = field(init=False)
    k: int = field(init=False)
    mu: int = field(init=False)

    def __post_init__(self) -> None:
        if self.q < 3:
            raise ArithmeticDomainError(f"modulus must be >= 3, got {self.q}")
        beta = self.q.bit_length()
        object.__setattr__(self, "beta", beta)
        object.__setattr__(self, "k", 2 * beta)
        object.__setattr__(self, "mu", (1 << (2 * beta)) // self.q)

    def check_width(self, data_bits: int) -> None:
        """Enforce the paper's ``q <= 2^(l-4)`` constraint for width ``l``."""
        if self.beta > data_bits - 4:
            raise ArithmeticDomainError(
                f"Barrett reduction at {data_bits}-bit width requires a modulus "
                f"of at most {data_bits - 4} bits; got {self.beta} bits"
            )
        if self.mu.bit_length() > data_bits:
            raise ArithmeticDomainError(
                f"Barrett mu has {self.mu.bit_length()} bits and does not fit "
                f"in {data_bits} bits"
            )

    def reduce(self, t: int) -> int:
        """Reduce ``t < q**2`` modulo ``q`` without a division.

        Implements the shift-refined Equation 4; asserts the classical bound
        that at most two correction subtractions are needed.
        """
        if not 0 <= t < self.q * self.q:
            raise ArithmeticDomainError(
                f"Barrett reduction requires 0 <= t < q^2, got t with "
                f"{t.bit_length() if t >= 0 else '-'} bits"
            )
        estimate = ((t >> (self.beta - 1)) * self.mu) >> (self.beta + 1)
        c = t - estimate * self.q
        corrections = 0
        while c >= self.q:
            c -= self.q
            corrections += 1
        assert corrections <= 2, "Barrett estimate off by more than 2"
        return c

    def quotient_estimate(self, t: int) -> int:
        """The quotient estimate ``floor((t >> (beta-1)) * mu / 2^(beta+1))``.

        Exposed separately because the SIMD kernels materialize exactly this
        value before the ``mullo``/subtract step.
        """
        return ((t >> (self.beta - 1)) * self.mu) >> (self.beta + 1)
