"""Lower instruction traces to C-with-intrinsics source text.

Each trace entry maps to one C statement through a per-mnemonic template.
Registers become SSA-style variables named by kind (``v12`` for vectors,
``k7`` for mask registers, ``t3`` for scalars, ``f4`` for flags); loads
and stores index symbolic ``in``/``out`` arrays in trace order; immediates
(shift counts, comparison predicates) come from the trace's ``imm`` field.

The output is the C the paper's artifact ships: it compiles against real
intrinsics headers (plus the generated ``mqx.h`` for MQX kernels). We
cannot compile it in this offline environment; the tests instead verify
structural well-formedness (every operand defined before use, balanced
parentheses, no unmapped instructions for the library's kernels).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.errors import ExperimentError
from repro.isa.trace import TraceEntry, Tracer, tracing
from repro.kernels.backend import Backend

#: _MM_CMPINT_* names by predicate value.
_CMPINT_NAMES = {
    0: "_MM_CMPINT_EQ",
    1: "_MM_CMPINT_LT",
    2: "_MM_CMPINT_LE",
    3: "_MM_CMPINT_FALSE",
    4: "_MM_CMPINT_NE",
    5: "_MM_CMPINT_NLT",
    6: "_MM_CMPINT_NLE",
    7: "_MM_CMPINT_TRUE",
}

# Result-kind codes: "v" = __m512i, "y" = __m256i, "k" = __mmask8,
# "t" = uint64_t, "f" = flag (emitted as uint64_t 0/1).
_C_TYPES = {"v": "__m512i", "y": "__m256i", "k": "__mmask8", "t": "uint64_t",
            "f": "uint64_t"}


def _cmp_name(imm: Optional[int]) -> str:
    return _CMPINT_NAMES.get(imm if imm is not None else 1, "_MM_CMPINT_LT")


class _Emitter:
    """Stateful lowering of one trace."""

    def __init__(self) -> None:
        self.names: Dict[int, str] = {}
        self.kinds: Dict[int, str] = {}
        self.defined: set = set()
        self.counter = 0
        self.loads = 0
        self.stores = 0
        self.lines: List[str] = []
        self.unmapped: List[str] = []

    def name(self, vid: int, kind: str = "t") -> str:
        if vid not in self.names:
            self.counter += 1
            self.names[vid] = f"{kind}{self.counter}"
            self.kinds[vid] = kind
        return self.names[vid]

    def define(self, vid: int, kind: str) -> str:
        name = self.name(vid, kind)
        self.defined.add(vid)
        return f"{_C_TYPES[self.kinds[vid]]} {name}"

    def hoisted_declarations(self) -> List[str]:
        """Declarations for values consumed but never produced in the trace
        (loop-hoisted constants such as the broadcast modulus, ``one``...).
        """
        inits = {"v": "_mm512_set1_epi64(0)", "y": "_mm256_set1_epi64x(0)",
                 "k": "0", "t": "0", "f": "0"}
        lines = []
        for vid, name in self.names.items():
            if vid in self.defined:
                continue
            kind = self.kinds[vid]
            lines.append(
                f"    {_C_TYPES[kind]} {name} = {inits[kind]}; "
                f"/* hoisted constant */"
            )
        return lines

    # -- per-entry lowering --------------------------------------------

    def emit(self, entry: TraceEntry) -> None:
        handler = _HANDLERS.get(entry.op)
        if handler is None:
            self.unmapped.append(entry.op)
            self.lines.append(f"    /* unmapped: {entry.op} */")
            return
        self.lines.append("    " + handler(self, entry))


def _src(e: _Emitter, entry: TraceEntry, i: int, kind: str = "t") -> str:
    return e.name(entry.srcs[i], kind)


def _name_srcs(e: _Emitter, entry: TraceEntry, src_kinds: str) -> List[str]:
    """Name every source with its declared kind; extra sources get the
    last kind (variadic flag chains)."""
    out = []
    for i in range(len(entry.srcs)):
        kind = src_kinds[min(i, len(src_kinds) - 1)] if src_kinds else "t"
        out.append(e.name(entry.srcs[i], kind))
    return out


def _simple(intrinsic: str, kind: str, src_kinds: str = "vv"):
    def handler(e: _Emitter, entry: TraceEntry) -> str:
        args = ", ".join(_name_srcs(e, entry, src_kinds))
        return f"{e.define(entry.dests[0], kind)} = {intrinsic}({args});"

    return handler


def _shift(intrinsic: str, kind: str):
    def handler(e: _Emitter, entry: TraceEntry) -> str:
        return (
            f"{e.define(entry.dests[0], kind)} = "
            f"{intrinsic}({_src(e, entry, 0, kind)}, {entry.imm});"
        )

    return handler


def _cmp_zmm(e: _Emitter, entry: TraceEntry) -> str:
    pred = _cmp_name(entry.imm)
    if len(entry.srcs) == 3:  # masked (zeroing) compare
        args = _name_srcs(e, entry, "kvv")
        return (
            f"{e.define(entry.dests[0], 'k')} = _mm512_mask_cmp_epu64_mask("
            f"{args[0]}, {args[1]}, {args[2]}, {pred});"
        )
    args = _name_srcs(e, entry, "vv")
    return (
        f"{e.define(entry.dests[0], 'k')} = _mm512_cmp_epu64_mask("
        f"{args[0]}, {args[1]}, {pred});"
    )


def _load(kind: str, intrinsic: str):
    def handler(e: _Emitter, entry: TraceEntry) -> str:
        idx = e.loads
        e.loads += 1
        return f"{e.define(entry.dests[0], kind)} = {intrinsic}(in + {idx});"

    return handler


def _store(intrinsic: str, kind: str):
    def handler(e: _Emitter, entry: TraceEntry) -> str:
        idx = e.stores
        e.stores += 1
        return f"{intrinsic}(out + {idx}, {_src(e, entry, 0, kind)});"

    return handler


def _mqx_widening(e: _Emitter, entry: TraceEntry) -> str:
    hi = e.define(entry.dests[0], "v")
    lo = e.define(entry.dests[1], "v")
    return (
        f"{hi}; {lo}; _mm512_mul_epi64(&{e.name(entry.dests[0])}, "
        f"&{e.name(entry.dests[1])}, {_src(e, entry, 0, 'v')}, "
        f"{_src(e, entry, 1, 'v')});"
    )


def _mqx_carry(intrinsic: str):
    def handler(e: _Emitter, entry: TraceEntry) -> str:
        co = e.define(entry.dests[1], "k")
        args = _name_srcs(e, entry, "vvk")
        return (
            f"{co}; {e.define(entry.dests[0], 'v')} = {intrinsic}("
            f"{args[0]}, {args[1]}, {args[2]}, &{e.name(entry.dests[1])});"
        )

    return handler


def _mqx_pred(intrinsic: str):
    def handler(e: _Emitter, entry: TraceEntry) -> str:
        args = ", ".join(_name_srcs(e, entry, "vkvvk"))
        return f"{e.define(entry.dests[0], 'v')} = {intrinsic}({args});"

    return handler


# -- scalar lowering (unsigned __int128 accumulators) ----------------------


def _scalar_carry(op: str):
    sign = "+" if op == "add" else "-"

    def handler(e: _Emitter, entry: TraceEntry) -> str:
        named = _name_srcs(e, entry, "ttf")
        terms = f" {sign} ".join(
            f"(unsigned __int128){name}" if i == 0 else name
            for i, name in enumerate(named)
        )
        value = e.define(entry.dests[0], "t")
        flag = e.define(entry.dests[1], "f")
        acc = f"acc{e.counter}"
        if op == "add":
            return (
                f"unsigned __int128 {acc} = {terms}; "
                f"{value} = (uint64_t){acc}; {flag} = (uint64_t)({acc} >> 64);"
            )
        return (
            f"__int128 {acc} = {terms}; "
            f"{value} = (uint64_t){acc}; {flag} = ({acc} < 0);"
        )

    return handler


def _scalar_mul(e: _Emitter, entry: TraceEntry) -> str:
    hi = e.define(entry.dests[0], "t")
    lo = e.define(entry.dests[1], "t")
    acc = f"acc{e.counter}"
    return (
        f"unsigned __int128 {acc} = (unsigned __int128){_src(e, entry, 0)} * "
        f"{_src(e, entry, 1)}; {hi} = (uint64_t)({acc} >> 64); "
        f"{lo} = (uint64_t){acc};"
    )


def _scalar_expr(template: str, kind: str = "t", src_kinds: str = "t"):
    def handler(e: _Emitter, entry: TraceEntry) -> str:
        srcs = _name_srcs(e, entry, src_kinds)
        expr = template.format(*srcs, imm=entry.imm)
        return f"{e.define(entry.dests[0], kind)} = {expr};"

    return handler


def _flag_logic(e: _Emitter, entry: TraceEntry) -> str:
    srcs = _name_srcs(e, entry, "f")
    if len(srcs) == 1:
        expr = f"!{srcs[0]}"
    else:
        expr = f"{srcs[0]} | {srcs[1]}"
    return f"{e.define(entry.dests[0], 'f')} = {expr};"


def _scalar_load(e: _Emitter, entry: TraceEntry) -> str:
    idx = e.loads
    e.loads += 1
    return f"{e.define(entry.dests[0], 't')} = in[{idx}];"


def _scalar_store(e: _Emitter, entry: TraceEntry) -> str:
    idx = e.stores
    e.stores += 1
    return f"out[{idx}] = {_src(e, entry, 0)};"


def _scalar_shrd(e: _Emitter, entry: TraceEntry) -> str:
    hi, lo = _src(e, entry, 0), _src(e, entry, 1)
    return (
        f"{e.define(entry.dests[0], 't')} = "
        f"({lo} >> {entry.imm}) | ({hi} << (64 - {entry.imm}));"
    )


_HANDLERS = {
    # --- AVX-512 --------------------------------------------------------
    "vpaddq_zmm": _simple("_mm512_add_epi64", "v"),
    "vpsubq_zmm": _simple("_mm512_sub_epi64", "v"),
    "vpaddq_masked_zmm": _simple("_mm512_mask_add_epi64", "v", "vkvv"),
    "vpsubq_masked_zmm": _simple("_mm512_mask_sub_epi64", "v", "vkvv"),
    "vpcmpuq_zmm": _cmp_zmm,
    "vpblendmq_zmm": _simple("_mm512_mask_blend_epi64", "v", "kvv"),
    "vpmullq_zmm": _simple("_mm512_mullo_epi64", "v"),
    "vpmuludq_zmm": _simple("_mm512_mul_epu32", "v"),
    "vpsrlq_zmm": _shift("_mm512_srli_epi64", "v"),
    "vpsllq_zmm": _shift("_mm512_slli_epi64", "v"),
    "vpandq_zmm": _simple("_mm512_and_epi64", "v"),
    "vporq_zmm": _simple("_mm512_or_epi64", "v"),
    "vpxorq_zmm": _simple("_mm512_xor_epi64", "v"),
    "vpmaxuq_zmm": _simple("_mm512_max_epu64", "v"),
    "vpunpcklqdq_zmm": _simple("_mm512_unpacklo_epi64", "v"),
    "vpunpckhqdq_zmm": _simple("_mm512_unpackhi_epi64", "v"),
    "vpermt2q_zmm": _simple("_mm512_permutex2var_epi64", "v", "vvv"),
    "vmovdqa64_zmm": _scalar_expr("{0}", kind="v", src_kinds="v"),
    "vmovdqu64_load_zmm": _load("v", "_mm512_loadu_si512"),
    "vmovdqu64_store_zmm": _store("_mm512_storeu_si512", "v"),
    "vpbroadcastq_zmm": lambda e, entry: (
        f"{e.define(entry.dests[0], 'v')} = "
        "_mm512_set1_epi64(/* per-iteration constant */ 0);"
    ),
    "korb": _simple("_kor_mask8", "k", "kk"),
    "kandb": _simple("_kand_mask8", "k", "kk"),
    "kandnb": _simple("_kandn_mask8", "k", "kk"),
    "kxorb": _simple("_kxor_mask8", "k", "kk"),
    "knotb": _simple("_knot_mask8", "k", "k"),
    # --- MQX (the generated code includes mqx.h) -------------------------
    "vpmulwq_zmm": _mqx_widening,
    "vpmulhq_zmm": _simple("_mm512_mulhi_epi64", "v"),
    "vpadcq_zmm": _mqx_carry("_mm512_adc_epi64"),
    "vpsbbq_zmm": _mqx_carry("_mm512_sbb_epi64"),
    "vpadcq_pred_zmm": _mqx_pred("_mm512_mask_adc_epi64"),
    "vpsbbq_pred_zmm": _mqx_pred("_mm512_mask_sbb_epi64"),
    # --- AVX2 -------------------------------------------------------------
    "vpaddq_ymm": _simple("_mm256_add_epi64", "y", "yy"),
    "vpsubq_ymm": _simple("_mm256_sub_epi64", "y", "yy"),
    "vpcmpgtq_ymm": _simple("_mm256_cmpgt_epi64", "y", "yy"),
    "vpcmpeqq_ymm": _simple("_mm256_cmpeq_epi64", "y", "yy"),
    "vpand_ymm": _simple("_mm256_and_si256", "y", "yy"),
    "vpandn_ymm": _simple("_mm256_andnot_si256", "y", "yy"),
    "vpor_ymm": _simple("_mm256_or_si256", "y", "yy"),
    "vpxor_ymm": _simple("_mm256_xor_si256", "y", "yy"),
    "vpblendvb_ymm": _simple("_mm256_blendv_epi8", "y", "yyy"),
    "vpmuludq_ymm": _simple("_mm256_mul_epu32", "y", "yy"),
    "vpmulld_ymm": _simple("_mm256_mullo_epi32", "y", "yy"),
    "vpsrlq_ymm": _shift("_mm256_srli_epi64", "y"),
    "vpsllq_ymm": _shift("_mm256_slli_epi64", "y"),
    "vpunpcklqdq_ymm": _simple("_mm256_unpacklo_epi64", "y", "yy"),
    "vpunpckhqdq_ymm": _simple("_mm256_unpackhi_epi64", "y", "yy"),
    "vperm2i128_ymm": _shift("/* vperm2i128 */_mm256_permute2x128_si256_imm", "y"),
    "vmovdqu_load_ymm": _load("y", "_mm256_loadu_si256"),
    "vmovdqu_store_ymm": _store("_mm256_storeu_si256", "y"),
    # --- scalar -------------------------------------------------------------
    "add64": _scalar_carry("add"),
    "adc64": _scalar_carry("add"),
    "sub64": _scalar_carry("sub"),
    "sbb64": _scalar_carry("sub"),
    "mul64": _scalar_mul,
    "imul64": _scalar_expr("{0} * {1}", src_kinds="tt"),
    "shl64": _scalar_expr("{0} << {imm}"),
    "shr64": _scalar_expr("{0} >> {imm}"),
    "shrd64": _scalar_shrd,
    "and64": _scalar_expr("{0} & {1}", src_kinds="tt"),
    "or64": _scalar_expr("{0} | {1}", src_kinds="tt"),
    "xor64": _scalar_expr("{0} ^ {1}", src_kinds="tt"),
    "cmp64": _scalar_expr("({0} < {1})", kind="f", src_kinds="tt"),
    "logic8": _flag_logic,
    "cmov64": _scalar_expr("{0} ? {1} : {2}", src_kinds="ftt"),
    "mov64": _scalar_expr("{0}"),
    "load64": _scalar_load,
    "store64": _scalar_store,
}

# cmp64 covers lt/le/eq under one mnemonic; codegen loses the exact
# predicate but keeps the dataflow (acceptable for the illustrative C).


def generate_c_function(
    trace: Tracer, name: str, allow_unmapped: bool = False
) -> str:
    """Lower a trace to one C function.

    The signature takes symbolic ``in``/``out`` arrays of the widest
    register type used. Raises :class:`ExperimentError` on unmapped
    mnemonics unless ``allow_unmapped``.
    """
    emitter = _Emitter()
    for entry in trace.entries:
        emitter.emit(entry)
    if emitter.unmapped and not allow_unmapped:
        raise ExperimentError(
            f"trace contains unmapped mnemonics: {sorted(set(emitter.unmapped))}"
        )

    kinds = set(emitter.kinds.values())
    if "v" in kinds:
        array_type = "__m512i"
    elif "y" in kinds:
        array_type = "__m256i"
    else:
        array_type = "uint64_t"

    header = [
        f"static void {name}(const {array_type}* in, {array_type}* out)",
        "{",
    ]
    footer = ["}"]
    return "\n".join(
        header + emitter.hoisted_declarations() + emitter.lines + footer
    )


_KERNEL_TRACERS = ("addmod", "submod", "mulmod", "butterfly")


def generate_kernel_source(
    backend: Backend, kernel: str, q: int, seed: int = 0xC0DE
) -> str:
    """Trace one kernel on ``backend`` and lower it to C.

    ``kernel`` is one of ``addmod``/``submod``/``mulmod``/``butterfly``.
    The generated file includes the right headers (``immintrin.h``, plus
    ``mqx.h`` for the MQX backend).
    """
    if kernel not in _KERNEL_TRACERS:
        raise ExperimentError(
            f"kernel must be one of {_KERNEL_TRACERS}, got {kernel!r}"
        )
    rng = random.Random(seed)
    ctx = backend.make_modulus(q)
    a_vals = [rng.randrange(q) for _ in range(backend.lanes)]
    b_vals = [rng.randrange(q) for _ in range(backend.lanes)]
    with tracing(f"codegen-{kernel}") as trace:
        a = backend.load_block(a_vals)
        b = backend.load_block(b_vals)
        if kernel == "butterfly":
            w = backend.broadcast_dw(rng.randrange(q))
            plus, minus = backend.butterfly(a, b, w, ctx)
            backend.store_block(plus)
            backend.store_block(minus)
        else:
            out = getattr(backend, kernel)(a, b, ctx)
            backend.store_block(out)

    includes = ["#include <stdint.h>", "#include <immintrin.h>"]
    if backend.name == "mqx":
        includes.append('#include "mqx.h"')
    body = generate_c_function(trace, f"{kernel}128_{backend.name}")
    preamble = (
        f"/* {kernel} over Z_q, q = {q.bit_length()} bits, "
        f"{backend.name} backend - generated by repro.codegen */"
    )
    return "\n".join([preamble, *includes, "", body, ""])
