"""C code generation from instruction traces (Section 7's "last mile").

The paper's Discussion proposes abstracting the hand-written kernels into
an intermediate representation and generating platform code from it
(SPIRAL-style). In this library the *trace* is that IR: it records the
exact dynamic instruction stream with dataflow and immediates. This
package lowers traces back to compilable C:

* :mod:`repro.codegen.c_emitter` - trace -> C-with-intrinsics functions,
* :mod:`repro.codegen.mqx_header` - the ``mqx.h`` header declaring the
  proposed MQX intrinsics with both build modes the paper describes
  (Section 4.2): ``MQX_EMULATE`` for functional correctness (Table 2
  emulation) and the default PISA-proxy mode for performance projection.
"""

from repro.codegen.c_emitter import generate_c_function, generate_kernel_source
from repro.codegen.mqx_header import generate_mqx_header

__all__ = [
    "generate_c_function",
    "generate_kernel_source",
    "generate_mqx_header",
]
