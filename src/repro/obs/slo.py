"""Serving SLOs: sliding-window tail tracking and error-budget burn rate.

The serve layer's contract with its clients is a latency objective —
"p99 under ``slo_p99_ms``" — and the paper's thesis (every cycle of
overhead accounted for) extends naturally to it: a p99 number alone says
*that* the objective was missed, the decomposed queue-wait /
coalesce-wait / compute histograms (:func:`repro.obs.hooks.
record_serve_latency_slices`) say *where* the time went, and this module
says *how fast the error budget is burning* so an operator knows whether
to care.

:class:`SloTracker` buckets completed requests into fixed windows of
``window_s`` seconds per op (and per tenant). Closing a window computes
its p99 and violation fraction and publishes, through the live session's
registry (hook pattern: no session, no publication, tracking still
cheap):

* ``serve.slo.p99_ms.<op>`` — the last closed window's p99 (gauge);
* ``serve.slo.target_ms.<op>`` — the configured objective (gauge);
* ``serve.slo.burn_rate.<op>`` — violation fraction over the last
  ``burn_windows`` closed windows divided by ``error_budget`` (gauge;
  1.0 means the budget is being spent exactly as fast as it accrues,
  10 means ten times too fast);
* ``serve.slo.breach_windows.<op>`` — consecutive closed windows whose
  p99 exceeded the target (gauge);
* ``serve.slo.violations.<op>`` — requests over target, cumulative
  (counter). Failed requests (deadline, engine error) always count as
  violations but are excluded from the latency percentiles.

When the breach streak reaches ``burn_windows``, the tracker raises an
``slo_breach`` note on the session's flight recorder (if one is
attached), which fires the ``slo_burn`` incident trigger — "p99 over SLO
for N windows" becomes a dump with the trace slice that shows why.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

#: Per-window latency samples kept for the percentile (p99 needs the
#: tail, not the mass; windows are short so this cap is rarely hit).
WINDOW_SAMPLE_CAP = 2048


def _percentile(values: List[float], pct: float) -> float:
    """Nearest-rank percentile over a non-empty sorted copy."""
    ordered = sorted(values)
    rank = max(
        0,
        min(
            len(ordered) - 1,
            int(round(pct / 100.0 * (len(ordered) - 1))),
        ),
    )
    return ordered[rank]


class _WindowState:
    """Accumulator for one (op or tenant) series' current window."""

    __slots__ = ("index", "latencies", "count", "violations", "closed", "streak")

    def __init__(self, history: int) -> None:
        self.index: Optional[int] = None
        self.latencies: List[float] = []
        self.count = 0
        self.violations = 0
        #: Closed windows, oldest first: (count, violations, p99_ms).
        self.closed: Deque[Tuple[int, int, float]] = deque(maxlen=history)
        self.streak = 0  # consecutive closed windows with p99 > target


class SloTracker:
    """Sliding-window SLO accounting for one service (see module docs).

    Args:
        slo_p99_ms: The latency objective. ``None`` disables breach
            detection (windows still close, burn rate reads 0).
        window_s: Window width in seconds.
        burn_windows: Windows the burn rate averages over; also the
            breach-streak length that raises the ``slo_breach`` note.
        error_budget: Allowed violation fraction (0.01 = 1% of requests
            may exceed the objective before the budget burns).
        clock: Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        slo_p99_ms: Optional[float] = None,
        window_s: float = 1.0,
        burn_windows: int = 3,
        error_budget: float = 0.01,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if burn_windows < 1:
            raise ValueError("burn_windows must be >= 1")
        if not 0 < error_budget <= 1:
            raise ValueError("error_budget must be in (0, 1]")
        self.slo_p99_ms = slo_p99_ms
        self.window_s = float(window_s)
        self.burn_windows = int(burn_windows)
        self.error_budget = float(error_budget)
        self._clock = clock
        history = max(self.burn_windows, 8)
        self._ops: Dict[str, _WindowState] = {}
        self._tenants: Dict[str, _WindowState] = {}
        self._history = history

    # ------------------------------------------------------------------

    def record(
        self, op: str, tenant: str, latency_s: float, ok: bool = True
    ) -> None:
        """Account one finished request into the current window.

        ``ok=False`` (deadline expiry, engine error) counts against the
        error budget without contributing a latency sample.
        """
        now = self._clock()
        index = int(now / self.window_s)
        latency_ms = latency_s * 1e3
        violation = (not ok) or (
            self.slo_p99_ms is not None and latency_ms > self.slo_p99_ms
        )
        self._feed(self._ops, op, index, latency_ms, ok, violation, publish=True)
        self._feed(
            self._tenants, tenant, index, latency_ms, ok, violation,
            publish=False,
        )
        if violation:
            self._publish_violation(op, tenant)

    def _feed(
        self,
        table: Dict[str, _WindowState],
        key: str,
        index: int,
        latency_ms: float,
        ok: bool,
        violation: bool,
        publish: bool,
    ) -> None:
        state = table.get(key)
        if state is None:
            state = table[key] = _WindowState(self._history)
            state.index = index
        elif index != state.index:
            self._close_window(key, state, publish)
            state.index = index
        state.count += 1
        if violation:
            state.violations += 1
        if ok and len(state.latencies) < WINDOW_SAMPLE_CAP:
            state.latencies.append(latency_ms)

    def _close_window(self, key: str, state: _WindowState, publish: bool) -> None:
        p99_ms = (
            _percentile(state.latencies, 99.0) if state.latencies else 0.0
        )
        state.closed.append((state.count, state.violations, p99_ms))
        breached = (
            self.slo_p99_ms is not None
            and state.latencies
            and p99_ms > self.slo_p99_ms
        )
        state.streak = state.streak + 1 if breached else 0
        state.latencies = []
        state.count = 0
        state.violations = 0
        if publish:
            self._publish_window(key, state, p99_ms)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def burn_rate(self, op: str) -> float:
        """Violation fraction over the last ``burn_windows`` closed
        windows, divided by the error budget (0.0 with no history)."""
        state = self._ops.get(op)
        if state is None or not state.closed:
            return 0.0
        recent = list(state.closed)[-self.burn_windows:]
        total = sum(count for count, _, _ in recent)
        if not total:
            return 0.0
        violations = sum(v for _, v, _ in recent)
        return (violations / total) / self.error_budget

    def breach_streak(self, op: str) -> int:
        state = self._ops.get(op)
        return state.streak if state is not None else 0

    def window_p99_ms(self, op: str) -> Optional[float]:
        """The most recently closed window's p99 for ``op`` (or ``None``)."""
        state = self._ops.get(op)
        if state is None or not state.closed:
            return None
        return state.closed[-1][2]

    def tenant_p99_ms(self, tenant: str) -> Optional[float]:
        state = self._tenants.get(tenant)
        if state is None or not state.closed:
            return None
        return state.closed[-1][2]

    # ------------------------------------------------------------------
    # Publication (hook pattern: no session → no-op)
    # ------------------------------------------------------------------

    def _publish_window(self, op: str, state: _WindowState, p99_ms: float) -> None:
        from repro.obs.session import current

        session = current()
        if session is None:
            return
        m = session.metrics
        m.gauge(f"serve.slo.p99_ms.{op}").set(p99_ms)
        if self.slo_p99_ms is not None:
            m.gauge(f"serve.slo.target_ms.{op}").set(self.slo_p99_ms)
        m.gauge(f"serve.slo.burn_rate.{op}").set(self.burn_rate(op))
        m.gauge(f"serve.slo.breach_windows.{op}").set(state.streak)
        if state.streak and state.streak >= self.burn_windows:
            flight = session.flight
            if flight is not None:
                flight.note(
                    "slo_breach",
                    op=op,
                    windows=state.streak,
                    p99_ms=round(p99_ms, 3),
                    target_ms=self.slo_p99_ms,
                )

    def _publish_violation(self, op: str, tenant: str) -> None:
        from repro.obs.session import current

        session = current()
        if session is None:
            return
        m = session.metrics
        m.counter("serve.slo.violations").inc()
        m.counter(f"serve.slo.violations.{op}").inc()
        m.counter(f"serve.slo.violations.tenant.{tenant}").inc()
