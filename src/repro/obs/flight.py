"""Flight recorder: a bounded ring of recent telemetry + incident dumps.

The serving front door's interesting failures are *transient* — a p99
blowup while the breaker flaps, a shed storm that lasts 300 ms — and by
the time anyone runs ``python -m repro profile`` the evidence is gone.
The :class:`FlightRecorder` keeps the last ``capacity`` telemetry
entries (completed spans, structured events, and *notes* emitted by the
instrumentation hooks) in a ring buffer, always on while attached, and
watches the note stream for **trigger rules**:

* ``breaker_open`` — a circuit breaker transitioned to ``open``;
* ``shed_spike`` — ``shed_spike_count`` requests shed within
  ``window_s`` seconds;
* ``deadline_burst`` — ``deadline_burst_count`` deadline failures
  within ``window_s`` seconds;
* ``worker_restart`` — a pool worker was replaced after a crash/kill;
* ``slo_burn`` — the SLO tracker reported p99 over target for its
  configured number of consecutive windows (:mod:`repro.obs.slo`).

When a rule fires, the recorder keeps capturing for ``post_trigger_s``
(so the dump shows the aftermath, not just the lead-up) and then writes
``incident-<ts>.json`` **atomically** (temp file + ``os.replace``): the
trigger, the ring's spans as a Perfetto-loadable Chrome trace slice, the
event/note tail, and a full metrics snapshot. ``cooldown_s`` rate-limits
dumps so a breaker flap storm produces one incident, not fifty.

Cost model (the <5% overhead invariant): nothing here runs while
observability is disabled — the hooks bail on their session check before
ever touching the recorder. With a session active but no recorder
attached, feeds cost one ``None`` attribute check. Attached, a span
close is a ``deque.append`` (O(1), bounded memory) plus one pending-
incident check; trigger evaluation runs only on *notes*, which are
rare-by-construction events (sheds, failures, breaker transitions), not
per-request traffic.

``python -m repro incidents`` (:func:`run_incidents`) lists and
summarizes the dumps in a directory.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

#: Schema tag written into every incident dump.
INCIDENT_FORMAT = "repro.obs.incident/v1"

#: Trigger rules evaluated over the note stream. ``kind`` is the note
#: kind that feeds the rule; count rules fire on ``count`` notes of that
#: kind within the recorder's ``window_s``.
IMMEDIATE_RULES: Dict[str, str] = {
    "worker_restart": "worker_restart",
    "slo_breach": "slo_burn",
}


class FlightRecorder:
    """Always-on bounded capture of recent spans/events/notes (see module docs).

    Args:
        out_dir: Directory incident dumps are written to.
        capacity: Ring size (total entries across spans/events/notes).
        clock: Injectable monotonic clock (tests drive trigger windows
            deterministically with a fake).
        window_s: Sliding window for the count-based rules.
        shed_spike_count: Sheds within ``window_s`` that fire ``shed_spike``.
        deadline_burst_count: Deadline failures within ``window_s`` that
            fire ``deadline_burst``.
        post_trigger_s: How long after a trigger the dump keeps
            capturing before it is finalized.
        cooldown_s: Minimum spacing between two incident dumps.
    """

    def __init__(
        self,
        out_dir: str = ".",
        capacity: int = 2048,
        clock: Callable[[], float] = time.monotonic,
        window_s: float = 1.0,
        shed_spike_count: int = 20,
        deadline_burst_count: int = 8,
        post_trigger_s: float = 0.25,
        cooldown_s: float = 5.0,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.capacity = int(capacity)
        self._clock = clock
        self.window_s = float(window_s)
        self.post_trigger_s = float(post_trigger_s)
        self.cooldown_s = float(cooldown_s)
        self._count_rules: Dict[str, Tuple[str, int]] = {
            "shed": ("shed_spike", int(shed_spike_count)),
            "deadline_failure": ("deadline_burst", int(deadline_burst_count)),
        }
        #: (seq, kind, payload) entries; kind is "span"/"event"/"note".
        self._ring: Deque[Tuple[int, str, object]] = deque(maxlen=self.capacity)
        self._recent: Dict[str, Deque[float]] = {
            kind: deque(maxlen=count)
            for kind, (_, count) in self._count_rules.items()
        }
        self._seq = 0
        self._session = None
        self._pending: Optional[Dict[str, object]] = None
        self._pending_deadline = 0.0
        self._last_dump_at: Optional[float] = None
        self._lock = threading.Lock()
        #: Paths of incidents written by this recorder, oldest first.
        self.incidents: List[Path] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, session) -> "FlightRecorder":
        """Start feeding from ``session`` (spans via the sink's close hook,
        events via ``session.event``, notes via the obs hooks)."""
        self._session = session
        session.flight = self
        session.spans.on_close = self._record_span
        return self

    def detach(self) -> None:
        session = self._session
        if session is not None:
            if session.flight is self:
                session.flight = None
            if session.spans.on_close == self._record_span:
                session.spans.on_close = None
        self._session = None

    # ------------------------------------------------------------------
    # Feeds (hot-ish path: O(1), no allocation beyond the ring tuple)
    # ------------------------------------------------------------------

    def _record_span(self, record) -> None:
        self._seq += 1
        self._ring.append((self._seq, "span", record))
        if self._pending is not None:
            self._maybe_finalize(self._clock())

    def record_event(self, record: Dict[str, object]) -> None:
        self._seq += 1
        self._ring.append((self._seq, "event", record))
        if self._pending is not None:
            self._maybe_finalize(self._clock())

    def note(self, kind: str, **fields: object) -> None:
        """Record one noteworthy occurrence and evaluate the trigger rules.

        Called by the instrumentation hooks for sheds, deadline
        failures, breaker transitions, worker restarts, and SLO
        breaches — the signals incidents are made of.
        """
        now = self._clock()
        self._seq += 1
        entry = {"kind": kind, "t_mono": now}
        if fields:
            entry.update(fields)
        self._ring.append((self._seq, "note", entry))

        rule = None
        if kind == "breaker" and fields.get("state") == "open":
            rule = "breaker_open"
        elif kind in IMMEDIATE_RULES:
            rule = IMMEDIATE_RULES[kind]
        elif kind in self._count_rules:
            name, count = self._count_rules[kind]
            recent = self._recent[kind]
            recent.append(now)
            if len(recent) == count and now - recent[0] <= self.window_s:
                rule = name
        if rule is not None:
            self._fire(rule, entry, now)
        elif self._pending is not None:
            self._maybe_finalize(now)

    # ------------------------------------------------------------------
    # Trigger → pending → dump
    # ------------------------------------------------------------------

    def _fire(self, rule: str, entry: Dict[str, object], now: float) -> None:
        with self._lock:
            if self._pending is not None:
                # Already capturing an aftermath: fold this trigger into
                # the same incident (a crash storm that restarts workers
                # AND opens the breaker is one incident, not two) and
                # extend the capture window so its own aftermath lands.
                also = self._pending.setdefault("also", [])
                also.append({
                    "rule": rule,
                    "detail": {
                        key: value
                        for key, value in entry.items()
                        if key != "t_mono"
                    },
                    "seq": self._seq,
                })
                self._pending_deadline = max(
                    self._pending_deadline, now + self.post_trigger_s
                )
                return
            if (
                self._last_dump_at is not None
                and now - self._last_dump_at < self.cooldown_s
            ):
                return  # rate-limited: the previous dump covers this storm
            detail = {
                key: value
                for key, value in entry.items()
                if key not in ("t_mono",)
            }
            self._pending = {
                "rule": rule,
                "detail": detail,
                "seq": self._seq,
                "t_mono": now,
            }
            self._pending_deadline = now + self.post_trigger_s

    def _maybe_finalize(self, now: float) -> None:
        with self._lock:
            if self._pending is None or now < self._pending_deadline:
                return
            pending, self._pending = self._pending, None
            self._last_dump_at = now
        self._dump(pending)

    def flush(self) -> Optional[Path]:
        """Finalize a pending incident immediately (shutdown, chaos harness).

        Returns the written path, or ``None`` when no trigger is pending.
        """
        with self._lock:
            pending, self._pending = self._pending, None
            if pending is None:
                return None
            self._last_dump_at = self._clock()
        return self._dump(pending)

    def _dump(self, trigger: Dict[str, object]) -> Path:
        from repro.obs.export import span_to_dict, to_chrome_trace

        entries = list(self._ring)
        trigger_seq = int(trigger["seq"])
        spans = [payload for _, kind, payload in entries if kind == "span"]
        events = [payload for _, kind, payload in entries if kind == "event"]
        notes = [payload for _, kind, payload in entries if kind == "note"]
        pre_spans = sum(
            1 for seq, kind, _ in entries if kind == "span" and seq <= trigger_seq
        )
        trace = to_chrome_trace(spans, process_name="repro:incident")
        session = self._session
        payload = {
            "format": INCIDENT_FORMAT,
            "trigger": {
                "rule": trigger["rule"],
                "detail": trigger["detail"],
                "seq": trigger_seq,
                "t_mono": trigger["t_mono"],
                "wall_time": time.strftime(
                    "%Y-%m-%dT%H:%M:%S%z", time.localtime()
                ),
                #: Triggers that fired during this incident's aftermath
                #: window, folded in rather than dumped separately.
                "also": list(trigger.get("also", [])),
            },
            "captured": {
                "entries": len(entries),
                "spans": len(spans),
                "pre_trigger_spans": pre_spans,
                "post_trigger_spans": len(spans) - pre_spans,
                "events": len(events),
                "notes": len(notes),
                "dropped": max(0, self._seq - len(entries)),
                "capacity": self.capacity,
            },
            "trace": trace,
            "spans": [span_to_dict(record) for record in spans],
            "events": events,
            "notes": notes,
            "metrics": (
                session.metrics.snapshot() if session is not None else {}
            ),
            "meta": {"pid": os.getpid()},
        }
        stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime())
        path = self.out_dir / f"incident-{stamp}-{trigger_seq}.json"
        self.out_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=1, default=str))
        os.replace(tmp, path)  # readers never see a half-written dump
        self.incidents.append(path)
        return path

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self._ring)}/{self.capacity} entries, "
            f"{len(self.incidents)} incidents)"
        )


# ---------------------------------------------------------------------------
# The `python -m repro incidents` driver
# ---------------------------------------------------------------------------


def list_incidents(directory: str = ".") -> List[Dict[str, object]]:
    """Parse every ``incident-*.json`` in ``directory`` (sorted by name)."""
    out = []
    for path in sorted(Path(directory).glob("incident-*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if data.get("format") != INCIDENT_FORMAT:
            continue
        data["_path"] = str(path)
        out.append(data)
    return out


def summarize_incident(data: Dict[str, object]) -> str:
    """One human-readable block for one parsed incident dump."""
    trigger = data.get("trigger", {})
    captured = data.get("captured", {})
    metrics = data.get("metrics", {})
    folded = [
        str(extra.get("rule")) for extra in trigger.get("also", []) or []
    ]
    lines = [
        f"{Path(str(data.get('_path', '?'))).name}",
        f"  trigger: {trigger.get('rule', '?')} at "
        f"{trigger.get('wall_time', '?')} "
        f"(detail: {json.dumps(trigger.get('detail', {}), default=str)})"
        + (f" + folded: {', '.join(folded)}" if folded else ""),
        f"  captured: {captured.get('spans', 0)} spans "
        f"({captured.get('pre_trigger_spans', 0)} pre-trigger, "
        f"{captured.get('post_trigger_spans', 0)} post), "
        f"{captured.get('events', 0)} events, "
        f"{captured.get('notes', 0)} notes"
        + (
            f", {captured.get('dropped', 0)} older entries evicted"
            if captured.get("dropped")
            else ""
        ),
    ]
    highlights = []
    for name in (
        "serve.shed",
        "serve.requests.failed",
        "serve.degraded",
        "resil.breaker.open",
        "par.workers.restarted",
    ):
        snap = metrics.get(name)
        if isinstance(snap, dict) and snap.get("value"):
            highlights.append(f"{name}={snap['value']:g}")
    if highlights:
        lines.append("  metrics: " + "  ".join(highlights))
    return "\n".join(lines)


def run_incidents(
    directory: str = ".",
    fail_empty: bool = False,
    emit: Callable[[str], None] = print,
) -> int:
    """List and summarize the incident dumps in ``directory`` (CLI driver)."""
    incidents = list_incidents(directory)
    if not incidents:
        emit(f"incidents: none found in {directory}/")
        return 1 if fail_empty else 0
    emit(f"incidents: {len(incidents)} in {directory}/")
    for data in incidents:
        emit("")
        emit(summarize_incident(data))
    return 0
