"""OpenMetrics text exposition for a :class:`~repro.obs.metrics.MetricsRegistry`.

This is the scrapeable surface the future ``repro.serve`` layer needs
(ROADMAP item 3) and the idiom Intel HEXL's perf accounting popularized
for kernel libraries: every counter/gauge/histogram a session records
can be rendered as `OpenMetrics 1.0 text exposition
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_ and served
over plain ``http.server`` for Prometheus-style scraping.

Three pieces:

* :func:`render_openmetrics` — registry → exposition text. Dotted repro
  names are mangled to the ``[a-zA-Z0-9_:]`` charset with a ``repro_``
  prefix, well-known dynamic name segments (worker slot, ISA mnemonic,
  cache level, scheduler port, engine/op) are lifted into **labels**
  instead of exploding the family namespace, counters gain the
  spec-mandated ``_total`` sample suffix, and histograms are exposed
  with cumulative ``le`` buckets derived from the stored observations
  (scaled proportionally once a reservoir-sampled histogram no longer
  holds every value).
* :func:`validate_openmetrics` — a strict checker for the subset this
  module emits (family declarations before samples, name/label syntax,
  bucket monotonicity, the trailing ``# EOF``); the test suite and CI
  smoke run every rendering through it.
* :class:`OpenMetricsExporter` — an optional stdlib-only HTTP exporter
  thread serving ``GET /metrics`` from a registry provider (by default
  the live session's registry), so a long-running parallel workload can
  be watched with ``curl``/Prometheus while it executes.

No third-party client library is involved; the exposition is built by
hand and kept to the spec subset the validator pins down.
"""

from __future__ import annotations

import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.session import current as current_session

#: Content-Type an OpenMetrics scraper expects.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Default cumulative ``le`` bucket bounds (seconds-flavoured but serving
#: all histograms; override per call for dimensionless distributions).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0
)

#: Metric-family and label-name syntax (the spec's ABNF, sans UTF-8
#: extension which the text format does not allow in names).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Rules lifting well-known dynamic name segments into labels. Each is
#: ``(compiled regex, family template, {label: group index})``; the
#: first match wins, everything else keeps its full (mangled) name.
_LABEL_RULES: Tuple[Tuple[re.Pattern, str, Dict[str, int]], ...] = (
    (re.compile(r"^par\.slot\.(\d+)\.(.+)$"), "par.slot.{1}", {"slot": 0}),
    (re.compile(r"^isa\.ops\.(.+)$"), "isa.ops", {"op": 0}),
    (re.compile(r"^cache\.access\.(.+)$"), "cache.access", {"level": 0}),
    (re.compile(r"^sched\.port\.(.+)$"), "sched.port", {"port": 0}),
    (re.compile(r"^sched\.util\.(.+)$"), "sched.util", {"port": 0}),
    (
        re.compile(r"^engine\.([^.]+)\.(calls|elements)\.(.+)$"),
        "engine.{1}",
        {"engine": 0, "op": 2},
    ),
    (
        re.compile(r"^resil\.degraded\.(.+)$"),
        "resil.degraded.by_reason",
        {"reason": 0},
    ),
    (
        re.compile(r"^resil\.breaker\.state_code$"),
        "resil.breaker.state_code",
        {},
    ),
    (
        re.compile(r"^resil\.breaker\.(.+)$"),
        "resil.breaker.transitions",
        {"state": 0},
    ),
    # Serve-layer families (PR 10): per-op/tenant/reason name segments
    # become labels so the scrape surface stays a fixed family set no
    # matter how many tenants or ops traffic brings.
    (
        re.compile(r"^serve\.slo\.violations\.tenant\.(.+)$"),
        "serve.slo.violations.by_tenant",
        {"tenant": 0},
    ),
    (
        re.compile(r"^serve\.slo\.violations\.(.+)$"),
        "serve.slo.violations.by_op",
        {"op": 0},
    ),
    (
        re.compile(
            r"^serve\.slo\.(p99_ms|target_ms|burn_rate|breach_windows)\.(.+)$"
        ),
        "serve.slo.{1}",
        {"op": 1},
    ),
    (
        re.compile(r"^serve\.tenant\.([^.]+)\.(.+)$"),
        "serve.tenant.{1}",
        {"tenant": 0},
    ),
    (
        re.compile(
            r"^serve\.(latency_s|queue_wait_s|coalesce_wait_s|compute_s)\.(.+)$"
        ),
        "serve.{1}",
        {"op": 1},
    ),
    (
        re.compile(r"^serve\.shed\.(.+)$"),
        "serve.shed.by_reason",
        {"reason": 0},
    ),
    (
        re.compile(r"^serve\.degraded\.(.+)$"),
        "serve.degraded.by_reason",
        {"reason": 0},
    ),
    (
        re.compile(r"^serve\.failed\.(.+)$"),
        "serve.failed.by_kind",
        {"kind": 0},
    ),
    (
        re.compile(r"^serve\.(admitted|batched)\.(.+)$"),
        "serve.{1}.by_op",
        {"op": 1},
    ),
)


def mangle_name(name: str, prefix: str = "repro_") -> Tuple[str, Dict[str, str]]:
    """Map one dotted repro metric name to ``(family, labels)``.

    ``par.slot.0.busy_s`` becomes ``("repro_par_slot_busy_s",
    {"slot": "0"})``; a name matching no label rule is mangled whole.
    """
    labels: Dict[str, str] = {}
    family = name
    for pattern, template, groups in _LABEL_RULES:
        match = pattern.match(name)
        if match is None:
            continue
        parts = match.groups()
        labels = {key: parts[index] for key, index in groups.items()}
        kept = [
            part
            for index, part in enumerate(parts)
            if index not in groups.values()
        ]
        family = template.replace("{1}", kept[0] if kept else "")
        family = family.rstrip(".")
        break
    mangled = re.sub(r"[^a-zA-Z0-9_:]", "_", prefix + family)
    if not _NAME_RE.match(mangled):
        mangled = "_" + mangled
    return mangled, labels


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (``\\``, ``"``, LF)."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def escape_help(text: str) -> str:
    """Escape a HELP string per the exposition format (``\\`` and LF)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    """Render one sample value (integers without a trailing ``.0``)."""
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ObservabilityError(f"non-finite sample value {value!r}")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(labels[key])}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


def histogram_buckets(
    histogram: Histogram, bounds: Sequence[float] = DEFAULT_BUCKETS
) -> List[Tuple[float, int]]:
    """Cumulative ``(le, count)`` pairs for one histogram, ending at +Inf.

    Exact while the histogram still holds every observation; once the
    reservoir has kicked in, the stored sample's cumulative fractions
    are scaled to the true total count (rounding a monotone sequence
    keeps it monotone), and the ``+Inf`` bucket is pinned to the exact
    running count either way.
    """
    values = sorted(histogram.values)
    total = histogram.count
    held = len(values)
    out: List[Tuple[float, int]] = []
    position = 0
    for bound in sorted(bounds):
        while position < held and values[position] <= bound:
            position += 1
        if held and held != total:
            scaled = int(round(position * (total / held)))
            out.append((bound, min(scaled, total)))
        else:
            out.append((bound, position))
    out.append((math.inf, total))
    return out


def _family_entries(
    metrics: MetricsRegistry, prefix: str
) -> Dict[str, List[Tuple[Dict[str, str], object]]]:
    """Group registry metrics into exposition families (sorted, checked)."""
    families: Dict[str, List[Tuple[Dict[str, str], object]]] = {}
    kinds: Dict[str, str] = {}
    for name in metrics.names():
        metric = metrics.get(name)
        family, labels = mangle_name(name, prefix)
        kind = getattr(metric, "kind", None)
        if kind not in ("counter", "gauge", "histogram"):
            continue
        if kinds.setdefault(family, kind) != kind:
            raise ObservabilityError(
                f"metrics {name!r} and earlier entries map to family "
                f"{family!r} with conflicting types"
            )
        families.setdefault(family, []).append((labels, metric))
    return families


def render_openmetrics(
    metrics: MetricsRegistry,
    prefix: str = "repro_",
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    help_texts: Optional[Dict[str, str]] = None,
) -> str:
    """Render a registry as OpenMetrics text exposition (with ``# EOF``).

    ``help_texts`` optionally maps *family* names (post-mangling) to HELP
    strings; families without an entry get a generic derived line.
    """
    lines: List[str] = []
    for family, entries in sorted(_family_entries(metrics, prefix).items()):
        kind = entries[0][1].kind
        help_text = (help_texts or {}).get(
            family, f"repro.obs metric family {family}"
        )
        lines.append(f"# HELP {family} {escape_help(help_text)}")
        lines.append(f"# TYPE {family} {kind}")
        for labels, metric in sorted(entries, key=lambda e: sorted(e[0].items())):
            if kind == "counter":
                lines.append(
                    f"{family}_total{_labels_text(labels)} "
                    f"{format_value(metric.value)}"
                )
            elif kind == "gauge":
                if metric.value is None:
                    continue
                lines.append(
                    f"{family}{_labels_text(labels)} "
                    f"{format_value(metric.value)}"
                )
            else:  # histogram
                for bound, count in histogram_buckets(metric, buckets):
                    le = "+Inf" if math.isinf(bound) else format_value(bound)
                    bucket_labels = dict(labels, le=le)
                    lines.append(
                        f"{family}_bucket{_labels_text(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{family}_count{_labels_text(labels)} {metric.count}"
                )
                lines.append(
                    f"{family}_sum{_labels_text(labels)} "
                    f"{format_value(metric.sum if metric.count else 0.0)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Validator (the exposition-format rules the tests and CI smoke pin down)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)(?: [0-9.e+-]+)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def _split_labels(text: str) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label set (no nested commas in
    values beyond escaped sequences, which this module never emits)."""
    labels: Dict[str, str] = {}
    if not text:
        return labels
    for pair in text.split(","):
        match = _LABEL_PAIR_RE.match(pair)
        if match is None:
            raise ObservabilityError(f"invalid label pair {pair!r}")
        labels[match.group("name")] = match.group("value")
    return labels


def validate_openmetrics(text: str) -> None:
    """Check exposition text against the subset of OpenMetrics we emit.

    Raises :class:`~repro.errors.ObservabilityError` on: missing/misplaced
    ``# EOF``, samples without a preceding ``# TYPE``, malformed metric or
    label names, counter samples without the ``_total`` suffix,
    non-monotone or unsorted histogram buckets, or a ``+Inf`` bucket that
    disagrees with ``_count``.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ObservabilityError("exposition must end with '# EOF'")
    types: Dict[str, str] = {}
    bucket_state: Dict[str, Tuple[float, float]] = {}  # family -> (last le, last count)
    counts: Dict[str, float] = {}
    infinity_buckets: Dict[str, float] = {}
    for lineno, line in enumerate(lines[:-1], start=1):
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ObservabilityError(f"line {lineno}: malformed TYPE")
            _, _, family, kind = parts
            if not _NAME_RE.match(family):
                raise ObservabilityError(
                    f"line {lineno}: invalid family name {family!r}"
                )
            if family in types:
                raise ObservabilityError(
                    f"line {lineno}: duplicate TYPE for {family!r}"
                )
            if kind not in ("counter", "gauge", "histogram"):
                raise ObservabilityError(
                    f"line {lineno}: unsupported type {kind!r}"
                )
            types[family] = kind
            continue
        if line.startswith("#"):
            raise ObservabilityError(f"line {lineno}: unknown comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(f"line {lineno}: malformed sample {line!r}")
        sample = match.group("name")
        labels = _split_labels(match.group("labels") or "")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ObservabilityError(
                f"line {lineno}: non-numeric value {raw_value!r}"
            ) from exc
        family = _resolve_family(sample, labels, types)
        if family is None:
            raise ObservabilityError(
                f"line {lineno}: sample {sample!r} has no preceding TYPE"
            )
        kind = types[family]
        if kind == "counter":
            if not sample.endswith("_total"):
                raise ObservabilityError(
                    f"line {lineno}: counter sample {sample!r} "
                    "must end with '_total'"
                )
            if value < 0:
                raise ObservabilityError(
                    f"line {lineno}: negative counter value {value}"
                )
        elif kind == "histogram" and sample == f"{family}_bucket":
            if "le" not in labels:
                raise ObservabilityError(
                    f"line {lineno}: histogram bucket missing 'le'"
                )
            le = (
                math.inf
                if labels["le"] == "+Inf"
                else float(labels["le"])
            )
            series = family + _labels_text(
                {k: v for k, v in labels.items() if k != "le"}
            )
            last_le, last_count = bucket_state.get(
                series, (-math.inf, -math.inf)
            )
            if le <= last_le:
                raise ObservabilityError(
                    f"line {lineno}: bucket le {labels['le']} out of order"
                )
            if value < last_count:
                raise ObservabilityError(
                    f"line {lineno}: bucket counts not monotone "
                    f"({value} < {last_count})"
                )
            bucket_state[series] = (le, value)
            if math.isinf(le):
                infinity_buckets[series] = value
        elif kind == "histogram" and sample == f"{family}_count":
            series = family + _labels_text(labels)
            counts[series] = value
    for series, total in counts.items():
        if series in infinity_buckets and infinity_buckets[series] != total:
            raise ObservabilityError(
                f"histogram {series}: +Inf bucket "
                f"{infinity_buckets[series]} != count {total}"
            )


def _resolve_family(
    sample: str, labels: Dict[str, str], types: Dict[str, str]
) -> Optional[str]:
    """Find the declared family a sample name belongs to, if any."""
    if sample in types:
        return sample
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if sample.endswith(suffix) and sample[: -len(suffix)] in types:
            return sample[: -len(suffix)]
    return None


# ---------------------------------------------------------------------------
# HTTP exporter (optional, stdlib-only)
# ---------------------------------------------------------------------------


def _default_source() -> Optional[MetricsRegistry]:
    session = current_session()
    return session.metrics if session is not None else None


class OpenMetricsExporter:
    """Serve ``GET /metrics`` for the active (or a provided) registry.

    The registry is resolved *per scrape* through ``source`` (default:
    the live session's registry, or an empty exposition when none is
    active), so the exporter can be started once and observe sessions as
    they come and go. Binds ``host:port`` (port 0 picks a free one);
    :meth:`start`/:meth:`stop` manage the daemon serving thread.
    """

    def __init__(
        self,
        source: Optional[Callable[[], Optional[MetricsRegistry]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro_",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self._source = source or _default_source
        self._host = host
        self._requested_port = port
        self._prefix = prefix
        self._buckets = tuple(buckets)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise ObservabilityError("exporter is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def render(self) -> str:
        registry = self._source()
        if registry is None:
            return "# EOF\n"
        return render_openmetrics(
            registry, prefix=self._prefix, buckets=self._buckets
        )

    def start(self) -> "OpenMetricsExporter":
        if self._server is not None:
            return self
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?")[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                try:
                    body = exporter.render().encode("utf-8")
                except ObservabilityError as exc:
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # scrapes must not spam the workload's stdout

        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-openmetrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "OpenMetricsExporter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
