"""``python -m repro top`` — live terminal view of a serving session.

The serve layer exposes everything an operator needs (admission and shed
counters, the coalesce/queue/compute latency decomposition, ``serve.slo.*``
burn rates, breaker state, pool slot rollups, arena reuse), but until now
the only consumers were offline: JSONL exports, BENCH snapshots, the
attrib ledger. This module is the online consumer — a stdlib-only
dashboard that renders one screen of panels:

* **requests** — rps (live mode: counter deltas per refresh), admitted /
  completed / failed / shed / degraded totals, shed rate, backlog depth;
* **ops** — per-op p50/p99 against the declared SLO target, error-budget
  burn rate and breach-window streak;
* **coalesce** — batches, realized fill (``serve.coalesce.batch_size``
  mean), batch-wait p99;
* **breaker** — current state (from the ``resil.breaker.state_code``
  gauge) plus transition counts;
* **slots** — per-slot busy seconds and, in live mode, utilization over
  the refresh interval;
* **arena** — shm arena lease/reuse hit rate.

Two data sources feed the same panel builder, normalized through
:func:`repro.obs.openmetrics.mangle_name` so they agree on keys:

* the **live session** (``--once`` with no URL self-drives a short serve
  burst under ``observing()`` and renders its registry — the CI smoke);
* an **OpenMetrics endpoint** (``--url http://…/metrics``), scraped and
  parsed back into samples; histogram percentiles are estimated from the
  cumulative ``le`` buckets.

``--once`` renders a single frame and exits non-zero if a required panel
came up empty (so the smoke actually asserts the dashboard works); live
mode refreshes every ``--interval`` seconds until interrupted.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.openmetrics import mangle_name

#: Canonical sample map: mangled family -> sorted-label-items -> sample
#: dict (``{"type", "value"|"count"/"sum"/"p50"/"p99", ...}``).
Canon = Dict[str, Dict[Tuple[Tuple[str, str], ...], Dict[str, object]]]

#: Gauge code -> breaker state name (inverse of hooks.BREAKER_STATE_CODES).
_BREAKER_STATES = {0.0: "closed", 1.0: "half_open", 2.0: "open"}

#: ANSI clear-screen + cursor-home, emitted between live refreshes.
_CLEAR = "\x1b[2J\x1b[H"


# ---------------------------------------------------------------------------
# Sources -> canonical sample map
# ---------------------------------------------------------------------------


def canonicalize_snapshot(snapshot: Dict[str, Dict[str, object]]) -> Canon:
    """Normalize a ``MetricsRegistry.snapshot()`` to the canonical map.

    Dotted names go through the same label-lifting rules the exporter
    uses, so a live registry and a scrape of its exposition produce the
    same families and label sets.
    """
    canon: Canon = {}
    for name, sample in snapshot.items():
        family, labels = mangle_name(name)
        canon.setdefault(family, {})[tuple(sorted(labels.items()))] = dict(
            sample
        )
    return canon


def _bucket_percentile(
    buckets: List[Tuple[float, float]], pct: float
) -> float:
    """Estimate a percentile from cumulative ``(le, count)`` buckets.

    Linear interpolation inside the bucket that crosses the target rank;
    the ``+Inf`` bucket degrades to its predecessor's bound (the
    exposition does not carry the true max).
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    target = pct / 100.0 * total
    prev_bound = 0.0
    prev_cum = 0.0
    for bound, cum in buckets:
        if cum >= target:
            if math.isinf(bound):
                return prev_bound
            span = cum - prev_cum
            if span <= 0:
                return bound
            frac = (target - prev_cum) / span
            return prev_bound + (bound - prev_bound) * frac
        if not math.isinf(bound):
            prev_bound = bound
        prev_cum = cum
    return prev_bound


def parse_openmetrics_text(text: str) -> Canon:
    """Parse exposition text (our emitted subset) into the canonical map.

    Counters lose their ``_total`` suffix, histogram series are
    reassembled from their ``_bucket``/``_count``/``_sum`` samples with
    ``p50``/``p99`` estimated from the buckets.
    """
    from repro.obs.openmetrics import _SAMPLE_RE, _split_labels

    types: Dict[str, str] = {}
    canon: Canon = {}
    buckets: Dict[
        Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[float, float]]
    ] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) == 4:
                types[parts[2]] = parts[3]
            continue
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        sample = match.group("name")
        labels = _split_labels(match.group("labels") or "")
        value = float(match.group("value"))
        family, suffix = _strip_suffix(sample, types)
        if family is None:
            continue
        kind = types[family]
        if kind == "histogram":
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            entry = canon.setdefault(family, {}).setdefault(
                key, {"type": "histogram", "count": 0, "sum": 0.0}
            )
            if suffix == "_bucket":
                le = (
                    math.inf
                    if labels.get("le") == "+Inf"
                    else float(labels.get("le", "inf"))
                )
                buckets.setdefault((family, key), []).append((le, value))
            elif suffix == "_count":
                entry["count"] = int(value)
            elif suffix == "_sum":
                entry["sum"] = value
        else:
            key = tuple(sorted(labels.items()))
            canon.setdefault(family, {})[key] = {
                "type": kind,
                "value": value,
            }
    for (family, key), series in buckets.items():
        series.sort(key=lambda pair: pair[0])
        entry = canon[family][key]
        entry["p50"] = _bucket_percentile(series, 50.0)
        entry["p99"] = _bucket_percentile(series, 99.0)
        if entry["count"]:
            entry["mean"] = float(entry.get("sum", 0.0)) / entry["count"]
    return canon


def _strip_suffix(
    sample: str, types: Dict[str, str]
) -> Tuple[Optional[str], str]:
    if sample in types:
        return sample, ""
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if sample.endswith(suffix) and sample[: -len(suffix)] in types:
            return sample[: -len(suffix)], suffix
    return None, ""


# ---------------------------------------------------------------------------
# Canonical map -> panels
# ---------------------------------------------------------------------------


def _family(name: str) -> str:
    return mangle_name(name)[0]


def _value(canon: Canon, name: str, default: float = 0.0) -> float:
    """Counter/gauge value for a dotted name (labels via mangle rules)."""
    family, labels = mangle_name(name)
    sample = canon.get(family, {}).get(tuple(sorted(labels.items())))
    if sample is None:
        return default
    value = sample.get("value")
    return float(value) if value is not None else default


def _hist(canon: Canon, name: str) -> Optional[Dict[str, object]]:
    family, labels = mangle_name(name)
    sample = canon.get(family, {}).get(tuple(sorted(labels.items())))
    if sample is None or sample.get("type") != "histogram":
        return None
    return sample


def _label_values(canon: Canon, family: str, label: str) -> List[str]:
    out = set()
    for key in canon.get(family, {}):
        for k, v in key:
            if k == label:
                out.add(v)
    return sorted(out)


def build_panels(
    canon: Canon,
    prev: Optional[Canon] = None,
    interval_s: Optional[float] = None,
) -> Dict[str, object]:
    """Derive the dashboard panels from one canonical sample map.

    ``prev``/``interval_s`` (live mode) turn monotone counters into
    rates: rps from completed-request deltas, per-slot utilization from
    busy-second deltas. In ``--once`` mode both stay ``None`` and the
    rate fields render as totals.
    """
    admitted = _value(canon, "serve.requests.admitted")
    completed = _value(canon, "serve.requests.completed")
    shed = _value(canon, "serve.shed")
    degraded = _value(canon, "serve.degraded")
    batches = _value(canon, "serve.batches")
    rps = None
    if prev is not None and interval_s and interval_s > 0:
        rps = max(
            0.0, completed - _value(prev, "serve.requests.completed")
        ) / interval_s
    offered = admitted + shed
    requests = {
        "admitted": admitted,
        "completed": completed,
        "failed": _value(canon, "serve.requests.failed"),
        "shed": shed,
        "degraded": degraded,
        "shed_rate": shed / offered if offered else 0.0,
        "degrade_rate": degraded / batches if batches else 0.0,
        "backlog": _value(canon, "serve.queue.depth"),
        "rps": rps,
    }

    ops: Dict[str, Dict[str, object]] = {}
    for op in _label_values(canon, _family("serve.latency_s.x"), "op"):
        hist = _hist(canon, f"serve.latency_s.{op}")
        if hist is None or not hist.get("count"):
            continue
        slo_ms = _value(canon, f"serve.slo.target_ms.{op}", default=0.0)
        ops[op] = {
            "count": int(hist.get("count", 0)),
            "p50_ms": float(hist.get("p50", 0.0) or 0.0) * 1e3,
            "p99_ms": float(hist.get("p99", 0.0) or 0.0) * 1e3,
            "slo_ms": slo_ms or None,
            "burn_rate": _value(canon, f"serve.slo.burn_rate.{op}"),
            "breach_windows": int(
                _value(canon, f"serve.slo.breach_windows.{op}")
            ),
            "violations": int(_value(canon, f"serve.slo.violations.{op}")),
        }

    coalesce_hist = _hist(canon, "serve.coalesce.batch_size")
    wait_hist = _hist(canon, "serve.batch.wait_s")
    coalesce = {
        "batches": batches,
        "fill_mean": (
            float(coalesce_hist.get("mean", 0.0) or 0.0)
            if coalesce_hist
            else 0.0
        ),
        "batch_wait_p99_ms": (
            float(wait_hist.get("p99", 0.0) or 0.0) * 1e3
            if wait_hist
            else 0.0
        ),
    }

    code = _value(canon, "resil.breaker.state_code", default=-1.0)
    breaker = {
        "state": _BREAKER_STATES.get(code),
        "transitions": {
            state: int(_value(canon, f"resil.breaker.{state}"))
            for state in ("open", "half_open", "closed")
            if _value(canon, f"resil.breaker.{state}")
        },
    }

    slots: Dict[str, Dict[str, object]] = {}
    slot_family = _family("par.slot.0.busy_s")
    for slot in _label_values(canon, slot_family, "slot"):
        busy = _value(canon, f"par.slot.{slot}.busy_s")
        util = None
        if prev is not None and interval_s and interval_s > 0:
            util = max(
                0.0, busy - _value(prev, f"par.slot.{slot}.busy_s")
            ) / interval_s
        slots[slot] = {
            "busy_s": busy,
            "util": util,
            "shards": int(_value(canon, f"par.slot.{slot}.shards")),
        }

    leases = _value(canon, "par.arena.leases")
    reuses = _value(canon, "par.arena.reuses")
    arena = {
        "leases": leases,
        "reuses": reuses,
        "creates": _value(canon, "par.arena.creates"),
        "hit_rate": reuses / leases if leases else 0.0,
    }

    return {
        "requests": requests,
        "ops": ops,
        "coalesce": coalesce,
        "breaker": breaker,
        "slots": slots,
        "arena": arena,
    }


# ---------------------------------------------------------------------------
# Panels -> text frame
# ---------------------------------------------------------------------------


def render_panels(panels: Dict[str, object], source: str = "live") -> str:
    """Render one dashboard frame as plain text."""
    r = panels["requests"]
    lines = [
        f"repro top — {time.strftime('%H:%M:%S')} (source: {source})",
        "",
    ]
    rps = r.get("rps")
    head = f"requests  {rps:8.1f} rps | " if rps is not None else "requests  "
    lines.append(
        head
        + (
            f"admitted {int(r['admitted'])}  "
            f"completed {int(r['completed'])}  "
            f"failed {int(r['failed'])}  "
            f"shed {int(r['shed'])} ({r['shed_rate'] * 100:.1f}%)  "
            f"degraded {int(r['degraded'])}"
        )
    )
    lines.append(f"backlog   {int(r['backlog'])} queued")
    lines.append("")

    ops = panels["ops"]
    if ops:
        lines.append(
            f"{'op':<18} {'n':>6} {'p50 ms':>8} {'p99 ms':>8} "
            f"{'SLO ms':>7} {'burn':>6} {'breach':>6} {'viol':>5}"
        )
        for op in sorted(ops):
            row = ops[op]
            slo = row["slo_ms"]
            over = (
                " !"
                if slo is not None and row["p99_ms"] > slo
                else ""
            )
            lines.append(
                f"{op:<18} {row['count']:>6} {row['p50_ms']:>8.2f} "
                f"{row['p99_ms']:>8.2f} "
                f"{(f'{slo:.1f}' if slo is not None else '-'):>7} "
                f"{row['burn_rate']:>6.2f} {row['breach_windows']:>6} "
                f"{row['violations']:>5}{over}"
            )
    else:
        lines.append("ops       (no completed requests yet)")
    lines.append("")

    c = panels["coalesce"]
    lines.append(
        f"coalesce  {int(c['batches'])} batches, "
        f"fill {c['fill_mean']:.1f} req/batch, "
        f"batch-wait p99 {c['batch_wait_p99_ms']:.2f} ms"
    )

    b = panels["breaker"]
    state = b["state"] or "n/a"
    transitions = ", ".join(
        f"{name} {count}" for name, count in b["transitions"].items()
    )
    lines.append(
        f"breaker   {state}"
        + (f" (transitions: {transitions})" if transitions else "")
    )

    slots = panels["slots"]
    if slots:
        bits = []
        for slot in sorted(slots, key=int):
            row = slots[slot]
            util = row["util"]
            util_text = (
                f" ({min(util, 1.0) * 100:.0f}%)" if util is not None else ""
            )
            bits.append(
                f"{slot}: {row['busy_s']:.2f}s busy/"
                f"{row['shards']} shards{util_text}"
            )
        lines.append("slots     " + "  ".join(bits))
    else:
        lines.append("slots     (no parallel-engine telemetry)")

    a = panels["arena"]
    if a["leases"]:
        lines.append(
            f"arena     {int(a['leases'])} leases, "
            f"{int(a['reuses'])} reused "
            f"({a['hit_rate'] * 100:.0f}% hit), "
            f"{int(a['creates'])} created"
        )
    else:
        lines.append("arena     (no shm arena activity)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def _scrape(url: str, timeout_s: float = 5.0) -> Canon:
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout_s) as response:
        return parse_openmetrics_text(
            response.read().decode("utf-8", "replace")
        )


def _self_drive(
    engine: str, logn: int, requests: int, slo_p99_ms: float
) -> Canon:
    """Run a short serve burst under observation; return its samples.

    The ``--once`` CI smoke path: no endpoint needed, the dashboard
    demonstrates itself against real traffic (fast engine by default so
    the smoke stays cheap; ``--engine parallel`` lights up the slot and
    arena panels too).
    """
    import asyncio
    import random

    from repro.arith.primes import find_ntt_prime
    from repro.obs.session import observing
    from repro.serve.service import ReproService, ServeConfig

    n = 1 << logn
    q = find_ntt_prime(60, 2 * n)
    rng = random.Random(0)

    async def drive() -> None:
        config = ServeConfig(
            engine=engine,
            max_batch=16,
            max_wait_s=0.002,
            slo_p99_ms=slo_p99_ms,
            slo_window_s=0.05,
        )
        async with ReproService(config=config) as service:
            async def one(idx: int) -> None:
                payload = (
                    [rng.randrange(q) for _ in range(n)],
                    [rng.randrange(q) for _ in range(n)],
                )
                await service.submit(
                    "polymul", payload, n, q, tenant=f"t{idx % 2}"
                )

            await asyncio.gather(*(one(i) for i in range(requests)))
            await service.flush()
            await service.join()

    with observing() as session:
        asyncio.run(drive())
        return canonicalize_snapshot(session.metrics.snapshot())


def run_top(
    url: Optional[str] = None,
    once: bool = False,
    interval_s: float = 1.0,
    iterations: Optional[int] = None,
    engine: str = "fast",
    logn: int = 6,
    requests: int = 96,
    slo_p99_ms: float = 250.0,
    emit: Callable[[str], None] = print,
) -> int:
    """CLI driver for ``python -m repro top``; returns an exit code.

    ``--once``: render a single frame (from ``url`` if given, else from
    a self-driven burst) and fail if a required panel is empty.
    Live mode needs ``url``; refreshes every ``interval_s`` until
    ``iterations`` frames (or Ctrl-C).
    """
    if once:
        if url is not None:
            try:
                canon = _scrape(url)
            except OSError as exc:
                emit(f"top: scrape of {url} failed: {exc}")
                return 2
            source = url
        else:
            canon = _self_drive(engine, logn, requests, slo_p99_ms)
            source = f"self-driven {engine} burst"
        panels = build_panels(canon)
        emit(render_panels(panels, source=source))
        missing = _missing_panels(panels, engine if url is None else None)
        if missing:
            emit(f"top: empty required panels: {', '.join(missing)}")
            return 1
        return 0

    if url is None:
        emit("top: live mode needs --url (or use --once for one frame)")
        return 2
    prev: Optional[Canon] = None
    frame = 0
    try:
        while iterations is None or frame < iterations:
            try:
                canon = _scrape(url)
            except OSError as exc:
                emit(f"top: scrape of {url} failed: {exc}")
                return 2
            panels = build_panels(
                canon, prev=prev, interval_s=interval_s if prev else None
            )
            emit(_CLEAR + render_panels(panels, source=url))
            prev = canon
            frame += 1
            if iterations is None or frame < iterations:
                time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0


def _missing_panels(
    panels: Dict[str, object], engine: Optional[str]
) -> List[str]:
    """Required panels that came up empty (self-driven ``--once`` gate)."""
    missing = []
    if not panels["requests"]["admitted"]:
        missing.append("requests")
    if not panels["ops"]:
        missing.append("ops")
    if not panels["coalesce"]["batches"]:
        missing.append("coalesce")
    if engine == "parallel":
        if not panels["slots"]:
            missing.append("slots")
        if not panels["arena"]["leases"]:
            missing.append("arena")
    return missing
