"""``repro.obs`` — end-to-end instrumentation for the simulation pipeline.

The reproduction's results all flow through one pipeline (ISA simulation
-> trace -> machine model -> runtime estimate -> figure regeneration);
this package makes that pipeline observable the way the paper's own
methodology is (LLVM-MCA port-pressure reports, PISA validation tables):

* :mod:`repro.obs.spans` — nestable wall-clock spans with a no-op
  disabled path (``with span("schedule"): ...``).
* :mod:`repro.obs.metrics` — counters / gauges / histograms with exact
  percentiles.
* :mod:`repro.obs.hooks` — the permanent instrumentation points wired
  into :mod:`repro.isa.trace`, :mod:`repro.machine.scheduler` and
  :mod:`repro.machine.cache`.
* :mod:`repro.obs.export` — JSON-lines and Chrome trace-event exporters
  (open the latter in ``chrome://tracing`` or Perfetto) plus text tables.
* :mod:`repro.obs.snapshot` — the ``BENCH_pipeline.json`` perf-snapshot
  history with regression diffing.
* :mod:`repro.obs.profile` — the ``python -m repro profile`` engine.
* :mod:`repro.obs.dist` — cross-process telemetry for the parallel
  engine: trace-context propagation into worker processes, worker-local
  capture, and parent-side merge onto per-worker trace lanes.
* :mod:`repro.obs.timeline` — the ``python -m repro timeline`` harness
  (merged batch timeline + per-worker utilization table).
* :mod:`repro.obs.attrib` — the ``python -m repro attrib`` analysis:
  decompose a parallel batch's wall time into overhead categories and
  report measured speedup against the ideal (compute / slots) bound.
* :mod:`repro.obs.trajectory` — the ``python -m repro perfgate``
  noise-aware regression gate over the unified ``BENCH_*.json`` history.
* :mod:`repro.obs.openmetrics` — OpenMetrics text exposition for any
  :class:`~repro.obs.metrics.MetricsRegistry`, plus a stdlib HTTP
  exporter thread for scraping.
* :mod:`repro.obs.slo` — sliding-window SLO accounting for the serve
  layer (per-op/tenant windowed p99, error-budget burn rate,
  ``serve.slo.*`` gauges, the ``slo_burn`` incident trigger).
* :mod:`repro.obs.flight` — always-on flight recorder: a bounded ring
  of recent spans/events/notes with trigger rules that dump
  ``incident-*.json`` (Perfetto trace slice + metrics snapshot);
  inspect with ``python -m repro incidents``.
* :mod:`repro.obs.top` — the ``python -m repro top`` live dashboard
  over a serving session or an OpenMetrics endpoint.

Typical use::

    from repro.obs import observing, span

    with observing() as session:
        with span("my-phase"):
            ...
        print(session.metrics.snapshot())

Everything is disabled by default; see docs/OBSERVABILITY.md.
"""

from repro.obs.attrib import (
    Attribution,
    attribute,
    attribute_jsonl,
    attribute_session,
    attribution_to_json,
    format_attribution,
)
from repro.obs.export import (
    format_span_table,
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    worker_lanes,
)
from repro.obs.flight import (
    FlightRecorder,
    list_incidents,
    run_incidents,
    summarize_incident,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.openmetrics import (
    OpenMetricsExporter,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.session import (
    ObsSession,
    current,
    disable,
    enable,
    is_enabled,
    observing,
)
from repro.obs.snapshot import (
    DEFAULT_SNAPSHOT_NAME,
    META_KEY,
    SnapshotDiff,
    SnapshotStore,
    diff_values,
    snapshot_meta,
)
from repro.obs.slo import SloTracker
from repro.obs.spans import SpanRecord, SpanSink, span
from repro.obs.top import build_panels, render_panels, run_top
from repro.obs.trajectory import (
    GateReport,
    KeyVerdict,
    gate,
    unified_history,
)

__all__ = [
    "Attribution",
    "FlightRecorder",
    "GateReport",
    "KeyVerdict",
    "OpenMetricsExporter",
    "SloTracker",
    "attribute",
    "attribute_jsonl",
    "attribute_session",
    "attribution_to_json",
    "format_attribution",
    "gate",
    "render_openmetrics",
    "snapshot_meta",
    "unified_history",
    "validate_openmetrics",
    "META_KEY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "SnapshotDiff",
    "SnapshotStore",
    "SpanRecord",
    "SpanSink",
    "DEFAULT_SNAPSHOT_NAME",
    "current",
    "diff_values",
    "disable",
    "enable",
    "build_panels",
    "format_span_table",
    "from_jsonl",
    "is_enabled",
    "list_incidents",
    "observing",
    "render_panels",
    "run_incidents",
    "run_top",
    "span",
    "summarize_incident",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "worker_lanes",
]
