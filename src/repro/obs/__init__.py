"""``repro.obs`` — end-to-end instrumentation for the simulation pipeline.

The reproduction's results all flow through one pipeline (ISA simulation
-> trace -> machine model -> runtime estimate -> figure regeneration);
this package makes that pipeline observable the way the paper's own
methodology is (LLVM-MCA port-pressure reports, PISA validation tables):

* :mod:`repro.obs.spans` — nestable wall-clock spans with a no-op
  disabled path (``with span("schedule"): ...``).
* :mod:`repro.obs.metrics` — counters / gauges / histograms with exact
  percentiles.
* :mod:`repro.obs.hooks` — the permanent instrumentation points wired
  into :mod:`repro.isa.trace`, :mod:`repro.machine.scheduler` and
  :mod:`repro.machine.cache`.
* :mod:`repro.obs.export` — JSON-lines and Chrome trace-event exporters
  (open the latter in ``chrome://tracing`` or Perfetto) plus text tables.
* :mod:`repro.obs.snapshot` — the ``BENCH_pipeline.json`` perf-snapshot
  history with regression diffing.
* :mod:`repro.obs.profile` — the ``python -m repro profile`` engine.
* :mod:`repro.obs.dist` — cross-process telemetry for the parallel
  engine: trace-context propagation into worker processes, worker-local
  capture, and parent-side merge onto per-worker trace lanes.
* :mod:`repro.obs.timeline` — the ``python -m repro timeline`` harness
  (merged batch timeline + per-worker utilization table).

Typical use::

    from repro.obs import observing, span

    with observing() as session:
        with span("my-phase"):
            ...
        print(session.metrics.snapshot())

Everything is disabled by default; see docs/OBSERVABILITY.md.
"""

from repro.obs.export import (
    format_span_table,
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    worker_lanes,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.session import (
    ObsSession,
    current,
    disable,
    enable,
    is_enabled,
    observing,
)
from repro.obs.snapshot import (
    DEFAULT_SNAPSHOT_NAME,
    SnapshotDiff,
    SnapshotStore,
    diff_values,
)
from repro.obs.spans import SpanRecord, SpanSink, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "SnapshotDiff",
    "SnapshotStore",
    "SpanRecord",
    "SpanSink",
    "DEFAULT_SNAPSHOT_NAME",
    "current",
    "diff_values",
    "disable",
    "enable",
    "format_span_table",
    "from_jsonl",
    "is_enabled",
    "observing",
    "span",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "worker_lanes",
]
