"""Perf-snapshot harness: record pipeline numbers, diff against history.

``BENCH_pipeline.json`` accumulates a bounded history of snapshots, each
a flat ``{key: value}`` dict (wall-clock seconds per experiment, headline
simulated-cycle numbers, benchmark round times). Recording a new snapshot
diffs it against the previous one and flags keys that moved beyond a
relative threshold — the lightweight regression tripwire the paper's own
methodology implies but that ``pytest-benchmark`` alone does not give us
across runs.

Convention: **every recorded value is lower-is-better** (seconds, cycles,
nanoseconds). A key whose value grew by more than the threshold is a
regression; one that shrank by more is an improvement.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

#: Default snapshot file, at the repository root by convention.
DEFAULT_SNAPSHOT_NAME = "BENCH_pipeline.json"

#: Relative change flagged as a regression/improvement by default.
DEFAULT_THRESHOLD = 0.10

#: Namespaced metadata block stamped on every snapshot. Readers that
#: iterate ``values`` stay oblivious; diffing and gating skip the prefix.
META_KEY = "_meta"


def git_sha(cwd=None) -> str:
    """Short SHA of the current checkout, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def snapshot_meta(label: str = "", cwd=None) -> Dict[str, str]:
    """The ``_meta`` block: provenance for trajectory/history tooling."""
    return {
        "label": label,
        "timestamp_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "git_sha": git_sha(cwd),
        "hostname": platform.node() or "unknown",
    }


@dataclass
class SnapshotDiff:
    """Outcome of comparing one snapshot against its predecessor."""

    threshold: float
    #: (key, old, new) triples where new > old * (1 + threshold).
    regressions: List[Tuple[str, float, float]] = field(default_factory=list)
    #: (key, old, new) triples where new < old * (1 - threshold).
    improvements: List[Tuple[str, float, float]] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    unchanged: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        """Human-readable diff report."""
        lines = [
            f"-- snapshot diff (threshold {self.threshold * 100:.0f}%) --"
        ]
        for key, old, new in sorted(self.regressions):
            lines.append(
                f"REGRESSION  {key}: {old:.6g} -> {new:.6g} "
                f"({_relative_pct(old, new)})"
            )
        for key, old, new in sorted(self.improvements):
            lines.append(
                f"improved    {key}: {old:.6g} -> {new:.6g} "
                f"({_relative_pct(old, new)})"
            )
        for key in sorted(self.added):
            lines.append(f"new key     {key}")
        for key in sorted(self.removed):
            lines.append(f"removed     {key}")
        lines.append(
            f"{self.unchanged} within threshold, "
            f"{len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements"
        )
        return "\n".join(lines)


def _relative_pct(old: float, new: float) -> str:
    """``new`` vs ``old`` as a signed percentage, or ``n/a``.

    A zero (or negative) baseline admits no ratio — a freshly appearing
    cost can be flagged as a regression but not quantified relatively.
    """
    if old <= 0:
        return "n/a"
    return f"{(new / old - 1) * 100:+.1f}%"


def diff_values(
    old: Dict[str, float],
    new: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> SnapshotDiff:
    """Compare two flat value dicts under the lower-is-better convention."""
    if threshold < 0:
        raise ObservabilityError("diff threshold must be non-negative")
    diff = SnapshotDiff(threshold=threshold)
    for key in new:
        if key.startswith(META_KEY):
            continue
        if key not in old:
            diff.added.append(key)
            continue
        before, after = float(old[key]), float(new[key])
        if before == 0.0 and after > 0.0:
            # Under lower-is-better, a cost appearing where none existed
            # is a regression even though no ratio can be formed.
            diff.regressions.append((key, before, after))
        elif before <= 0:
            # A negative baseline (or zero -> zero) admits no verdict.
            diff.unchanged += 1
        elif after > before * (1.0 + threshold):
            diff.regressions.append((key, before, after))
        elif after < before * (1.0 - threshold):
            diff.improvements.append((key, before, after))
        else:
            diff.unchanged += 1
    diff.removed = [
        key for key in old if key not in new and not key.startswith(META_KEY)
    ]
    return diff


class SnapshotStore:
    """Bounded history of perf snapshots backed by one JSON file."""

    def __init__(self, path, keep: int = 20) -> None:
        if keep < 1:
            raise ObservabilityError("snapshot history must keep >= 1 entries")
        self.path = Path(path)
        self.keep = keep

    def load(self) -> List[Dict[str, object]]:
        """All stored snapshots, oldest first; tolerates a missing file."""
        if not self.path.exists():
            return []
        try:
            data = json.loads(self.path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            raise ObservabilityError(
                f"unreadable snapshot file {self.path}: {exc}"
            ) from exc
        snapshots = data.get("snapshots", []) if isinstance(data, dict) else []
        return [s for s in snapshots if isinstance(s, dict) and "values" in s]

    def latest(self) -> Optional[Dict[str, object]]:
        snapshots = self.load()
        return snapshots[-1] if snapshots else None

    def _write(self, snapshots: List[Dict[str, object]]) -> None:
        payload = {
            "format": "repro.obs.snapshot/v1",
            "snapshots": snapshots[-self.keep :],
        }
        self.path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def record(
        self,
        values: Dict[str, float],
        label: str = "",
        threshold: float = DEFAULT_THRESHOLD,
    ) -> Optional[SnapshotDiff]:
        """Append a snapshot; returns the diff vs the previous one (if any)."""
        clean = {
            key: float(value)
            for key, value in values.items()
            if not key.startswith(META_KEY)
        }
        snapshots = self.load()
        diff = None
        if snapshots:
            diff = diff_values(
                dict(snapshots[-1]["values"]), clean, threshold
            )
        snapshots.append(
            {
                "label": label,
                "unix_time": time.time(),
                META_KEY: snapshot_meta(label, cwd=self.path.parent),
                "values": clean,
            }
        )
        self._write(snapshots)
        return diff

    def merge(self, values: Dict[str, float], label: str = "benchmarks") -> None:
        """Fold keys into the latest snapshot in place (no new history entry).

        Benchmarks record one key at a time; merging keeps one snapshot
        per "era" rather than one per benchmark test, so diffs compare
        like against like.
        """
        clean = {
            key: float(value)
            for key, value in values.items()
            if not key.startswith(META_KEY)
        }
        snapshots = self.load()
        if snapshots:
            snapshots[-1]["values"].update(clean)
        else:
            snapshots = [
                {
                    "label": label,
                    "unix_time": time.time(),
                    META_KEY: snapshot_meta(label, cwd=self.path.parent),
                    "values": clean,
                }
            ]
        self._write(snapshots)
