"""Exporters: JSON-lines, Chrome trace-event format, and summary tables.

Three consumers, three formats:

* **JSON-lines** — one object per line (``{"kind": "span", ...}`` /
  ``{"kind": "metric", ...}``), the grep/jq-friendly archival form.
* **Chrome trace-event** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly; spans
  become complete ("ph": "X") events with microsecond timestamps.
* **Text table** — :func:`format_span_table` renders the per-phase
  aggregate for terminals (the ``profile`` subcommand's summary).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.errors import ObservabilityError
from repro.obs.spans import SpanRecord

#: Reserved span-attribute keys that route a record onto its own
#: process lane in the Chrome trace. Spans merged from worker telemetry
#: (:mod:`repro.obs.dist`) carry the worker's pid under
#: :data:`LANE_PID_KEY` and a human label under :data:`LANE_NAME_KEY`;
#: :func:`to_chrome_trace` renders them as separate pid tracks so
#: Perfetto shows one lane per worker next to the parent's.
LANE_PID_KEY = "obs.pid"
LANE_NAME_KEY = "obs.lane"

#: The pid the parent process's spans render on.
PARENT_PID = 1


def span_to_dict(record: SpanRecord) -> Dict[str, object]:
    """Plain-dict form of one span (the JSON-lines payload)."""
    return {
        "kind": "span",
        "name": record.name,
        "start_s": record.start_s,
        "duration_s": record.duration_s,
        "depth": record.depth,
        "parent": record.parent,
        "index": record.index,
        "attrs": record.attrs,
    }


def to_jsonl(
    spans: Iterable[SpanRecord],
    metrics_snapshot: Optional[Dict[str, Dict[str, object]]] = None,
    events: Optional[Iterable[Dict[str, object]]] = None,
) -> str:
    """Serialize spans (plus optional metrics and events) as JSON-lines.

    ``events`` is the session's structured event log
    (:attr:`repro.obs.session.ObsSession.events`); each record becomes a
    ``{"kind": "event", ...}`` line carrying its correlation ids, which
    is what lets ``jq`` join parent-side shard lifecycle events with the
    worker-side spans of the same batch/shard/attempt.
    """
    lines = [json.dumps(span_to_dict(record)) for record in spans]
    for record in events or ():
        payload = {"kind": "event"}
        payload.update(record)
        lines.append(json.dumps(payload))
    for name, data in (metrics_snapshot or {}).items():
        payload = {"kind": "metric", "name": name}
        payload.update(data)
        lines.append(json.dumps(payload))
    return "\n".join(lines) + ("\n" if lines else "")


def from_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse JSON-lines back into dicts (round-trip of :func:`to_jsonl`)."""
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"invalid JSON-lines record at line {lineno}: {exc}"
            ) from exc
    return records


def to_chrome_trace(
    spans: Iterable[SpanRecord], process_name: str = "repro-pipeline"
) -> Dict[str, object]:
    """Build a Chrome trace-event JSON object from completed spans.

    Spans map to complete events (``"ph": "X"``) with microsecond
    ``ts``/``dur``; nesting is reconstructed by the viewer from timestamp
    containment, which our LIFO spans guarantee. Records carrying the
    :data:`LANE_PID_KEY` attribute (telemetry merged from pool workers)
    render on their own pid lane, labelled from :data:`LANE_NAME_KEY` —
    the result is one unified timeline with the parent's
    dispatch/collect/retry track plus a track per worker process.
    """
    events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": PARENT_PID,
            "tid": 1,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    named_lanes: Dict[int, str] = {}
    for record in spans:
        lane_pid = record.attrs.get(LANE_PID_KEY)
        if lane_pid is None:
            pid = PARENT_PID
            args = dict(record.attrs)
        else:
            pid = int(lane_pid)
            args = {
                key: value
                for key, value in record.attrs.items()
                if key not in (LANE_PID_KEY, LANE_NAME_KEY)
            }
            label = str(record.attrs.get(LANE_NAME_KEY, f"worker pid {pid}"))
            if named_lanes.get(pid) != label:
                named_lanes[pid] = label
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": 1,
                        "name": "process_name",
                        "args": {"name": label},
                    }
                )
        events.append(
            {
                "name": record.name,
                "cat": "pipeline",
                "ph": "X",
                "ts": record.start_s * 1e6,
                "dur": record.duration_s * 1e6,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def worker_lanes(trace: Dict[str, object]) -> List[int]:
    """Distinct worker pids present in a Chrome trace built by this module.

    Counts the pids of non-metadata events other than the parent lane —
    the CI timeline smoke asserts a lower bound on this to prove shards
    really executed across multiple processes.
    """
    pids = {
        event.get("pid")
        for event in trace.get("traceEvents", ())  # type: ignore[union-attr]
        if isinstance(event, dict) and event.get("ph") != "M"
    }
    return sorted(
        pid for pid in pids if isinstance(pid, int) and pid != PARENT_PID
    )


def validate_chrome_trace(obj: object) -> None:
    """Check Chrome trace-event structure; raises on schema violations.

    Validates the subset of the trace-event spec this library emits:
    a ``traceEvents`` list whose complete events carry ``name``/``ph``
    plus non-negative numeric ``ts``/``dur``.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ObservabilityError("chrome trace must be a dict with 'traceEvents'")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError("'traceEvents' must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObservabilityError(f"event {i} is not an object")
        if "ph" not in event:
            raise ObservabilityError(f"event {i} missing phase 'ph'")
        if event["ph"] == "M":
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                raise ObservabilityError(f"event {i} missing {key!r}")
        if event["ph"] == "X":
            if "dur" not in event:
                raise ObservabilityError(f"complete event {i} missing 'dur'")
            if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
                raise ObservabilityError(f"event {i} has invalid 'dur'")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ObservabilityError(f"event {i} has invalid 'ts'")


def format_span_table(
    aggregate: Dict[str, Dict[str, float]], title: str = "pipeline phases"
) -> str:
    """Render a span aggregate (``SpanSink.aggregate()``) as a text table."""
    header = ["phase", "calls", "total ms", "mean ms", "max ms"]
    rows = [header]
    for name in sorted(aggregate, key=lambda n: -aggregate[n]["total_s"]):
        stats = aggregate[name]
        rows.append(
            [
                name,
                f"{int(stats['count'])}",
                f"{stats['total_s'] * 1e3:.2f}",
                f"{stats['mean_s'] * 1e3:.3f}",
                f"{stats['max_s'] * 1e3:.3f}",
            ]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [f"-- {title} --"]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
