"""Instrumentation hooks called from the library's hot layers.

Each hook is a module-level function with an immediate ``is None`` bail
when no observability session is active, so the permanent call sites in
:mod:`repro.isa.trace`, :mod:`repro.machine.scheduler` and
:mod:`repro.machine.cache` cost one global read + one call when disabled.
Crucially, none of the hooks sits *inside* a per-instruction loop:

* :func:`record_trace` fires once per traced region (on ``tracing()``
  exit), deriving per-mnemonic counts and load/store bytes from
  :meth:`repro.isa.trace.Tracer.summary` — the ``emit`` path itself is
  untouched, which is what the overhead guard in
  ``tests/test_obs_overhead.py`` asserts.
* :func:`record_schedule` fires once per scheduled block with the port
  occupancies and critical path.
* :func:`record_cache_access` / :func:`record_cache_traffic` fire once
  per cache-model query with the serving level and bytes moved.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.obs.session import current
from repro.obs.spans import span


def engine_run_span(engine: str, op: str, elements: int = 0, **attrs):
    """Span context for one execution-engine entry point call.

    The fast engine's counters (:func:`record_engine_call`) say *how
    often* it ran but give it no presence on the trace timeline, so an
    engine-vs-engine comparison (``engine.fast.run`` next to ``par.run``)
    could not land in one Perfetto view. Wrapping the NTT/BLAS entry
    points in this span fixes that; when no session is active the
    returned :func:`~contextlib.nullcontext` keeps the call sites at one
    global read, same as every other hook here.

    Extra keyword attributes land on the span unchanged — the fast
    engine passes ``mode="r52"``/``"dw"`` so a trace shows which
    arithmetic substrate served each call.
    """
    if current() is None:
        return nullcontext()
    return span(f"engine.{engine}.run", op=op, elements=elements, **attrs)


def record_r52_call(op: str, elements: int) -> None:
    """Count one fast-engine call served by the r52 (52-bit) substrate.

    Sibling of :func:`record_engine_call` under ``engine.fast.r52.*``:
    the pair shows how much fast-engine traffic the redundant-limb path
    actually carried versus the double-word schoolbook path.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter(f"engine.fast.r52.calls.{op}").inc()
    m.counter(f"engine.fast.r52.elements.{op}").inc(elements)


def record_r52_carry_flush(flushes: int) -> None:
    """Count batched carry-propagation passes run by the r52 NTT.

    Incremented once per transform with that transform's flush count
    (one normalize per stage plus the final lazy reduction), so the
    counter divided by ``engine.fast.r52.calls.ntt.*`` exposes the
    carry cadence the deferred-limb design promises.
    """
    session = current()
    if session is None:
        return
    session.metrics.counter("engine.fast.r52.carry_flushes").inc(flushes)


def record_fastmod_eviction() -> None:
    """Count one FastModulus evicted from the bounded process-wide cache."""
    session = current()
    if session is None:
        return
    session.metrics.counter("fastmod.evictions").inc()


def record_trace(tracer) -> None:
    """Account one finished traced region into the metrics registry.

    ``tracer`` is duck-typed (anything with a ``summary()`` shaped like
    :meth:`repro.isa.trace.Tracer.summary`) so this module never imports
    the ISA layer.
    """
    session = current()
    if session is None:
        return
    summary = tracer.summary()
    m = session.metrics
    for op, count in summary["op_counts"].items():
        m.counter(f"isa.ops.{op}").inc(count)
    m.counter("isa.instructions").inc(summary["entries"])
    m.counter("isa.loads").inc(summary["loads"])
    m.counter("isa.stores").inc(summary["stores"])
    m.counter("isa.load_bytes").inc(summary["load_bytes"])
    m.counter("isa.store_bytes").inc(summary["store_bytes"])
    m.counter("isa.traced_regions").inc()


def record_schedule(result) -> None:
    """Account one block-scheduling result (port pressure, chains)."""
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("sched.blocks").inc()
    m.histogram("sched.instructions_per_block").observe(result.instructions)
    m.histogram("sched.uops_per_block").observe(result.uops)
    m.histogram("sched.critical_path_cycles").observe(result.critical_path)
    bound = result.port_bound
    for port, occupancy in result.port_pressure.items():
        m.histogram(f"sched.port.{port}").observe(occupancy)
        if bound > 0:
            m.histogram(f"sched.util.{port}").observe(occupancy / bound)


def record_engine_call(engine: str, op: str, elements: int) -> None:
    """Count one execution-engine entry point call and its element volume.

    ``engine`` is ``"fast"`` (the NumPy-vectorized engine),
    ``"parallel"`` (the sharded process pool of :mod:`repro.par`) or
    ``"faithful"`` (the ISA-simulated backends); ``op`` is a dotted
    operation name (``"ntt.forward"``, ``"blas.vector_mul"``, ...). The
    pair of counters — calls and elements processed — is what lets a
    profile show which engine actually computed the results and at what
    data volume.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter(f"engine.{engine}.calls.{op}").inc()
    m.counter(f"engine.{engine}.elements.{op}").inc(elements)


def record_par_dispatch(shards: int) -> None:
    """Count shards handed to the worker pool for one parallel batch."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.shards.dispatched").inc(shards)


def record_par_shard_done(wall_s: float) -> None:
    """Account one shard completed by a worker (count + wall-clock)."""
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("par.shards.completed").inc()
    m.histogram("par.shard.wall_s").observe(wall_s)


def record_par_retry() -> None:
    """Count one shard re-enqueued after a worker crash or hang."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.retries").inc()


def record_par_fallback() -> None:
    """Count one shard degraded to in-process execution after retries."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.fallbacks").inc()


def record_par_worker_restart() -> None:
    """Count one replacement worker spawned after a crash or kill."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.workers.restarted").inc()
    flight = session.flight
    if flight is not None:
        flight.note("worker_restart")


def record_par_stale_result(flavor: str = "superseded") -> None:
    """Count one worker message discarded for being stale.

    Two flavors, both incrementing the aggregate ``par.stale_results``
    plus a per-flavor sibling: ``"superseded"`` — the task is still
    pending but the message carries an old generation (it was
    re-enqueued; the straggler lost the race to its own retry) — and
    ``"recovered"`` — the task already completed through another path
    (retry or in-process fallback), so the straggler's late result is
    the double-execution the generation counters exist to make visible.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("par.stale_results").inc()
    m.counter(f"par.stale_results.{flavor}").inc()


def record_par_worker_hung() -> None:
    """Count one worker terminated for exceeding the task timeout.

    Distinct from ``par.workers.restarted`` (which also covers crashes):
    a hang means the policing loop had to SIGTERM a live-but-silent
    worker, which usually points at oversized shards or a blocked
    syscall rather than a fault.
    """
    session = current()
    if session is None:
        return
    session.metrics.counter("par.workers.hung").inc()


def record_par_limbo_requeue() -> None:
    """Count one shard re-enqueued by the quiet-timeout safety net.

    These requeues recover shards in dispatch limbo (no worker ever
    advertised them); they are *not* worker failures and do not charge
    the circuit breaker.
    """
    session = current()
    if session is None:
        return
    session.metrics.counter("par.limbo.requeued").inc()


def record_arena_lease(reused: bool, nbytes: int) -> None:
    """Count one arena segment lease and the bytes it serves.

    ``reused`` distinguishes free-list recycling (the steady state —
    zero syscalls) from a fresh shm create (cold start or a new size
    class). The reuse ratio is the arena's whole value proposition, so
    both flavors are first-class counters.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("par.arena.leases").inc()
    m.counter("par.arena.leased_bytes").inc(nbytes)
    if reused:
        m.counter("par.arena.reuses").inc()
    else:
        m.counter("par.arena.creates").inc()


def record_arena_high_water(total_bytes: int, segments: int) -> None:
    """Record a new arena high-water mark (bytes held, segment count)."""
    session = current()
    if session is None:
        return
    m = session.metrics
    m.gauge("par.arena.high_water_bytes").set(total_bytes)
    m.gauge("par.arena.high_water_segments").set(segments)


def record_arena_drained(segments: int) -> None:
    """Count arena segments destroyed by a pool drain (executor close)."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.arena.drained").inc(segments)


def record_fused_chain(steps: int, shards: int) -> None:
    """Count one fused multi-op chain dispatched to the pool.

    ``steps`` is the chain length (e.g. 5 for NTT→NTT→pointwise→INTT
    composed as a negacyclic product), ``shards`` how many tasks carried
    it. ``par.fused.steps`` minus ``par.fused.chains`` is the number of
    dispatch round trips fusion removed.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("par.fused.chains").inc(shards)
    m.counter("par.fused.steps").inc(steps * shards)


def record_adaptive_shards(shards: int, ceiling: int) -> None:
    """Record one adaptive shard-sizing decision.

    Emitted only when the recorded compute history clamped the shard
    count below the worker-count ceiling (the interesting case: the
    batch was too small to amortize per-shard dispatch overhead).
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("par.adaptive.clamped").inc()
    m.histogram("par.adaptive.shards").observe(shards)
    m.counter("par.adaptive.saved_dispatches").inc(max(0, ceiling - shards))


def record_par_worker_pinned() -> None:
    """Count one pool worker pinned to a dedicated CPU at spawn."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.workers.pinned").inc()


def record_worker_blob(blob, slot: int) -> None:
    """Merge one worker telemetry blob into the parent session.

    Thin hook over :func:`repro.obs.dist.merge_blob` (lazy import keeps
    :mod:`repro.obs.hooks` a dependency leaf): re-anchors the worker's
    spans onto the parent timeline with slot/pid lane tags and rolls its
    counters up under ``par.worker.*`` / ``par.slot.<k>.*``.
    """
    session = current()
    if session is None:
        return
    from repro.obs.dist import merge_blob

    merge_blob(session, blob, slot)


def record_telemetry_stale() -> None:
    """Count one worker telemetry blob discarded as stale.

    Mirrors :func:`record_par_stale_result`: telemetry attached to a
    superseded generation (or to a task the executor no longer tracks)
    must not pollute the merged timeline, but its arrival is metered so a
    retry storm is visible in the blob accounting too.
    """
    session = current()
    if session is None:
        return
    session.metrics.counter("par.telemetry.stale").inc()


def record_shard_event(event: str, **fields: object) -> None:
    """Append one shard lifecycle event to the structured event log.

    The executor calls this with the shard's correlation ids (``batch``,
    ``shard``, ``attempt``) at each parent-side transition — dispatched,
    done, retry, fallback, corrupt — producing the JSONL stream that
    joins against worker-side span attributes.
    """
    session = current()
    if session is None:
        return
    session.event(event, **fields)


def record_slot_retry(slot: int) -> None:
    """Attribute one retry to the worker slot whose shard failed."""
    session = current()
    if session is None:
        return
    session.metrics.counter(f"par.slot.{slot}.retries").inc()


def record_integrity_corrupt() -> None:
    """Count one shard whose shm payload failed checksum verification."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.integrity.corrupt").inc()


def record_integrity_audit(shards: int) -> None:
    """Count shards re-verified against the faithful engine (audit mode)."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.integrity.audited").inc(shards)


def record_integrity_divergence() -> None:
    """Count one audited shard whose faithful recomputation diverged."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.integrity.divergent").inc()


def record_shm_reclaimed(segments: int) -> None:
    """Count shm segments defensively unlinked by executor close()."""
    session = current()
    if session is None:
        return
    session.metrics.counter("par.shm.reclaimed").inc(segments)


def record_resil_degraded(requested: str, resolved: str, reason: str) -> None:
    """Count one engine degradation (``parallel``→``fast``→``faithful``).

    Emits the aggregate ``resil.degraded`` counter plus a per-reason
    sibling (``resil.degraded.breaker_open``, ``.numpy_missing``,
    ``.pool_start_failed``, ``.deadline``, ``.disabled``...), so a
    profile shows both how often and *why* traffic left an engine.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("resil.degraded").inc()
    m.counter(f"resil.degraded.{reason}").inc()


#: Numeric encoding of breaker states for the ``resil.breaker.state_code``
#: gauge (dashboards need a single scrapable level, not three counters).
BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


def record_breaker_transition(state: str) -> None:
    """Count one circuit-breaker state transition (by target state).

    Also sets the ``resil.breaker.state_code`` gauge (closed=0,
    half_open=1, open=2) — the live level ``repro top`` renders — and,
    when the breaker *opens*, raises the flight recorder's
    ``breaker_open`` incident trigger.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter(f"resil.breaker.{state}").inc()
    m.gauge("resil.breaker.state_code").set(
        BREAKER_STATE_CODES.get(state, -1)
    )
    flight = session.flight
    if flight is not None:
        flight.note("breaker", state=state)


def record_deadline_expired(shards: int) -> None:
    """Count shards short-circuited in-process by an expired batch deadline."""
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("resil.deadline.expired").inc()
    m.counter("resil.deadline.shards").inc(shards)


def record_retry_backoff(delay_s: float) -> None:
    """Observe one retry's backoff delay (histogram, seconds)."""
    session = current()
    if session is None:
        return
    session.metrics.histogram("resil.retry.backoff_s").observe(delay_s)


def record_par_pin_unsupported() -> None:
    """Count one pin request skipped because the platform cannot pin.

    Emitted when ``pin_workers=True`` was asked for explicitly but the
    host lacks ``os.sched_setaffinity`` (macOS, some BSDs): the executor
    warns once and runs unpinned instead of raising.
    """
    session = current()
    if session is None:
        return
    session.metrics.counter("par.workers.pin_unsupported").inc()


def record_par_interrupted() -> None:
    """Count one batch aborted mid-flight by SIGINT/KeyboardInterrupt.

    The executor quiesces the pool (drains queued tasks, waits for
    in-flight slots, discards late results) before re-raising, so every
    interrupt that is metered here left the arena reclaimable.
    """
    session = current()
    if session is None:
        return
    session.metrics.counter("par.interrupted").inc()


def record_serve_admitted(op: str) -> None:
    """Count one client request admitted past quota + queue-depth checks."""
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("serve.requests.admitted").inc()
    m.counter(f"serve.admitted.{op}").inc()


def record_serve_shed(reason: str) -> None:
    """Count one request shed by admission control (by reason).

    Every :class:`~repro.errors.ServeOverloadError` the service raises
    passes through here exactly once, so ``serve.shed`` equals the total
    number of rejections and the ``serve.shed.<reason>`` siblings
    (``queue_full``, ``quota``, ``breaker_open``, ``shutting_down``)
    account for every one of them — overload is never silent.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("serve.shed").inc()
    m.counter(f"serve.shed.{reason}").inc()
    flight = session.flight
    if flight is not None:
        flight.note("shed", reason=reason)


def record_serve_completed(op: str, latency_s: float) -> None:
    """Account one request completed successfully (count + end-to-end latency)."""
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("serve.requests.completed").inc()
    m.histogram("serve.request.latency_s").observe(latency_s)
    m.histogram(f"serve.latency_s.{op}").observe(latency_s)


def record_serve_latency_slices(
    op: str,
    tenant: str,
    total_s: float,
    coalesce_wait_s: float,
    queue_wait_s: float,
    compute_s: float,
) -> None:
    """Decompose one completed request's end-to-end latency into stages.

    The tentpole decomposition (docs/OBSERVABILITY.md): *coalesce wait*
    (enqueue → the batch left the coalescer), *queue wait* (dispatcher
    backlog: batch handoff → compute start), and *compute* (engine
    execution → resolution). Sliced per op and per tenant so a tail
    blowup is attributable — a fat ``serve.queue_wait_s`` p99 means the
    dispatcher is the bottleneck (raise workers/shed earlier), a fat
    ``coalesce_wait_s`` means the window is too wide for the traffic.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.histogram(f"serve.coalesce_wait_s.{op}").observe(coalesce_wait_s)
    m.histogram(f"serve.queue_wait_s.{op}").observe(queue_wait_s)
    m.histogram(f"serve.compute_s.{op}").observe(compute_s)
    m.histogram(f"serve.tenant.{tenant}.latency_s").observe(total_s)


def record_serve_failed(op: str, kind: str) -> None:
    """Count one admitted request that finished with an error.

    ``kind`` distinguishes ``deadline`` (expired before dispatch),
    ``shutdown`` (service closed with the request still queued) and
    ``error`` (the engine raised); together with
    ``serve.requests.completed`` these account for every admitted
    request, which is the invariant the load generator asserts.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("serve.requests.failed").inc()
    m.counter(f"serve.failed.{kind}").inc()
    if kind == "deadline":
        flight = session.flight
        if flight is not None:
            flight.note("deadline_failure", op=op)


def record_serve_batch(op: str, size: int, wait_s: float) -> None:
    """Account one coalesced batch dispatched to an engine.

    ``size`` is how many client requests rode the batch; ``wait_s`` is
    the oldest request's coalesce-queue wait. ``serve.batch.size`` over
    ``serve.batches`` is the realized coalescing factor — the number the
    throughput win depends on.
    """
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("serve.batches").inc()
    m.histogram("serve.batch.size").observe(size)
    m.histogram("serve.coalesce.batch_size").observe(size)
    m.histogram("serve.batch.wait_s").observe(wait_s)
    m.counter(f"serve.batched.{op}").inc(size)


def record_serve_degraded(reason: str) -> None:
    """Count one serve batch degraded off the requested engine."""
    session = current()
    if session is None:
        return
    m = session.metrics
    m.counter("serve.degraded").inc()
    m.counter(f"serve.degraded.{reason}").inc()


def record_serve_queue_depth(depth: int) -> None:
    """Record the coalescer's total queued-request depth (gauge)."""
    session = current()
    if session is None:
        return
    session.metrics.gauge("serve.queue.depth").set(depth)


def record_twiddle_eviction() -> None:
    """Count one TwiddleTable evicted from the bounded process-wide cache."""
    session = current()
    if session is None:
        return
    session.metrics.counter("twiddle.evictions").inc()


def record_cache_access(level: str) -> None:
    """Count one cache-model query served by ``level`` (L1/L2/L3/DRAM)."""
    session = current()
    if session is None:
        return
    session.metrics.counter(f"cache.access.{level}").inc()


def record_cache_traffic(total_bytes: float) -> None:
    """Account the bytes one memory-cycles query moved through the model."""
    session = current()
    if session is None:
        return
    session.metrics.counter("cache.bytes_modeled").inc(total_bytes)


def cache_hit_rates(metrics) -> dict:
    """Fraction of cache-model accesses served at each level.

    Derived view over the ``cache.access.*`` counters: the "hit rate" at
    level X is the share of queries whose working set fit in X (and not
    in any faster level) — the simulation analogue of a hit-ratio PMU
    counter. Returns ``{}`` when no accesses were recorded.
    """
    levels = ("L1", "L2", "L3", "DRAM")
    counts = {}
    for level in levels:
        metric = metrics.get(f"cache.access.{level}")
        counts[level] = metric.value if metric is not None else 0.0
    total = sum(counts.values())
    if total <= 0:
        return {}
    return {level: counts[level] / total for level in levels}
