"""Counters, gauges, and histograms for the simulation pipeline.

The registry is deliberately small: metric names are dotted strings
(``"isa.ops.vpmulq_zmm"``, ``"sched.port.p0"``, ``"cache.access.L2"``)
and each name is bound to exactly one metric kind for the lifetime of a
session — asking for the same name with a different kind raises
:class:`~repro.errors.ObservabilityError`, which catches the classic
"counter silently shadowed by a gauge" instrumentation bug.

``snapshot()`` renders everything to plain JSON-serializable dicts; the
exporters in :mod:`repro.obs.export` and the summary tables in
:mod:`repro.obs.profile` are built on that form alone.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import ObservabilityError


class Counter:
    """Monotonically increasing count (instructions, bytes, accesses)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (a level, a ratio, a configuration knob)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value, "updates": self.updates}


class Histogram:
    """Distribution of observed values with exact percentiles.

    Keeps raw observations (pipeline runs observe thousands, not
    millions, of values) so percentiles are exact rather than bucketed.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ObservabilityError(f"histogram {self.name!r} is empty")
        return self.sum / len(self.values)

    def percentile(self, p: float) -> float:
        """Exact percentile ``p`` in [0, 100], linearly interpolated."""
        if not self.values:
            raise ObservabilityError(f"histogram {self.name!r} is empty")
        if not 0.0 <= p <= 100.0:
            raise ObservabilityError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def snapshot(self) -> Dict[str, object]:
        if not self.values:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name-keyed store of counters/gauges/histograms for one session."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> List[str]:
        """Sorted metric names, optionally filtered by dotted prefix."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as plain dicts, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
