"""Counters, gauges, and histograms for the simulation pipeline.

The registry is deliberately small: metric names are dotted strings
(``"isa.ops.vpmulq_zmm"``, ``"sched.port.p0"``, ``"cache.access.L2"``)
and each name is bound to exactly one metric kind for the lifetime of a
session — asking for the same name with a different kind raises
:class:`~repro.errors.ObservabilityError`, which catches the classic
"counter silently shadowed by a gauge" instrumentation bug.

``snapshot()`` renders everything to plain JSON-serializable dicts; the
exporters in :mod:`repro.obs.export` and the summary tables in
:mod:`repro.obs.profile` are built on that form alone.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, Iterator, List, Optional

from repro.errors import ObservabilityError


class Counter:
    """Monotonically increasing count (instructions, bytes, accesses).

    Thread-safe: the serve layer updates counters from both the asyncio
    event loop and its dedicated dispatcher thread, and ``value += x`` is
    a read-modify-write that can lose increments under that interleaving.
    """

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (a level, a ratio, a configuration knob).

    Thread-safe: ``serve.queue.depth`` is set from the event-loop thread
    (``submit``) and read while the dispatcher thread resolves batches;
    the lock keeps ``value``/``updates`` consistent under that race.
    """

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.updates = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.updates += 1

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value, "updates": self.updates}


#: Observations a histogram stores exactly before switching to
#: reservoir sampling. Generous for pipeline phases (thousands of
#: values) while bounding memory under long parallel runs that observe
#: millions of shard walls.
DEFAULT_RESERVOIR_SIZE = 4096


class Histogram:
    """Distribution of observed values with bounded memory.

    Values are stored exactly — so percentiles are exact — up to
    ``reservoir_size`` observations. Beyond the cap, storage switches to
    deterministic reservoir sampling (Algorithm R with a seed derived
    from the metric name), keeping percentiles unbiased estimates while
    memory stays O(cap). ``count``/``sum``/``min``/``max``/``mean`` are
    tracked as running exacts either way, and :meth:`snapshot` reports
    ``sampled: true`` once the reservoir is in effect.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        reservoir_size: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if reservoir_size is not None and reservoir_size < 1:
            raise ObservabilityError(
                f"histogram {name!r} reservoir_size must be >= 1"
            )
        self.name = name
        self.values: List[float] = []
        self.reservoir_size = reservoir_size or DEFAULT_RESERVOIR_SIZE
        # Seeded from (seed, name) so sampling is replayable across runs
        # regardless of per-process str-hash randomization.
        self._rng = random.Random((seed << 32) ^ zlib.crc32(name.encode()))
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        # One lock for the running exacts *and* the reservoir: two
        # threads observing concurrently (dispatcher + event loop in the
        # serve layer) must not lose a count or tear the Algorithm R
        # slot arithmetic.
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self.values) < self.reservoir_size:
                self.values.append(value)
            else:
                # Algorithm R: keep each of the N observations in the
                # reservoir with probability cap/N.
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir_size:
                    self.values[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        if not self._count:
            raise ObservabilityError(f"histogram {self.name!r} is empty")
        return self._min

    @property
    def max(self) -> float:
        if not self._count:
            raise ObservabilityError(f"histogram {self.name!r} is empty")
        return self._max

    @property
    def mean(self) -> float:
        if not self._count:
            raise ObservabilityError(f"histogram {self.name!r} is empty")
        return self._sum / self._count

    @property
    def sampled(self) -> bool:
        """Whether percentiles are reservoir estimates rather than exact."""
        return self._count > len(self.values)

    def percentile(self, p: float) -> float:
        """Percentile ``p`` in [0, 100], linearly interpolated.

        Exact below the reservoir cap; an unbiased sample estimate after
        (:attr:`sampled` tells which).
        """
        if not self.values:
            raise ObservabilityError(f"histogram {self.name!r} is empty")
        if not 0.0 <= p <= 100.0:
            raise ObservabilityError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def snapshot(self) -> Dict[str, object]:
        if not self._count:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "sampled": self.sampled,
        }


class MetricsRegistry:
    """Name-keyed store of counters/gauges/histograms for one session."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            # Two threads first-touching the same name must agree on one
            # instance, or increments land on an orphaned metric.
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> List[str]:
        """Sorted metric names, optionally filtered by dotted prefix."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as plain dicts, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
