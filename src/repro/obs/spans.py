"""Wall-clock span tracing for pipeline phases.

A *span* times one phase of the simulation pipeline — capturing an
instruction trace, scheduling it onto ports, applying the cache model,
regenerating one figure. Spans nest (``parent``/``depth`` record the
structure) and are cheap enough to leave in library code permanently:
when no session is active, :func:`span` performs one global read and
yields ``None``.

Timing uses :func:`time.perf_counter` relative to the sink's epoch, so
exported timestamps start near zero and stay monotonic — exactly the
form the Chrome trace-event format expects.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs.session import current as _current_session


@dataclass
class SpanRecord:
    """One completed (or still-open) span.

    Attributes:
        name: Phase name, e.g. ``"trace-capture"`` or ``"experiment:figure5a"``.
        start_s: Start time in seconds since the sink's epoch.
        duration_s: Wall-clock duration; ``0.0`` while the span is open.
        depth: Nesting depth (0 for top-level spans).
        parent: Index of the enclosing span in the sink, or ``None``.
        index: This span's own index in the sink's record list.
        attrs: Free-form annotations (kernel name, backend, sizes...).
    """

    name: str
    start_s: float
    duration_s: float
    depth: int
    parent: Optional[int]
    index: int
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class SpanSink:
    """Collects spans for one observability session."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[int] = []
        self.epoch_s = time.perf_counter()
        #: Optional observer invoked with each completed SpanRecord (the
        #: flight recorder's feed). One attribute check per close while a
        #: session is active; never touched on the disabled path.
        self.on_close: Optional[object] = None

    def open(self, name: str, attrs: Dict[str, object]) -> int:
        """Start a span; returns its index for the matching :meth:`close`."""
        index = len(self.records)
        self.records.append(
            SpanRecord(
                name=name,
                start_s=time.perf_counter() - self.epoch_s,
                duration_s=0.0,
                depth=len(self._stack),
                parent=self._stack[-1] if self._stack else None,
                index=index,
                attrs=dict(attrs),
            )
        )
        self._stack.append(index)
        return index

    def close(self, index: int) -> SpanRecord:
        """Finish the span opened as ``index`` (spans close LIFO)."""
        record = self.records[index]
        record.duration_s = (
            time.perf_counter() - self.epoch_s - record.start_s
        )
        if self._stack and self._stack[-1] == index:
            self._stack.pop()
        observer = self.on_close
        if observer is not None:
            observer(record)
        return record

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name totals: ``{name: {count, total_s, mean_s, max_s}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            stats = out.setdefault(
                record.name,
                {"count": 0.0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0},
            )
            stats["count"] += 1
            stats["total_s"] += record.duration_s
            stats["max_s"] = max(stats["max_s"], record.duration_s)
        for stats in out.values():
            stats["mean_s"] = stats["total_s"] / stats["count"]
        return out

    def __len__(self) -> int:
        return len(self.records)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[SpanRecord]]:
    """Time one pipeline phase on the active session.

    Yields the live :class:`SpanRecord` (so callers may add attrs while
    the span is open), or ``None`` when observability is disabled — the
    disabled path does no timing, no allocation beyond the generator.
    """
    active = _current_session()
    if active is None:
        yield None
        return
    sink = active.spans
    index = sink.open(name, attrs)
    try:
        yield sink.records[index]
    finally:
        sink.close(index)
