"""Global observability session state.

One process-wide session holds a :class:`~repro.obs.spans.SpanSink` and a
:class:`~repro.obs.metrics.MetricsRegistry`. While no session is active,
every instrumentation point in the library — ``span(...)`` context
managers, the trace/scheduler/cache hooks in :mod:`repro.obs.hooks` —
reduces to a single ``is None`` check, mirroring the no-op pattern of
:func:`repro.isa.trace.emit`. This is what keeps the instrumentation
safe to leave permanently wired into the hot layers.

This module is a dependency leaf (its imports of the sink/registry
classes happen at session construction) so that instrumented subsystems
(:mod:`repro.isa`, :mod:`repro.machine`, :mod:`repro.perf`) can import it
without creating a cycle: :mod:`repro.obs` never imports them back.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class ObsSession:
    """One observability capture: spans, metrics, and structured events."""

    def __init__(self) -> None:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.spans import SpanSink

        self.spans = SpanSink()
        self.metrics = MetricsRegistry()
        #: Optional :class:`~repro.obs.flight.FlightRecorder` attached to
        #: this session. ``None`` by default; hooks that feed it check
        #: the attribute once after their session check, so sessions
        #: without a recorder pay one extra attribute read at most.
        self.flight = None
        #: Structured event log (``{"event": ..., "t_s": ..., **fields}``),
        #: the JSONL correlation stream for cross-process runs — the
        #: parallel executor appends one record per shard lifecycle step
        #: (dispatched / done / retry / fallback) carrying batch, shard
        #: and attempt ids that match the worker-side span attributes.
        self.events: List[Dict[str, object]] = []

    def event(self, name: str, **fields: object) -> Dict[str, object]:
        """Append one structured event, stamped on the span timeline."""
        record: Dict[str, object] = {
            "event": name,
            "t_s": time.perf_counter() - self.spans.epoch_s,
        }
        record.update(fields)
        self.events.append(record)
        flight = self.flight
        if flight is not None:
            flight.record_event(record)
        return record

    def __repr__(self) -> str:
        return (
            f"ObsSession({len(self.spans.records)} spans, "
            f"{len(self.metrics)} metrics, {len(self.events)} events)"
        )


_SESSION: Optional[ObsSession] = None


def current() -> Optional[ObsSession]:
    """The active session, or ``None`` when observability is disabled."""
    return _SESSION


def is_enabled() -> bool:
    """Whether an observability session is currently capturing."""
    return _SESSION is not None


def enable() -> ObsSession:
    """Start (or return the already-active) observability session."""
    global _SESSION
    if _SESSION is None:
        _SESSION = ObsSession()
    return _SESSION


def disable() -> None:
    """Stop capturing and drop the active session, if any."""
    global _SESSION
    _SESSION = None


def _swap(session: Optional[ObsSession]) -> Optional[ObsSession]:
    """Install ``session`` as the active one, returning the previous.

    Internal: used by :class:`repro.obs.dist.ShardObservation` to scope a
    worker-local session to one shard and restore whatever was active
    before (normally ``None`` inside a worker process).
    """
    global _SESSION
    previous, _SESSION = _SESSION, session
    return previous


@contextmanager
def observing() -> Iterator[ObsSession]:
    """Capture spans and metrics for the duration of the ``with`` block.

    Re-entrant: nesting inside an already-active session joins it rather
    than resetting it, so library code can instrument itself defensively
    (e.g. the experiment runner) without clobbering an outer profile.
    """
    global _SESSION
    if _SESSION is not None:
        yield _SESSION
        return
    session = enable()
    try:
        yield session
    finally:
        if _SESSION is session:
            disable()
