"""Overhead attribution for parallel-engine batches.

ROADMAP item 1 says the pool runs at 0.88-0.96x the fast engine and that
the telemetry to explain the missing speedup already exists; this module
is the analysis layer that turns one merged cross-process session
(:mod:`repro.obs.dist`: ``par.*`` parent spans, merged ``par.worker.*``
lanes, ``par.slot.*`` rollups, shard lifecycle events) into the paper's
kind of accounting — Table 1 attributes cycles to ADC chains, Figure 7
measures distance to a speed-of-light bound; here every slot-second of a
batch is attributed to a named cause and the batch is measured against
its own ideal-speedup bound.

**The ledger.** A batch of wall time ``W`` on ``S`` worker slots has a
budget of ``W x S`` slot-seconds. Every slot-second is attributed to
exactly one category:

* ``worker.compute`` — time inside the fast-engine kernels proper
  (``par.worker.compute`` spans);
* ``worker.shm`` — mapping shared-memory segments plus checksum
  writes (``par.worker.map_shm`` + ``par.worker.checksum``);
* ``worker.plan`` — plan/twiddle construction on cold worker caches
  (``par.worker.plan``);
* ``worker.overhead`` — the rest of each shard's worker-side envelope
  (spec decode, telemetry capture, queue handshakes);
* ``idle`` — slot-seconds no merged shard accounts for: workers
  waiting on the queue, imbalance tails, crashed attempts whose
  telemetry died with them, and the dispatch/collect windows when the
  coordinator is running Python instead of the pool.

Dividing each bucket by ``S`` expresses it in wall-equivalent seconds,
so the ledger sums to the measured wall time (the ``attrib`` CLI prints
the residual; tests pin it under 5%). Parent-side costs that *overlap*
slot time — dispatch/serialization spans, per-shard queue wait between
the dispatch event and the worker's envelope span, retry backoff, and
in-process fallback execution — are reported alongside as shard-level
diagnostics rather than double-booked into the ledger.

**The bound.** Summing ``par.worker.compute`` across slots estimates the
serial compute the batch really contained; dividing by ``S`` gives the
ideal wall (perfect overlap, zero coordination). Measured speedup
``compute / wall`` vs the ideal bound ``S`` ranks exactly how much of
ROADMAP item 1's "missing 1.2x" each category owes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.session import ObsSession

#: Ledger categories, display order. Values are wall-equivalent seconds.
LEDGER_CATEGORIES = (
    "worker.compute",
    "worker.shm",
    "worker.plan",
    "worker.overhead",
    "idle",
)

#: Ledger-sum tolerance the CLI reports against (fraction of wall).
SUM_TOLERANCE = 0.05


@dataclass
class Attribution:
    """Decomposition of one observed parallel session."""

    wall_s: float
    slots: int
    shards: int
    batches: int
    #: Wall-equivalent seconds per category (sums to ~``wall_s``).
    ledger: Dict[str, float] = field(default_factory=dict)
    #: The same categories in raw slot-seconds (ledger x slots).
    slot_seconds: Dict[str, float] = field(default_factory=dict)
    #: Overlapping/parent-side costs, not part of the exclusive ledger.
    diagnostics: Dict[str, float] = field(default_factory=dict)
    #: Serve-layer accounting (requests, coalesce fill, queue-wait
    #: decomposition); empty when the session saw no serve traffic.
    serve: Dict[str, object] = field(default_factory=dict)
    serial_compute_s: float = 0.0

    @property
    def ideal_wall_s(self) -> float:
        """Speed-of-light wall: total compute spread perfectly over slots."""
        return self.serial_compute_s / self.slots if self.slots else 0.0

    @property
    def measured_speedup(self) -> float:
        """Serial-compute estimate over the measured batch wall."""
        return self.serial_compute_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ideal_speedup(self) -> float:
        """The bound: with zero overhead the batch would speed up by S."""
        return float(self.slots)

    @property
    def efficiency(self) -> float:
        """Measured speedup as a fraction of the ideal bound."""
        return (
            self.measured_speedup / self.ideal_speedup
            if self.slots
            else 0.0
        )

    @property
    def ledger_sum_s(self) -> float:
        return sum(self.ledger.values())

    @property
    def ledger_residual(self) -> float:
        """Signed relative gap between the ledger sum and the wall."""
        if self.wall_s <= 0:
            return 0.0
        return self.ledger_sum_s / self.wall_s - 1.0


# ---------------------------------------------------------------------------
# Input normalization (live session objects and JSONL exports alike)
# ---------------------------------------------------------------------------


def _span_tuples(spans: Iterable) -> List[Tuple[str, float, float, dict]]:
    """Normalize SpanRecord objects / JSONL dicts to (name, start, dur, attrs)."""
    out = []
    for record in spans:
        if isinstance(record, dict):
            out.append(
                (
                    str(record.get("name", "")),
                    float(record.get("start_s", 0.0)),
                    float(record.get("duration_s", 0.0)),
                    dict(record.get("attrs") or {}),
                )
            )
        else:
            out.append(
                (record.name, record.start_s, record.duration_s, record.attrs)
            )
    return out


def _metric_map(metrics) -> Dict[str, Dict[str, object]]:
    """Normalize a MetricsRegistry / snapshot dict to ``{name: snapshot}``."""
    if metrics is None:
        return {}
    if hasattr(metrics, "snapshot"):
        return metrics.snapshot()
    return dict(metrics)


def _counter(metric_map: Dict[str, dict], name: str) -> float:
    data = metric_map.get(name)
    if not data or data.get("type") not in ("counter", "gauge"):
        return 0.0
    value = data.get("value")
    return float(value) if value is not None else 0.0


def _hist_sum(metric_map: Dict[str, dict], name: str) -> float:
    data = metric_map.get(name)
    if not data or data.get("type") != "histogram":
        return 0.0
    return float(data.get("sum", 0.0) or 0.0)


def _hist_stat(metric_map: Dict[str, dict], name: str, key: str) -> float:
    data = metric_map.get(name)
    if not data or data.get("type") != "histogram":
        return 0.0
    value = data.get(key)
    return float(value) if value is not None else 0.0


def _serve_section(metric_map: Dict[str, dict]) -> Dict[str, object]:
    """Summarize serve-layer metrics (empty dict when no serve traffic).

    Complements the slot-second ledger with the front-door view: how
    many requests came in, how well coalescing filled batches, and where
    the queue-wait decomposition says request time went.
    """
    admitted = _counter(metric_map, "serve.requests.admitted")
    shed = _counter(metric_map, "serve.shed")
    if not admitted and not shed:
        return {}
    batches = _counter(metric_map, "serve.batches")
    section: Dict[str, object] = {
        "admitted": admitted,
        "completed": _counter(metric_map, "serve.requests.completed"),
        "failed": _counter(metric_map, "serve.requests.failed"),
        "shed": shed,
        "degraded": _counter(metric_map, "serve.degraded"),
        "batches": batches,
        "coalesce_fill": _hist_stat(
            metric_map, "serve.coalesce.batch_size", "mean"
        ),
        "batch_wait_p99_s": _hist_stat(
            metric_map, "serve.batch.wait_s", "p99"
        ),
        "backlog_depth": _counter(metric_map, "serve.queue.depth"),
        "latency_p99_s": _hist_stat(
            metric_map, "serve.request.latency_s", "p99"
        ),
    }
    # Queue-wait decomposition per op: one row per op that completed at
    # least one sliced request (requests resolved without dispatch, e.g.
    # deadline failures, record no slices and are absent here).
    ops: Dict[str, Dict[str, float]] = {}
    prefix = "serve.queue_wait_s."
    for name in metric_map:
        if not name.startswith(prefix):
            continue
        op = name[len(prefix):]
        ops[op] = {
            "coalesce_wait_p99_s": _hist_stat(
                metric_map, f"serve.coalesce_wait_s.{op}", "p99"
            ),
            "queue_wait_p99_s": _hist_stat(metric_map, name, "p99"),
            "compute_p99_s": _hist_stat(
                metric_map, f"serve.compute_s.{op}", "p99"
            ),
            "latency_p99_s": _hist_stat(
                metric_map, f"serve.latency_s.{op}", "p99"
            ),
        }
    if ops:
        section["ops"] = ops
    return section


def _slot_numbers(metric_map: Dict[str, dict]) -> List[int]:
    slots = set()
    for name in metric_map:
        if not name.startswith("par.slot."):
            continue
        part = name.split(".")[2]
        if part.isdigit():
            slots.add(int(part))
    return sorted(slots)


# ---------------------------------------------------------------------------
# Attribution proper
# ---------------------------------------------------------------------------


def attribute(
    spans: Iterable,
    metrics,
    events: Optional[Iterable[dict]] = None,
    wall_s: Optional[float] = None,
    slots: Optional[int] = None,
) -> Attribution:
    """Attribute one observed session's slot-time budget to categories.

    ``spans``/``metrics``/``events`` accept the live session objects
    (:class:`~repro.obs.spans.SpanRecord` list, ``MetricsRegistry``) or
    their JSONL-exported dict forms interchangeably. ``wall_s`` defaults
    to the summed duration of the session's ``par.run`` spans; ``slots``
    defaults to the worker slots that reported telemetry.
    """
    span_rows = _span_tuples(spans)
    metric_map = _metric_map(metrics)
    event_rows = [dict(e) for e in (events or [])]

    run_spans = [row for row in span_rows if row[0] == "par.run"]
    if wall_s is None:
        if not run_spans:
            raise ObservabilityError(
                "attribution needs a par.run span (or an explicit wall_s); "
                "was the batch executed under an observability session?"
            )
        wall_s = sum(row[2] for row in run_spans)
    wall_s = float(wall_s)

    slot_ids = _slot_numbers(metric_map)
    if slots is None:
        slots = len(slot_ids)
    if slots < 1:
        raise ObservabilityError(
            "attribution needs >= 1 worker slot with merged telemetry "
            "(no par.slot.* rollups found)"
        )

    # --- the exclusive slot-second ledger ------------------------------
    compute = _hist_sum(metric_map, "par.worker.compute_s")
    shm = _hist_sum(metric_map, "par.worker.map_shm_s") + _hist_sum(
        metric_map, "par.worker.checksum_s"
    )
    plan = _hist_sum(metric_map, "par.worker.plan_s")

    busy_total = 0.0
    idle = 0.0
    for slot in slot_ids:
        busy = _counter(metric_map, f"par.slot.{slot}.busy_s")
        busy_total += busy
        idle += max(0.0, wall_s - busy)
    # Slots the caller knows about but that never reported telemetry
    # (crashed before finishing a single shard) are pure idle time.
    idle += max(0, slots - len(slot_ids)) * wall_s

    overhead = max(0.0, busy_total - compute - shm - plan)
    slot_seconds = {
        "worker.compute": compute,
        "worker.shm": shm,
        "worker.plan": plan,
        "worker.overhead": overhead,
        "idle": idle,
    }
    ledger = {name: value / slots for name, value in slot_seconds.items()}

    # --- overlapping / parent-side diagnostics -------------------------
    dispatch = sum(row[2] for row in span_rows if row[0] == "par.dispatch")
    fallback = sum(row[2] for row in span_rows if row[0] == "par.fallback")
    queue_wait = _queue_wait_s(span_rows, event_rows)
    diagnostics = {
        "dispatch_s": dispatch,
        "queue_wait_s": queue_wait,
        "backoff_s": _hist_sum(metric_map, "resil.retry.backoff_s"),
        "fallback_s": fallback,
        "retries": _counter(metric_map, "par.retries"),
        "fallbacks": _counter(metric_map, "par.fallbacks"),
        "stale_blobs": _counter(metric_map, "par.telemetry.stale"),
        "merged_blobs": _counter(metric_map, "par.telemetry.blobs"),
        "arena_leases": _counter(metric_map, "par.arena.leases"),
        "arena_reuses": _counter(metric_map, "par.arena.reuses"),
        "arena_creates": _counter(metric_map, "par.arena.creates"),
        "arena_high_water_bytes": _counter(
            metric_map, "par.arena.high_water_bytes"
        ),
        "fused_chains": _counter(metric_map, "par.fused.chains"),
        "fused_steps": _counter(metric_map, "par.fused.steps"),
        "saved_dispatches": _counter(
            metric_map, "par.adaptive.saved_dispatches"
        ),
        "seg_cache_hits": _counter(metric_map, "par.worker.seg_cache.hits"),
        "seg_cache_misses": _counter(
            metric_map, "par.worker.seg_cache.misses"
        ),
    }

    shards = int(_counter(metric_map, "par.shards.dispatched"))
    if not shards:
        shards = sum(
            1 for row in span_rows if row[0] == "par.worker.shard"
        )
    return Attribution(
        wall_s=wall_s,
        slots=int(slots),
        shards=shards,
        batches=len(run_spans),
        ledger=ledger,
        slot_seconds=slot_seconds,
        diagnostics=diagnostics,
        serve=_serve_section(metric_map),
        serial_compute_s=compute,
    )


def _queue_wait_s(
    span_rows: List[Tuple[str, float, float, dict]],
    event_rows: List[dict],
) -> float:
    """Sum, over worker-executed shard attempts, of dispatch-to-start lag.

    Joins each ``par.worker.shard`` envelope span against the parent's
    ``shard.dispatched`` / ``shard.retry`` event for the same
    (batch, shard, attempt) triple; attempts with no matching event (or
    that never reached a worker) contribute nothing.
    """
    dispatched: Dict[Tuple[object, object, object], float] = {}
    for event in event_rows:
        if event.get("event") not in ("shard.dispatched", "shard.retry"):
            continue
        key = (event.get("batch"), event.get("shard"), event.get("attempt"))
        t_s = float(event.get("t_s", 0.0))
        previous = dispatched.get(key)
        dispatched[key] = t_s if previous is None else min(previous, t_s)
    total = 0.0
    for name, start_s, _, attrs in span_rows:
        if name != "par.worker.shard":
            continue
        key = (attrs.get("batch"), attrs.get("shard"), attrs.get("attempt"))
        if key in dispatched:
            total += max(0.0, start_s - dispatched[key])
    return total


def attribute_session(
    session: ObsSession,
    wall_s: Optional[float] = None,
    slots: Optional[int] = None,
) -> Attribution:
    """Attribute a live (or just-closed) observability session."""
    return attribute(
        session.spans.records,
        session.metrics,
        session.events,
        wall_s=wall_s,
        slots=slots,
    )


def attribute_jsonl(records: Iterable[dict], **kwargs) -> Attribution:
    """Attribute a session re-read from its JSONL export.

    ``records`` is the output of :func:`repro.obs.export.from_jsonl`;
    span/metric/event rows are recognized by their ``kind`` tag.
    """
    spans: List[dict] = []
    metrics: Dict[str, dict] = {}
    events: List[dict] = []
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            spans.append(record)
        elif kind == "metric":
            metrics[str(record.get("name"))] = record
        elif kind == "event":
            events.append(record)
    return attribute(spans, metrics, events, **kwargs)


# ---------------------------------------------------------------------------
# Rendering + machine-readable export
# ---------------------------------------------------------------------------


def format_attribution(report: Attribution) -> str:
    """Render the ledger, diagnostics, and the speedup-vs-bound summary."""
    lines = [
        f"-- overhead attribution (wall {report.wall_s * 1e3:.1f} ms, "
        f"{report.slots} slots, {report.shards} shards, "
        f"{report.batches} batches) --"
    ]
    header = ["category", "wall-eq ms", "slot-s ms", "share %"]
    rows = [header]
    for name in LEDGER_CATEGORIES:
        wall_eq = report.ledger.get(name, 0.0)
        share = wall_eq / report.wall_s * 100 if report.wall_s > 0 else 0.0
        rows.append(
            [
                name,
                f"{wall_eq * 1e3:.2f}",
                f"{report.slot_seconds.get(name, 0.0) * 1e3:.2f}",
                f"{share:.1f}",
            ]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    lines.append(
        f"ledger sum {report.ledger_sum_s * 1e3:.1f} ms vs wall "
        f"{report.wall_s * 1e3:.1f} ms "
        f"({report.ledger_residual * 100:+.1f}%)"
    )

    d = report.diagnostics
    lines.append("")
    lines.append("-- shard diagnostics (overlap the ledger; not additive) --")
    lines.append(f"dispatch/serialization (parent): {d.get('dispatch_s', 0.0) * 1e3:9.2f} ms")
    lines.append(f"queue wait (sum over shards):    {d.get('queue_wait_s', 0.0) * 1e3:9.2f} ms")
    lines.append(f"retry backoff:                   {d.get('backoff_s', 0.0) * 1e3:9.2f} ms")
    lines.append(f"fallback execution (in-process): {d.get('fallback_s', 0.0) * 1e3:9.2f} ms")
    lines.append(
        f"retries {int(d.get('retries', 0))}  "
        f"fallbacks {int(d.get('fallbacks', 0))}  "
        f"stale blobs {int(d.get('stale_blobs', 0))}  "
        f"merged blobs {int(d.get('merged_blobs', 0))}"
    )
    leases = int(d.get("arena_leases", 0))
    if leases:
        reuses = int(d.get("arena_reuses", 0))
        line = (
            f"arena: {leases} leases ({reuses} reused, "
            f"{int(d.get('arena_creates', 0))} created; "
            f"{reuses / leases * 100:.0f}% hit)"
        )
        high_water = int(d.get("arena_high_water_bytes", 0))
        if high_water:  # only grows during the observed window
            line += f", high water {high_water / 1024:.0f} KiB"
        lines.append(line)
    cache_hits = int(d.get("seg_cache_hits", 0))
    cache_misses = int(d.get("seg_cache_misses", 0))
    if cache_hits or cache_misses:
        total = cache_hits + cache_misses
        lines.append(
            f"worker attach cache: {cache_hits}/{total} hits "
            f"({cache_hits / total * 100:.0f}%)"
        )
    chains = int(d.get("fused_chains", 0))
    if chains:
        lines.append(
            f"fused chains: {chains} shards x "
            f"{d.get('fused_steps', 0) / chains:.1f} steps avg"
        )
    saved = int(d.get("saved_dispatches", 0))
    if saved:
        lines.append(f"adaptive sizing: {saved} dispatches saved")

    if report.serve:
        s = report.serve
        lines.append("")
        lines.append("-- serve front door (coalescer + dispatcher) --")
        lines.append(
            f"requests: {int(s.get('admitted', 0))} admitted, "
            f"{int(s.get('completed', 0))} completed, "
            f"{int(s.get('failed', 0))} failed, "
            f"{int(s.get('shed', 0))} shed, "
            f"{int(s.get('degraded', 0))} degraded"
        )
        lines.append(
            f"coalescing: {int(s.get('batches', 0))} batches, "
            f"fill {float(s.get('coalesce_fill', 0.0)):.1f} req/batch, "
            f"batch wait p99 "
            f"{float(s.get('batch_wait_p99_s', 0.0)) * 1e3:.2f} ms"
        )
        lines.append(
            f"backlog depth (last): {int(s.get('backlog_depth', 0))}  "
            f"end-to-end p99 "
            f"{float(s.get('latency_p99_s', 0.0)) * 1e3:.2f} ms"
        )
        ops = s.get("ops") or {}
        for op in sorted(ops):
            row = ops[op]
            lines.append(
                f"  {op}: coalesce p99 "
                f"{row['coalesce_wait_p99_s'] * 1e3:.2f} ms | queue p99 "
                f"{row['queue_wait_p99_s'] * 1e3:.2f} ms | compute p99 "
                f"{row['compute_p99_s'] * 1e3:.2f} ms | total p99 "
                f"{row['latency_p99_s'] * 1e3:.2f} ms"
            )

    lines.append("")
    lines.append(
        f"speedup: measured {report.measured_speedup:.2f}x vs ideal "
        f"{report.ideal_speedup:.2f}x bound "
        f"(efficiency {report.efficiency * 100:.0f}%)"
    )
    lines.append(
        f"ideal wall (total compute / slots): "
        f"{report.ideal_wall_s * 1e3:.1f} ms; overhead gap "
        f"{(report.wall_s - report.ideal_wall_s) * 1e3:.1f} ms"
    )
    return "\n".join(lines)


def attribution_to_json(report: Attribution) -> Dict[str, object]:
    """Machine-readable form (the ``attrib.json`` CI artifact)."""
    return {
        "format": "repro.obs.attrib/v1",
        "wall_s": report.wall_s,
        "slots": report.slots,
        "shards": report.shards,
        "batches": report.batches,
        "ledger_wall_eq_s": dict(report.ledger),
        "ledger_slot_seconds": dict(report.slot_seconds),
        "ledger_sum_s": report.ledger_sum_s,
        "ledger_residual": report.ledger_residual,
        "diagnostics": dict(report.diagnostics),
        "serve": dict(report.serve),
        "serial_compute_s": report.serial_compute_s,
        "ideal_wall_s": report.ideal_wall_s,
        "measured_speedup": report.measured_speedup,
        "ideal_speedup": report.ideal_speedup,
        "efficiency": report.efficiency,
    }


# ---------------------------------------------------------------------------
# The `python -m repro attrib` driver
# ---------------------------------------------------------------------------


def run_attrib(
    workers: int = 2,
    logn: int = 10,
    batch: int = 8,
    limbs: int = 4,
    rounds: int = 2,
    seed: int = 0,
    json_path: Optional[str] = "attrib.json",
    output_dir: str = ".",
    input_path: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> int:
    """Run (or load) a parallel batch and print its attribution.

    With ``input_path`` the session is re-read from a JSONL export
    (``python -m repro timeline --export jsonl``); otherwise the same
    RNS-mul + batched-NTT workload the timeline harness uses is executed
    on a fresh pool under observation. Returns a process exit code.
    """
    import time

    if input_path is not None:
        from repro.obs.export import from_jsonl

        try:
            records = from_jsonl(Path(input_path).read_text())
            report = attribute_jsonl(records)
        except (OSError, ObservabilityError) as exc:
            emit(f"attrib: {exc}")
            return 2
        emit(f"attribution of {input_path}:")
    else:
        import random

        from repro.kernels import get_backend
        from repro.obs.session import observing
        from repro.obs.timeline import _workload
        from repro.par.api import ParNtt
        from repro.par.executor import ParallelExecutor
        from repro.rns.basis import RnsBasis
        from repro.rns.poly import RnsPolynomialRing

        n = 1 << logn
        rng = random.Random(seed)
        basis = RnsBasis.generate(limbs, 62, 2 * n)
        q = basis.primes[0]
        emit(
            f"attrib: n=2^{logn}, batch={batch}, {limbs} limbs, "
            f"{workers} workers, rounds={rounds}, seed={seed}"
        )
        with ParallelExecutor(workers=workers) as pool:
            ring = RnsPolynomialRing(
                n, basis, get_backend("mqx"), engine="parallel"
            )
            plan = ParNtt(n, q, executor=pool)
            # Warm the pool (fork, plan/twiddle caches) outside timing.
            _workload(ring, plan, rng, n, q, batch, rounds=1)
            with observing() as session:
                started = time.perf_counter()
                _workload(ring, plan, rng, n, q, batch, rounds)
                wall_s = time.perf_counter() - started
            try:
                report = attribute_session(session, wall_s=wall_s)
            except ObservabilityError as exc:
                emit(f"attrib: {exc}")
                return 2

    emit("")
    emit(format_attribution(report))
    if abs(report.ledger_residual) > SUM_TOLERANCE:
        emit(
            f"note: ledger residual {report.ledger_residual * 100:+.1f}% "
            f"exceeds the +/-{SUM_TOLERANCE * 100:.0f}% accounting target"
        )
    if json_path is not None:
        path = Path(output_dir) / json_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(attribution_to_json(report), indent=2) + "\n")
        emit(f"wrote {path}")
    return 0
