"""Cross-process observability for the parallel engine.

The ``engine="parallel"`` pool (:mod:`repro.par`) executes its real work
in worker processes, which a single-process :class:`~repro.obs.session.ObsSession`
cannot see. This module closes that gap with three pieces:

* **Trace-context propagation** — when a session is active, the executor
  stamps every task spec with a tiny picklable header
  (:func:`make_context`: batch correlation id, shard index, attempt,
  generation) under :data:`CTX_KEY`. When no session is active the
  header is omitted entirely, so telemetry stays strictly zero-cost on
  the pickling path — the obs layer's no-op-when-disabled invariant,
  extended across process boundaries.
* **Worker-side capture** — a worker that receives a spec with a header
  runs it inside :class:`ShardObservation`: a lightweight worker-local
  :class:`~repro.obs.session.ObsSession` scoped to the one shard, so the
  permanent ``par.worker.*`` span points inside
  :func:`repro.par.worker.execute_spec` (``map_shm`` / ``plan`` /
  ``compute`` / ``checksum``) record locally. The result is a compact
  telemetry *blob* shipped back on the result queue next to the
  completion message.
* **Parent-side merge** — :func:`merge_blob` folds a blob into the
  coordinator's session: spans are re-anchored onto the parent timeline
  (workers stamp :func:`time.monotonic`, the same timebase across
  processes on the platforms we target) and tagged with the worker's
  slot/pid so :func:`repro.obs.export.to_chrome_trace` renders one
  Perfetto timeline with a lane per worker; metrics roll up under
  ``par.worker.*`` with per-slot gauges/counters (shards served, busy
  seconds, plan-cache warmth) under ``par.slot.<k>.*``. The executor
  discards stale-generation blobs exactly as it discards stale results
  (metered as ``par.telemetry.stale``).

See docs/OBSERVABILITY.md ("Cross-process tracing") and
:mod:`repro.obs.timeline` for the ``python -m repro timeline`` harness
built on top.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Dict, Iterable, List, Optional, Set

from repro.obs import session as session_mod
from repro.obs.export import LANE_NAME_KEY, LANE_PID_KEY
from repro.obs.session import ObsSession
from repro.obs.spans import SpanRecord

#: Task-spec key carrying the trace-context header. Present if and only
#: if an observability session was active when the batch was dispatched.
CTX_KEY = "ctx"

#: Telemetry blob schema version (bumped on incompatible layout change).
BLOB_VERSION = 1

_BATCH_IDS = itertools.count()


def next_batch_id() -> str:
    """A process-unique correlation id for one executor batch."""
    return f"batch-{os.getpid()}-{next(_BATCH_IDS)}"


def make_context(
    batch: str, shard: int, attempt: int = 1, gen: int = 0
) -> Dict[str, object]:
    """The context header embedded in a task spec (tiny, picklable)."""
    return {
        "batch": batch,
        "shard": int(shard),
        "attempt": int(attempt),
        "gen": int(gen),
    }


def refresh_context(spec: dict, attempt: int, gen: int) -> None:
    """Re-stamp a spec's header before a re-dispatch (no-op without one).

    A fresh dict is installed rather than mutating in place, so copies of
    the superseded spec (already pickled to a straggling worker) keep
    their original attempt number.
    """
    ctx = spec.get(CTX_KEY)
    if ctx is not None:
        spec[CTX_KEY] = dict(ctx, attempt=int(attempt), gen=int(gen))


class ShardObservation:
    """Worker-local telemetry capture scoped to one shard execution.

    Entering installs a fresh :class:`ObsSession` (restoring whatever
    was active on exit — normally nothing inside a worker), opens a
    ``par.worker.shard`` envelope span, and notes a monotonic anchor.
    Exiting — **also on exception**, so a shard that raises still ships
    the phases it completed — freezes everything into :attr:`blob`, the
    compact picklable dict the worker appends to its result message.
    """

    def __init__(self, ctx: Dict[str, object]) -> None:
        self.ctx = dict(ctx)
        self.blob: Optional[Dict[str, object]] = None
        self._previous: Optional[ObsSession] = None
        self._session: Optional[ObsSession] = None

    def __enter__(self) -> "ShardObservation":
        self._session = ObsSession()
        self._previous = session_mod._swap(self._session)
        self._mono0 = time.monotonic()
        self._started = time.perf_counter()
        self._root = self._session.spans.open("par.worker.shard", {})
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        local = self._session
        local.spans.close(self._root)
        wall_s = time.perf_counter() - self._started
        session_mod._swap(self._previous)
        counters: Dict[str, float] = {}
        for name in local.metrics.names():
            metric = local.metrics.get(name)
            if getattr(metric, "kind", None) == "counter":
                counters[name] = metric.value
        self.blob = {
            "v": BLOB_VERSION,
            "ctx": self.ctx,
            "pid": os.getpid(),
            "mono0": self._mono0,
            "wall_s": wall_s,
            "ok": exc_type is None,
            "spans": [
                (r.name, r.start_s, r.duration_s, dict(r.attrs))
                for r in local.spans.records
            ],
            "counters": counters,
        }
        return False  # never suppress the shard's exception


def merge_blob(session: ObsSession, blob: Dict[str, object], slot: int) -> None:
    """Fold one worker telemetry blob into the parent session.

    Spans are re-anchored from the worker's monotonic clock onto the
    parent sink's epoch (clamped at zero against cross-clock skew) and
    tagged with the shard's correlation ids plus the worker's slot/pid
    lane attributes; durations additionally feed ``par.worker.<phase>_s``
    histograms, and per-slot rollups (``par.slot.<k>.shards`` /
    ``.busy_s`` / ``.shard_wall_s`` / ``.cache.plans`` / ``.pid``) keep
    the straggler/imbalance summary cheap to derive.
    """
    ctx = dict(blob.get("ctx") or {})
    pid = blob.get("pid")
    sink = session.spans
    # perf_counter and monotonic share a timebase on Linux; the paired
    # read makes the mapping exact there and merely approximate on
    # platforms where they drift.
    offset = time.perf_counter() - time.monotonic()
    anchor = (float(blob.get("mono0", 0.0)) + offset) - sink.epoch_s
    lane = f"worker {slot} (pid {pid})"
    metrics = session.metrics
    for name, start_s, duration_s, attrs in blob.get("spans", ()):
        merged = dict(attrs)
        merged.update(ctx)
        merged["slot"] = slot
        merged[LANE_PID_KEY] = pid
        merged[LANE_NAME_KEY] = lane
        index = len(sink.records)
        sink.records.append(
            SpanRecord(
                name=name,
                start_s=max(0.0, anchor + float(start_s)),
                duration_s=float(duration_s),
                depth=0,
                parent=None,
                index=index,
                attrs=merged,
            )
        )
        metrics.histogram(f"{name}_s").observe(float(duration_s))
    wall_s = float(blob.get("wall_s", 0.0))
    metrics.counter("par.telemetry.blobs").inc()
    metrics.counter(f"par.slot.{slot}.shards").inc()
    metrics.counter(f"par.slot.{slot}.busy_s").inc(wall_s)
    metrics.histogram(f"par.slot.{slot}.shard_wall_s").observe(wall_s)
    for name, value in (blob.get("counters") or {}).items():
        metrics.counter(f"par.worker.{name}").inc(value)
    cache = blob.get("cache")
    if cache:
        metrics.gauge(f"par.slot.{slot}.cache.plans").set(sum(cache.values()))
    if pid is not None:
        metrics.gauge(f"par.slot.{slot}.pid").set(pid)


def worker_lane_pids(spans: Iterable[SpanRecord]) -> Set[int]:
    """Distinct worker pids among merged spans (session-side lane count)."""
    return {
        int(record.attrs[LANE_PID_KEY])
        for record in spans
        if record.attrs.get(LANE_PID_KEY) is not None
    }


def slot_numbers(metrics) -> List[int]:
    """Worker slots that reported telemetry, from ``par.slot.*`` names."""
    slots = set()
    for name in metrics.names("par.slot."):
        part = name.split(".")[2]
        if part.isdigit():
            slots.add(int(part))
    return sorted(slots)
