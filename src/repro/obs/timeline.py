"""The ``python -m repro timeline`` harness: one merged batch timeline.

Runs a real parallel workload — fused RNS ring multiplications plus
batched NTTs, the ROADMAP north-star shapes — under an observability
session with cross-process telemetry (:mod:`repro.obs.dist`) enabled,
then renders what a single-process profile cannot show:

* a **merged Chrome trace** with the parent's dispatch/collect/retry
  lane plus one lane per worker process, every worker span carrying the
  batch/shard/attempt correlation ids of the shard that produced it;
* a **per-worker utilization table** (shards served, busy seconds and
  busy fraction of the run, p50/p95 shard wall, retries attributed to
  the slot) — the straggler/imbalance summary;
* optional **retry attribution**: with ``--crash N``, the first ``N``
  dispatched shards kill their worker, and the report lists which lane
  each shard's second attempt actually ran on;
* an optional **overhead gate** (``--overhead-gate 0.10``): the same
  workload is timed with observability disabled and enabled, and the
  run fails if telemetry costs more than the given fraction — the CI
  guard that keeps the cross-process instrumentation honest.

Exit code 0 means the trace validated, the lane floor (``--min-lanes``)
was met, and the overhead gate (if requested) passed.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.obs import dist
from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    worker_lanes,
)
from repro.obs.session import ObsSession, observing

#: Attempts the overhead gate gets before failing (one clean attempt
#: passes — mirrors tests/test_obs_overhead.py, which tolerates noisy
#: shared CI machines the same way).
GATE_ATTEMPTS = 3


def format_worker_table(session: ObsSession, wall_s: float) -> str:
    """Render the per-worker utilization summary from ``par.slot.*``."""
    metrics = session.metrics
    header = [
        "slot", "pid", "shards", "busy s", "busy %",
        "p50 ms", "p95 ms", "retries",
    ]
    rows = [header]
    for slot in dist.slot_numbers(metrics):
        def value(suffix: str, default: float = 0.0) -> float:
            metric = metrics.get(f"par.slot.{slot}.{suffix}")
            return metric.value if metric is not None else default

        walls = metrics.get(f"par.slot.{slot}.shard_wall_s")
        busy = value("busy_s")
        pid = value("pid")
        rows.append(
            [
                str(slot),
                str(int(pid)) if pid else "-",
                f"{int(value('shards'))}",
                f"{busy:.3f}",
                f"{busy / wall_s * 100:.1f}" if wall_s > 0 else "-",
                f"{walls.percentile(50) * 1e3:.2f}" if walls and walls.count else "-",
                f"{walls.percentile(95) * 1e3:.2f}" if walls and walls.count else "-",
                f"{int(value('retries'))}",
            ]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = ["-- per-worker utilization --"]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def retry_attribution(session: ObsSession) -> List[str]:
    """Human-readable lines tracing retried shards to their worker lanes.

    For every worker-side shard envelope span beyond attempt 1, report
    which slot/pid served it — the acceptance check that a crashed
    shard's re-execution really moved to a different lane.
    """
    lines = []
    for record in session.spans.records:
        attempt = record.attrs.get("attempt")
        if record.name != "par.worker.shard" or not attempt or attempt < 2:
            continue
        lines.append(
            f"shard {record.attrs.get('shard')} of {record.attrs.get('batch')}"
            f" attempt {attempt} ran on slot {record.attrs.get('slot')}"
            f" (pid {record.attrs.get('obs.pid')})"
        )
    return lines


def _workload(ring, plan, rng, n: int, q: int, batch: int, rounds: int) -> None:
    modulus = ring.basis.modulus
    for _ in range(rounds):
        f = ring.encode([rng.randrange(modulus) for _ in range(n)])
        g = ring.encode([rng.randrange(modulus) for _ in range(n)])
        ring.mul(f, g)
        data = [[rng.randrange(q) for _ in range(n)] for _ in range(batch)]
        plan.forward(data)


def run_timeline(
    workers: int = 2,
    logn: int = 10,
    batch: int = 8,
    limbs: int = 4,
    rounds: int = 3,
    seed: int = 0,
    crash: int = 0,
    export_formats: Sequence[str] = ("chrome",),
    output_dir: str = ".",
    min_lanes: int = 0,
    overhead_gate: Optional[float] = None,
    emit: Callable[[str], None] = print,
) -> int:
    """Run the timeline harness; returns a process exit code (0 = pass)."""
    from repro.kernels import get_backend
    from repro.par.api import ParNtt
    from repro.par.executor import ParallelExecutor
    from repro.resil.inject import Fault, FaultPlan
    from repro.rns.basis import RnsBasis
    from repro.rns.poly import RnsPolynomialRing

    n = 1 << logn
    rng = random.Random(seed)
    basis = RnsBasis.generate(limbs, 62, 2 * n)
    q = basis.primes[0]
    failures: List[str] = []

    emit(
        f"timeline: n=2^{logn}, batch={batch}, {limbs} limbs, "
        f"{workers} workers, rounds={rounds}, seed={seed}"
        + (f", crash={crash}" if crash else "")
    )

    with ParallelExecutor(workers=workers) as pool:
        ring = RnsPolynomialRing(n, basis, get_backend("mqx"), engine="parallel")
        plan = ParNtt(n, q, executor=pool)

        # Warm the pool (fork, plan/twiddle caches) outside all timing.
        _workload(ring, plan, rng, n, q, batch, rounds=1)

        if overhead_gate is not None:
            passed = False
            for attempt in range(1, GATE_ATTEMPTS + 1):
                started = time.perf_counter()
                _workload(ring, plan, rng, n, q, batch, rounds)
                plain_s = time.perf_counter() - started
                with observing():
                    started = time.perf_counter()
                    _workload(ring, plan, rng, n, q, batch, rounds)
                    observed_s = time.perf_counter() - started
                ratio = observed_s / plain_s if plain_s > 0 else float("inf")
                emit(
                    f"overhead attempt {attempt}: plain {plain_s * 1e3:.1f} ms, "
                    f"observed {observed_s * 1e3:.1f} ms "
                    f"({(ratio - 1) * 100:+.1f}%)"
                )
                if ratio <= 1.0 + overhead_gate:
                    passed = True
                    break
            if not passed:
                failures.append(
                    f"telemetry overhead exceeded {overhead_gate * 100:.0f}% "
                    f"in {GATE_ATTEMPTS} attempts"
                )

        with observing() as session:
            if crash:
                pool.inject(
                    FaultPlan({i: Fault("crash") for i in range(crash)})
                )
            started = time.perf_counter()
            _workload(ring, plan, rng, n, q, batch, rounds)
            wall_s = time.perf_counter() - started
            pool.inject(None)

            emit("")
            emit(format_worker_table(session, wall_s))
            retried = retry_attribution(session)
            if retried:
                emit("")
                emit("-- retry attribution --")
                for line in retried:
                    emit(f"  {line}")

            blobs = session.metrics.get("par.telemetry.blobs")
            emit("")
            emit(
                f"merged {int(blobs.value) if blobs else 0} worker blobs, "
                f"{len(session.spans.records)} spans, "
                f"{len(session.events)} events in {wall_s * 1e3:.1f} ms"
            )

            trace = to_chrome_trace(session.spans.records, "repro:timeline")
            validate_chrome_trace(trace)
            lanes = worker_lanes(trace)
            emit(f"worker lanes: {len(lanes)} ({', '.join(map(str, lanes))})")
            if len(lanes) < min_lanes:
                failures.append(
                    f"expected >= {min_lanes} worker lanes, got {len(lanes)}"
                )

            out = Path(output_dir)
            if export_formats:
                out.mkdir(parents=True, exist_ok=True)
            if "chrome" in export_formats:
                path = out / "trace_timeline.json"
                path.write_text(json.dumps(trace, indent=1))
                emit(f"wrote {path}")
            if "jsonl" in export_formats:
                path = out / "obs_timeline.jsonl"
                path.write_text(
                    to_jsonl(
                        session.spans.records,
                        session.metrics.snapshot(),
                        session.events,
                    )
                )
                emit(f"wrote {path}")

    for failure in failures:
        emit(f"FAIL: {failure}")
    return 0 if not failures else 1
