"""Profile one experiment end-to-end under the observability layer.

This is the engine behind ``python -m repro profile``: run one of the
paper's experiments with spans + metrics enabled, then render

* a per-phase wall-clock table (trace capture / scheduling / cache
  modelling / the experiment itself),
* the per-mnemonic dynamic instruction profile and simulated memory
  traffic from the ISA layer,
* port-utilization and critical-path statistics from the scheduler,
* cache-model hit rates per level,

and feed a flat ``{key: value}`` dict into the snapshot harness so
successive profile runs diff against each other (``BENCH_pipeline.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ObservabilityError
from repro.obs.export import (
    format_span_table,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.hooks import cache_hit_rates
from repro.obs.session import observing
from repro.obs.spans import SpanRecord, span
from repro.obs.snapshot import (
    DEFAULT_SNAPSHOT_NAME,
    DEFAULT_THRESHOLD,
    SnapshotDiff,
    SnapshotStore,
)

#: How many mnemonics the instruction-profile section shows.
_TOP_OPS = 16


@dataclass
class ProfileReport:
    """Everything one profiled experiment run produced."""

    key: str
    title: str
    result: object  # ExperimentResult
    wall_s: float
    spans: List[SpanRecord] = field(repr=False, default_factory=list)
    span_aggregate: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    cache_rates: Dict[str, float] = field(default_factory=dict)


def available_experiments() -> List[str]:
    """Keys accepted by :func:`profile_experiment`, in paper order."""
    from repro.experiments.runner import ALL_EXPERIMENTS

    return [key for key, _, _ in ALL_EXPERIMENTS]


def profile_experiment(key: str) -> ProfileReport:
    """Run experiment ``key`` with observability enabled and collect it."""
    from repro.experiments.runner import experiment_registry

    registry = experiment_registry()
    if key not in registry:
        raise ObservabilityError(
            f"unknown experiment {key!r}; choose from: "
            + ", ".join(sorted(registry))
        )
    title, fn = registry[key]
    with observing() as session:
        with span(f"experiment:{key}", title=title) as root:
            result = fn()
        wall_s = session.spans.records[root.index].duration_s
        return ProfileReport(
            key=key,
            title=title,
            result=result,
            wall_s=wall_s,
            spans=list(session.spans.records),
            span_aggregate=session.spans.aggregate(),
            metrics=session.metrics.snapshot(),
            cache_rates=cache_hit_rates(session.metrics),
        )


def _metric_value(report: ProfileReport, name: str, default: float = 0.0):
    data = report.metrics.get(name)
    if data is None:
        return default
    return data.get("value", default)


def format_summary(report: ProfileReport) -> str:
    """The human-readable profile: phases, ops, ports, cache."""
    lines = [f"== profile: {report.key} ({report.title}) =="]
    lines.append(f"wall-clock: {report.wall_s:.3f}s")
    lines.append("")
    lines.append(format_span_table(report.span_aggregate))

    op_counts = {
        name[len("isa.ops.") :]: data["value"]
        for name, data in report.metrics.items()
        if name.startswith("isa.ops.") and data.get("value")
    }
    if op_counts:
        total = _metric_value(report, "isa.instructions")
        lines.append("")
        lines.append(
            f"-- dynamic instruction profile "
            f"({int(total)} simulated instructions) --"
        )
        ranked = sorted(op_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        width = max(len(op) for op, _ in ranked[:_TOP_OPS])
        for op, count in ranked[:_TOP_OPS]:
            share = count / total * 100 if total else 0.0
            lines.append(f"{op.rjust(width)}  {int(count):>10}  {share:5.1f}%")
        if len(ranked) > _TOP_OPS:
            rest = sum(count for _, count in ranked[_TOP_OPS:])
            lines.append(
                f"{'(other)'.rjust(width)}  {int(rest):>10}  "
                f"{rest / total * 100 if total else 0.0:5.1f}%"
            )
        lines.append(
            f"memory traffic: "
            f"{int(_metric_value(report, 'isa.load_bytes'))} B loaded, "
            f"{int(_metric_value(report, 'isa.store_bytes'))} B stored "
            f"({int(_metric_value(report, 'isa.loads'))} loads / "
            f"{int(_metric_value(report, 'isa.stores'))} stores)"
        )

    ports = {
        name[len("sched.util.") :]: data
        for name, data in report.metrics.items()
        if name.startswith("sched.util.") and data.get("count")
    }
    if ports:
        blocks = int(_metric_value(report, "sched.blocks"))
        lines.append("")
        lines.append(f"-- port utilization ({blocks} scheduled blocks) --")
        for port in sorted(ports):
            data = ports[port]
            lines.append(
                f"{port.rjust(6)}  mean {data['mean'] * 100:5.1f}%  "
                f"p99 {data['p99'] * 100:5.1f}% of bottleneck port"
            )
        crit = report.metrics.get("sched.critical_path_cycles")
        if crit and crit.get("count"):
            lines.append(
                f"critical path: mean {crit['mean']:.1f} cycles, "
                f"p99 {crit['p99']:.1f} cycles per block"
            )

    if report.cache_rates:
        lines.append("")
        lines.append("-- cache model (share of queries served per level) --")
        for level, rate in report.cache_rates.items():
            lines.append(f"{level.rjust(6)}  {rate * 100:5.1f}%")
        lines.append(
            f"modeled traffic: "
            f"{int(_metric_value(report, 'cache.bytes_modeled'))} B"
        )

    return "\n".join(lines)


def snapshot_values(report: ProfileReport) -> Dict[str, float]:
    """Flat lower-is-better values this profile contributes to snapshots."""
    values = {
        f"profile.{report.key}.wall_s": report.wall_s,
    }
    for phase in ("trace-capture", "schedule", "cache-model"):
        stats = report.span_aggregate.get(phase)
        if stats:
            values[f"profile.{report.key}.{phase}_s"] = stats["total_s"]
    # Headline simulated numbers: the "ours" column of the result table is
    # a ratio (higher = better), so invert it into lower-is-better form.
    if report.key == "headline":
        result = report.result
        for row in result.rows:
            metric, ours = row[0], float(row[1])
            if ours > 0:
                values[f"headline.inv.{metric}"] = 1.0 / ours
    instructions = _metric_value(report, "isa.instructions")
    if instructions:
        values[f"profile.{report.key}.sim_instructions"] = instructions
    return values


def export_profile(
    report: ProfileReport, output_dir, formats: List[str]
) -> List[Path]:
    """Write the requested export files; returns the paths written."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []
    if "chrome" in formats:
        trace = to_chrome_trace(report.spans, process_name=f"repro:{report.key}")
        validate_chrome_trace(trace)
        path = out / f"trace_{report.key}.json"
        path.write_text(json.dumps(trace, indent=1))
        written.append(path)
    if "jsonl" in formats:
        path = out / f"obs_{report.key}.jsonl"
        path.write_text(to_jsonl(report.spans, report.metrics))
        written.append(path)
    return written


def record_snapshot(
    report: ProfileReport,
    snapshot_path=None,
    threshold: float = DEFAULT_THRESHOLD,
) -> Optional[SnapshotDiff]:
    """Record this profile into the snapshot history; returns the diff."""
    path = Path(snapshot_path or DEFAULT_SNAPSHOT_NAME)
    store = SnapshotStore(path)
    return store.record(
        snapshot_values(report), label=f"profile:{report.key}", threshold=threshold
    )
