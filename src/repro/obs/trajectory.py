"""Benchmark trajectory: unified snapshot history + noise-aware gating.

The repository accumulates three perf-snapshot silos — ``BENCH_fast.json``
(fast-engine speedups), ``BENCH_par.json`` (pool-engine speedups) and
``BENCH_pipeline.json`` (profile/benchmark wall clocks) — each written by
:class:`~repro.obs.snapshot.SnapshotStore`. This module joins them into
one trajectory and replaces the store's naive single-predecessor 10%%
diff with statistics that can tell noise from regression, the
``python -m repro perfgate`` subcommand:

* the **baseline** for each key is the *median* of its last ``window``
  historical values, not whichever run happened to come last;
* the **threshold** is scaled by the history's own noise — the median
  absolute deviation (MAD, scaled by 1.4826 to estimate sigma for
  normal noise) times ``mad_k`` — with a relative floor so a perfectly
  quiet history still tolerates scheduler jitter;
* a key with fewer than ``min_runs`` historical values **refuses to
  gate** (reported, never failed): one prior run is an anecdote, not a
  baseline;
* only keys whose unit suffix marks them lower-is-better wall/cycle
  costs (``_s``, ``_ns``, ``_us``, ``_ms``, ``_cycles``) are gated by
  default — speedup ratios recorded next to them are higher-is-better
  and would invert the verdict (``--all-keys`` overrides).

Every snapshot recorded since the trajectory layer landed carries a
``_meta`` block (git SHA, ISO-8601 UTC timestamp, hostname, label; see
:func:`repro.obs.snapshot.snapshot_meta`), so the unified history view
answers "what commit, what machine, when" for every point.
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.snapshot import META_KEY, SnapshotStore

#: The repository's snapshot silos, in trajectory display order.
DEFAULT_BENCH_FILES = ("BENCH_fast.json", "BENCH_par.json", "BENCH_pipeline.json")

#: Historical runs (per key) the gate baselines against.
DEFAULT_WINDOW = 8

#: MAD multiplier: new > median + mad_k * 1.4826 * MAD flags a regression.
DEFAULT_MAD_K = 4.0

#: Relative floor on the tolerance, so a noiseless history (MAD 0) still
#: admits ordinary run-to-run jitter.
DEFAULT_REL_FLOOR = 0.10

#: Historical runs required before a key is gated at all.
DEFAULT_MIN_RUNS = 2

#: Absolute tolerance floor (seconds-scale values near zero).
ABS_FLOOR = 1e-9

#: Consistent MAD -> sigma factor for normally distributed noise.
MAD_SIGMA = 1.4826

#: Lower-is-better unit suffixes eligible for gating by default.
GATEABLE_SUFFIXES = ("_s", "_ns", "_us", "_ms", "_cycles")


def gateable_key(key: str) -> bool:
    """Whether a snapshot key is a lower-is-better cost by unit suffix."""
    return key.endswith(GATEABLE_SUFFIXES)


# ---------------------------------------------------------------------------
# Unified history view
# ---------------------------------------------------------------------------


@dataclass
class HistoryRow:
    """One snapshot, as a row of the unified trajectory view."""

    path: str
    index: int
    label: str
    unix_time: float
    timestamp: str
    git_sha: str
    hostname: str
    keys: int


def _meta_field(snapshot: Dict[str, object], name: str) -> str:
    meta = snapshot.get(META_KEY)
    if isinstance(meta, dict) and meta.get(name):
        return str(meta[name])
    return "-"


def unified_history(paths: Sequence) -> List[HistoryRow]:
    """All snapshots across ``paths`` as one time-ordered trajectory."""
    rows: List[HistoryRow] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        for index, snapshot in enumerate(SnapshotStore(path).load()):
            unix_time = float(snapshot.get("unix_time", 0.0))
            rows.append(
                HistoryRow(
                    path=path.name,
                    index=index,
                    label=str(snapshot.get("label", "")),
                    unix_time=unix_time,
                    timestamp=_meta_field(snapshot, "timestamp_utc"),
                    git_sha=_meta_field(snapshot, "git_sha"),
                    hostname=_meta_field(snapshot, "hostname"),
                    keys=len(snapshot.get("values", {})),
                )
            )
    rows.sort(key=lambda row: row.unix_time)
    return rows


def format_history(rows: Sequence[HistoryRow]) -> str:
    """Render the unified trajectory as a text table."""
    header = ["when (UTC)", "git", "host", "file", "label", "keys"]
    table = [header]
    for row in rows:
        when = row.timestamp
        if when == "-" and row.unix_time:
            when = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(row.unix_time)
            )
        table.append(
            [when, row.git_sha, row.hostname, row.path, row.label, str(row.keys)]
        )
    widths = [max(len(r[col]) for r in table) for col in range(len(header))]
    lines = ["-- benchmark trajectory --"]
    for i, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    if len(rows) == 0:
        lines.append("(no snapshots found)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Noise-aware gate
# ---------------------------------------------------------------------------


@dataclass
class KeyVerdict:
    """Gate outcome for one snapshot key."""

    key: str
    source: str
    status: str  # "ok" | "regression" | "improvement" | "short-history"
    value: float
    runs: int
    median: Optional[float] = None
    mad: Optional[float] = None
    limit: Optional[float] = None

    @property
    def relative(self) -> Optional[float]:
        if self.median is None or self.median <= 0:
            return None
        return self.value / self.median - 1.0


@dataclass
class GateReport:
    """Outcome of gating the latest snapshots against their histories."""

    window: int
    mad_k: float
    rel_floor: float
    min_runs: int
    verdicts: List[KeyVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[KeyVerdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def improvements(self) -> List[KeyVerdict]:
        return [v for v in self.verdicts if v.status == "improvement"]

    @property
    def ungated(self) -> List[KeyVerdict]:
        return [v for v in self.verdicts if v.status == "short-history"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> Dict[str, object]:
        return {
            "format": "repro.obs.trajectory/v1",
            "window": self.window,
            "mad_k": self.mad_k,
            "rel_floor": self.rel_floor,
            "min_runs": self.min_runs,
            "ok": self.ok,
            "verdicts": [
                {
                    "key": v.key,
                    "source": v.source,
                    "status": v.status,
                    "value": v.value,
                    "runs": v.runs,
                    "median": v.median,
                    "mad": v.mad,
                    "limit": v.limit,
                }
                for v in self.verdicts
            ],
        }

    def format(self) -> str:
        lines = [
            f"-- perfgate (window {self.window}, MAD x{self.mad_k:g}, "
            f"relative floor {self.rel_floor * 100:.0f}%, "
            f"min runs {self.min_runs}) --"
        ]
        for verdict in self.regressions:
            rel = verdict.relative
            lines.append(
                f"REGRESSION  {verdict.key}: {verdict.value:.6g} vs median "
                f"{verdict.median:.6g} over {verdict.runs} runs "
                f"(limit {verdict.limit:.6g}"
                + (f", {rel * 100:+.1f}%" if rel is not None else "")
                + f") [{verdict.source}]"
            )
        for verdict in self.improvements:
            rel = verdict.relative
            lines.append(
                f"improved    {verdict.key}: {verdict.value:.6g} vs median "
                f"{verdict.median:.6g}"
                + (f" ({rel * 100:+.1f}%)" if rel is not None else "")
                + f" [{verdict.source}]"
            )
        gated = [
            v for v in self.verdicts if v.status in ("ok", "regression",
                                                     "improvement")
        ]
        lines.append(
            f"{len(gated)} keys gated, {len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements, "
            f"{len(self.ungated)} below min-run-count (not gated)"
        )
        return "\n".join(lines)


def noise_limit(
    history: Sequence[float],
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> tuple:
    """``(median, mad, upper limit)`` for one key's history."""
    values = [float(v) for v in history]
    med = statistics.median(values)
    mad = statistics.median(abs(v - med) for v in values)
    tolerance = max(mad_k * MAD_SIGMA * mad, rel_floor * abs(med), ABS_FLOOR)
    return med, mad, med + tolerance


def gate_store(
    path,
    window: int = DEFAULT_WINDOW,
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_runs: int = DEFAULT_MIN_RUNS,
    all_keys: bool = False,
) -> List[KeyVerdict]:
    """Gate one snapshot file's latest snapshot against its history."""
    if window < 1:
        raise ObservabilityError("perfgate window must be >= 1")
    if min_runs < 1:
        raise ObservabilityError("perfgate min_runs must be >= 1")
    path = Path(path)
    snapshots = SnapshotStore(path).load()
    if len(snapshots) < 2:
        return []
    latest = snapshots[-1]["values"]
    history = snapshots[max(0, len(snapshots) - 1 - window) : -1]
    verdicts: List[KeyVerdict] = []
    for key in sorted(latest):
        if key.startswith(META_KEY):
            continue
        if not all_keys and not gateable_key(key):
            continue
        value = float(latest[key])
        past = [
            float(s["values"][key]) for s in history if key in s["values"]
        ]
        if len(past) < min_runs:
            verdicts.append(
                KeyVerdict(
                    key=key,
                    source=path.name,
                    status="short-history",
                    value=value,
                    runs=len(past),
                )
            )
            continue
        med, mad, limit = noise_limit(past, mad_k, rel_floor)
        lower = med - (limit - med)
        if value > limit:
            status = "regression"
        elif value < lower:
            status = "improvement"
        else:
            status = "ok"
        verdicts.append(
            KeyVerdict(
                key=key,
                source=path.name,
                status=status,
                value=value,
                runs=len(past),
                median=med,
                mad=mad,
                limit=limit,
            )
        )
    return verdicts


def gate(
    paths: Sequence,
    window: int = DEFAULT_WINDOW,
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_runs: int = DEFAULT_MIN_RUNS,
    all_keys: bool = False,
) -> GateReport:
    """Gate every snapshot file; missing files are skipped silently."""
    report = GateReport(
        window=window, mad_k=mad_k, rel_floor=rel_floor, min_runs=min_runs
    )
    for path in paths:
        if not Path(path).exists():
            continue
        report.verdicts.extend(
            gate_store(
                path,
                window=window,
                mad_k=mad_k,
                rel_floor=rel_floor,
                min_runs=min_runs,
                all_keys=all_keys,
            )
        )
    return report


# ---------------------------------------------------------------------------
# Self-test (the CI "record -> rerun -> gate" smoke in one command)
# ---------------------------------------------------------------------------


def _measure_ntt_s(rounds: int = 5) -> float:
    """Best-of-``rounds`` wall for a small real fast-engine NTT."""
    import random

    from repro.arith.primes import find_ntt_prime
    from repro.fast.ntt import FastNtt

    n = 256
    q = find_ntt_prime(62, 2 * n)
    plan = FastNtt(n, q)
    rng = random.Random(7)
    data = [[rng.randrange(q) for _ in range(n)] for _ in range(4)]
    plan.forward(data)  # warm twiddles outside timing
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        plan.forward(data)
        best = min(best, time.perf_counter() - started)
    return best


def run_selftest(emit: Callable[[str], None] = print) -> int:
    """Record real measurements, rerun, gate; then inject a 2x regression.

    The end-to-end smoke CI runs: three genuine best-of-five timings of
    a small fast-engine NTT land in a scratch store (so history carries
    real machine noise), a rerun must gate clean, and doubling the last
    measurement must trip the gate. Returns a process exit code.
    """
    with tempfile.TemporaryDirectory(prefix="repro-perfgate-") as tmp:
        path = Path(tmp) / "BENCH_selftest.json"
        store = SnapshotStore(path)
        baseline = []
        for i in range(3):
            wall = _measure_ntt_s()
            baseline.append(wall)
            store.record(
                {"selftest.ntt256.wall_s": wall, "selftest.constant_s": 1.0},
                label=f"selftest-{i}",
            )
        rerun = _measure_ntt_s()
        store.record(
            {"selftest.ntt256.wall_s": rerun, "selftest.constant_s": 1.0},
            label="selftest-rerun",
        )
        # Generous relative floor: CI machines are noisy and this smoke
        # asserts the *gate logic*, with real timings keeping it honest.
        report = gate([path], min_runs=2, rel_floor=0.5)
        emit(report.format())
        if not report.ok:
            emit("FAIL: clean rerun was flagged as a regression")
            return 1
        if not any(v.status != "short-history" for v in report.verdicts):
            emit("FAIL: selftest gated nothing")
            return 1

        store.record(
            {
                "selftest.ntt256.wall_s": 2.0 * max(baseline + [rerun]),
                "selftest.constant_s": 2.0,
            },
            label="selftest-regressed",
        )
        report = gate([path], min_runs=2, rel_floor=0.5)
        emit("")
        emit(report.format())
        if report.ok:
            emit("FAIL: injected 2x regression was not flagged")
            return 1
        emit("")
        emit("perfgate selftest: clean rerun passed, injected 2x "
             "regression flagged")
    return 0


def run_perfgate(
    files: Sequence,
    window: int = DEFAULT_WINDOW,
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_runs: int = DEFAULT_MIN_RUNS,
    all_keys: bool = False,
    show_history: bool = False,
    json_path=None,
    emit: Callable[[str], None] = print,
) -> int:
    """The ``python -m repro perfgate`` driver; returns an exit code."""
    if show_history:
        emit(format_history(unified_history(files)))
        emit("")
    report = gate(
        files,
        window=window,
        mad_k=mad_k,
        rel_floor=rel_floor,
        min_runs=min_runs,
        all_keys=all_keys,
    )
    emit(report.format())
    if json_path is not None:
        path = Path(json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
        emit(f"wrote {path}")
    return 0 if report.ok else 1
