"""Figure 1: the paper's headline NTT comparison.

One 2^14-point NTT: OpenFHE on a 32-core CPU (as reported by the RPU
paper), our single-core implementations on AMD EPYC 9654, the MQX
speed-of-light projection on 192 cores of AMD EPYC 9965S, and the RPU
ASIC. Values are microseconds per NTT (lower is better).
"""

from __future__ import annotations

from typing import Optional

from repro.arith.primes import default_modulus
from repro.baselines.published import synthesize_published
from repro.experiments.base import ExperimentResult
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import estimate_ntt
from repro.roofline.sol import default_sol_anchor, sol_runtime

LOG_SIZE = 14


def run(q: Optional[int] = None) -> ExperimentResult:
    """Regenerate the Figure 1 bar chart series."""
    q = q or default_modulus()
    n = 1 << LOG_SIZE
    amd = get_cpu("amd_epyc_9654")
    published = synthesize_published(default_sol_anchor())

    rows = []
    openfhe_mc = published["openfhe_32core"].runtime(LOG_SIZE)
    rows.append(["OpenFHE (32-core EPYC 7502)", openfhe_mc / 1000.0])

    estimates = {}
    for name in ("scalar", "avx2", "avx512", "mqx"):
        est = estimate_ntt(n, q, get_backend(name), amd)
        estimates[name] = est.ns
        rows.append([f"{name} (1 core EPYC 9654)", est.ns / 1000.0])

    mqx_est = estimate_ntt(n, q, get_backend("mqx"), amd)
    sol = sol_runtime(mqx_est, get_cpu("amd_epyc_9965s"))
    rows.append(["MQX-SOL (192-core EPYC 9965S)", sol.sol_ns / 1000.0])
    rows.append(["RPU (ASIC)", published["rpu"].runtime(LOG_SIZE) / 1000.0])

    result = ExperimentResult(
        exp_id="figure1",
        title=f"2^{LOG_SIZE}-point NTT runtime comparison (us, lower is better)",
        headers=["implementation", "us per NTT"],
        rows=rows,
    )
    result.notes.append(
        f"our single-core AVX-512 vs 32-core OpenFHE: "
        f"{openfhe_mc / estimates['avx512']:.1f}x faster (paper: 3.8x)"
    )
    result.notes.append(
        f"MQX-SOL vs RPU: "
        f"{published['rpu'].runtime(LOG_SIZE) / sol.sol_ns:.1f}x faster "
        f"(paper Figure 1: near-ASIC)"
    )
    return result
