"""Table 1: implementations of addition-with-carry.

Demonstrates the paper's motivating observation: one x86 instruction
(``ADC``) becomes six AVX-512 instructions, and MQX restores it to one
SIMD instruction. Reports instruction counts, per-lane throughput cost on
both modeled CPUs, and verifies bit-identical semantics.
"""

from __future__ import annotations

import random
from typing import List

from repro.experiments.base import ExperimentResult
from repro.isa.trace import tracing
from repro.isa.types import Mask, Vec
from repro.kernels.listings import (
    table1_adc_avx512,
    table1_adc_mqx,
    table1_adc_scalar,
)

from repro.machine.scheduler import schedule_trace
from repro.machine.uops import get_microarch


def run(seed: int = 0xADC) -> ExperimentResult:
    """Regenerate Table 1's comparison (plus modeled costs)."""
    rng = random.Random(seed)
    lanes = 8
    a_vals = [rng.randrange(1 << 64) for _ in range(lanes)]
    b_vals = [rng.randrange(1 << 64) for _ in range(lanes)]
    ci_bits = [rng.random() < 0.5 for _ in range(lanes)]

    a, b = Vec(a_vals), Vec(b_vals)
    ci = Mask.from_bools(ci_bits)

    traces = {}
    with tracing() as t_scalar:
        scalar_out: List[int] = []
        scalar_co: List[bool] = []
        for x, y, c in zip(a_vals, b_vals, ci_bits):
            value, carry = table1_adc_scalar(x, y, c)
            scalar_out.append(value)
            scalar_co.append(carry)
    traces["scalar (per lane)"] = t_scalar

    with tracing() as t_avx512:
        v_out, v_co = table1_adc_avx512(a, b, ci)
    traces["AVX-512"] = t_avx512

    with tracing() as t_mqx:
        m_out, m_co = table1_adc_mqx(a, b, ci)
    traces["MQX"] = t_mqx

    # Bit-identical across all three implementations.
    expected = [
        (x + y + (1 if c else 0)) & ((1 << 64) - 1)
        for x, y, c in zip(a_vals, b_vals, ci_bits)
    ]
    expected_co = [
        (x + y + (1 if c else 0)) >> 64 != 0
        for x, y, c in zip(a_vals, b_vals, ci_bits)
    ]
    assert scalar_out == expected and scalar_co == expected_co
    assert v_out.to_list() == expected and v_co.to_bools() == expected_co
    assert m_out.to_list() == expected and m_co.to_bools() == expected_co

    result = ExperimentResult(
        exp_id="table1",
        title="addition-with-carry: scalar vs AVX-512 vs MQX",
        headers=[
            "implementation",
            "instructions",
            "per 8 lanes",
            "Intel cycles/8 lanes",
            "AMD cycles/8 lanes",
        ],
    )
    for name, trace in traces.items():
        per_block = len(trace) if name != "scalar (per lane)" else len(trace)
        intel = schedule_trace(trace, get_microarch("sunny_cove")).throughput_cycles()
        amd = schedule_trace(trace, get_microarch("zen4")).throughput_cycles()
        instructions = (
            len(trace) // 8 if name == "scalar (per lane)" else len(trace)
        )
        result.rows.append([name, instructions, per_block, intel, amd])
    result.notes.append(
        "all three implementations produce bit-identical sums and carries"
    )
    result.notes.append(
        "AVX-512 needs 6 instructions for what scalar x86 does in 1 (ADC) "
        "and MQX does in 1 SIMD instruction (Section 4)"
    )
    return result
