"""Table 6: relative error of PISA-projected runtime on both CPUs."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.pisa.validation import max_absolute_error, validate_pisa

#: The paper's Table 6 values, for side-by-side reporting.
PAPER_TABLE6 = {
    ("intel_xeon_8352y", "_mm256_mul_epu32"): 3.23,
    ("intel_xeon_8352y", "_mm512_mask_add_epi64"): -7.68,
    ("intel_xeon_8352y", "_mm512_mask_sub_epi64"): -4.30,
    ("amd_epyc_9654", "_mm256_mul_epu32"): 2.64,
    ("amd_epyc_9654", "_mm512_mask_add_epi64"): 5.25,
    ("amd_epyc_9654", "_mm512_mask_sub_epi64"): 1.27,
}


def run() -> ExperimentResult:
    """Regenerate Table 6 (PISA validation)."""
    cases = validate_pisa()
    result = ExperimentResult(
        exp_id="table6",
        title="PISA validation: relative error of projected NTT runtime",
        headers=["CPU", "target instruction", "epsilon (ours)", "epsilon (paper)"],
    )
    for case in cases:
        paper = PAPER_TABLE6[(case.cpu, case.target_intrinsic)]
        result.rows.append(
            [
                case.cpu,
                case.target_intrinsic,
                f"{case.relative_error_pct:+.2f}%",
                f"{paper:+.2f}%",
            ]
        )
    result.notes.append(
        f"max |epsilon| = {max_absolute_error(cases):.2f}% "
        "(paper bound: below 8% on all six cases)"
    )
    result.notes.append(
        "negative epsilon means PISA is conservative (projects a higher "
        "runtime than the ground truth); our deterministic model is "
        "conservative or exact in every case"
    )
    return result
