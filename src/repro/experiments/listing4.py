"""Listing 4: LLVM-MCA-style resource pressure for modular addition.

Reproduces the paper's machine-code analysis: the AVX-512 ``addmod128``
block against the MQX version, as resource-pressure-by-instruction tables
on the Intel Xeon (Sunny Cove) model.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.arith.primes import default_modulus
from repro.experiments.base import ExperimentResult
from repro.isa.trace import Tracer, tracing
from repro.isa.types import Vec
from repro.kernels.listings import listing2_addmod128, listing3_addmod128
from repro.machine.mca import resource_pressure_report
from repro.machine.scheduler import schedule_trace
from repro.machine.uops import get_microarch


def _traces(q: int, seed: int = 4) -> Tuple[Tracer, Tracer]:
    rng = random.Random(seed)
    a = [rng.randrange(q) for _ in range(8)]
    b = [rng.randrange(q) for _ in range(8)]
    ah, al = Vec([x >> 64 for x in a]), Vec([x & (2**64 - 1) for x in a])
    bh, bl = Vec([x >> 64 for x in b]), Vec([x & (2**64 - 1) for x in b])
    mh, ml = Vec([q >> 64] * 8), Vec([q & (2**64 - 1)] * 8)
    with tracing("avx512-addmod") as avx512_trace:
        listing2_addmod128(ah, al, bh, bl, mh, ml)
    with tracing("mqx-addmod") as mqx_trace:
        listing3_addmod128(ah, al, bh, bl, mh, ml)
    return avx512_trace, mqx_trace


def run(q: Optional[int] = None, microarch_name: str = "sunny_cove") -> ExperimentResult:
    """Regenerate Listing 4's two resource-pressure tables."""
    q = q or default_modulus()
    microarch = get_microarch(microarch_name)
    avx512_trace, mqx_trace = _traces(q)

    avx512_sched = schedule_trace(avx512_trace, microarch)
    mqx_sched = schedule_trace(mqx_trace, microarch)

    result = ExperimentResult(
        exp_id="listing4",
        title=f"MCA resource pressure: AVX-512 vs MQX addmod128 ({microarch_name})",
        headers=["variant", "instructions", "uops", "port bound (cycles)"],
        rows=[
            ["AVX-512", avx512_sched.instructions, avx512_sched.uops, avx512_sched.port_bound],
            ["MQX", mqx_sched.instructions, mqx_sched.uops, mqx_sched.port_bound],
        ],
    )
    result.notes.append(
        f"MQX reduces the modular-addition block from "
        f"{avx512_sched.instructions} to {mqx_sched.instructions} instructions"
    )
    return result


def reports(q: Optional[int] = None, microarch_name: str = "sunny_cove") -> str:
    """The full Listing 4-style text (both pressure tables)."""
    q = q or default_modulus()
    microarch = get_microarch(microarch_name)
    avx512_trace, mqx_trace = _traces(q)
    parts = [
        resource_pressure_report(
            schedule_trace(avx512_trace, microarch), title="AVX-512"
        ),
        "",
        resource_pressure_report(schedule_trace(mqx_trace, microarch), title="MQX"),
    ]
    return "\n".join(parts)
