"""Figure 7: speed-of-light NTT performance on multi-core CPUs.

MQX-SOL on the highest-end AVX-512 server CPUs (Intel Xeon 6980P, AMD
EPYC 9965S) against RPU, FPMM, MoMA, and OpenFHE-multicore, at every NTT
size each design reports. Values are microseconds per NTT.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.roofline.compare import average_speedup, figure7_comparison

_PAPER_AVGS = {
    "amd": {"RPU": 2.5, "FPMM": 2.9, "MoMA": 1.7},
    "intel": {"RPU": 1.3, "FPMM": 1.0, "MoMA": 1 / 1.4},
}


def run(vendor: str = "amd") -> ExperimentResult:
    """Regenerate Figure 7a (``vendor="intel"``) or 7b (``vendor="amd"``)."""
    rows = figure7_comparison(vendor)
    panel = "7b" if vendor == "amd" else "7a"
    result = ExperimentResult(
        exp_id=f"figure{panel}",
        title=f"MQX speed-of-light vs published designs ({vendor})",
        headers=["design", "log2(n)", "MQX-SOL us", "published us", "SOL speedup"],
    )
    for row in rows:
        result.rows.append(
            [
                row.design,
                row.logn,
                row.sol_ns / 1000.0,
                row.published_ns / 1000.0,
                row.speedup,
            ]
        )
    for design, paper_value in _PAPER_AVGS[vendor].items():
        ours = average_speedup(rows, design)
        result.notes.append(
            f"avg MQX-SOL speedup over {design}: {ours:.2f}x "
            f"(paper: {paper_value:.2f}x)"
        )
    return result
