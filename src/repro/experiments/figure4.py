"""Figure 4: BLAS operation performance on a single CPU core.

Five implementations (GMP, scalar, AVX2, AVX-512, MQX) x four operations
(vector add/sub/mul, axpy), reported as nanoseconds per element at the
paper's vector length of 1,024. Figure 4a is Intel Xeon, 4b is AMD EPYC.
"""

from __future__ import annotations

from typing import Optional

from repro.arith.primes import default_modulus
from repro.blas.ops import BLAS_OPERATIONS
from repro.experiments.base import ExperimentResult
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import estimate_baseline_blas, estimate_blas

VECTOR_LENGTH = 1024
IMPLEMENTATIONS = ("gmp", "scalar", "avx2", "avx512", "mqx")

_CPU_BY_PANEL = {"a": "intel_xeon_8352y", "b": "amd_epyc_9654"}


def run(panel: str = "b", q: Optional[int] = None) -> ExperimentResult:
    """Regenerate Figure 4a (``panel="a"``) or 4b (``panel="b"``)."""
    cpu = get_cpu(_CPU_BY_PANEL[panel])
    q = q or default_modulus()

    result = ExperimentResult(
        exp_id=f"figure4{panel}",
        title=f"BLAS ns/element on one core of {cpu.name} (length {VECTOR_LENGTH})",
        headers=["operation"] + list(IMPLEMENTATIONS),
    )
    for op in BLAS_OPERATIONS:
        row = [op]
        for impl in IMPLEMENTATIONS:
            if impl == "gmp":
                est = estimate_baseline_blas(impl, op, VECTOR_LENGTH, q, cpu)
            else:
                est = estimate_blas(op, VECTOR_LENGTH, q, get_backend(impl), cpu)
            row.append(est.ns_per_element)
        result.rows.append(row)

    # The paper's summary statistics for this figure.
    def _avg_ratio(numer: str, denom: str) -> float:
        total = 0.0
        for row in result.rows:
            values = dict(zip(result.headers[1:], row[1:]))
            total += values[numer] / values[denom]
        return total / len(result.rows)

    result.notes.append(
        f"avg AVX-512 speedup over AVX2: {_avg_ratio('avx2', 'avx512'):.2f}x "
        f"(paper: 2.2x Intel / 1.6x AMD)"
    )
    result.notes.append(
        f"avg MQX speedup over AVX-512: {_avg_ratio('avx512', 'mqx'):.2f}x "
        f"(paper: 2.2x Intel / 3.2x AMD)"
    )
    slower = 0.0
    for row in result.rows:
        values = dict(zip(result.headers[1:], row[1:]))
        slower += values["gmp"] / max(values["scalar"], values["avx2"])
    result.notes.append(
        f"avg GMP slowdown vs slower of scalar/AVX2: {slower / 4:.1f}x "
        f"(paper: 18.4x Intel / 17.3x AMD)"
    )
    return result
