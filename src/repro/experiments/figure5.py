"""Figure 5: NTT performance on a single CPU core across sizes.

Six implementations (GMP, OpenFHE, scalar, AVX2, AVX-512, MQX) across NTT
sizes 2^10 - 2^17, reported as nanoseconds per butterfly. Figure 5a is
Intel Xeon, 5b is AMD EPYC.
"""

from __future__ import annotations

from typing import Optional

from repro.arith.primes import default_modulus
from repro.experiments.base import ExperimentResult
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import estimate_baseline_ntt, estimate_ntt

LOG_SIZES = range(10, 18)
IMPLEMENTATIONS = ("gmp", "openfhe", "scalar", "avx2", "avx512", "mqx")

_CPU_BY_PANEL = {"a": "intel_xeon_8352y", "b": "amd_epyc_9654"}


def run(panel: str = "b", q: Optional[int] = None) -> ExperimentResult:
    """Regenerate Figure 5a (``panel="a"``) or 5b (``panel="b"``)."""
    cpu = get_cpu(_CPU_BY_PANEL[panel])
    q = q or default_modulus()

    result = ExperimentResult(
        exp_id=f"figure5{panel}",
        title=f"NTT ns/butterfly on one core of {cpu.name}",
        headers=["log2(n)"] + list(IMPLEMENTATIONS),
    )
    series = {impl: [] for impl in IMPLEMENTATIONS}
    for logn in LOG_SIZES:
        row = [logn]
        for impl in IMPLEMENTATIONS:
            if impl in ("gmp", "openfhe"):
                est = estimate_baseline_ntt(impl, 1 << logn, q, cpu)
            else:
                est = estimate_ntt(1 << logn, q, get_backend(impl), cpu)
            row.append(est.ns_per_butterfly)
            series[impl].append(est.ns_per_butterfly)
        result.rows.append(row)

    def _avg_ratio(slow: str, fast: str) -> float:
        return sum(
            a / b for a, b in zip(series[slow], series[fast])
        ) / len(series[slow])

    result.notes.append(
        f"avg scalar speedup over OpenFHE: {_avg_ratio('openfhe', 'scalar'):.1f}x "
        f"(paper: 13.5x Intel / 11x AMD)"
    )
    result.notes.append(
        f"avg AVX-512 speedup over OpenFHE: {_avg_ratio('openfhe', 'avx512'):.1f}x "
        f"(paper: 31.9x Intel / 23.2x AMD)"
    )
    result.notes.append(
        f"avg MQX speedup over OpenFHE: {_avg_ratio('openfhe', 'mqx'):.1f}x "
        f"(paper: 66.9x Intel / 86.5x AMD)"
    )
    result.notes.append(
        f"avg AVX-512 speedup over GMP: {_avg_ratio('gmp', 'avx512'):.1f}x "
        f"(paper: 53x Intel)"
    )
    return result
