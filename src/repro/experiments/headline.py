"""Contribution 3's headline numbers (Section 1 / Abstract).

* AVX-512: 38x (NTT) and 62x (BLAS) average speedups over the
  state-of-the-art CPU baselines, averaged across both CPUs.
* MQX: 77x (NTT) and 104x (BLAS).
* MQX on a *single* core narrows the gap to the RPU ASIC to as low as 35x.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arith.primes import default_modulus
from repro.baselines.published import synthesize_published
from repro.blas.ops import BLAS_OPERATIONS
from repro.experiments.base import ExperimentResult
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import (
    estimate_baseline_blas,
    estimate_baseline_ntt,
    estimate_blas,
    estimate_ntt,
)
from repro.roofline.sol import default_sol_anchor

_NTT_SIZES = range(10, 18)
_PAPER = {
    "avx512 NTT vs best baseline": 38.0,
    "avx512 BLAS vs GMP": 62.0,
    "mqx NTT vs best baseline": 77.0,
    "mqx BLAS vs GMP": 104.0,
    "single-core MQX slowdown vs RPU (best case)": 35.0,
}


def _ntt_speedup(impl: str, q: int) -> float:
    """Average speedup over the better (faster) library baseline."""
    ratios = []
    for cpu_key in ("intel_xeon_8352y", "amd_epyc_9654"):
        cpu = get_cpu(cpu_key)
        for logn in _NTT_SIZES:
            ours = estimate_ntt(1 << logn, q, get_backend(impl), cpu).ns_per_butterfly
            best_baseline = min(
                estimate_baseline_ntt(kind, 1 << logn, q, cpu).ns_per_butterfly
                for kind in ("gmp", "openfhe")
            )
            ratios.append(best_baseline / ours)
    return sum(ratios) / len(ratios)


def _blas_speedup(impl: str, q: int) -> float:
    ratios = []
    for cpu_key in ("intel_xeon_8352y", "amd_epyc_9654"):
        cpu = get_cpu(cpu_key)
        for op in BLAS_OPERATIONS:
            ours = estimate_blas(op, 1024, q, get_backend(impl), cpu).ns_per_element
            baseline = estimate_baseline_blas("gmp", op, 1024, q, cpu).ns_per_element
            ratios.append(baseline / ours)
    return sum(ratios) / len(ratios)


def _asic_gap(q: int) -> float:
    """Best-case single-core MQX slowdown vs RPU across its sizes."""
    published = synthesize_published(default_sol_anchor())
    rpu = published["rpu"]
    cpu = get_cpu("amd_epyc_9654")
    gaps = []
    for logn in rpu.sizes:
        ours = estimate_ntt(1 << logn, q, get_backend("mqx"), cpu).ns
        gaps.append(ours / rpu.runtime(logn))
    return min(gaps)


def run(q: Optional[int] = None) -> ExperimentResult:
    """Regenerate the headline aggregate speedups."""
    q = q or default_modulus()
    measured: Dict[str, float] = {
        "avx512 NTT vs best baseline": _ntt_speedup("avx512", q),
        "avx512 BLAS vs GMP": _blas_speedup("avx512", q),
        "mqx NTT vs best baseline": _ntt_speedup("mqx", q),
        "mqx BLAS vs GMP": _blas_speedup("mqx", q),
        "single-core MQX slowdown vs RPU (best case)": _asic_gap(q),
    }
    result = ExperimentResult(
        exp_id="headline",
        title="headline aggregate speedups (Abstract / Contribution 3)",
        headers=["metric", "ours", "paper"],
    )
    for metric, value in measured.items():
        result.rows.append([metric, value, _PAPER[metric]])
    result.notes.append(
        "averages taken across both modeled CPUs and all sizes/operations, "
        "mirroring the paper's aggregation"
    )
    return result
