"""Extension experiment: realistic multi-core scaling vs speed-of-light.

Section 6 acknowledges that the SOL projection is idealized and argues
that batched FHE workloads still make near-linear scaling plausible,
quoting two scenarios on the 192-core AMD EPYC 9965S: a 77x multi-core
speedup would match RPU; a conservative 48x would be about 1.6x slower.

This experiment runs the batch-contention model across core counts for
batches of independent MQX NTTs at two sizes:

* **n = 2^14** - per-core working sets fit the private L2, so scaling is
  compute-bound and near-linear: the SOL assumption is realistic here.
* **n = 2^16** - working sets spill to the shared L3 (the Section 5.4
  effect), so high core counts hit the aggregate-bandwidth wall and
  efficiency collapses: the part of the SOL projection that is *not*
  realizable without cache-aware scheduling.
"""

from __future__ import annotations

from typing import Optional

from repro.arith.primes import default_modulus
from repro.baselines.published import synthesize_published
from repro.experiments.base import ExperimentResult
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.multicore.model import BatchScalingModel
from repro.perf.estimator import estimate_ntt
from repro.roofline.sol import default_sol_anchor

LOG_SIZES = (14, 16)
CORE_COUNTS = (1, 8, 32, 96, 192)


def run(q: Optional[int] = None) -> ExperimentResult:
    """Regenerate the multi-core realization analysis (AMD EPYC 9965S)."""
    q = q or default_modulus()
    measured = get_cpu("amd_epyc_9654")
    target = get_cpu("amd_epyc_9965s")
    model = BatchScalingModel(target)

    result = ExperimentResult(
        exp_id="extension_multicore",
        title=(
            f"batched MQX NTTs on {target.name}: realized scaling vs "
            "speed-of-light"
        ),
        headers=["log2(n)", "cores", "speedup", "efficiency", "bound", "us per NTT"],
    )

    finals = {}
    est14 = None
    for logn in LOG_SIZES:
        est = estimate_ntt(1 << logn, q, get_backend("mqx"), measured)
        if logn == 14:
            est14 = est
        for cores in CORE_COUNTS:
            batch = 4 * cores  # plenty of independent work, as in FHE
            mc = model.run(est, batch=batch, cores=cores)
            result.rows.append(
                [logn, cores, mc.speedup, mc.efficiency, mc.bound,
                 mc.ns_per_ntt / 1000.0]
            )
            finals[logn] = mc

    rpu = synthesize_published(default_sol_anchor())["rpu"]
    rpu_ns = rpu.runtime(14)
    realized = finals[14]
    ratio = realized.ns_per_ntt / rpu_ns
    result.notes.append(
        f"n=2^14: realized {realized.speedup:.0f}x on {realized.cores} cores "
        f"({realized.bound}-bound) -> {1 / ratio:.1f}x faster than RPU: the "
        f"SOL projection is essentially realizable for L2-resident sizes"
    )
    spilled = finals[16]
    result.notes.append(
        f"n=2^16: scaling saturates at {spilled.speedup:.0f}x "
        f"({spilled.bound}-bound) - the L2 spill of Section 5.4 becomes a "
        f"shared-bandwidth wall at scale"
    )
    conservative_ns = est14.ns / 48.0
    result.notes.append(
        f"the paper's conservative 48x scenario gives "
        f"{conservative_ns / rpu_ns:.2f}x vs RPU (paper: about 1.6x slower); "
        f"the 77x scenario gives {est14.ns / 77.0 / rpu_ns:.2f}x (paper: on par)"
    )
    return result
