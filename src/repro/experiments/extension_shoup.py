"""Extension experiment: Harvey/Shoup twiddle precomputation.

The paper's kernels use general-operand Barrett reduction throughout
(Section 2.1) because BLAS operands are arbitrary. NTT twiddles, however,
are known ahead of time, and tuned NTT libraries exploit that with
Harvey's butterfly: precompute ``w' = floor(w * 2^128 / q)`` per twiddle
and replace Barrett's second wide product and both cross-word shifts with
one high-half product.

This experiment quantifies that optimization on every backend and both
CPUs. It is also an honesty probe for our model's main divergence from
the paper (the scalar-vs-AVX-512 gap): part of the paper's tuned AVX-512
advantage plausibly comes from exactly this class of NTT-specific
optimization, which Listing 2's general kernels do not show.
"""

from __future__ import annotations

from typing import Optional

from repro.arith.primes import default_modulus
from repro.experiments.base import ExperimentResult
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import estimate_ntt

LOG_SIZE = 14
VARIANTS = ("scalar", "avx2", "avx512", "mqx")
CPUS = ("intel_xeon_8352y", "amd_epyc_9654")


def run(q: Optional[int] = None) -> ExperimentResult:
    """Regenerate the Barrett-vs-Shoup NTT comparison."""
    q = q or default_modulus()
    result = ExperimentResult(
        exp_id="extension_shoup",
        title=f"Barrett vs Shoup twiddles (NTT ns/butterfly, n = 2^{LOG_SIZE})",
        headers=["CPU", "variant", "barrett", "shoup", "speedup"],
    )
    speedups = []
    for cpu_key in CPUS:
        cpu = get_cpu(cpu_key)
        for variant in VARIANTS:
            backend = get_backend(variant)
            barrett = estimate_ntt(1 << LOG_SIZE, q, backend, cpu).ns_per_butterfly
            shoup = estimate_ntt(
                1 << LOG_SIZE, q, backend, cpu, twiddle_mode="shoup"
            ).ns_per_butterfly
            speedup = barrett / shoup
            speedups.append(speedup)
            result.rows.append([cpu_key, variant, barrett, shoup, speedup])

    result.notes.append(
        f"Shoup precomputation gains {min(speedups):.2f}x-{max(speedups):.2f}x "
        "across variants and CPUs - free for NTTs (twiddles are constants), "
        "unavailable for general BLAS operands"
    )
    result.notes.append(
        "this is the class of NTT-specific tuning that plausibly explains "
        "part of the paper's larger measured AVX-512-over-scalar gap (see "
        "the divergence notes)"
    )
    return result
