"""Shared experiment-result container and formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    Attributes:
        exp_id: Paper artifact id (e.g. ``"figure5a"``, ``"table6"``).
        title: Human-readable description.
        headers: Column names.
        rows: Table rows (stringifiable cells).
        notes: Free-form commentary (paper-vs-measured remarks).
    """

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Render as an aligned text table (what the benches print)."""
        table = [list(map(_fmt, self.headers))]
        table.extend([list(map(_fmt, row)) for row in self.rows])
        widths = [
            max(len(row[col]) for row in table)
            for col in range(len(table[0]))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        for i, row in enumerate(table):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if i == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def format_markdown(self) -> str:
        """Render as a GitHub-markdown table (for EXPERIMENTS.md)."""
        lines = [
            "| " + " | ".join(_fmt(h) for h in self.headers) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """Extract one column by header name."""
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        if cell >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
