"""Extension experiment: scaling MQX's benefit to larger bit-widths.

The paper's Section 7 proposes generalizing the kernels beyond 128 bits
(via MoMA-style multi-word decomposition) for workloads like
zero-knowledge proofs. This experiment quantifies the prediction implicit
in MQX's design: carry chains and widening multiplies multiply with the
word count, so MQX's advantage over plain AVX-512 should *grow* with the
bit-width.

Reported: NTT ns/butterfly at n = 2^12 for 128-, 192- and 256-bit moduli
across scalar / AVX-512 / MQX, on AMD EPYC.
"""

from __future__ import annotations

from typing import Dict

from repro.arith.primes import find_ntt_prime
from repro.experiments.base import ExperimentResult
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.multiword.perf import estimate_multiword_ntt

LOG_SIZE = 12
#: (words, prime bits) per tested width: the modulus keeps the paper's
#: "4 bits of Barrett headroom" rule at each width.
WIDTHS = ((2, 124), (3, 188), (4, 252))
VARIANTS = ("scalar", "avx512", "mqx")


def run(cpu_key: str = "amd_epyc_9654") -> ExperimentResult:
    """Regenerate the bit-width scaling table."""
    cpu = get_cpu(cpu_key)
    result = ExperimentResult(
        exp_id="extension_multiword",
        title=f"NTT ns/butterfly vs residue width on {cpu.name} (n = 2^{LOG_SIZE})",
        headers=["bits", "scalar", "avx512", "mqx", "mqx speedup over avx512"],
    )
    gains: Dict[int, float] = {}
    for words, bits in WIDTHS:
        q = find_ntt_prime(bits, 1 << (LOG_SIZE + 1))
        row = [64 * words]
        values = {}
        for name in VARIANTS:
            est = estimate_multiword_ntt(
                1 << LOG_SIZE, q, get_backend(name), cpu, words
            )
            values[name] = est.ns_per_butterfly
            row.append(est.ns_per_butterfly)
        gain = values["avx512"] / values["mqx"]
        gains[64 * words] = gain
        row.append(gain)
        result.rows.append(row)

    result.notes.append(
        "MQX speedup over AVX-512 by width: "
        + ", ".join(f"{bits}b = {gain:.2f}x" for bits, gain in gains.items())
    )
    result.notes.append(
        "the advantage grows with the word count because carry chains and "
        "widening multiplies scale with W - supporting the paper's "
        "Section 7 claim that MQX pays off even more for ZKP-scale fields"
    )
    return result
