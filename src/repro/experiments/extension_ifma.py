"""Extension experiment: the AVX-512 IFMA52 tuning ladder.

Both evaluation CPUs support AVX-512 IFMA, the fused 52-bit multiply-add
HEXL-class NTTs are built on. This experiment climbs the tuning ladder
from the paper's printed portable kernels to a HEXL-style implementation:

    portable AVX-512 Barrett  (Listing 2 style - what we model as "avx512")
      -> + Shoup twiddles     (precomputed per-twiddle constants)
      -> IFMA52 + Shoup       (52-bit limbs, fused multiply-add)
      -> IFMA52 + lazy        (Harvey's [0,4q) lazy butterflies)

and reports each rung against the scalar kernel. The ladder is this
reproduction's explanation of its main divergence from the paper: our
portable AVX-512 model shows ~1.1-1.3x over scalar where the paper
measures 2.4x (Intel) - and the fully tuned rung reaches that regime.
"""

from __future__ import annotations

from typing import Optional

from repro.arith.primes import default_modulus
from repro.experiments.base import ExperimentResult
from repro.ifma.perf import estimate_ifma_ntt
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import estimate_ntt

LOG_SIZE = 14
CPUS = ("intel_xeon_8352y", "amd_epyc_9654")


def run(q: Optional[int] = None) -> ExperimentResult:
    """Regenerate the IFMA tuning-ladder table."""
    q = q or default_modulus()
    result = ExperimentResult(
        exp_id="extension_ifma",
        title=f"AVX-512 tuning ladder (NTT ns/butterfly, n = 2^{LOG_SIZE})",
        headers=["CPU", "variant", "ns/butterfly", "speedup over scalar"],
    )
    ladders = {}
    for cpu_key in CPUS:
        cpu = get_cpu(cpu_key)
        scalar = estimate_ntt(
            1 << LOG_SIZE, q, get_backend("scalar"), cpu
        ).ns_per_butterfly
        rungs = [
            ("scalar (Barrett)", scalar),
            (
                "avx512 portable Barrett",
                estimate_ntt(
                    1 << LOG_SIZE, q, get_backend("avx512"), cpu
                ).ns_per_butterfly,
            ),
            (
                "avx512 + Shoup twiddles",
                estimate_ntt(
                    1 << LOG_SIZE, q, get_backend("avx512"), cpu,
                    twiddle_mode="shoup",
                ).ns_per_butterfly,
            ),
            (
                "avx512 + lazy butterflies",
                estimate_ntt(
                    1 << LOG_SIZE, q, get_backend("avx512"), cpu,
                    twiddle_mode="lazy",
                ).ns_per_butterfly,
            ),
            (
                "ifma52 + lazy (HEXL-style)",
                estimate_ifma_ntt(1 << LOG_SIZE, q, cpu, "lazy").ns_per_butterfly,
            ),
        ]
        ladders[cpu_key] = rungs
        for name, ns in rungs:
            result.rows.append([cpu_key, name, ns, scalar / ns])

    for cpu_key, rungs in ladders.items():
        scalar = rungs[0][1]
        best = min(ns for _, ns in rungs[1:])
        result.notes.append(
            f"{cpu_key}: fully tuned AVX-512 family reaches "
            f"{scalar / best:.2f}x over scalar "
            f"(paper measured 2.4x Intel / ~2x AMD for its tuned binaries)"
        )
    result.notes.append(
        "the ladder quantifies the gap between the paper's *printed* "
        "portable kernels and its *measured* tuned binaries - resolving "
        "the scalar-vs-AVX-512 divergence documented in EXPERIMENTS.md"
    )
    result.notes.append(
        "AMD caveat: the 52-bit-limb layout stores residues in 24 bytes "
        "(three 64-bit planes) instead of 16, which spills AMD EPYC's "
        "1 MB per-core L2 at n = 2^14 - so the IFMA rungs flatten there "
        "while the ladder stays monotone on Intel's 1.25 MB L2"
    )
    return result
