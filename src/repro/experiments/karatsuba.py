"""Section 5.5: schoolbook vs Karatsuba multiplication inside the NTT.

The paper finds schoolbook wins on CPUs in almost all variants (average
1.1x where it wins, near-tie for scalar on AMD), the opposite of the GPU
result (MoMA: Karatsuba 2.1x faster).
"""

from __future__ import annotations

from typing import Optional

from repro.arith.primes import default_modulus
from repro.experiments.base import ExperimentResult
from repro.kernels import get_backend
from repro.machine.cpu import get_cpu
from repro.perf.estimator import estimate_ntt

VARIANTS = ("scalar", "avx2", "avx512", "mqx")
CPUS = ("intel_xeon_8352y", "amd_epyc_9654")
LOG_SIZE = 14


def run(q: Optional[int] = None) -> ExperimentResult:
    """Regenerate the multiplication-algorithm sensitivity analysis."""
    q = q or default_modulus()
    result = ExperimentResult(
        exp_id="karatsuba",
        title="schoolbook vs Karatsuba (NTT ns/butterfly, n = 2^14)",
        headers=["CPU", "variant", "schoolbook", "karatsuba", "karatsuba/schoolbook"],
    )
    wins = 0
    total = 0
    exceptions = []
    for cpu_key in CPUS:
        cpu = get_cpu(cpu_key)
        for variant in VARIANTS:
            backend = get_backend(variant)
            school = estimate_ntt(
                1 << LOG_SIZE, q, backend, cpu, algorithm="schoolbook"
            ).ns_per_butterfly
            karat = estimate_ntt(
                1 << LOG_SIZE, q, backend, cpu, algorithm="karatsuba"
            ).ns_per_butterfly
            result.rows.append([cpu_key, variant, school, karat, karat / school])
            total += 1
            if school <= karat:
                wins += 1
            else:
                exceptions.append(f"{variant} on {cpu_key}")
    result.notes.append(
        f"schoolbook wins or ties {wins}/{total} variant-CPU combinations "
        "(paper: schoolbook wins in almost all NTT variants; ~1.1x where it wins)"
    )
    if exceptions:
        result.notes.append(
            "near-tie exceptions: " + ", ".join(exceptions) + " "
            "(the paper reports exactly one: scalar on AMD EPYC)"
        )
    return result
