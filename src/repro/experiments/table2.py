"""Table 2: the MQX instruction set and its emulation semantics.

Regenerates the table's three rows - instruction, emulation, description -
and *executes* each emulation against the simulated instruction on random
and adversarial inputs, which is the paper's functional-correctness flag
in experiment form.
"""

from __future__ import annotations

import random

from repro.experiments.base import ExperimentResult
from repro.isa import mqx
from repro.isa.types import Mask, Vec

MASK64 = (1 << 64) - 1

_ROWS = [
    (
        "_mm512_mul_epi64(ch, cl, a, b)",
        "ch[i] = (i128)a[i]*(i128)b[i] >> 64; cl[i] = low 64",
        "Multiply two words; output high and low result words.",
    ),
    (
        "_mm512_adc_epi64(a, b, ci, &co)",
        "co[i] = ((i128)a[i]+b[i]+ci[i]) >> 64; result = low 64",
        "Add two words and a carry bit; output word + carry bit.",
    ),
    (
        "_mm512_sbb_epi64(a, b, bi, &bo)",
        "bo[i] = ((i128)a[i]-b[i]-bi[i]) < 0; result = low 64",
        "Subtract two words and a borrow bit; output word + borrow bit.",
    ),
]


def _verify(seed: int = 2) -> int:
    """Execute Table 2's emulation column against the instructions."""
    rng = random.Random(seed)
    cases = 0
    samples = [
        [rng.randrange(1 << 64) for _ in range(8)] for _ in range(6)
    ]
    samples.append([MASK64] * 8)  # the carry-chain adversarial corner
    samples.append([0] * 8)
    for a_vals in samples:
        for b_vals in samples:
            a, b = Vec(a_vals), Vec(b_vals)
            ci = Mask(rng.randrange(256), 8)

            hi, lo = mqx.mm512_mul_epi64(a, b)
            total, co = mqx.mm512_adc_epi64(a, b, ci)
            diff, bo = mqx.mm512_sbb_epi64(a, b, ci)
            for i in range(8):
                product = a_vals[i] * b_vals[i]
                assert hi.lane(i) == product >> 64
                assert lo.lane(i) == product & MASK64
                wide = a_vals[i] + b_vals[i] + (1 if ci.bit(i) else 0)
                assert total.lane(i) == wide & MASK64
                assert co.bit(i) == (wide >> 64 != 0)
                narrow = a_vals[i] - b_vals[i] - (1 if ci.bit(i) else 0)
                assert diff.lane(i) == narrow & MASK64
                assert bo.bit(i) == (narrow < 0)
                cases += 3
    return cases


def run() -> ExperimentResult:
    """Regenerate Table 2 with executed emulation checks."""
    cases = _verify()
    result = ExperimentResult(
        exp_id="table2",
        title="AVX-512 multi-word extension (MQX)",
        headers=["instruction", "emulation", "description"],
        rows=[list(row) for row in _ROWS],
    )
    result.notes.append(
        f"emulation semantics executed against the simulated instructions "
        f"on {cases} lane-cases, including the all-ones carry corners "
        f"(the paper's functional-correctness flag)"
    )
    return result
