"""Experiment harnesses: one module per table/figure in the paper.

Each module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentResult` whose rows regenerate
the corresponding table or figure series. ``python -m repro.experiments.runner``
runs everything and rewrites ``EXPERIMENTS.md``.
"""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
