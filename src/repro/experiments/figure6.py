"""Figure 6: sensitivity of NTT runtime to MQX's components (AMD EPYC).

Average runtime per butterfly across all tested NTT sizes, normalized to
the AVX-512 baseline (``Base``): +M (widening multiply only), +C
(carry/borrow only), +M,C (full MQX), +Mh,C (multiply-high instead of
widening), +M,C,P (plus predication).
"""

from __future__ import annotations

from typing import Optional

from repro.arith.primes import default_modulus
from repro.experiments.base import ExperimentResult
from repro.experiments.figure5 import LOG_SIZES
from repro.kernels import get_backend
from repro.kernels.mqx_backend import FEATURE_PRESETS
from repro.machine.cpu import get_cpu
from repro.perf.estimator import estimate_ntt

CONFIGS = ("Base", "+M", "+C", "+M,C", "+Mh,C", "+M,C,P")


def run(q: Optional[int] = None, cpu_key: str = "amd_epyc_9654") -> ExperimentResult:
    """Regenerate Figure 6's normalized-runtime bars."""
    cpu = get_cpu(cpu_key)
    q = q or default_modulus()

    def _avg_ns(backend) -> float:
        total = 0.0
        for logn in LOG_SIZES:
            total += estimate_ntt(1 << logn, q, backend, cpu).ns_per_butterfly
        return total / len(LOG_SIZES)

    base = _avg_ns(get_backend("avx512"))
    result = ExperimentResult(
        exp_id="figure6",
        title=f"MQX component sensitivity on {cpu.name} (normalized to AVX-512)",
        headers=["config", "ns/butterfly", "normalized"],
        rows=[["Base", base, 1.0]],
    )
    values = {"Base": base}
    for label in CONFIGS[1:]:
        backend = get_backend("mqx", features=FEATURE_PRESETS[label])
        ns = _avg_ns(backend)
        values[label] = ns
        result.rows.append([label, ns, ns / base])

    result.notes.append(
        f"full MQX (+M,C) speedup over Base: {base / values['+M,C']:.2f}x "
        f"(paper: 3.7x on AMD EPYC)"
    )
    result.notes.append(
        f"+Mh,C vs +M,C degradation: {values['+Mh,C'] / values['+M,C']:.2f}x "
        f"(paper: minor)"
    )
    result.notes.append(
        f"predication gain (+M,C,P over +M,C): "
        f"{values['+M,C'] / values['+M,C,P']:.2f}x (paper: ~1.1x)"
    )
    return result
