"""CPU specifications (the paper's Table 4 plus the Section 6 SOL targets).

``measured_ghz`` is the single-core boost frequency the paper's per-core
benchmarks effectively run at; ``allcore_ghz`` is the all-core boost used by
the speed-of-light model (Equation 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import MachineModelError


@dataclass(frozen=True)
class CpuSpec:
    """Static description of one CPU model."""

    key: str
    name: str
    microarch: str
    cores: int
    base_ghz: float
    max_ghz: float
    allcore_ghz: float
    l1d_bytes: int
    l2_bytes_per_core: int
    l3_bytes: int
    memory: str

    @property
    def measured_ghz(self) -> float:
        """Frequency used for single-core runtime conversion (max boost)."""
        return self.max_ghz


_CPUS: Dict[str, CpuSpec] = {}


def _register(spec: CpuSpec) -> CpuSpec:
    _CPUS[spec.key] = spec
    return spec


#: Intel Xeon 8352Y ("Intel Xeon" in the paper): Ice Lake-SP, Sunny Cove
#: cores, 1.25 MiB per-core L2 (the paper's "1.28 MB"), 48 MB L3, DDR4.
INTEL_XEON_8352Y = _register(
    CpuSpec(
        key="intel_xeon_8352y",
        name="Intel Xeon 8352Y",
        microarch="sunny_cove",
        cores=32,
        base_ghz=2.2,
        max_ghz=3.4,
        allcore_ghz=2.8,
        l1d_bytes=48 * 1024,
        l2_bytes_per_core=1280 * 1024,
        l3_bytes=48 * 1024 * 1024,
        memory="256 GB DDR4",
    )
)

#: AMD EPYC 9654 ("AMD EPYC" in the paper): Zen 4, 1 MiB per-core L2,
#: 384 MB L3, DDR5.
AMD_EPYC_9654 = _register(
    CpuSpec(
        key="amd_epyc_9654",
        name="AMD EPYC 9654",
        microarch="zen4",
        cores=96,
        base_ghz=2.4,
        max_ghz=3.7,
        allcore_ghz=3.55,
        l1d_bytes=32 * 1024,
        l2_bytes_per_core=1024 * 1024,
        l3_bytes=384 * 1024 * 1024,
        memory="384 GB DDR5",
    )
)

#: Intel Xeon 6980P: the highest-end AVX-512 Xeon in the Section 6 SOL
#: analysis (128 cores, 504 MB L3, 3.2 GHz all-core boost).
INTEL_XEON_6980P = _register(
    CpuSpec(
        key="intel_xeon_6980p",
        name="Intel Xeon 6980P",
        microarch="sunny_cove",
        cores=128,
        base_ghz=2.0,
        max_ghz=3.9,
        allcore_ghz=3.2,
        l1d_bytes=48 * 1024,
        l2_bytes_per_core=2048 * 1024,
        l3_bytes=504 * 1024 * 1024,
        memory="DDR5/MRDIMM",
    )
)

#: AMD EPYC 9965S: the highest-end AMD target of the SOL analysis
#: (192 cores, 384 MB L3, 3.35 GHz all-core boost).
AMD_EPYC_9965S = _register(
    CpuSpec(
        key="amd_epyc_9965s",
        name="AMD EPYC 9965S",
        microarch="zen4",
        cores=192,
        base_ghz=2.25,
        max_ghz=3.7,
        allcore_ghz=3.35,
        l1d_bytes=32 * 1024,
        l2_bytes_per_core=1024 * 1024,
        l3_bytes=384 * 1024 * 1024,
        memory="DDR5",
    )
)


def get_cpu(key: str) -> CpuSpec:
    """Look up a CPU spec by key (e.g. ``"intel_xeon_8352y"``)."""
    try:
        return _CPUS[key]
    except KeyError:
        raise MachineModelError(
            f"unknown CPU {key!r}; available: {sorted(_CPUS)}"
        ) from None


def list_cpus() -> List[str]:
    """Keys of all registered CPUs."""
    return sorted(_CPUS)


def register_cpu(spec: CpuSpec) -> CpuSpec:
    """Register a custom CPU (the artifact's Section A.7 customization)."""
    if spec.key in _CPUS:
        raise MachineModelError(f"CPU {spec.key!r} already registered")
    return _register(spec)
