"""Microarchitecture performance model.

This package plays the role of the paper's measurement infrastructure: the
kernels' instruction traces are scheduled against per-microarchitecture
execution-port tables (the LLVM-MCA methodology of Section 4.2), combined
with a cache/bandwidth model, to produce estimated runtimes.

The approach mirrors the paper's own PISA reasoning: MQX instructions carry
the port/latency characteristics of their AVX-512 proxy instructions
(Table 3), so relative performance across variants is governed by real
structural differences - instruction counts, port widths, latencies and
cache capacities - not by hand-placed constants per variant.
"""

from repro.machine.cpu import CpuSpec, get_cpu, list_cpus
from repro.machine.scheduler import ScheduleResult, schedule_trace
from repro.machine.uops import Microarch, UopInfo, get_microarch
from repro.machine.cache import CacheModel, MemoryTraffic

__all__ = [
    "CpuSpec",
    "get_cpu",
    "list_cpus",
    "Microarch",
    "UopInfo",
    "get_microarch",
    "ScheduleResult",
    "schedule_trace",
    "CacheModel",
    "MemoryTraffic",
]
