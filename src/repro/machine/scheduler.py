"""Trace scheduling: the LLVM-MCA-style throughput/latency analysis.

Given an instruction trace (one kernel block) and a microarchitecture, the
scheduler computes three classic bounds:

* **Port pressure** - each uop is greedily assigned to its least-loaded
  allowed port; the most-loaded port's occupancy bounds steady-state
  throughput (this is LLVM-MCA's "resource pressure" view, Listing 4).
* **Front-end** - total uops divided by the decode/rename width.
* **Critical path** - the longest register-dependency chain through the
  block using instruction latencies.

Steady-state cycles-per-block for a loop kernel is then
``max(port, frontend, critical_path / overlap)`` where ``overlap`` is how
many independent block instances the out-of-order window can keep in
flight (bounded by ROB capacity). NTT butterflies within a stage and BLAS
loop iterations are independent, so overlap is usually generous and the
port bound dominates - except for long serial chains (scalar carry
chains), which is exactly the effect that separates scalar from SIMD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import MachineModelError
from repro.isa.trace import TraceEntry, Tracer
from repro.machine.uops import Microarch
from repro.obs.hooks import record_schedule


@dataclass
class ScheduleResult:
    """Scheduling analysis of one traced block."""

    microarch: str
    instructions: int
    uops: float
    port_pressure: Dict[str, float]
    critical_path: float
    decode_width: int
    rob_size: int
    #: Per-instruction port assignment: (op, {port: occupancy}) pairs,
    #: in trace order - the raw material for the MCA pressure report.
    assignments: List[Tuple[TraceEntry, Dict[str, float]]] = field(
        default_factory=list, repr=False
    )

    @property
    def port_bound(self) -> float:
        """Cycles per block from the most-contended execution port."""
        return max(self.port_pressure.values(), default=0.0)

    @property
    def frontend_bound(self) -> float:
        """Cycles per block from decode/rename width."""
        return self.uops / self.decode_width

    def throughput_cycles(
        self, independent_blocks: Optional[float] = None
    ) -> float:
        """Steady-state cycles per block when blocks are independent.

        ``independent_blocks`` caps how many block instances overlap (e.g.
        the number of independent butterflies remaining in an NTT stage);
        the ROB imposes its own cap. ``None`` means unbounded parallelism.
        """
        if self.uops <= 0:
            return 0.0
        rob_cap = max(1.0, self.rob_size / max(self.uops, 1.0))
        overlap = rob_cap
        if independent_blocks is not None:
            if independent_blocks < 1:
                raise MachineModelError("independent_blocks must be >= 1")
            overlap = min(overlap, float(independent_blocks))
        latency_bound = self.critical_path / overlap
        return max(self.port_bound, self.frontend_bound, latency_bound)


def schedule_trace(
    trace: Iterable[TraceEntry], microarch: Microarch
) -> ScheduleResult:
    """Schedule a trace onto a microarchitecture's ports.

    Accepts a :class:`~repro.isa.trace.Tracer` or any iterable of
    :class:`~repro.isa.trace.TraceEntry`.
    """
    entries = list(trace.entries if isinstance(trace, Tracer) else trace)
    pressure: Dict[str, float] = {port: 0.0 for port in microarch.ports}
    assignments: List[Tuple[TraceEntry, Dict[str, float]]] = []
    ready_at: Dict[int, float] = {}
    critical_path = 0.0
    total_uops = 0.0

    for entry in entries:
        info = microarch.lookup(entry.op)
        per_instr: Dict[str, float] = {}
        for port_choices in info.ports:
            port = _least_loaded(pressure, port_choices, entry.op, microarch)
            pressure[port] += info.weight
            per_instr[port] = per_instr.get(port, 0.0) + info.weight
        total_uops += info.uops
        assignments.append((entry, per_instr))

        start = 0.0
        for src in entry.srcs:
            start = max(start, ready_at.get(src, 0.0))
        finish = start + info.latency
        for dest in entry.dests:
            ready_at[dest] = finish
        critical_path = max(critical_path, finish)

    result = ScheduleResult(
        microarch=microarch.name,
        instructions=len(entries),
        uops=total_uops,
        port_pressure=pressure,
        critical_path=critical_path,
        decode_width=microarch.decode_width,
        rob_size=microarch.rob_size,
        assignments=assignments,
    )
    record_schedule(result)
    return result


def _least_loaded(
    pressure: Dict[str, float],
    choices: Tuple[str, ...],
    op: str,
    microarch: Microarch,
) -> str:
    best = None
    for port in choices:
        if port not in pressure:
            raise MachineModelError(
                f"instruction {op!r} references unknown port {port!r} "
                f"on {microarch.name}"
            )
        if best is None or pressure[port] < pressure[best]:
            best = port
    assert best is not None
    return best
