"""LLVM-MCA-style reports (reproduces the format of the paper's Listing 4).

Renders a "Resource pressure by instruction" table from a
:class:`~repro.machine.scheduler.ScheduleResult`: one column per execution
port, one row per instruction, each cell showing the cycles of occupancy
that instruction placed on that port.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.machine.scheduler import ScheduleResult


def resource_pressure_report(
    result: ScheduleResult,
    title: str = "",
    ports: Optional[List[str]] = None,
) -> str:
    """Format a resource-pressure-by-instruction table.

    ``ports`` restricts/orders the columns (defaults to every port that
    received any pressure, in microarchitecture order).
    """
    if ports is None:
        ports = [p for p, v in result.port_pressure.items() if v > 0]

    lines: List[str] = []
    if title:
        lines.append(f"{title} - Resource pressure by instruction:")
    header = "".join(f"[{i}]".ljust(8) for i in range(len(ports)))
    lines.append(header + "Instructions:")
    legend = "".join(p.ljust(8) for p in ports)
    lines.append(legend)

    for entry, per_instr in result.assignments:
        cells = []
        for port in ports:
            value = per_instr.get(port, 0.0)
            cells.append((f"{value:.2f}" if value else "-").ljust(8))
        lines.append("".join(cells) + entry.op)

    lines.append("")
    lines.append("Resource pressure per iteration:")
    totals = "".join(
        f"{result.port_pressure.get(p, 0.0):.2f}".ljust(8) for p in ports
    )
    lines.append(totals)
    lines.append(
        f"Instructions: {result.instructions}  uops: {result.uops:.0f}  "
        f"port bound: {result.port_bound:.2f}  "
        f"frontend bound: {result.frontend_bound:.2f}  "
        f"critical path: {result.critical_path:.0f}"
    )
    return "\n".join(lines)


def pressure_summary(result: ScheduleResult) -> Dict[str, float]:
    """Non-zero per-port pressure, for compact assertions in tests."""
    return {p: v for p, v in result.port_pressure.items() if v > 0}
