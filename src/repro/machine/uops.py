"""Per-microarchitecture instruction tables (ports, uops, latency).

Each mnemonic emitted by :mod:`repro.isa` maps to a :class:`UopInfo`
describing how the instruction executes on a given microarchitecture:

* ``ports`` - one entry per uop, listing the execution ports that uop may
  issue to (the scheduler load-balances across them);
* ``weight`` - occupancy in cycles per uop (models iterative units such as
  the divider, and AMD Zen 4's double-pumped 512-bit datapath);
* ``latency`` - result latency for the dependency-chain analysis.

Two microarchitectures are modeled, matching the paper's testbeds
(Table 4): **Sunny Cove** (Intel Xeon 8352Y, Ice Lake-SP, two 512-bit FMA
ports) and **Zen 4** (AMD EPYC 9654, 256-bit datapath, 512-bit operations
double-pumped, but a *native single-uop* ``vpmullq``).

Values are drawn from public sources (uops.info, Agner Fog's tables, the
Intel optimization manual) and are approximations - the absolute cycle
counts are model outputs, but the *structural contrasts* that drive the
paper's results are faithfully represented:

* Intel's ``vpmullq`` is microcoded (3 uops, ~15-cycle latency) while
  Zen 4's is a single fast uop - which is why MQX (whose widening multiply
  is PISA-projected onto ``vpmullq``) gains more on AMD (Section 5.4).
* AVX-512 compares-into-mask have 3-cycle latency and limited ports.
* Scalar ADC/SBB are as cheap as ADD/SUB, and 32/64-bit MUL are equal
  (the Section 4.2 observations grounding PISA).

**MQX instructions appear in these tables with the characteristics of
their Table 3 proxy instructions** - this module *is* the PISA projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import UnknownInstructionError

Ports = Tuple[Tuple[str, ...], ...]


@dataclass(frozen=True)
class UopInfo:
    """Execution characteristics of one instruction on one microarch."""

    ports: Ports
    latency: int
    weight: float = 1.0

    @property
    def uops(self) -> int:
        """Number of uops this instruction decodes into."""
        return len(self.ports)


@dataclass(frozen=True)
class Microarch:
    """One modeled microarchitecture."""

    name: str
    ports: Tuple[str, ...]
    decode_width: int
    rob_size: int
    table: Dict[str, UopInfo] = field(repr=False, default_factory=dict)

    def lookup(self, op: str) -> UopInfo:
        """Look up an instruction, raising on unknown mnemonics."""
        try:
            return self.table[op]
        except KeyError:
            raise UnknownInstructionError(
                f"no uop data for {op!r} on {self.name}"
            ) from None


def _info(ports: Ports, latency: int, weight: float = 1.0) -> UopInfo:
    return UopInfo(ports=ports, latency=latency, weight=weight)


# ----------------------------------------------------------------------
# Sunny Cove (Intel Xeon 8352Y / Ice Lake-SP)
# ----------------------------------------------------------------------

_ICL_ALU = ("p0", "p1", "p5", "p6")
_ICL_ALU2 = ("p0", "p6")
_ICL_VEC512 = ("p0", "p5")
_ICL_VEC256 = ("p0", "p1", "p5")
_ICL_LOAD = ("p2", "p3")
_ICL_STORE = ("p4",)

_SUNNY_COVE_TABLE: Dict[str, UopInfo] = {
    # --- scalar -------------------------------------------------------
    "mov64": _info(((_ICL_ALU),), 1),
    "add64": _info(((_ICL_ALU),), 1),
    "adc64": _info(((_ICL_ALU2),), 1),
    "sub64": _info(((_ICL_ALU),), 1),
    "sbb64": _info(((_ICL_ALU2),), 1),
    "mul64": _info((("p1",), ("p5",)), 4),
    "imul64": _info((("p1",),), 3),
    "shl64": _info(((_ICL_ALU2),), 1),
    "shr64": _info(((_ICL_ALU2),), 1),
    "shrd64": _info((("p1",),), 3),
    "and64": _info(((_ICL_ALU),), 1),
    "or64": _info(((_ICL_ALU),), 1),
    "xor64": _info(((_ICL_ALU),), 1),
    "cmp64": _info(((_ICL_ALU),), 1),
    "logic8": _info(((_ICL_ALU),), 1),
    "cmov64": _info(((_ICL_ALU2),), 1),
    "div64": _info((("p0",),), 18, weight=15.0),
    "load64": _info(((_ICL_LOAD),), 5),
    "store64": _info(((_ICL_STORE),), 1),
    # Library-overhead pseudo-instructions for the baseline substitutes.
    # "call" models call/return + argument spills; "alloc" models one heap
    # temporary (malloc + free + mpz init/clear + allocator metadata
    # traffic) and issues to a serializing "heap" pseudo-port. The alloc
    # weight is CALIBRATED so the GMP substitute lands at the paper's
    # measured gaps (53x slower than AVX-512 NTT on Intel Xeon, ~1.7x
    # slower than OpenFHE); 100-200 cycles per managed temporary is
    # consistent with glibc malloc/free plus cold metadata.
    "call": _info((_ICL_ALU, _ICL_ALU, _ICL_LOAD, _ICL_STORE), 15, weight=3.0),
    "alloc": _info((("heap",),), 90, weight=160.0),
    # --- AVX-512 (ZMM, two 512-bit ports) -----------------------------
    "vpbroadcastq_zmm": _info((("p5",),), 3),
    "vmovdqu64_load_zmm": _info(((_ICL_LOAD),), 7),
    "vmovdqu64_store_zmm": _info(((_ICL_STORE),), 1),
    "vmovdqa64_zmm": _info(((_ICL_VEC512),), 1),
    "vpaddq_zmm": _info(((_ICL_VEC512),), 1),
    "vpsubq_zmm": _info(((_ICL_VEC512),), 1),
    "vpaddq_masked_zmm": _info(((_ICL_VEC512),), 1),
    "vpsubq_masked_zmm": _info(((_ICL_VEC512),), 1),
    "vpcmpuq_zmm": _info((("p5",),), 3),
    "vpcmpq_zmm": _info((("p5",),), 3),
    "vpblendmq_zmm": _info(((_ICL_VEC512),), 1),
    "vpmullq_zmm": _info(((_ICL_VEC512), (_ICL_VEC512), (_ICL_VEC512)), 15),
    "vpmuludq_zmm": _info(((_ICL_VEC512),), 5),
    # AVX-512 IFMA (Ice Lake-SP supports it natively; single uop).
    "vpmadd52luq_zmm": _info(((_ICL_VEC512),), 4),
    "vpmadd52huq_zmm": _info(((_ICL_VEC512),), 4),
    "vpsrlq_zmm": _info((("p0",),), 1),
    "vpsllq_zmm": _info((("p0",),), 1),
    "vpandq_zmm": _info(((_ICL_VEC512),), 1),
    "vporq_zmm": _info(((_ICL_VEC512),), 1),
    "vpxorq_zmm": _info(((_ICL_VEC512),), 1),
    "vpmaxuq_zmm": _info(((_ICL_VEC512),), 1),
    "vpunpcklqdq_zmm": _info((("p5",),), 1),
    "vpunpckhqdq_zmm": _info((("p5",),), 1),
    "vpermt2q_zmm": _info((("p5",),), 3),
    "vpermq_zmm": _info((("p5",),), 3),
    "korb": _info((("p0",),), 1),
    "kandb": _info((("p0",),), 1),
    "kandnb": _info((("p0",),), 1),
    "kxorb": _info((("p0",),), 1),
    "knotb": _info((("p0",),), 1),
    # --- MQX via PISA proxies (Table 3) -------------------------------
    # vpmulwq (widening) and vpmulhq -> vpmullq (microcoded on Intel).
    "vpmulwq_zmm": _info(((_ICL_VEC512), (_ICL_VEC512), (_ICL_VEC512)), 15),
    "vpmulhq_zmm": _info(((_ICL_VEC512), (_ICL_VEC512), (_ICL_VEC512)), 15),
    # vpadcq/vpsbbq -> masked vpaddq/vpsubq.
    "vpadcq_zmm": _info(((_ICL_VEC512),), 1),
    "vpsbbq_zmm": _info(((_ICL_VEC512),), 1),
    "vpadcq_pred_zmm": _info(((_ICL_VEC512),), 1),
    "vpsbbq_pred_zmm": _info(((_ICL_VEC512),), 1),
    # --- AVX2 (YMM, three 256-bit ports) -------------------------------
    "vpbroadcastq_ymm": _info((("p5",),), 3),
    "vmovdqu_load_ymm": _info(((_ICL_LOAD),), 6),
    "vmovdqu_store_ymm": _info(((_ICL_STORE),), 1),
    "vpaddq_ymm": _info(((_ICL_VEC256),), 1),
    "vpsubq_ymm": _info(((_ICL_VEC256),), 1),
    "vpcmpgtq_ymm": _info((("p5",),), 3),
    "vpcmpeqq_ymm": _info((("p0", "p5"),), 1),
    "vpand_ymm": _info(((_ICL_VEC256),), 1),
    "vpandn_ymm": _info(((_ICL_VEC256),), 1),
    "vpor_ymm": _info(((_ICL_VEC256),), 1),
    "vpxor_ymm": _info(((_ICL_VEC256),), 1),
    "vpblendvb_ymm": _info(((_ICL_VEC256), (_ICL_VEC256)), 2),
    "vpmuludq_ymm": _info((("p0", "p1"),), 5),
    "vpmulld_ymm": _info((("p0", "p1"),), 10),
    "guard": _info(((_ICL_VEC512),), 1),
    "vpsrlq_ymm": _info((("p0", "p1"),), 1),
    "vpsllq_ymm": _info((("p0", "p1"),), 1),
    "vpunpcklqdq_ymm": _info((("p1", "p5"),), 1),
    "vpunpckhqdq_ymm": _info((("p1", "p5"),), 1),
    "vpermq_ymm": _info((("p5",),), 3),
    "vperm2i128_ymm": _info((("p5",),), 3),
}

SUNNY_COVE = Microarch(
    name="sunny_cove",
    ports=("p0", "p1", "p2", "p3", "p4", "p5", "p6", "heap"),
    decode_width=5,
    rob_size=352,
    table=_SUNNY_COVE_TABLE,
)


# ----------------------------------------------------------------------
# Zen 4 (AMD EPYC 9654)
# ----------------------------------------------------------------------
# 256-bit vector datapath; 512-bit operations are double-pumped, modeled
# as weight=2 occupancy on the vector pipes. vpmullq is a native fast
# single uop - the structural reason MQX gains 3.7x on AMD vs 2.1x on
# Intel (Section 5.4).

_ZEN_ALU = ("a0", "a1", "a2", "a3")
_ZEN_VEC_ALL = ("fp0", "fp1", "fp2", "fp3")
_ZEN_VEC_MUL = ("fp0", "fp1")
_ZEN_VEC_SHIFT = ("fp1", "fp2")
_ZEN_LOAD = ("ld0", "ld1", "ld2")
_ZEN_STORE = ("st0",)

_ZEN4_TABLE: Dict[str, UopInfo] = {
    # --- scalar -------------------------------------------------------
    "mov64": _info(((_ZEN_ALU),), 1),
    "add64": _info(((_ZEN_ALU),), 1),
    "adc64": _info(((_ZEN_ALU),), 1),
    "sub64": _info(((_ZEN_ALU),), 1),
    "sbb64": _info(((_ZEN_ALU),), 1),
    "mul64": _info((("a1",), ("a1",)), 3),
    "imul64": _info((("a1",),), 3),
    "shl64": _info(((_ZEN_ALU),), 1),
    "shr64": _info(((_ZEN_ALU),), 1),
    "shrd64": _info((("a1", "a2"),), 2),
    "and64": _info(((_ZEN_ALU),), 1),
    "or64": _info(((_ZEN_ALU),), 1),
    "xor64": _info(((_ZEN_ALU),), 1),
    "cmp64": _info(((_ZEN_ALU),), 1),
    "logic8": _info(((_ZEN_ALU),), 1),
    "cmov64": _info(((_ZEN_ALU),), 1),
    "div64": _info((("a1",),), 19, weight=11.0),
    "load64": _info(((_ZEN_LOAD),), 4),
    "store64": _info(((_ZEN_STORE),), 1),
    "call": _info((_ZEN_ALU, _ZEN_ALU, _ZEN_LOAD, _ZEN_STORE), 14, weight=3.0),
    "alloc": _info((("heap",),), 85, weight=150.0),
    # --- AVX-512 (double-pumped: weight 2) -----------------------------
    "vpbroadcastq_zmm": _info((("fp1", "fp2"),), 3, weight=2.0),
    "vmovdqu64_load_zmm": _info(((_ZEN_LOAD),), 7, weight=2.0),
    "vmovdqu64_store_zmm": _info(((_ZEN_STORE),), 1, weight=2.0),
    "vmovdqa64_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpaddq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpsubq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpaddq_masked_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpsubq_masked_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpcmpuq_zmm": _info(((_ZEN_VEC_MUL),), 3, weight=2.0),
    "vpcmpq_zmm": _info(((_ZEN_VEC_MUL),), 3, weight=2.0),
    "vpblendmq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpmullq_zmm": _info(((_ZEN_VEC_MUL),), 3, weight=2.0),
    "vpmuludq_zmm": _info(((_ZEN_VEC_MUL),), 3, weight=2.0),
    # AVX-512 IFMA on Zen 4: single uop on the multiply pipes.
    "vpmadd52luq_zmm": _info(((_ZEN_VEC_MUL),), 4, weight=2.0),
    "vpmadd52huq_zmm": _info(((_ZEN_VEC_MUL),), 4, weight=2.0),
    "vpsrlq_zmm": _info(((_ZEN_VEC_SHIFT),), 1, weight=2.0),
    "vpsllq_zmm": _info(((_ZEN_VEC_SHIFT),), 1, weight=2.0),
    "vpandq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vporq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpxorq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpmaxuq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpunpcklqdq_zmm": _info(((_ZEN_VEC_SHIFT),), 1, weight=2.0),
    "vpunpckhqdq_zmm": _info(((_ZEN_VEC_SHIFT),), 1, weight=2.0),
    "vpermt2q_zmm": _info(((_ZEN_VEC_SHIFT),), 4, weight=2.0),
    "vpermq_zmm": _info(((_ZEN_VEC_SHIFT),), 4, weight=2.0),
    "korb": _info(((_ZEN_VEC_MUL),), 1),
    "kandb": _info(((_ZEN_VEC_MUL),), 1),
    "kandnb": _info(((_ZEN_VEC_MUL),), 1),
    "kxorb": _info(((_ZEN_VEC_MUL),), 1),
    "knotb": _info(((_ZEN_VEC_MUL),), 1),
    # --- MQX via PISA proxies (Table 3) -------------------------------
    "vpmulwq_zmm": _info(((_ZEN_VEC_MUL),), 3, weight=2.0),
    "vpmulhq_zmm": _info(((_ZEN_VEC_MUL),), 3, weight=2.0),
    "vpadcq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpsbbq_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpadcq_pred_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    "vpsbbq_pred_zmm": _info(((_ZEN_VEC_ALL),), 1, weight=2.0),
    # --- AVX2 (native 256-bit, weight 1) --------------------------------
    "vpbroadcastq_ymm": _info((("fp1", "fp2"),), 3),
    "vmovdqu_load_ymm": _info(((_ZEN_LOAD),), 7),
    "vmovdqu_store_ymm": _info(((_ZEN_STORE),), 1),
    "vpaddq_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpsubq_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpcmpgtq_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpcmpeqq_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpand_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpandn_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpor_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpxor_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpblendvb_ymm": _info(((_ZEN_VEC_ALL),), 1),
    "vpmuludq_ymm": _info(((_ZEN_VEC_MUL),), 3),
    "vpmulld_ymm": _info(((_ZEN_VEC_MUL),), 4),
    "guard": _info(((_ZEN_VEC_ALL),), 1, weight=1.5),
    "vpsrlq_ymm": _info(((_ZEN_VEC_SHIFT),), 1),
    "vpsllq_ymm": _info(((_ZEN_VEC_SHIFT),), 1),
    "vpunpcklqdq_ymm": _info(((_ZEN_VEC_SHIFT),), 1),
    "vpunpckhqdq_ymm": _info(((_ZEN_VEC_SHIFT),), 1),
    "vpermq_ymm": _info(((_ZEN_VEC_SHIFT),), 4),
    "vperm2i128_ymm": _info(((_ZEN_VEC_SHIFT),), 3),
}

ZEN4 = Microarch(
    name="zen4",
    ports=(
        "a0", "a1", "a2", "a3",
        "fp0", "fp1", "fp2", "fp3",
        "ld0", "ld1", "ld2", "st0",
        "heap",
    ),
    decode_width=6,
    rob_size=320,
    table=_ZEN4_TABLE,
)


_MICROARCHS = {"sunny_cove": SUNNY_COVE, "zen4": ZEN4}


def get_microarch(name: str) -> Microarch:
    """Look up a modeled microarchitecture by name."""
    try:
        return _MICROARCHS[name]
    except KeyError:
        raise UnknownInstructionError(
            f"unknown microarchitecture {name!r}; available: {sorted(_MICROARCHS)}"
        ) from None
