"""Cache-hierarchy / bandwidth model.

The paper's Section 5.4 hypothesis - MQX NTT performance degrading at
n = 2^16 on Intel Xeon because each stage's ~2 MB working set spills the
1.28 MB per-core L2 - is exactly the effect this model captures: runtime
per block is ``max(compute_cycles, memory_cycles)`` (a roofline-style
overlap assumption), where memory cycles come from the per-level sustained
bandwidth of the smallest cache level that holds the working set.

Bandwidths are per-core sustained figures in bytes/cycle, approximated
from vendor documentation; as with the uop tables, the *transition points*
(cache capacities, Table 4) are the real numbers and drive the shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import MachineModelError
from repro.machine.cpu import CpuSpec
from repro.obs.hooks import record_cache_access, record_cache_traffic

#: Level names, index-aligned with :attr:`CacheModel.levels`.
_LEVEL_NAMES = ("L1", "L2", "L3", "DRAM")

#: Per-core sustained bandwidth in bytes/cycle by level and microarch.
#: Ice Lake's mesh interconnect limits one core's L3 bandwidth far below
#: Zen 4's CCD-local L3 - which is why the paper's L2-spill effect at
#: n = 2^16 is pronounced on Intel Xeon (Section 5.4).
_BANDWIDTHS = {
    "sunny_cove": {"L1": 128.0, "L2": 40.0, "L3": 8.0, "DRAM": 4.5},
    "zen4": {"L1": 128.0, "L2": 48.0, "L3": 13.5, "DRAM": 5.0},
}
_DEFAULT_BW = {"L1": 128.0, "L2": 40.0, "L3": 10.0, "DRAM": 5.0}


@dataclass(frozen=True)
class MemoryTraffic:
    """Bytes moved by one kernel block (from trace load/store tags)."""

    load_bytes: int
    store_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.load_bytes + self.store_bytes


class CacheModel:
    """Working-set-aware bandwidth model for one CPU."""

    def __init__(self, cpu: CpuSpec) -> None:
        self.cpu = cpu
        bw = _BANDWIDTHS.get(cpu.microarch, _DEFAULT_BW)
        #: (capacity_bytes, bytes_per_cycle) from fastest to slowest; the
        #: DRAM level has unbounded capacity.
        self.levels: List[Tuple[float, float]] = [
            (cpu.l1d_bytes, bw["L1"]),
            (cpu.l2_bytes_per_core, bw["L2"]),
            # A single core does not get the whole shared L3 to itself;
            # model the per-core share (min of share and full capacity).
            (min(cpu.l3_bytes, cpu.l3_bytes / cpu.cores * 8), bw["L3"]),
            (float("inf"), bw["DRAM"]),
        ]

    def _level_index(self, working_set_bytes: float) -> int:
        """Index of the smallest level holding the working set."""
        for index, (capacity, _) in enumerate(self.levels):
            if working_set_bytes <= capacity:
                return index
        raise AssertionError("unreachable: DRAM level has infinite capacity")

    def bandwidth_for(self, working_set_bytes: float) -> float:
        """Sustained bytes/cycle for a streaming working set of this size."""
        if working_set_bytes < 0:
            raise MachineModelError("working set must be non-negative")
        index = self._level_index(working_set_bytes)
        record_cache_access(_LEVEL_NAMES[index])
        return self.levels[index][1]

    def memory_cycles(
        self, traffic: MemoryTraffic, working_set_bytes: float
    ) -> float:
        """Cycles needed to move one block's bytes at the working-set BW."""
        record_cache_traffic(traffic.total_bytes)
        return traffic.total_bytes / self.bandwidth_for(working_set_bytes)

    def level_name(self, working_set_bytes: float) -> str:
        """Which level the working set streams from (for reporting)."""
        return _LEVEL_NAMES[self._level_index(working_set_bytes)]
