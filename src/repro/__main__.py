"""Command-line interface.

Usage::

    python -m repro info
    python -m repro estimate --kernel ntt --backend mqx --cpu amd_epyc_9654 --logn 14
    python -m repro estimate --kernel blas --operation vector_mul --backend avx512
    python -m repro validate
    python -m repro mca [--microarch sunny_cove]
    python -m repro sol --vendor amd
    python -m repro par --workers 4 --logn 12 --batch 16
    python -m repro chaos --workers 2 --seed 0 --export chrome
    python -m repro timeline --workers 2 --min-lanes 2 --export chrome
    python -m repro experiments [--output EXPERIMENTS.md]
    python -m repro profile --experiment headline --export chrome
    python -m repro attrib --workers 2 --logn 10 --batch 8
    python -m repro perfgate --show-history
    python -m repro top --once
    python -m repro incidents --dir ci-obs --fail-empty
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.arith.primes import default_modulus
from repro.kernels import Backend, get_backend
from repro.machine.cpu import get_cpu, list_cpus


def _cmd_info(args: argparse.Namespace) -> int:
    q = default_modulus()
    print("backends:", ", ".join(Backend.available()))
    print("cpus:", ", ".join(list_cpus()))
    print(f"default modulus: {q} ({q.bit_length()} bits)")
    return 0


#: Backend names the ``estimate`` command accepts (ISA kernels plus the
#: two modeled baselines).
ESTIMATE_BACKENDS = ("scalar", "avx2", "avx512", "mqx", "gmp", "openfhe")


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.blas.ops import BLAS_OPERATIONS
    from repro.errors import ReproError
    from repro.perf.estimator import (
        estimate_baseline_blas,
        estimate_baseline_ntt,
        estimate_blas,
        estimate_ntt,
    )

    q = default_modulus()
    try:
        cpu = get_cpu(args.cpu)
        if args.kernel == "ntt":
            n = 1 << args.logn
            if args.backend in ("gmp", "openfhe"):
                est = estimate_baseline_ntt(args.backend, n, q, cpu)
            else:
                est = estimate_ntt(
                    n, q, get_backend(args.backend), cpu, args.algorithm
                )
            print(
                f"{args.backend} NTT n=2^{args.logn} on {cpu.name}: "
                f"{est.ns / 1000:.2f} us ({est.ns_per_butterfly:.2f} ns/butterfly, "
                f"{'compute' if est.compute_bound else 'memory'}-bound, "
                f"{est.memory_level})"
            )
        else:
            if args.backend in ("gmp", "openfhe"):
                est = estimate_baseline_blas(
                    args.backend, args.operation, args.length, q, cpu
                )
            else:
                est = estimate_blas(
                    args.operation, args.length, q, get_backend(args.backend), cpu
                )
            print(
                f"{args.backend} {args.operation} length {args.length} on "
                f"{cpu.name}: {est.ns_per_element:.2f} ns/element"
            )
    except (ReproError, KeyError) as exc:
        print(
            f"estimate: {exc} "
            f"(backends: {', '.join(ESTIMATE_BACKENDS)}; "
            f"cpus: {', '.join(list_cpus())}; "
            f"blas operations: {', '.join(BLAS_OPERATIONS)})",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.pisa.validation import max_absolute_error, validate_pisa

    cases = validate_pisa()
    for case in cases:
        print(
            f"{case.cpu:18s} {case.target_intrinsic:24s} "
            f"epsilon = {case.relative_error_pct:+6.2f}%"
        )
    worst = max_absolute_error(cases)
    print(f"max |epsilon| = {worst:.2f}% (paper bound: 8%)")
    return 0 if worst < 8.0 else 1


def _cmd_mca(args: argparse.Namespace) -> int:
    from repro.experiments.listing4 import reports

    print(reports(microarch_name=args.microarch))
    return 0


def _cmd_sol(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.roofline.compare import (
        SOL_TARGETS,
        average_speedup,
        figure7_comparison,
    )

    try:
        rows = figure7_comparison(args.vendor)
    except (ReproError, KeyError):
        print(
            f"sol: unknown vendor {args.vendor!r} "
            f"(vendors: {', '.join(sorted(SOL_TARGETS))})",
            file=sys.stderr,
        )
        return 2
    for design in ("RPU", "FPMM", "MoMA", "OpenFHE (32-core)"):
        print(
            f"MQX-SOL vs {design:18s}: "
            f"{average_speedup(rows, design):10.2f}x"
        )
    return 0


def _cmd_par(args: argparse.Namespace) -> int:
    import random
    import time

    from repro.obs import observing
    from repro.par import ParNtt, ParallelExecutor
    from repro.rns.basis import RnsBasis
    from repro.rns.poly import RnsPolynomialRing

    n = 1 << args.logn
    rng = random.Random(args.seed)
    with observing() as session:
        with ParallelExecutor(workers=args.workers) as pool:
            print(f"pool: {pool.workers} workers")
            basis = RnsBasis.generate(args.limbs, 62, 2 * n)
            ring = RnsPolynomialRing(
                n, basis, get_backend("mqx"), engine="parallel"
            )
            f = ring.encode([rng.randrange(basis.modulus) for _ in range(n)])
            g = ring.encode([rng.randrange(basis.modulus) for _ in range(n)])
            started = time.perf_counter()
            ring.mul(f, g)
            mul_s = time.perf_counter() - started
            print(
                f"rns mul   n=2^{args.logn}, {args.limbs} limbs fused: "
                f"{mul_s * 1e3:8.2f} ms"
            )

            q = basis.primes[0]
            plan = ParNtt(n, q, executor=pool)
            batch = [
                [rng.randrange(q) for _ in range(n)] for _ in range(args.batch)
            ]
            started = time.perf_counter()
            plan.forward(batch)
            ntt_s = time.perf_counter() - started
            print(
                f"ntt batch {args.batch} x 2^{args.logn} forward:       "
                f"{ntt_s * 1e3:8.2f} ms"
            )
        for name in (
            "par.shards.dispatched",
            "par.shards.completed",
            "par.retries",
            "par.fallbacks",
            "par.workers.restarted",
        ):
            metric = session.metrics.get(name)
            value = metric.value if metric is not None else 0
            print(f"{name}: {value:g}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resil.chaos import run_chaos

    return run_chaos(
        workers=args.workers or 2,
        seed=args.seed,
        logn=args.logn,
        batch=args.batch,
        limbs=args.limbs,
        crash=args.crash,
        hang=args.hang,
        corrupt=args.corrupt,
        slow=args.slow,
        task_timeout=args.task_timeout,
        audit=args.audit,
        rounds=args.rounds,
        export=args.export,
        output_dir=args.output_dir,
        incident_dir=args.incident_dir,
    )


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    return run_top(
        url=args.url,
        once=args.once,
        interval_s=args.interval,
        iterations=args.iterations,
        engine=args.engine,
        logn=args.logn,
        requests=args.requests,
        slo_p99_ms=args.slo_p99_ms,
    )


def _cmd_incidents(args: argparse.Namespace) -> int:
    from repro.obs.flight import run_incidents

    return run_incidents(
        directory=args.dir, fail_empty=args.fail_empty
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import random
    import signal

    from repro.arith.primes import find_ntt_prime
    from repro.errors import ServeOverloadError
    from repro.obs import observing
    from repro.serve import ReproService, ServeConfig

    n = 1 << args.logn
    q = find_ntt_prime(60, 2 * n)
    rng = random.Random(args.seed)

    async def main() -> int:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-unix event loops
                pass
        service = ReproService(
            config=ServeConfig(
                engine=args.engine,
                max_batch=args.max_batch,
                max_wait_s=args.max_wait_ms / 1e3,
                max_queue_depth=args.queue_depth,
                workers=args.workers,
            )
        )
        await service.start()
        print(
            f"serving: engine={args.engine}, n=2^{args.logn}, "
            f"{args.rate:g} req/s synthetic load, max_batch={args.max_batch}, "
            f"window={args.max_wait_ms:g} ms — Ctrl-C drains and exits"
        )

        async def traffic() -> None:
            interval = 1.0 / args.rate if args.rate > 0 else 0.1
            pending = set()
            while not stop.is_set():
                payload = (
                    [rng.randrange(q) for _ in range(n)],
                    [rng.randrange(q) for _ in range(n)],
                )
                try:
                    task = loop.create_task(
                        service.submit("polymul", payload, n, q)
                    )
                    pending.add(task)
                    task.add_done_callback(pending.discard)
                except ServeOverloadError:
                    pass
                try:
                    await asyncio.wait_for(stop.wait(), timeout=interval)
                except asyncio.TimeoutError:
                    pass
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

        driver = loop.create_task(traffic())
        if args.duration is not None:
            loop.call_later(args.duration, stop.set)
        await stop.wait()
        print("shutting down: draining in-flight batches...")
        await driver
        await service.close(drain=True)
        stats = service.stats
        print(
            f"served {stats['completed']} ok, {stats['failed']} failed, "
            f"{stats['shed']} shed over {stats['batches']} batches "
            f"({stats['submitted']} submitted)"
        )
        return 0

    with observing():
        return asyncio.run(main())


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import run_loadgen

    formats = [] if args.export == "none" else args.export.split("+")
    return run_loadgen(
        logn=args.logn,
        requests=args.requests,
        baseline_requests=args.baseline_requests,
        workers=args.workers,
        seed=args.seed,
        engine=args.engine,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        tenants=args.tenants,
        slo_p99_ms=args.slo_p99_ms,
        min_gain=args.min_gain,
        gate_tail=args.gate_tail,
        snapshot=args.snapshot,
        export_formats=formats,
        output_dir=args.output_dir,
    )


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs.timeline import run_timeline

    formats = [] if args.export == "none" else args.export.split("+")
    return run_timeline(
        workers=args.workers,
        logn=args.logn,
        batch=args.batch,
        limbs=args.limbs,
        rounds=args.rounds,
        seed=args.seed,
        crash=args.crash,
        export_formats=formats,
        output_dir=args.output_dir,
        min_lanes=args.min_lanes,
        overhead_gate=args.overhead_gate,
    )


def _cmd_codegen(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.codegen.c_emitter import generate_kernel_source
    from repro.codegen.mqx_header import generate_mqx_header

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    q = default_modulus()
    (out / "mqx.h").write_text(generate_mqx_header())
    written = ["mqx.h"]
    for backend_name in ("scalar", "avx2", "avx512", "mqx"):
        backend = get_backend(backend_name)
        for kernel in ("addmod", "submod", "mulmod", "butterfly"):
            source = generate_kernel_source(backend, kernel, q)
            name = f"{kernel}128_{backend_name}.c"
            (out / name).write_text(source)
            written.append(name)
    print(f"wrote {len(written)} files to {out}/: " + ", ".join(written[:5]) + ", ...")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    return runner_main(["runner", args.output])


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.profile import (
        available_experiments,
        export_profile,
        format_summary,
        profile_experiment,
        record_snapshot,
    )

    try:
        report = profile_experiment(args.experiment)
    except ObservabilityError:
        print(
            f"unknown experiment {args.experiment!r}; choose from: "
            + ", ".join(available_experiments()),
            file=sys.stderr,
        )
        return 2
    print(format_summary(report))

    formats = [] if args.export == "none" else args.export.split("+")
    for path in export_profile(report, args.output_dir, formats):
        print(f"wrote {path}")

    if not args.no_snapshot:
        diff = record_snapshot(
            report, snapshot_path=args.snapshot, threshold=args.threshold
        )
        print(f"recorded snapshot to {args.snapshot}")
        if diff is not None:
            print()
            print(diff.format())
    return 0


def _cmd_attrib(args: argparse.Namespace) -> int:
    from repro.obs.attrib import run_attrib

    return run_attrib(
        workers=args.workers,
        logn=args.logn,
        batch=args.batch,
        limbs=args.limbs,
        rounds=args.rounds,
        seed=args.seed,
        json_path=None if args.no_json else args.json,
        output_dir=args.output_dir,
        input_path=args.input,
    )


def _cmd_perfgate(args: argparse.Namespace) -> int:
    from repro.obs.trajectory import run_perfgate, run_selftest

    if args.selftest:
        return run_selftest()
    return run_perfgate(
        files=args.files,
        window=args.window,
        mad_k=args.mad_k,
        rel_floor=args.rel_floor,
        min_runs=args.min_runs,
        all_keys=args.all_keys,
        show_history=args.show_history,
        json_path=args.json,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Cryptographic-kernel reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list backends, CPUs, default modulus")

    est = sub.add_parser("estimate", help="model a kernel's runtime")
    est.add_argument("--kernel", choices=["ntt", "blas"], default="ntt")
    est.add_argument(
        "--backend",
        default="mqx",
        choices=["scalar", "avx2", "avx512", "mqx", "gmp", "openfhe"],
    )
    est.add_argument("--cpu", default="amd_epyc_9654", choices=list_cpus())
    est.add_argument("--logn", type=int, default=14)
    est.add_argument(
        "--algorithm", choices=["schoolbook", "karatsuba"], default="schoolbook"
    )
    est.add_argument("--operation", default="vector_mul")
    est.add_argument("--length", type=int, default=1024)

    sub.add_parser("validate", help="run the PISA validation (Table 6)")

    mca = sub.add_parser("mca", help="print Listing 4 MCA reports")
    mca.add_argument(
        "--microarch", default="sunny_cove", choices=["sunny_cove", "zen4"]
    )

    sol = sub.add_parser("sol", help="Figure 7 speed-of-light summary")
    sol.add_argument("--vendor", choices=["intel", "amd"], default="amd")

    par = sub.add_parser(
        "par",
        help="demo the sharded process-pool engine (engine='parallel')",
    )
    par.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cores)"
    )
    par.add_argument("--logn", type=int, default=10)
    par.add_argument("--batch", type=int, default=8)
    par.add_argument("--limbs", type=int, default=4)
    par.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection gauntlet for the parallel engine "
        "(crashes, hangs, corruption; verifies bit-exact recovery)",
    )
    chaos.add_argument(
        "--workers", type=int, default=2, help="pool size (default: 2)"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--logn", type=int, default=8)
    chaos.add_argument("--batch", type=int, default=8)
    chaos.add_argument("--limbs", type=int, default=3)
    chaos.add_argument(
        "--crash", type=float, default=0.2, help="per-shard crash rate"
    )
    chaos.add_argument(
        "--hang", type=float, default=0.0,
        help="per-shard hang rate (each hang costs ~task-timeout seconds)",
    )
    chaos.add_argument(
        "--corrupt", type=float, default=0.2,
        help="per-shard payload-corruption rate",
    )
    chaos.add_argument(
        "--slow", type=float, default=0.15, help="per-shard straggler rate"
    )
    chaos.add_argument("--task-timeout", type=float, default=3.0)
    chaos.add_argument(
        "--audit", type=float, default=0.25,
        help="fraction of shards re-verified on the faithful engine",
    )
    chaos.add_argument(
        "--rounds", type=int, default=2, help="batches per scenario"
    )
    chaos.add_argument(
        "--export",
        default="none",
        choices=["none", "chrome", "jsonl", "chrome+jsonl"],
        help="export the gauntlet's merged trace (worker lanes included)",
    )
    chaos.add_argument(
        "--output-dir", default=".", help="directory for exported trace files"
    )
    chaos.add_argument(
        "--incident-dir",
        default=None,
        help="attach a flight recorder and require the breaker-trip "
        "scenario to dump an incident-*.json into this directory",
    )

    timeline = sub.add_parser(
        "timeline",
        help="run a parallel workload with cross-process telemetry and "
        "emit the merged per-worker timeline + utilization table",
    )
    timeline.add_argument(
        "--workers", type=int, default=2, help="pool size (default: 2)"
    )
    timeline.add_argument("--logn", type=int, default=10)
    timeline.add_argument("--batch", type=int, default=8)
    timeline.add_argument("--limbs", type=int, default=4)
    timeline.add_argument(
        "--rounds", type=int, default=3, help="workload repetitions"
    )
    timeline.add_argument("--seed", type=int, default=0)
    timeline.add_argument(
        "--crash",
        type=int,
        default=0,
        help="crash the workers of the first N dispatched shards "
        "(their retries show up on a different lane)",
    )
    timeline.add_argument(
        "--export",
        default="chrome",
        choices=["none", "chrome", "jsonl", "chrome+jsonl"],
        help="merged trace export format(s)",
    )
    timeline.add_argument(
        "--output-dir", default=".", help="directory for exported trace files"
    )
    timeline.add_argument(
        "--min-lanes",
        type=int,
        default=0,
        help="fail unless the merged trace shows at least this many "
        "distinct worker lanes (CI smoke)",
    )
    timeline.add_argument(
        "--overhead-gate",
        type=float,
        default=None,
        help="fail if enabling telemetry slows the workload by more than "
        "this fraction (e.g. 0.10 for 10%%)",
    )

    attrib = sub.add_parser(
        "attrib",
        help="attribute a parallel batch's wall time to overhead "
        "categories and report measured vs ideal speedup",
    )
    attrib.add_argument(
        "--workers", type=int, default=2, help="pool size (default: 2)"
    )
    attrib.add_argument("--logn", type=int, default=10)
    attrib.add_argument("--batch", type=int, default=8)
    attrib.add_argument("--limbs", type=int, default=4)
    attrib.add_argument(
        "--rounds", type=int, default=2, help="workload repetitions"
    )
    attrib.add_argument("--seed", type=int, default=0)
    attrib.add_argument(
        "--input",
        default=None,
        help="attribute an existing JSONL session export instead of "
        "running a fresh batch",
    )
    attrib.add_argument(
        "--json",
        default="attrib.json",
        help="machine-readable report filename (under --output-dir)",
    )
    attrib.add_argument(
        "--no-json", action="store_true", help="skip the JSON report"
    )
    attrib.add_argument(
        "--output-dir", default=".", help="directory for the JSON report"
    )

    gate = sub.add_parser(
        "perfgate",
        help="noise-aware regression gate over the BENCH_*.json snapshot "
        "histories (median + MAD thresholds)",
    )
    gate.add_argument(
        "--files",
        nargs="+",
        default=[
            "BENCH_fast.json",
            "BENCH_par.json",
            "BENCH_pipeline.json",
            "BENCH_serve.json",
        ],
        help="snapshot files to gate (missing files are skipped)",
    )
    gate.add_argument(
        "--window", type=int, default=8,
        help="historical runs per key the baseline medians over",
    )
    gate.add_argument(
        "--mad-k", type=float, default=4.0,
        help="MAD multiplier for the regression threshold",
    )
    gate.add_argument(
        "--rel-floor", type=float, default=0.10,
        help="minimum relative tolerance even for noiseless histories",
    )
    gate.add_argument(
        "--min-runs", type=int, default=2,
        help="historical runs required before a key is gated",
    )
    gate.add_argument(
        "--all-keys",
        action="store_true",
        help="gate every key, not just lower-is-better unit suffixes",
    )
    gate.add_argument(
        "--show-history",
        action="store_true",
        help="print the unified snapshot trajectory (git SHA, timestamp, "
        "host) before gating",
    )
    gate.add_argument(
        "--json", default=None, help="write the gate report as JSON here"
    )
    gate.add_argument(
        "--selftest",
        action="store_true",
        help="record real timings in a scratch store, gate a rerun, then "
        "verify an injected 2x regression is flagged",
    )

    serve = sub.add_parser(
        "serve",
        help="run the async batching service under synthetic traffic "
        "until SIGINT/SIGTERM (drains in-flight batches on shutdown)",
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument(
        "--engine", default="parallel",
        choices=["parallel", "fast", "faithful"],
    )
    serve.add_argument("--logn", type=int, default=8)
    serve.add_argument(
        "--rate", type=float, default=200.0,
        help="synthetic offered load, requests/s",
    )
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument(
        "--max-wait-ms", type=float, default=5.0,
        help="coalesce window (latency a sparse key pays to batch)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=1024,
        help="admitted-backlog cap before queue_full shedding",
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="stop after this many seconds (default: run until signalled)",
    )
    serve.add_argument("--seed", type=int, default=0)

    lg = sub.add_parser(
        "loadgen",
        help="deterministic serve-layer benchmark: p50/p99 per op, "
        "coalesce gain vs one-at-a-time, overload shed accounting",
    )
    lg.add_argument("--workers", type=int, default=2)
    lg.add_argument(
        "--engine", default="parallel",
        choices=["parallel", "fast", "faithful"],
    )
    lg.add_argument("--logn", type=int, default=8)
    lg.add_argument("--requests", type=int, default=192)
    lg.add_argument("--baseline-requests", type=int, default=48)
    lg.add_argument("--max-batch", type=int, default=32)
    lg.add_argument("--max-wait-ms", type=float, default=5.0)
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument(
        "--min-gain", type=float, default=3.0,
        help="required batched-vs-baseline throughput ratio",
    )
    lg.add_argument(
        "--gate-tail", type=float, default=50.0,
        help="fail if batched p99 exceeds this multiple of p50",
    )
    lg.add_argument(
        "--tenants", type=int, default=4,
        help="synthetic tenants the batched phase rotates over",
    )
    lg.add_argument(
        "--slo-p99-ms", type=float, default=None,
        help="declare a p99 latency objective on the batched service "
        "(publishes serve.slo.* and arms the slo_burn trigger)",
    )
    lg.add_argument(
        "--snapshot", default=None,
        help="perf-snapshot history file (e.g. BENCH_serve.json)",
    )
    lg.add_argument(
        "--export", default="none", choices=["none", "chrome"],
        help="export the run's merged trace (worker lanes included)",
    )
    lg.add_argument("--output-dir", default=".")

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over the serve layer (rps, per-op "
        "p50/p99 vs SLO, backlog, shed/degrade, breaker, slots, arena)",
    )
    top.add_argument(
        "--url", default=None,
        help="OpenMetrics endpoint to scrape (e.g. http://127.0.0.1:9100"
        "/metrics); omit with --once to self-drive a short burst",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit non-zero if a required "
        "panel is empty (CI smoke)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh interval in live mode, seconds",
    )
    top.add_argument(
        "--iterations", type=int, default=None,
        help="stop live mode after this many frames (default: Ctrl-C)",
    )
    top.add_argument(
        "--engine", default="fast",
        choices=["parallel", "fast", "faithful"],
        help="engine for the self-driven --once burst",
    )
    top.add_argument("--logn", type=int, default=6)
    top.add_argument(
        "--requests", type=int, default=96,
        help="requests in the self-driven --once burst",
    )
    top.add_argument(
        "--slo-p99-ms", type=float, default=250.0,
        help="SLO target the self-driven burst declares",
    )

    inc = sub.add_parser(
        "incidents",
        help="list and summarize flight-recorder incident dumps "
        "(incident-*.json)",
    )
    inc.add_argument(
        "--dir", default=".", help="directory holding incident-*.json"
    )
    inc.add_argument(
        "--fail-empty", action="store_true",
        help="exit non-zero when no incidents are found (CI assertion)",
    )

    exp = sub.add_parser("experiments", help="regenerate EXPERIMENTS.md")
    exp.add_argument("--output", default="EXPERIMENTS.md")

    gen = sub.add_parser(
        "codegen", help="emit C-with-intrinsics kernels + mqx.h (artifact)"
    )
    gen.add_argument("--output", default="generated")

    prof = sub.add_parser(
        "profile",
        help="run one experiment under the observability layer "
        "(spans + metrics + trace export + perf snapshot)",
    )
    prof.add_argument(
        "--experiment",
        default="headline",
        help="experiment key (e.g. headline, figure5a, table1; an unknown "
        "key prints the full list)",
    )
    prof.add_argument(
        "--export",
        default="none",
        choices=["none", "chrome", "jsonl", "chrome+jsonl"],
        help="trace export format(s); chrome output loads in "
        "chrome://tracing or ui.perfetto.dev",
    )
    prof.add_argument(
        "--output-dir", default=".", help="directory for exported trace files"
    )
    prof.add_argument(
        "--snapshot",
        default="BENCH_pipeline.json",
        help="perf-snapshot history file to record into and diff against",
    )
    prof.add_argument(
        "--no-snapshot",
        action="store_true",
        help="skip recording/diffing the perf snapshot",
    )
    prof.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative change flagged as a snapshot regression",
    )

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "codegen": _cmd_codegen,
    "estimate": _cmd_estimate,
    "validate": _cmd_validate,
    "mca": _cmd_mca,
    "sol": _cmd_sol,
    "par": _cmd_par,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "chaos": _cmd_chaos,
    "top": _cmd_top,
    "incidents": _cmd_incidents,
    "timeline": _cmd_timeline,
    "experiments": _cmd_experiments,
    "profile": _cmd_profile,
    "attrib": _cmd_attrib,
    "perfgate": _cmd_perfgate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
