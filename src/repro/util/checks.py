"""Argument validation helpers shared across subsystems.

Raising :class:`~repro.errors.ArithmeticDomainError` (rather than silently
wrapping) keeps the arithmetic routines honest: the paper's kernels assume
fully reduced inputs and moduli of at most 124 bits, and violating those
assumptions produces silently wrong ciphertext math in a real FHE stack.
"""

from __future__ import annotations

from repro.errors import ArithmeticDomainError, NttParameterError


def check_uint(value: int, bits: int, name: str = "value") -> int:
    """Check that ``value`` is an unsigned integer of at most ``bits`` bits."""
    if not isinstance(value, int):
        raise ArithmeticDomainError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ArithmeticDomainError(f"{name} must be non-negative, got {value}")
    if value >> bits:
        raise ArithmeticDomainError(f"{name} = {value} does not fit in {bits} bits")
    return value


def check_reduced(value: int, modulus: int, name: str = "value") -> int:
    """Check that ``value`` lies in [0, modulus)."""
    if not 0 <= value < modulus:
        raise ArithmeticDomainError(
            f"{name} = {value} is not reduced modulo {modulus}"
        )
    return value


def check_power_of_two(value: int, name: str = "value") -> int:
    """Check that ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise NttParameterError(f"{name} = {value} is not a positive power of two")
    return value


def check_vector_length(length: int, lanes: int, name: str = "vector") -> int:
    """Check that a BLAS vector length is a positive multiple of ``lanes``.

    The paper (Section 3.2) assumes cryptographic vector lengths are powers
    of two and multiples of the SIMD lane count.
    """
    if length <= 0:
        raise ArithmeticDomainError(f"{name} length must be positive, got {length}")
    if length % lanes:
        raise ArithmeticDomainError(
            f"{name} length {length} is not a multiple of the SIMD lane count {lanes}"
        )
    return length
