"""Bit-level helpers for word-oriented big integer arithmetic.

The paper (Section 2.2) represents a 128-bit *double-word* as two 64-bit
machine words: ``[x0, x1] = x0 * 2**64 + x1`` where ``x0`` is the high word.
These helpers implement that representation, plus the wrapping semantics of
fixed-width machine arithmetic that the ISA simulator relies on.
"""

from __future__ import annotations

from typing import List, Tuple

#: Number of bits in a machine word on x86-64 (omega_0 in the paper).
WORD_BITS = 64

MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1
MASK128 = (1 << 128) - 1


def wrap64(value: int) -> int:
    """Reduce ``value`` modulo 2**64 (the behaviour of 64-bit registers)."""
    return value & MASK64


def wrap128(value: int) -> int:
    """Reduce ``value`` modulo 2**128 (the behaviour of ``__int128``)."""
    return value & MASK128


def lo64(value: int) -> int:
    """Return the low 64 bits of ``value`` (the paper's ``LO64`` macro)."""
    return value & MASK64


def hi64(value: int) -> int:
    """Return bits 64..127 of ``value`` (the paper's ``HI64`` macro)."""
    return (value >> 64) & MASK64


def make128(high: int, low: int) -> int:
    """Join two 64-bit words into a 128-bit integer (the ``INT128`` macro)."""
    return ((high & MASK64) << 64) | (low & MASK64)


def split_words(value: int, count: int, width: int = WORD_BITS) -> List[int]:
    """Split ``value`` into ``count`` words of ``width`` bits, little-endian.

    ``split_words(x, 2)`` returns ``[lo64(x), hi64(x)]``. The inverse is
    :func:`join_words`.
    """
    if value < 0:
        raise ValueError(f"cannot split negative value {value}")
    mask = (1 << width) - 1
    words = [(value >> (i * width)) & mask for i in range(count)]
    if value >> (count * width):
        raise ValueError(
            f"value needs more than {count} words of {width} bits"
        )
    return words


def join_words(words: List[int], width: int = WORD_BITS) -> int:
    """Join little-endian ``words`` of ``width`` bits into one integer."""
    value = 0
    for i, word in enumerate(words):
        if word < 0 or word >> width:
            raise ValueError(f"word {i} ({word}) does not fit in {width} bits")
        value |= word << (i * width)
    return value


def bit_length_words(bits: int, width: int = WORD_BITS) -> int:
    """Number of ``width``-bit words needed to hold a ``bits``-bit integer."""
    if bits <= 0:
        raise ValueError("bit length must be positive")
    return -(-bits // width)


def to_dw(value: int) -> Tuple[int, int]:
    """Split a 128-bit integer into the paper's (high, low) double-word pair."""
    if value < 0 or value > MASK128:
        raise ValueError(f"{value} is not a 128-bit unsigned integer")
    return hi64(value), lo64(value)


def from_dw(high: int, low: int) -> int:
    """Inverse of :func:`to_dw`."""
    return make128(high, low)
