"""Shared low-level utilities: bit manipulation and argument validation."""

from repro.util.bits import (
    MASK32,
    MASK64,
    MASK128,
    WORD_BITS,
    bit_length_words,
    hi64,
    lo64,
    make128,
    split_words,
    join_words,
    wrap64,
    wrap128,
)
from repro.util.checks import (
    check_power_of_two,
    check_reduced,
    check_uint,
    check_vector_length,
)

__all__ = [
    "MASK32",
    "MASK64",
    "MASK128",
    "WORD_BITS",
    "bit_length_words",
    "hi64",
    "lo64",
    "make128",
    "split_words",
    "join_words",
    "wrap64",
    "wrap128",
    "check_power_of_two",
    "check_reduced",
    "check_uint",
    "check_vector_length",
]
