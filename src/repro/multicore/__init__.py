"""Multi-core batch scaling model (Section 6's "towards realizing SOL").

The speed-of-light estimate assumes perfectly linear scaling. Real FHE
workloads batch independent NTTs, so scaling is mostly limited by shared
resources - above all memory bandwidth once per-core working sets spill
the private caches. This package models exactly that: a batch of
independent transforms scheduled over C cores, with shared L3/DRAM
bandwidth as the contended resource, reproducing the paper's discussion
that a conservative 48x multi-core speedup still lands within ~1.6x of
the RPU ASIC.
"""

from repro.multicore.model import BatchScalingModel, MulticoreEstimate

__all__ = ["BatchScalingModel", "MulticoreEstimate"]
