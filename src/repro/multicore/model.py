"""Batched-NTT multi-core scaling with shared-bandwidth contention.

Model. A batch of ``B`` independent ``n``-point NTTs runs on ``C`` cores
(one transform per core at a time - the natural FHE mapping, since RNS
limbs and ciphertexts are independent). Per wave of ``C`` transforms:

* compute time: the single-core modeled runtime, rescaled from the
  single-core boost clock to the all-core boost clock;
* memory time: each transform moves its traffic through the cache level
  its working set lives in; private levels (L1/L2) scale with cores, but
  the *shared* L3 and DRAM have fixed aggregate bandwidths that all cores
  divide.

Wave time is ``max(compute, private memory, shared demand / aggregate
bandwidth)``; the batch makespan is ``ceil(B / C)`` waves. Speedup and
parallel efficiency against the single-core baseline follow.

Aggregate bandwidths are per-socket sustained figures (bytes/ns),
approximated from vendor documentation - as elsewhere, the capacities and
the *transition points* drive the shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ExperimentError, MachineModelError
from repro.machine.cache import CacheModel
from repro.machine.cpu import CpuSpec
from repro.perf.estimator import NttEstimate

#: Shared (per-socket) sustained bandwidths in bytes/ns.
_SHARED_BW_BYTES_PER_NS: Dict[str, Dict[str, float]] = {
    # Ice Lake-SP derivative: mesh L3 ~800 GB/s, 8-channel DDR5 ~300 GB/s.
    "sunny_cove": {"L3": 800.0, "DRAM": 300.0},
    # Zen 4: CCD-local L3s aggregate very high, 12-channel DDR5 ~460 GB/s.
    "zen4": {"L3": 2400.0, "DRAM": 460.0},
}


@dataclass(frozen=True)
class MulticoreEstimate:
    """Batch execution estimate on ``cores`` cores."""

    cpu: str
    n: int
    batch: int
    cores: int
    wave_ns: float
    makespan_ns: float
    single_core_ns: float
    speedup: float
    efficiency: float
    bound: str  # "compute" | "private-memory" | "shared-bandwidth"

    @property
    def ns_per_ntt(self) -> float:
        """Amortized time per transform in the batch."""
        return self.makespan_ns / self.batch


class BatchScalingModel:
    """Scale a single-core NTT estimate across a CPU's cores."""

    def __init__(self, cpu: CpuSpec) -> None:
        self.cpu = cpu
        try:
            self.shared_bw = _SHARED_BW_BYTES_PER_NS[cpu.microarch]
        except KeyError:
            raise MachineModelError(
                f"no shared-bandwidth data for microarch {cpu.microarch!r}"
            ) from None
        self.cache = CacheModel(cpu)

    def _per_ntt_traffic_bytes(self, estimate: NttEstimate) -> float:
        """Total bytes one transform moves (all stages)."""
        n = estimate.n
        stages = n.bit_length() - 1
        # Per stage: read both halves + twiddles, write everything.
        return stages * (n * 16 + (n // 2) * 16 + n * 16)

    def run(
        self,
        estimate: NttEstimate,
        batch: int,
        cores: Optional[int] = None,
    ) -> MulticoreEstimate:
        """Estimate a batch of independent transforms.

        ``estimate`` must be a single-core estimate for this model's CPU.
        """
        from repro.machine.cpu import get_cpu

        measured = get_cpu(estimate.cpu)
        if measured.microarch != self.cpu.microarch:
            raise ExperimentError(
                f"estimate is for {estimate.cpu} ({measured.microarch}); "
                f"model is for {self.cpu.key} ({self.cpu.microarch}) - "
                "scale within a vendor family, as in Equation 13"
            )
        if batch < 1:
            raise ExperimentError("batch must be at least 1")
        if cores is None:
            cores = self.cpu.cores
        if not 1 <= cores <= self.cpu.cores:
            raise ExperimentError(
                f"cores must be in [1, {self.cpu.cores}], got {cores}"
            )

        # Rescale the single-core time from the measurement CPU's boost
        # clock to this CPU's all-core boost clock (Equation 13's f-term).
        clock_scale = measured.measured_ghz / self.cpu.allcore_ghz
        per_ntt_ns = estimate.ns * clock_scale

        concurrency = min(cores, batch)
        level = estimate.memory_level
        traffic = self._per_ntt_traffic_bytes(estimate)

        bound = "compute"
        wave_ns = per_ntt_ns
        if level in ("L3", "DRAM"):
            # Shared level: all concurrent transforms divide the aggregate.
            aggregate = self.shared_bw[level if level == "DRAM" else "L3"]
            shared_ns = concurrency * traffic / aggregate
            if shared_ns > wave_ns:
                wave_ns = shared_ns
                bound = "shared-bandwidth"
            elif not estimate.compute_bound:
                bound = "private-memory"
        elif not estimate.compute_bound:
            bound = "private-memory"

        waves = math.ceil(batch / concurrency)
        makespan = waves * wave_ns
        speedup = (batch * estimate.ns) / makespan
        return MulticoreEstimate(
            cpu=self.cpu.key,
            n=estimate.n,
            batch=batch,
            cores=cores,
            wave_ns=wave_ns,
            makespan_ns=makespan,
            single_core_ns=estimate.ns,
            speedup=speedup,
            efficiency=speedup / cores,
            bound=bound,
        )

    def scaling_curve(
        self, estimate: NttEstimate, core_counts: List[int], batch: Optional[int] = None
    ) -> List[MulticoreEstimate]:
        """Speedup at each core count (batch defaults to the core count)."""
        return [
            self.run(estimate, batch or count, count) for count in core_counts
        ]
