"""Proxy-instruction mappings (the paper's Tables 3 and 5).

A :class:`ProxyRule` rewrites one dynamic instruction into a sequence of
proxy instructions. For MQX the sequence has length one (each MQX
instruction maps to a single structurally similar AVX-512 instruction).
For validation, proxies of *masked* operations append a guard instruction,
mirroring the paper's conservative methodology: "we insert an extra
instruction and guard the output with volatile to preserve data
dependencies on the mask register."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class ProxyRule:
    """Rewrite of a target mnemonic into proxy mnemonics."""

    target: str
    proxies: Tuple[str, ...]
    rationale: str


#: Table 3 - how MQX performance is projected. These pairs also define the
#: uop-table entries for the MQX mnemonics in :mod:`repro.machine.uops`.
MQX_PROXY_MAP: Dict[str, ProxyRule] = {
    "vpmulwq_zmm": ProxyRule(
        target="_mm512_mul_epi64",
        proxies=("vpmullq_zmm",),
        rationale=(
            "widening 64-bit multiply modeled by the existing 64-bit "
            "multiply-low (same multiplier array, extra write port)"
        ),
    ),
    "vpmulhq_zmm": ProxyRule(
        target="_mm512_mulhi_epi64",
        proxies=("vpmullq_zmm",),
        rationale="multiply-high modeled with multiply-low latency (Section 5.5)",
    ),
    "vpadcq_zmm": ProxyRule(
        target="_mm512_adc_epi64",
        proxies=("vpaddq_masked_zmm",),
        rationale=(
            "add-with-carry modeled by masked add: same adder, mask "
            "register read/write already exists in AVX-512"
        ),
    ),
    "vpsbbq_zmm": ProxyRule(
        target="_mm512_sbb_epi64",
        proxies=("vpsubq_masked_zmm",),
        rationale="subtract-with-borrow modeled by masked subtract",
    ),
    "vpadcq_pred_zmm": ProxyRule(
        target="_mm512_mask_adc_epi64",
        proxies=("vpaddq_masked_zmm",),
        rationale="predicated adc modeled by masked add",
    ),
    "vpsbbq_pred_zmm": ProxyRule(
        target="_mm512_mask_sbb_epi64",
        proxies=("vpsubq_masked_zmm",),
        rationale="predicated sbb modeled by masked subtract",
    ),
}


#: Table 5 - target/proxy pairs used to *validate* PISA against ground
#: truth on existing instructions (Section 5.2).
VALIDATION_PROXY_MAP: Dict[str, ProxyRule] = {
    "vpmuludq_ymm": ProxyRule(
        target="_mm256_mul_epu32",
        proxies=("vpmulld_ymm",),
        rationale=(
            "widening 32-bit multiply projected from multiply-low, exactly "
            "mirroring the MQX widening-multiply projection"
        ),
    ),
    "vpaddq_masked_zmm": ProxyRule(
        target="_mm512_mask_add_epi64",
        proxies=("vpaddq_zmm", "guard"),
        rationale=(
            "masked add projected from plain add plus a guard instruction "
            "preserving the mask-register dependency"
        ),
    ),
    "vpsubq_masked_zmm": ProxyRule(
        target="_mm512_mask_sub_epi64",
        proxies=("vpsubq_zmm", "guard"),
        rationale="masked subtract projected from plain subtract plus guard",
    ),
}
