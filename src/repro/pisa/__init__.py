"""PISA - performance projection using proxy ISA (Section 4.2).

PISA estimates the performance of a *proposed* instruction by mapping it to
the most structurally similar *existing* instruction and measuring that.
In this library the mapping appears in two places:

* the machine model's uop tables cost each MQX mnemonic with its Table 3
  proxy's ports/latency (the projection itself), and
* this package makes the mapping explicit, supports projecting arbitrary
  traces through proxy substitutions, and implements the paper's
  validation methodology (Tables 5 and 6): apply PISA to *existing*
  instructions whose ground truth is measurable and check the relative
  error stays small.
"""

from repro.pisa.proxy import MQX_PROXY_MAP, VALIDATION_PROXY_MAP, ProxyRule
from repro.pisa.projection import substitute_trace
from repro.pisa.validation import ValidationCase, validate_pisa

__all__ = [
    "ProxyRule",
    "MQX_PROXY_MAP",
    "VALIDATION_PROXY_MAP",
    "substitute_trace",
    "ValidationCase",
    "validate_pisa",
]
