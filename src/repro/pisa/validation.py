"""PISA validation (Section 5.2, Table 6).

The methodology: pick *existing* instructions used by the NTT kernels,
model each with its Table 5 proxy, and compare the NTT runtime projected
through the proxy against the ground-truth runtime with the real
instruction. The relative error

    epsilon = (t_target - t_proxy) / t_target * 100%

should stay small (the paper reports |epsilon| < 8% across all six cases;
negative values mean PISA was conservative, projecting a higher runtime
than reality).

The validation runs at NTT size 2^14, the average of the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arith.primes import default_modulus
from repro.kernels import get_backend
from repro.machine.cpu import CpuSpec, get_cpu
from repro.machine.scheduler import schedule_trace
from repro.machine.uops import get_microarch
from repro.perf.estimator import _trace_ntt_stage_block
from repro.pisa.projection import substitute_trace, substitution_count
from repro.pisa.proxy import VALIDATION_PROXY_MAP

#: NTT size used for validation (2^14, per Section 5.2).
VALIDATION_LOG_SIZE = 14

#: Which backend's NTT exercises each validation target.
_TARGET_BACKEND = {
    "vpmuludq_ymm": "avx2",
    "vpaddq_masked_zmm": "avx512",
    "vpsubq_masked_zmm": "avx512",
}


@dataclass(frozen=True)
class ValidationCase:
    """One Table 6 row: a target instruction on one CPU."""

    target_intrinsic: str
    target_op: str
    proxy_ops: tuple
    cpu: str
    target_cycles: float
    proxy_cycles: float
    substitutions: int

    @property
    def relative_error_pct(self) -> float:
        """epsilon per Equation 12, in percent."""
        return (self.target_cycles - self.proxy_cycles) / self.target_cycles * 100.0


def validate_pisa(
    cpu: CpuSpec = None, q: int = None
) -> List[ValidationCase]:
    """Run the Table 6 validation for one CPU (or both when omitted)."""
    cpus = [cpu] if cpu else [get_cpu("intel_xeon_8352y"), get_cpu("amd_epyc_9654")]
    q = q or default_modulus()
    cases: List[ValidationCase] = []
    for spec in cpus:
        microarch = get_microarch(spec.microarch)
        for op, rule in VALIDATION_PROXY_MAP.items():
            backend = get_backend(_TARGET_BACKEND[op])
            trace = _trace_ntt_stage_block(backend, q, "schoolbook")
            projected = substitute_trace(trace, {op: rule})
            target_cycles = schedule_trace(trace, microarch).throughput_cycles()
            proxy_cycles = schedule_trace(projected, microarch).throughput_cycles()
            cases.append(
                ValidationCase(
                    target_intrinsic=rule.target,
                    target_op=op,
                    proxy_ops=rule.proxies,
                    cpu=spec.key,
                    target_cycles=target_cycles,
                    proxy_cycles=proxy_cycles,
                    substitutions=substitution_count(trace, {op: rule}),
                )
            )
    return cases


def max_absolute_error(cases: List[ValidationCase]) -> float:
    """Largest |epsilon| across validation cases (paper bound: 8%)."""
    return max(abs(case.relative_error_pct) for case in cases)
