"""Trace projection through proxy substitutions.

:func:`substitute_trace` rewrites a recorded instruction trace by replacing
every occurrence of a rule's mnemonic with its proxy sequence, preserving
the dataflow: the first proxy inherits the original sources and
destinations; guard instructions read the destination (modeling the
paper's ``volatile`` dependency guard).
"""

from __future__ import annotations

from typing import Dict

from repro.isa.trace import TraceEntry, Tracer
from repro.pisa.proxy import ProxyRule


def substitute_trace(trace: Tracer, rules: Dict[str, ProxyRule]) -> Tracer:
    """Rewrite ``trace`` replacing rule targets with their proxies.

    Accepts rules keyed by mnemonic (as in
    :data:`~repro.pisa.proxy.VALIDATION_PROXY_MAP`). Returns a new tracer;
    the input is unmodified.
    """
    projected = Tracer(label=f"{trace.label}|proxied" if trace.label else "proxied")
    for entry in trace.entries:
        rule = rules.get(entry.op)
        if rule is None:
            projected.entries.append(entry)
            continue
        first, *guards = rule.proxies
        projected.entries.append(
            TraceEntry(first, entry.dests, entry.srcs, entry.tag)
        )
        for guard in guards:
            # The guard consumes the produced value, keeping the
            # dependency alive exactly as the paper's volatile guard does.
            projected.entries.append(TraceEntry(guard, (), entry.dests))
    return projected


def substitution_count(trace: Tracer, rules: Dict[str, ProxyRule]) -> int:
    """How many instructions in ``trace`` a projection would rewrite."""
    return sum(1 for entry in trace.entries if entry.op in rules)
