"""repro - reproduction of "Towards Closing the Performance Gap for
Cryptographic Kernels Between CPUs and Specialized Hardware" (MICRO 2025).

The library builds the paper's entire stack in Python:

* lane-accurate simulators of the scalar x86-64, AVX2, AVX-512 and
  proposed MQX instruction sets (:mod:`repro.isa`),
* double-word (128-bit) modular arithmetic kernels in four ISA variants
  (:mod:`repro.kernels`), with BLAS (:mod:`repro.blas`) and NTT
  (:mod:`repro.ntt`) layers on top,
* a port-pressure + cache machine model of the paper's two testbed CPUs
  (:mod:`repro.machine`) driving runtime estimation (:mod:`repro.perf`),
* PISA performance projection and its validation (:mod:`repro.pisa`),
* GMP-style and OpenFHE-style baselines (:mod:`repro.baselines`),
* the roofline/speed-of-light analysis (:mod:`repro.roofline`), and
* one experiment harness per table/figure (:mod:`repro.experiments`).

Quick start::

    from repro import SimdNtt, default_modulus, get_backend

    q = default_modulus()
    ntt = SimdNtt(1 << 10, q, get_backend("mqx"), engine="fast")
    spectrum = ntt.forward(list(range(1 << 10)))
    assert ntt.inverse(spectrum) == list(range(1 << 10))

``engine="fast"`` computes on the NumPy-vectorized engine
(:mod:`repro.fast`); the default ``engine="faithful"`` runs the
lane-accurate ISA simulation that feeds tracing and runtime estimation;
``engine="parallel"`` shards batched fast-engine work across a
persistent process pool (:mod:`repro.par`, scope it with
``with ParallelExecutor(workers=...):``). All three produce
bit-identical results (see docs/PERFORMANCE.md).
"""

from repro.arith.barrett import BarrettParams
from repro.arith.primes import default_modulus, find_ntt_prime, root_of_unity
from repro.blas.ops import BlasPlan
from repro.fast import FastBlasPlan, FastModulus, FastNegacyclic, FastNtt
from repro.ifma.kernel import IfmaKernel
from repro.ifma.ntt import IfmaNtt
from repro.kernels import MqxFeatures, get_backend
from repro.machine.cpu import get_cpu, list_cpus
from repro.multicore.model import BatchScalingModel
from repro.multiword.ntt import MultiWordNtt
from repro.ntt.negacyclic import NegacyclicNtt, negacyclic_polymul
from repro.ntt.polymul import ntt_polymul, simd_ntt_polymul
from repro.ntt.simd import SimdNtt
from repro.par import (
    ParallelExecutor,
    ParBlasPlan,
    ParNegacyclic,
    ParNtt,
    parallel_rns_mul,
)
from repro.resil import (
    CircuitBreaker,
    Deadline,
    EngineDegradedWarning,
    Fault,
    FaultPlan,
    RetryPolicy,
    resolve_engine,
)
from repro.perf.estimator import (
    estimate_baseline_blas,
    estimate_baseline_ntt,
    estimate_blas,
    estimate_ntt,
)
from repro.perf.measure import measure_blas, measure_ntt
from repro.serve import ReproService, ServeConfig
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomial, RnsPolynomialRing
from repro.pisa.validation import validate_pisa
from repro.roofline.sol import sol_runtime, sol_sweep

__version__ = "1.0.0"

__all__ = [
    "BarrettParams",
    "BatchScalingModel",
    "BlasPlan",
    "CircuitBreaker",
    "Deadline",
    "EngineDegradedWarning",
    "FastBlasPlan",
    "FastModulus",
    "FastNegacyclic",
    "FastNtt",
    "Fault",
    "FaultPlan",
    "IfmaKernel",
    "IfmaNtt",
    "MqxFeatures",
    "MultiWordNtt",
    "NegacyclicNtt",
    "ParBlasPlan",
    "ParNegacyclic",
    "ParNtt",
    "ParallelExecutor",
    "ReproService",
    "RetryPolicy",
    "RnsBasis",
    "ServeConfig",
    "RnsPolynomial",
    "RnsPolynomialRing",
    "SimdNtt",
    "default_modulus",
    "estimate_baseline_blas",
    "estimate_baseline_ntt",
    "estimate_blas",
    "estimate_ntt",
    "find_ntt_prime",
    "get_backend",
    "get_cpu",
    "list_cpus",
    "measure_blas",
    "measure_ntt",
    "negacyclic_polymul",
    "ntt_polymul",
    "parallel_rns_mul",
    "resolve_engine",
    "root_of_unity",
    "simd_ntt_polymul",
    "sol_runtime",
    "sol_sweep",
    "validate_pisa",
    "__version__",
]
