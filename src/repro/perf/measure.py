"""The paper's timing protocol (Section 5.1), modeled.

The paper reports "the average runtime of the final 50 iterations out of
100 runs" for NTTs (final 500 of 1,000 for BLAS), explicitly to let the
cache warm up and to damp run-to-run fluctuation. This module reproduces
that harness over the deterministic estimator by modeling the two effects
the protocol exists to control:

* **cache warm-up** - the first iterations stream the working set from
  DRAM; the cold penalty decays geometrically as lines are installed;
* **run-to-run jitter** - small multiplicative noise (seeded, so results
  are reproducible) standing in for frequency/interrupt variation.

The protocol then discards the warm-up half and averages the rest,
exactly as Section 5.1 prescribes. Tests verify that the protocol's mean
converges to the steady-state model and that skipping the warm-up would
bias results upward - i.e., that the paper's methodology is the right one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.errors import ExperimentError
from repro.kernels.backend import Backend
from repro.machine.cache import CacheModel
from repro.machine.cpu import CpuSpec
from repro.perf.estimator import estimate_blas, estimate_ntt

#: Section 5.1's protocol parameters.
NTT_RUNS, NTT_KEEP = 100, 50
BLAS_RUNS, BLAS_KEEP = 1000, 500

#: Multiplicative run-to-run noise (standard deviation).
_JITTER = 0.01

#: Geometric decay of the cold-cache penalty per iteration.
_WARMUP_DECAY = 0.25


@dataclass
class MeasuredResult:
    """Protocol output for one kernel."""

    kernel: str
    runs: int
    kept: int
    steady_ns: float
    mean_ns: float
    samples_ns: List[float] = field(repr=False, default_factory=list)

    @property
    def warmup_bias(self) -> float:
        """How much a naive all-runs average would overestimate."""
        return sum(self.samples_ns) / len(self.samples_ns) / self.mean_ns


def _protocol(
    label: str,
    steady_ns: float,
    cold_extra_ns: float,
    runs: int,
    keep: int,
    seed: int,
) -> MeasuredResult:
    if not 0 < keep <= runs:
        raise ExperimentError(f"keep must be in (0, runs], got {keep}/{runs}")
    rng = random.Random(seed)
    samples = []
    for i in range(runs):
        warm = steady_ns + cold_extra_ns * (_WARMUP_DECAY ** i)
        samples.append(warm * (1.0 + rng.gauss(0.0, _JITTER)))
    kept = samples[runs - keep :]
    return MeasuredResult(
        kernel=label,
        runs=runs,
        kept=keep,
        steady_ns=steady_ns,
        mean_ns=sum(kept) / keep,
        samples_ns=samples,
    )


def _cold_penalty_ns(working_set_bytes: float, cpu: CpuSpec) -> float:
    """First-touch cost: stream the working set once from DRAM."""
    cache = CacheModel(cpu)
    dram_bw = cache.levels[-1][1]  # bytes/cycle
    return working_set_bytes / dram_bw / cpu.measured_ghz


def measure_ntt(
    n: int,
    q: int,
    backend: Backend,
    cpu: CpuSpec,
    algorithm: str = "schoolbook",
    runs: int = NTT_RUNS,
    keep: int = NTT_KEEP,
    seed: int = 0xBEEF,
) -> MeasuredResult:
    """Measure one NTT under the Section 5.1 protocol."""
    est = estimate_ntt(n, q, backend, cpu, algorithm)
    working_set = 2 * n * 16 + (n // 2) * 16
    return _protocol(
        label=f"ntt-{backend.name}-2^{n.bit_length() - 1}",
        steady_ns=est.ns,
        cold_extra_ns=_cold_penalty_ns(working_set, cpu),
        runs=runs,
        keep=keep,
        seed=seed,
    )


def measure_blas(
    operation: str,
    length: int,
    q: int,
    backend: Backend,
    cpu: CpuSpec,
    runs: int = BLAS_RUNS,
    keep: int = BLAS_KEEP,
    seed: int = 0xCAFE,
) -> MeasuredResult:
    """Measure one BLAS operation under the Section 5.1 protocol."""
    est = estimate_blas(operation, length, q, backend, cpu)
    working_set = 3 * length * 16
    return _protocol(
        label=f"blas-{operation}-{backend.name}",
        steady_ns=est.ns,
        cold_extra_ns=_cold_penalty_ns(working_set, cpu),
        runs=runs,
        keep=keep,
        seed=seed,
    )
