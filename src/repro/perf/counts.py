"""Analytic instruction counts: the static cost picture.

Complements the cycle estimator with the raw quantities the paper reasons
about in Section 4 (e.g. "six AVX-512 instructions for one scalar ADC"):
per-kernel dynamic instruction counts, per-element normalization, and the
class breakdown (multiplies / adds / compares / mask ops / memory) for
each backend. Useful for tables, docs and regression tests - if a kernel
change alters these counts, something structural moved.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from repro.arith.primes import default_modulus
from repro.errors import ExperimentError
from repro.isa.trace import Tracer, tracing
from repro.kernels import get_backend
from repro.kernels.backend import Backend

_SEED = 0xC0517

#: Mnemonic prefixes per instruction class.
_CLASSES = {
    "multiply": (
        "vpmul", "vpmadd52", "mul64", "imul64", "knc_vmul",
    ),
    "add_sub": (
        "vpadd", "vpsub", "vpadc", "vpsbb", "add64", "adc64", "sub64",
        "sbb64", "knc_vadc", "knc_vsbb",
    ),
    "compare": ("vpcmp", "cmp64", "vpmax"),
    "mask_logic": ("kor", "kand", "knot", "kxor", "logic8"),
    "shift_logic": (
        "vpsrl", "vpsll", "vpand", "vpor", "vpxor", "shl64", "shr64",
        "shrd64", "and64", "or64", "xor64",
    ),
    "permute_blend": ("vpunpck", "vperm", "vpblend", "cmov64", "vmovdq"),
    "memory": ("load64", "store64", "vmovdqu"),
}


@dataclass(frozen=True)
class KernelCounts:
    """Instruction-count summary of one kernel on one backend."""

    backend: str
    kernel: str
    lanes: int
    instructions: int
    by_class: Dict[str, int]

    @property
    def per_element(self) -> float:
        """Dynamic instructions per 128-bit residue."""
        return self.instructions / self.lanes

    def share(self, klass: str) -> float:
        """Fraction of the kernel's instructions in one class."""
        return self.by_class.get(klass, 0) / self.instructions


def _classify(trace: Tracer) -> Dict[str, int]:
    counts: Counter = Counter()
    for entry in trace.entries:
        for klass, prefixes in _CLASSES.items():
            if entry.op.startswith(prefixes):
                # Memory instructions match vmovdqu under two classes;
                # the explicit tag wins.
                if entry.tag in ("load", "store"):
                    counts["memory"] += 1
                else:
                    counts[klass] += 1
                break
        else:
            counts["other"] += 1
    return dict(counts)


def kernel_counts(
    backend: Backend, kernel: str, q: Optional[int] = None
) -> KernelCounts:
    """Count one kernel's dynamic instructions (per block of ``lanes``)."""
    q = q or default_modulus()
    rng = random.Random(_SEED)
    ctx = backend.make_modulus(q)
    a = backend.load_block([rng.randrange(q) for _ in range(backend.lanes)])
    b = backend.load_block([rng.randrange(q) for _ in range(backend.lanes)])
    with tracing(f"counts-{kernel}") as trace:
        if kernel == "butterfly":
            w = backend.broadcast_dw(rng.randrange(q))
            backend.butterfly(a, b, w, ctx)
        elif kernel in ("addmod", "submod", "mulmod"):
            getattr(backend, kernel)(a, b, ctx)
        else:
            raise ExperimentError(f"unknown kernel {kernel!r}")
    return KernelCounts(
        backend=backend.name,
        kernel=kernel,
        lanes=backend.lanes,
        instructions=len(trace),
        by_class=_classify(trace),
    )


def count_table(q: Optional[int] = None) -> Dict[str, Dict[str, KernelCounts]]:
    """Counts for every backend x kernel (the Section 4 cost picture)."""
    table: Dict[str, Dict[str, KernelCounts]] = {}
    for name in ("scalar", "avx2", "avx512", "mqx"):
        backend = get_backend(name)
        table[name] = {
            kernel: kernel_counts(backend, kernel, q)
            for kernel in ("addmod", "submod", "mulmod", "butterfly")
        }
    return table
