"""Kernel runtime estimators.

Each estimator traces one representative block (the instruction stream is
identical across blocks of a stage/vector), schedules it with
:func:`repro.machine.scheduler.schedule_trace`, applies the roofline-style
memory bound from :class:`repro.machine.cache.CacheModel`, and scales to
the full kernel.

Estimation is therefore O(block), not O(n) - a 2^17-point NTT costs the
same to estimate as a 2^6-point one - which is what makes the full
figure-sweep benchmarks tractable in pure Python.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.bignum import GmpContext
from repro.baselines.openfhe import OpenFheContext
from repro.errors import ExperimentError
from repro.isa import scalar as s
from repro.isa.trace import Tracer, tracing
from repro.kernels.backend import Backend
from repro.machine.cache import CacheModel, MemoryTraffic
from repro.machine.cpu import CpuSpec
from repro.machine.scheduler import ScheduleResult, schedule_trace
from repro.machine.uops import get_microarch
from repro.obs.spans import span


#: Overlap assumed for library-call-structured baselines: call/return and
#: temporary management serialize much of the out-of-order window.
_BASELINE_OVERLAP = 2.0

#: Effective IPC cap for the library baselines. Their limb loops carry a
#: serial dependency (the carry/borrow) through every iteration and pay a
#: compare-and-branch per limb, which holds non-unrolled library code near
#: one instruction per cycle regardless of issue width - unlike the
#: paper's kernels, whose independent SIMD blocks saturate the ports.
_BASELINE_IPC = 1.0


def _baseline_cycles(schedule: ScheduleResult) -> float:
    """Per-block compute cycles for a library-structured baseline."""
    return max(
        schedule.throughput_cycles(_BASELINE_OVERLAP),
        schedule.uops / _BASELINE_IPC,
    )

#: Deterministic operand seed so traces are reproducible run to run.
_SEED = 0x5CA1AB1E


def _trace_bytes(trace: Tracer) -> MemoryTraffic:
    """Bytes moved by a traced block, from load/store tags + op widths."""
    summary = trace.summary()
    return MemoryTraffic(
        load_bytes=summary["load_bytes"], store_bytes=summary["store_bytes"]
    )


@dataclass
class KernelCost:
    """Scheduling + memory cost of one representative block."""

    schedule: ScheduleResult
    traffic: MemoryTraffic

    def cycles_per_block(
        self,
        cache: CacheModel,
        working_set_bytes: float,
        independent_blocks: Optional[float] = None,
    ) -> float:
        """Roofline combination: max(compute, memory) per block."""
        compute = self.schedule.throughput_cycles(independent_blocks)
        memory = cache.memory_cycles(self.traffic, working_set_bytes)
        return max(compute, memory)


@dataclass
class NttEstimate:
    """Modeled runtime of one n-point NTT on one CPU."""

    backend: str
    cpu: str
    n: int
    q: int
    algorithm: str
    cycles: float
    ns: float
    ns_per_butterfly: float
    compute_bound: bool
    memory_level: str
    block_schedule: ScheduleResult


@dataclass
class BlasEstimate:
    """Modeled runtime of one BLAS vector operation on one CPU."""

    backend: str
    cpu: str
    operation: str
    length: int
    q: int
    cycles: float
    ns: float
    ns_per_element: float
    block_schedule: ScheduleResult


def _trace_ntt_stage_block(
    backend: Backend, q: int, algorithm: str, twiddle_mode: str = "barrett"
) -> Tracer:
    """Trace one Pease stage block: loads, butterfly, interleave, 2 stores.

    With ``twiddle_mode="shoup"`` the block additionally loads the
    precomputed Shoup constants and uses Harvey's butterfly.
    """
    rng = random.Random(_SEED)
    ctx = backend.make_modulus(q, algorithm=algorithm)
    top_vals = [rng.randrange(q) for _ in range(backend.lanes)]
    bot_vals = [rng.randrange(q) for _ in range(backend.lanes)]
    tw_vals = [rng.randrange(q) for _ in range(backend.lanes)]
    with tracing("ntt-stage-block") as trace:
        top = backend.load_block(top_vals)
        bottom = backend.load_block(bot_vals)
        tw = backend.load_block(tw_vals)
        if twiddle_mode == "shoup":
            tw_shoup = backend.load_block([(w << 128) // q for w in tw_vals])
            plus, minus = backend.butterfly_shoup(top, bottom, tw, tw_shoup, ctx)
        elif twiddle_mode == "lazy":
            tw_shoup = backend.load_block([(w << 128) // q for w in tw_vals])
            plus, minus = backend.butterfly_lazy(top, bottom, tw, tw_shoup, ctx)
        else:
            plus, minus = backend.butterfly(top, bottom, tw, ctx)
        blk0, blk1 = backend.interleave(plus, minus)
        backend.store_block(blk0)
        backend.store_block(blk1)
    return trace


def estimate_ntt(
    n: int,
    q: int,
    backend: Backend,
    cpu: CpuSpec,
    algorithm: str = "schoolbook",
    twiddle_mode: str = "barrett",
) -> NttEstimate:
    """Model the runtime of an ``n``-point NTT on ``cpu`` via ``backend``.

    ``twiddle_mode="shoup"`` models the Harvey-butterfly variant with
    precomputed per-twiddle constants (doubles the twiddle-table traffic,
    removes one wide product and the Barrett shifts).
    """
    if n < 2 * backend.lanes:
        raise ExperimentError(
            f"n={n} cannot fill {backend.lanes}-lane blocks"
        )
    if twiddle_mode not in ("barrett", "shoup", "lazy"):
        raise ExperimentError(f"unknown twiddle_mode {twiddle_mode!r}")
    stages = n.bit_length() - 1
    blocks_per_stage = n // (2 * backend.lanes)

    with span("trace-capture", kernel="ntt", backend=backend.name):
        trace = _trace_ntt_stage_block(backend, q, algorithm, twiddle_mode)
    microarch = get_microarch(cpu.microarch)
    with span("schedule", kernel="ntt", microarch=cpu.microarch):
        schedule = schedule_trace(trace, microarch)
    with span("cache-model", kernel="ntt", cpu=cpu.key):
        cost = KernelCost(schedule, _trace_bytes(trace))
        cache = CacheModel(cpu)

        # Shoup/lazy modes keep a second twiddle table resident.
        twiddle_tables = 2 if twiddle_mode in ("shoup", "lazy") else 1
        working_set = 2 * n * 16 + twiddle_tables * (n // 2) * 16
        per_block = cost.cycles_per_block(
            cache, working_set, independent_blocks=max(1, blocks_per_stage)
        )
        compute = schedule.throughput_cycles(max(1, blocks_per_stage))
        memory = cache.memory_cycles(cost.traffic, working_set)

    cycles = per_block * blocks_per_stage * stages
    ns = cycles / cpu.measured_ghz
    butterflies = (n // 2) * stages
    return NttEstimate(
        backend=backend.name,
        cpu=cpu.key,
        n=n,
        q=q,
        algorithm=algorithm if twiddle_mode == "barrett" else f"{algorithm}+shoup",
        cycles=cycles,
        ns=ns,
        ns_per_butterfly=ns / butterflies,
        compute_bound=compute >= memory,
        memory_level=cache.level_name(working_set),
        block_schedule=schedule,
    )


def _trace_blas_block(
    backend: Backend, q: int, operation: str, algorithm: str
) -> Tracer:
    """Trace one BLAS block: loads, the operation, one store."""
    rng = random.Random(_SEED)
    ctx = backend.make_modulus(q, algorithm=algorithm)
    x_vals = [rng.randrange(q) for _ in range(backend.lanes)]
    y_vals = [rng.randrange(q) for _ in range(backend.lanes)]
    a_scalar = rng.randrange(q)
    with tracing("blas-block") as trace:
        x = backend.load_block(x_vals)
        y = backend.load_block(y_vals)
        if operation == "vector_add":
            out = backend.addmod(x, y, ctx)
        elif operation == "vector_sub":
            out = backend.submod(x, y, ctx)
        elif operation == "vector_mul":
            out = backend.mulmod(x, y, ctx)
        elif operation == "axpy":
            a_block = backend.broadcast_dw(a_scalar)
            out = backend.addmod(backend.mulmod(x, a_block, ctx), y, ctx)
        else:
            raise ExperimentError(f"unknown BLAS operation {operation!r}")
        backend.store_block(out)
    return trace


def estimate_blas(
    operation: str,
    length: int,
    q: int,
    backend: Backend,
    cpu: CpuSpec,
    algorithm: str = "schoolbook",
) -> BlasEstimate:
    """Model one BLAS vector operation (default paper length: 1,024)."""
    if length % backend.lanes:
        raise ExperimentError(
            f"length {length} is not a multiple of {backend.lanes} lanes"
        )
    blocks = length // backend.lanes
    with span("trace-capture", kernel="blas", backend=backend.name):
        trace = _trace_blas_block(backend, q, operation, algorithm)
    microarch = get_microarch(cpu.microarch)
    with span("schedule", kernel="blas", microarch=cpu.microarch):
        schedule = schedule_trace(trace, microarch)
    with span("cache-model", kernel="blas", cpu=cpu.key):
        cost = KernelCost(schedule, _trace_bytes(trace))
        cache = CacheModel(cpu)

        working_set = 3 * length * 16
        per_block = cost.cycles_per_block(
            cache, working_set, independent_blocks=max(1, blocks)
        )
        cycles = per_block * blocks
    ns = cycles / cpu.measured_ghz
    return BlasEstimate(
        backend=backend.name,
        cpu=cpu.key,
        operation=operation,
        length=length,
        q=q,
        cycles=cycles,
        ns=ns,
        ns_per_element=ns / length,
        block_schedule=schedule,
    )


# ----------------------------------------------------------------------
# Library baselines (GMP- and OpenFHE-style)
# ----------------------------------------------------------------------


def _baseline_context(kind: str, q: int):
    if kind == "gmp":
        return GmpContext(q)
    if kind == "openfhe":
        return OpenFheContext(q)
    raise ExperimentError(f"unknown baseline {kind!r}; use 'gmp' or 'openfhe'")


def _trace_baseline_butterfly(kind: str, q: int) -> Tracer:
    rng = random.Random(_SEED)
    ctx = _baseline_context(kind, q)
    x, y, w = (rng.randrange(q) for _ in range(3))
    with tracing(f"{kind}-butterfly") as trace:
        xv = (s.load64(x >> 64), s.load64(x & (2**64 - 1)))
        yv = (s.load64(y >> 64), s.load64(y & (2**64 - 1)))
        s.load64(w >> 64)
        s.load64(w & (2**64 - 1))
        hi, lo = ctx.butterfly(x, y, w)
        for value in (hi, lo):
            s.store64(value >> 64)
            s.store64(value & (2**64 - 1))
        del xv, yv
    return trace


def estimate_baseline_ntt(kind: str, n: int, q: int, cpu: CpuSpec) -> NttEstimate:
    """Model a GMP- or OpenFHE-style radix-2 NTT (one core)."""
    stages = n.bit_length() - 1
    butterflies_per_stage = n // 2
    with span("trace-capture", kernel="ntt", backend=kind):
        trace = _trace_baseline_butterfly(kind, q)
    microarch = get_microarch(cpu.microarch)
    with span("schedule", kernel="ntt", microarch=cpu.microarch):
        schedule = schedule_trace(trace, microarch)
    with span("cache-model", kernel="ntt", cpu=cpu.key):
        cost = KernelCost(schedule, _trace_bytes(trace))
        cache = CacheModel(cpu)

        working_set = n * 16 * 2
        per_block = max(
            _baseline_cycles(schedule),
            cache.memory_cycles(cost.traffic, working_set),
        )
    cycles = per_block * butterflies_per_stage * stages
    ns = cycles / cpu.measured_ghz
    butterflies = butterflies_per_stage * stages
    return NttEstimate(
        backend=kind,
        cpu=cpu.key,
        n=n,
        q=q,
        algorithm="library",
        cycles=cycles,
        ns=ns,
        ns_per_butterfly=ns / butterflies,
        compute_bound=True,
        memory_level=cache.level_name(working_set),
        block_schedule=schedule,
    )


def _trace_baseline_blas(kind: str, q: int, operation: str) -> Tracer:
    rng = random.Random(_SEED)
    ctx = _baseline_context(kind, q)
    x, y, a = (rng.randrange(q) for _ in range(3))
    with tracing(f"{kind}-{operation}") as trace:
        s.load64(x >> 64)
        s.load64(x & (2**64 - 1))
        s.load64(y >> 64)
        s.load64(y & (2**64 - 1))
        if operation == "vector_add":
            out = ctx.addmod(x, y)
        elif operation == "vector_sub":
            out = ctx.submod(x, y)
        elif operation == "vector_mul":
            out = ctx.mulmod(x, y)
        elif operation == "axpy":
            out = ctx.addmod(ctx.mulmod(x, a), y)
        else:
            raise ExperimentError(f"unknown BLAS operation {operation!r}")
        s.store64(out >> 64)
        s.store64(out & (2**64 - 1))
    return trace


def estimate_baseline_blas(
    kind: str, operation: str, length: int, q: int, cpu: CpuSpec
) -> BlasEstimate:
    """Model a GMP- or OpenFHE-style BLAS vector operation (one core)."""
    with span("trace-capture", kernel="blas", backend=kind):
        trace = _trace_baseline_blas(kind, q, operation)
    microarch = get_microarch(cpu.microarch)
    with span("schedule", kernel="blas", microarch=cpu.microarch):
        schedule = schedule_trace(trace, microarch)
    with span("cache-model", kernel="blas", cpu=cpu.key):
        cost = KernelCost(schedule, _trace_bytes(trace))
        cache = CacheModel(cpu)

        working_set = 3 * length * 16
        per_element = max(
            _baseline_cycles(schedule),
            cache.memory_cycles(cost.traffic, working_set),
        )
    cycles = per_element * length
    ns = cycles / cpu.measured_ghz
    return BlasEstimate(
        backend=kind,
        cpu=cpu.key,
        operation=operation,
        length=length,
        q=q,
        cycles=cycles,
        ns=ns,
        ns_per_element=ns / length,
        block_schedule=schedule,
    )


def ntt_sweep(
    backend: Backend,
    cpu: CpuSpec,
    q: int,
    log_sizes: Optional[range] = None,
    algorithm: str = "schoolbook",
) -> Dict[int, NttEstimate]:
    """Estimate NTTs across the paper's size range (2^10 - 2^17)."""
    log_sizes = log_sizes or range(10, 18)
    return {
        logn: estimate_ntt(1 << logn, q, backend, cpu, algorithm)
        for logn in log_sizes
    }
