"""Runtime estimation: kernels x machine model -> nanoseconds.

The paper measures wall-clock time on real CPUs; this package produces the
modeled equivalent. A kernel's representative block is traced once, the
trace is scheduled on the target microarchitecture, the cache model adds
bandwidth limits for the actual working set, and cycles convert to
nanoseconds at the CPU's boost clock.

The measurement protocol mirrors Section 5.1: per-NTT results are reported
as nanoseconds per butterfly, per-BLAS results as nanoseconds per element,
with vector length 1,024 as the BLAS default.
"""

from repro.perf.estimator import (
    BlasEstimate,
    NttEstimate,
    estimate_baseline_blas,
    estimate_baseline_ntt,
    estimate_blas,
    estimate_ntt,
)

__all__ = [
    "NttEstimate",
    "BlasEstimate",
    "estimate_ntt",
    "estimate_blas",
    "estimate_baseline_ntt",
    "estimate_baseline_blas",
]
