"""Vector modular arithmetic: the paper's four BLAS operations.

The evaluation (Section 5.3) benchmarks vector addition, vector
subtraction, point-wise vector multiplication, and ``axpy`` at vector
length 1,024 (a typical FHE polynomial size). All four are implemented
here by blocking a residue vector over one kernel backend.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ArithmeticDomainError
from repro.kernels.backend import Backend, ModulusContext
from repro.obs.hooks import record_engine_call
from repro.util.checks import check_reduced, check_vector_length

#: The four operations of Figure 4, in presentation order.
BLAS_OPERATIONS = ("vector_add", "vector_sub", "vector_mul", "axpy")


class BlasPlan:
    """Reusable (backend, modulus) binding for BLAS calls.

    Precomputes the modulus context once (Barrett ``mu``, broadcast
    registers) so repeated vector operations do not repay setup costs -
    matching how the paper's benchmarks hoist per-modulus constants.

    With ``engine="fast"`` every operation runs on the NumPy-vectorized
    engine (:mod:`repro.fast`) instead of the ISA simulator — identical
    results, whole-vector execution (see docs/PERFORMANCE.md). With
    ``engine="parallel"`` the element range is additionally sharded
    across the :mod:`repro.par` worker pool. ``fast_mode`` selects the
    fast engine's arithmetic substrate (``"dw"``/``"r52"``/``"auto"``,
    see :class:`repro.fast.modular.FastModulus`); the faithful engine
    ignores it.
    """

    def __init__(
        self,
        q: int,
        backend: Backend,
        algorithm: str = "schoolbook",
        engine: str = "faithful",
        fast_mode: Optional[str] = None,
    ) -> None:
        self.q = q
        self.backend = backend
        self.ctx: ModulusContext = backend.make_modulus(q, algorithm=algorithm)
        if engine not in ("faithful", "fast", "parallel"):
            raise ArithmeticDomainError(
                f"engine must be 'faithful', 'fast' or 'parallel', "
                f"got {engine!r}"
            )
        # Availability cascade: degrade rather than hard-fail when the
        # requested engine cannot run here (see repro.resil.degrade).
        from repro.resil.degrade import resolve_engine

        engine = resolve_engine(engine, site="BlasPlan")
        self.engine = engine
        if engine in ("fast", "parallel"):
            # Deferred import: the faithful path must not require NumPy.
            from repro.fast.blas import FastBlasPlan

            #: The vectorized twin plan (checks operands vectorized, so
            #: the per-element Python validation loop is skipped).
            self.fast_plan = FastBlasPlan(q, mode=fast_mode)
        else:
            self.fast_plan = None
        if engine == "parallel":
            from repro.par.api import ParBlasPlan

            #: Pool-sharded twin: the flattened element range is split
            #: across the active ParallelExecutor's workers.
            self.par_plan = ParBlasPlan(q, plan=self.fast_plan)
        else:
            self.par_plan = None

    def _check(self, x: Sequence[int], y: Sequence[int]) -> None:
        if len(x) != len(y):
            raise ArithmeticDomainError(
                f"vector length mismatch: {len(x)} vs {len(y)}"
            )
        check_vector_length(len(x), self.backend.lanes)
        for i, value in enumerate(x):
            check_reduced(value, self.q, f"x[{i}]")
        for i, value in enumerate(y):
            check_reduced(value, self.q, f"y[{i}]")

    def _blocked(self, x: Sequence[int], y: Sequence[int], op: str) -> List[int]:
        backend = self.backend
        lanes = backend.lanes
        out: List[int] = []
        method = getattr(backend, op)
        for base in range(0, len(x), lanes):
            a = backend.load_block(x[base : base + lanes])
            b = backend.load_block(y[base : base + lanes])
            out.extend(backend.store_block(method(a, b, self.ctx)))
        return out

    def _fast_lengths(self, x: Sequence[int], y: Sequence[int]) -> None:
        """Fast-path argument shape checks (values are checked vectorized)."""
        if len(x) != len(y):
            raise ArithmeticDomainError(
                f"vector length mismatch: {len(x)} vs {len(y)}"
            )
        check_vector_length(len(x), self.backend.lanes)

    def vector_add(self, x: Sequence[int], y: Sequence[int]) -> List[int]:
        """Point-wise ``(x + y) mod q``."""
        if self.par_plan is not None:
            self._fast_lengths(x, y)
            return self.par_plan.vector_add(x, y)
        if self.fast_plan is not None:
            self._fast_lengths(x, y)
            return self.fast_plan.vector_add(x, y)
        record_engine_call("faithful", "blas.vector_add", len(x))
        self._check(x, y)
        return self._blocked(x, y, "addmod")

    def vector_sub(self, x: Sequence[int], y: Sequence[int]) -> List[int]:
        """Point-wise ``(x - y) mod q``."""
        if self.par_plan is not None:
            self._fast_lengths(x, y)
            return self.par_plan.vector_sub(x, y)
        if self.fast_plan is not None:
            self._fast_lengths(x, y)
            return self.fast_plan.vector_sub(x, y)
        record_engine_call("faithful", "blas.vector_sub", len(x))
        self._check(x, y)
        return self._blocked(x, y, "submod")

    def vector_mul(self, x: Sequence[int], y: Sequence[int]) -> List[int]:
        """Point-wise ``(x * y) mod q`` (the gemv special case)."""
        if self.par_plan is not None:
            self._fast_lengths(x, y)
            return self.par_plan.vector_mul(x, y)
        if self.fast_plan is not None:
            self._fast_lengths(x, y)
            return self.fast_plan.vector_mul(x, y)
        record_engine_call("faithful", "blas.vector_mul", len(x))
        self._check(x, y)
        return self._blocked(x, y, "mulmod")

    def axpy(self, a: int, x: Sequence[int], y: Sequence[int]) -> List[int]:
        """BLAS Level 1 ``axpy``: ``(a * x + y) mod q`` for scalar ``a``."""
        check_reduced(a, self.q, "a")
        if self.par_plan is not None:
            self._fast_lengths(x, y)
            return self.par_plan.axpy(a, x, y)
        if self.fast_plan is not None:
            self._fast_lengths(x, y)
            return self.fast_plan.axpy(a, x, y)
        record_engine_call("faithful", "blas.axpy", len(x))
        self._check(x, y)
        backend = self.backend
        lanes = backend.lanes
        a_block = backend.broadcast_dw(a)
        out: List[int] = []
        for base in range(0, len(x), lanes):
            xb = backend.load_block(x[base : base + lanes])
            yb = backend.load_block(y[base : base + lanes])
            prod = backend.mulmod(xb, a_block, self.ctx)
            out.extend(backend.store_block(backend.addmod(prod, yb, self.ctx)))
        return out


def vector_add(
    x: Sequence[int], y: Sequence[int], q: int, backend: Backend,
    engine: str = "faithful",
) -> List[int]:
    """One-shot point-wise modular vector addition."""
    return BlasPlan(q, backend, engine=engine).vector_add(x, y)


def vector_sub(
    x: Sequence[int], y: Sequence[int], q: int, backend: Backend,
    engine: str = "faithful",
) -> List[int]:
    """One-shot point-wise modular vector subtraction."""
    return BlasPlan(q, backend, engine=engine).vector_sub(x, y)


def vector_pointwise_mul(
    x: Sequence[int], y: Sequence[int], q: int, backend: Backend,
    engine: str = "faithful",
) -> List[int]:
    """One-shot point-wise modular vector multiplication."""
    return BlasPlan(q, backend, engine=engine).vector_mul(x, y)


def axpy(
    a: int, x: Sequence[int], y: Sequence[int], q: int, backend: Backend,
    engine: str = "faithful",
) -> List[int]:
    """One-shot modular ``axpy``."""
    return BlasPlan(q, backend, engine=engine).axpy(a, x, y)
