"""Vector modular arithmetic: the paper's four BLAS operations.

The evaluation (Section 5.3) benchmarks vector addition, vector
subtraction, point-wise vector multiplication, and ``axpy`` at vector
length 1,024 (a typical FHE polynomial size). All four are implemented
here by blocking a residue vector over one kernel backend.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ArithmeticDomainError
from repro.kernels.backend import Backend, ModulusContext
from repro.util.checks import check_reduced, check_vector_length

#: The four operations of Figure 4, in presentation order.
BLAS_OPERATIONS = ("vector_add", "vector_sub", "vector_mul", "axpy")


class BlasPlan:
    """Reusable (backend, modulus) binding for BLAS calls.

    Precomputes the modulus context once (Barrett ``mu``, broadcast
    registers) so repeated vector operations do not repay setup costs -
    matching how the paper's benchmarks hoist per-modulus constants.
    """

    def __init__(self, q: int, backend: Backend, algorithm: str = "schoolbook") -> None:
        self.q = q
        self.backend = backend
        self.ctx: ModulusContext = backend.make_modulus(q, algorithm=algorithm)

    def _check(self, x: Sequence[int], y: Sequence[int]) -> None:
        if len(x) != len(y):
            raise ArithmeticDomainError(
                f"vector length mismatch: {len(x)} vs {len(y)}"
            )
        check_vector_length(len(x), self.backend.lanes)
        for i, value in enumerate(x):
            check_reduced(value, self.q, f"x[{i}]")
        for i, value in enumerate(y):
            check_reduced(value, self.q, f"y[{i}]")

    def _blocked(self, x: Sequence[int], y: Sequence[int], op: str) -> List[int]:
        backend = self.backend
        lanes = backend.lanes
        out: List[int] = []
        method = getattr(backend, op)
        for base in range(0, len(x), lanes):
            a = backend.load_block(x[base : base + lanes])
            b = backend.load_block(y[base : base + lanes])
            out.extend(backend.store_block(method(a, b, self.ctx)))
        return out

    def vector_add(self, x: Sequence[int], y: Sequence[int]) -> List[int]:
        """Point-wise ``(x + y) mod q``."""
        self._check(x, y)
        return self._blocked(x, y, "addmod")

    def vector_sub(self, x: Sequence[int], y: Sequence[int]) -> List[int]:
        """Point-wise ``(x - y) mod q``."""
        self._check(x, y)
        return self._blocked(x, y, "submod")

    def vector_mul(self, x: Sequence[int], y: Sequence[int]) -> List[int]:
        """Point-wise ``(x * y) mod q`` (the gemv special case)."""
        self._check(x, y)
        return self._blocked(x, y, "mulmod")

    def axpy(self, a: int, x: Sequence[int], y: Sequence[int]) -> List[int]:
        """BLAS Level 1 ``axpy``: ``(a * x + y) mod q`` for scalar ``a``."""
        check_reduced(a, self.q, "a")
        self._check(x, y)
        backend = self.backend
        lanes = backend.lanes
        a_block = backend.broadcast_dw(a)
        out: List[int] = []
        for base in range(0, len(x), lanes):
            xb = backend.load_block(x[base : base + lanes])
            yb = backend.load_block(y[base : base + lanes])
            prod = backend.mulmod(xb, a_block, self.ctx)
            out.extend(backend.store_block(backend.addmod(prod, yb, self.ctx)))
        return out


def vector_add(
    x: Sequence[int], y: Sequence[int], q: int, backend: Backend
) -> List[int]:
    """One-shot point-wise modular vector addition."""
    return BlasPlan(q, backend).vector_add(x, y)


def vector_sub(
    x: Sequence[int], y: Sequence[int], q: int, backend: Backend
) -> List[int]:
    """One-shot point-wise modular vector subtraction."""
    return BlasPlan(q, backend).vector_sub(x, y)


def vector_pointwise_mul(
    x: Sequence[int], y: Sequence[int], q: int, backend: Backend
) -> List[int]:
    """One-shot point-wise modular vector multiplication."""
    return BlasPlan(q, backend).vector_mul(x, y)


def axpy(
    a: int, x: Sequence[int], y: Sequence[int], q: int, backend: Backend
) -> List[int]:
    """One-shot modular ``axpy``."""
    return BlasPlan(q, backend).axpy(a, x, y)
