"""BLAS operations over ``Z_q`` with 128-bit coefficients (Section 2.3).

Point-wise polynomial operations captured as BLAS calls: vector addition
and subtraction (axpy variants), point-wise vector multiplication (a gemv
special case), and ``axpy`` itself. Each operation loops the configured
kernel backend over blocks of a residue vector, exactly as the paper's
BLAS kernels loop SIMD modular arithmetic over 1,024-element vectors.
"""

from repro.blas.ops import (
    BlasPlan,
    axpy,
    vector_add,
    vector_pointwise_mul,
    vector_sub,
)

__all__ = [
    "BlasPlan",
    "vector_add",
    "vector_sub",
    "vector_pointwise_mul",
    "axpy",
]
