"""The paper's four BLAS operations on the fast engine.

Same semantics as :mod:`repro.blas.ops` — point-wise modular add, sub,
mul, and ``axpy`` — but each call is a constant number of whole-vector
NumPy passes instead of a Python loop over SIMD blocks. Inputs may be
flat vectors or ``(batch, n)`` stacks (the RNS pipeline's residue
channels); the scalar ``a`` of ``axpy`` broadcasts exactly like the
backends' hoisted ``broadcast_dw`` register.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ArithmeticDomainError
from repro.fast.limbs import limbs_from_ints, limbs_to_ints, r52_join, r52_split
from repro.fast.modular import FastModulus
from repro.obs.hooks import engine_run_span, record_engine_call, record_r52_call
from repro.util.checks import check_reduced

IntMatrix = Union[Sequence[int], Sequence[Sequence[int]], np.ndarray]


class FastBlasPlan:
    """Reusable per-modulus binding for vectorized BLAS calls.

    The fast-engine counterpart of :class:`repro.blas.ops.BlasPlan`:
    precomputes the Barrett constants once (shared process-wide via
    :meth:`FastModulus.get`), then serves add/sub/mul/axpy over
    arbitrarily long (and batched) vectors. ``mode`` selects the
    arithmetic substrate for the multiplicative ops (see
    :class:`FastModulus`); on r52, ``axpy`` additionally derives a
    Shoup constant for its scalar and runs the cheaper
    precomputed-multiplicand product.
    """

    def __init__(self, q: int, mode: Optional[str] = None) -> None:
        self.q = q
        self.mod = FastModulus.get(q, mode)
        self.mode = self.mod.mode

    def _coerce_pair(self, x: IntMatrix, y: IntMatrix):
        xa = limbs_from_ints(x)
        ya = limbs_from_ints(y)
        if xa.shape != ya.shape:
            raise ArithmeticDomainError(
                f"vector length mismatch: {xa.shape[:-1]} vs {ya.shape[:-1]}"
            )
        self.mod.check_reduced(xa, "x")
        self.mod.check_reduced(ya, "y")
        as_ints = not (isinstance(x, np.ndarray) or isinstance(y, np.ndarray))
        return xa, ya, as_ints

    def vector_add(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x + y) mod q``.

        Always double-word, even on r52 plans: a 128-bit add is two
        NumPy passes, cheaper than the repack either side would cost.
        """
        xa, ya, as_ints = self._coerce_pair(x, y)
        record_engine_call("fast", "blas.vector_add", xa.size // 2)
        with engine_run_span(
            "fast", "blas.vector_add", xa.size // 2, mode=self.mode
        ):
            out = self.mod.addmod(xa, ya)
        return limbs_to_ints(out) if as_ints else out

    def vector_sub(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x - y) mod q`` (double-word path, like add)."""
        xa, ya, as_ints = self._coerce_pair(x, y)
        record_engine_call("fast", "blas.vector_sub", xa.size // 2)
        with engine_run_span(
            "fast", "blas.vector_sub", xa.size // 2, mode=self.mode
        ):
            out = self.mod.submod(xa, ya)
        return limbs_to_ints(out) if as_ints else out

    def vector_mul(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x * y) mod q``."""
        xa, ya, as_ints = self._coerce_pair(x, y)
        record_engine_call("fast", "blas.vector_mul", xa.size // 2)
        if self.mod.r52 is not None:
            record_r52_call("blas.vector_mul", xa.size // 2)
        with engine_run_span(
            "fast", "blas.vector_mul", xa.size // 2, mode=self.mode
        ):
            out = self.mod.mulmod(xa, ya)
        return limbs_to_ints(out) if as_ints else out

    def axpy(self, a: int, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """``(a * x + y) mod q`` for scalar ``a`` (broadcast over lanes).

        On the r52 substrate the scalar gets a runtime Shoup constant
        (one big-int division), turning the broadcast product into the
        precomputed-multiplicand form — two limb-plane multiplies and
        one correction instead of a full Barrett reduction per lane.
        """
        check_reduced(a, self.q, "a")
        xa, ya, as_ints = self._coerce_pair(x, y)
        record_engine_call("fast", "blas.axpy", xa.size // 2)
        if self.mod.r52 is not None:
            record_r52_call("blas.axpy", xa.size // 2)
        with engine_run_span("fast", "blas.axpy", xa.size // 2, mode=self.mode):
            if self.mod.r52 is not None:
                r = self.mod.r52
                prod = r.mulmod_shoup(r52_split(xa, r.limbs), r.shoup(a))
                out = r52_join(r.addmod(prod, r52_split(ya, r.limbs)))
            else:
                a_block = limbs_from_ints(a)
                out = self.mod.addmod(self.mod.mulmod(xa, a_block), ya)
        return limbs_to_ints(out) if as_ints else out


def fast_vector_add(x: IntMatrix, y: IntMatrix, q: int) -> Union[List[int], list]:
    """One-shot point-wise modular vector addition (fast engine)."""
    return FastBlasPlan(q).vector_add(x, y)


def fast_vector_sub(x: IntMatrix, y: IntMatrix, q: int) -> Union[List[int], list]:
    """One-shot point-wise modular vector subtraction (fast engine)."""
    return FastBlasPlan(q).vector_sub(x, y)


def fast_vector_mul(x: IntMatrix, y: IntMatrix, q: int) -> Union[List[int], list]:
    """One-shot point-wise modular vector multiplication (fast engine)."""
    return FastBlasPlan(q).vector_mul(x, y)


def fast_axpy(a: int, x: IntMatrix, y: IntMatrix, q: int) -> Union[List[int], list]:
    """One-shot modular ``axpy`` (fast engine)."""
    return FastBlasPlan(q).axpy(a, x, y)
