"""The paper's four BLAS operations on the fast engine.

Same semantics as :mod:`repro.blas.ops` — point-wise modular add, sub,
mul, and ``axpy`` — but each call is a constant number of whole-vector
NumPy passes instead of a Python loop over SIMD blocks. Inputs may be
flat vectors or ``(batch, n)`` stacks (the RNS pipeline's residue
channels); the scalar ``a`` of ``axpy`` broadcasts exactly like the
backends' hoisted ``broadcast_dw`` register.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.errors import ArithmeticDomainError
from repro.fast.limbs import limbs_from_ints, limbs_to_ints
from repro.fast.modular import FastModulus
from repro.obs.hooks import engine_run_span, record_engine_call
from repro.util.checks import check_reduced

IntMatrix = Union[Sequence[int], Sequence[Sequence[int]], np.ndarray]


class FastBlasPlan:
    """Reusable per-modulus binding for vectorized BLAS calls.

    The fast-engine counterpart of :class:`repro.blas.ops.BlasPlan`:
    precomputes the Barrett constants once, then serves add/sub/mul/axpy
    over arbitrarily long (and batched) vectors.
    """

    def __init__(self, q: int) -> None:
        self.q = q
        self.mod = FastModulus(q)

    def _coerce_pair(self, x: IntMatrix, y: IntMatrix):
        xa = limbs_from_ints(x)
        ya = limbs_from_ints(y)
        if xa.shape != ya.shape:
            raise ArithmeticDomainError(
                f"vector length mismatch: {xa.shape[:-1]} vs {ya.shape[:-1]}"
            )
        self.mod.check_reduced(xa, "x")
        self.mod.check_reduced(ya, "y")
        as_ints = not (isinstance(x, np.ndarray) or isinstance(y, np.ndarray))
        return xa, ya, as_ints

    def vector_add(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x + y) mod q``."""
        xa, ya, as_ints = self._coerce_pair(x, y)
        record_engine_call("fast", "blas.vector_add", xa.size // 2)
        with engine_run_span("fast", "blas.vector_add", xa.size // 2):
            out = self.mod.addmod(xa, ya)
        return limbs_to_ints(out) if as_ints else out

    def vector_sub(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x - y) mod q``."""
        xa, ya, as_ints = self._coerce_pair(x, y)
        record_engine_call("fast", "blas.vector_sub", xa.size // 2)
        with engine_run_span("fast", "blas.vector_sub", xa.size // 2):
            out = self.mod.submod(xa, ya)
        return limbs_to_ints(out) if as_ints else out

    def vector_mul(self, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """Point-wise ``(x * y) mod q``."""
        xa, ya, as_ints = self._coerce_pair(x, y)
        record_engine_call("fast", "blas.vector_mul", xa.size // 2)
        with engine_run_span("fast", "blas.vector_mul", xa.size // 2):
            out = self.mod.mulmod(xa, ya)
        return limbs_to_ints(out) if as_ints else out

    def axpy(self, a: int, x: IntMatrix, y: IntMatrix) -> IntMatrix:
        """``(a * x + y) mod q`` for scalar ``a`` (broadcast over lanes)."""
        check_reduced(a, self.q, "a")
        xa, ya, as_ints = self._coerce_pair(x, y)
        record_engine_call("fast", "blas.axpy", xa.size // 2)
        with engine_run_span("fast", "blas.axpy", xa.size // 2):
            a_block = limbs_from_ints(a)
            out = self.mod.addmod(self.mod.mulmod(xa, a_block), ya)
        return limbs_to_ints(out) if as_ints else out


def fast_vector_add(x: IntMatrix, y: IntMatrix, q: int) -> Union[List[int], list]:
    """One-shot point-wise modular vector addition (fast engine)."""
    return FastBlasPlan(q).vector_add(x, y)


def fast_vector_sub(x: IntMatrix, y: IntMatrix, q: int) -> Union[List[int], list]:
    """One-shot point-wise modular vector subtraction (fast engine)."""
    return FastBlasPlan(q).vector_sub(x, y)


def fast_vector_mul(x: IntMatrix, y: IntMatrix, q: int) -> Union[List[int], list]:
    """One-shot point-wise modular vector multiplication (fast engine)."""
    return FastBlasPlan(q).vector_mul(x, y)


def fast_axpy(a: int, x: IntMatrix, y: IntMatrix, q: int) -> Union[List[int], list]:
    """One-shot modular ``axpy`` (fast engine)."""
    return FastBlasPlan(q).axpy(a, x, y)
