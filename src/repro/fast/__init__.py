"""``repro.fast`` — the NumPy-vectorized execution engine.

The library has two ways to run the paper's kernels:

* the **faithful** engine (:mod:`repro.kernels`): lane-accurate ISA
  simulation, one instruction at a time — the thing that gets traced,
  scheduled and estimated;
* this **fast** engine: the same double-word Barrett algorithms computed
  on whole ``uint64`` limb ndarrays at once — the thing that computes
  actual results at speed (examples, the RNS pipeline, verification).

Both produce bit-identical outputs for every modulus up to 124 bits; the
``engine="fast"`` switch on :class:`~repro.ntt.simd.SimdNtt`,
:class:`~repro.ntt.negacyclic.NegacyclicNtt`,
:class:`~repro.blas.ops.BlasPlan` and
:class:`~repro.rns.poly.RnsPolynomialRing` selects between them.
See ``docs/PERFORMANCE.md`` for the design and measured speedups.
"""

from repro.fast.blas import (
    FastBlasPlan,
    fast_axpy,
    fast_vector_add,
    fast_vector_mul,
    fast_vector_sub,
)
from repro.fast.limbs import limbs_from_ints, limbs_to_ints
from repro.fast.modular import FastModulus
from repro.fast.ntt import FastNegacyclic, FastNtt, fast_negacyclic_polymul

__all__ = [
    "FastBlasPlan",
    "FastModulus",
    "FastNegacyclic",
    "FastNtt",
    "fast_axpy",
    "fast_negacyclic_polymul",
    "fast_vector_add",
    "fast_vector_mul",
    "fast_vector_sub",
    "limbs_from_ints",
    "limbs_to_ints",
]
