"""``repro.fast`` — the NumPy-vectorized execution engine.

The library has two ways to run the paper's kernels:

* the **faithful** engine (:mod:`repro.kernels`): lane-accurate ISA
  simulation, one instruction at a time — the thing that gets traced,
  scheduled and estimated;
* this **fast** engine: the same double-word Barrett algorithms computed
  on whole ``uint64`` limb ndarrays at once — the thing that computes
  actual results at speed (examples, the RNS pipeline, verification).

Both produce bit-identical outputs for every modulus up to 124 bits; the
``engine="fast"`` switch on :class:`~repro.ntt.simd.SimdNtt`,
:class:`~repro.ntt.negacyclic.NegacyclicNtt`,
:class:`~repro.blas.ops.BlasPlan` and
:class:`~repro.rns.poly.RnsPolynomialRing` selects between them.

The fast engine itself has two arithmetic substrates: the double-word
(``"dw"``) schoolbook path and the 52-bit redundant-limb path of
:mod:`repro.fast.r52` (``"r52"``), which mirrors AVX-512 IFMA's
``madd52lo/hi`` split and batches carry propagation once per NTT stage.
``mode="auto"`` (the default, overridable via ``REPRO_FAST_MODE``)
routes to r52 whenever the modulus fits its fast range. See
``docs/PERFORMANCE.md`` for the design and measured speedups.
"""

from repro.fast.blas import (
    FastBlasPlan,
    fast_axpy,
    fast_vector_add,
    fast_vector_mul,
    fast_vector_sub,
)
from repro.fast.limbs import limbs_from_ints, limbs_to_ints, r52_join, r52_split
from repro.fast.modular import FastModulus
from repro.fast.ntt import FastNegacyclic, FastNtt, fast_negacyclic_polymul
from repro.fast.r52 import (
    AUTO_MAX_BETA,
    FAST_MODE_ENV,
    FAST_MODES,
    R52Modulus,
    R52Ntt,
    get_r52_modulus,
    resolve_fast_mode,
)

__all__ = [
    "AUTO_MAX_BETA",
    "FAST_MODE_ENV",
    "FAST_MODES",
    "FastBlasPlan",
    "FastModulus",
    "FastNegacyclic",
    "FastNtt",
    "R52Modulus",
    "R52Ntt",
    "fast_axpy",
    "fast_negacyclic_polymul",
    "fast_vector_add",
    "fast_vector_mul",
    "fast_vector_sub",
    "get_r52_modulus",
    "limbs_from_ints",
    "limbs_to_ints",
    "r52_join",
    "r52_split",
    "resolve_fast_mode",
]
