"""52-bit redundant-limb arithmetic — the fast engine's r52 substrate.

This module is the NumPy reproduction of Intel HEXL's core idea (see
``docs/PERFORMANCE.md``): keep residues as 52-bit limbs in ``uint64``
lanes, mirror the ``vpmadd52luq``/``vpmadd52huq`` split as vectorized
64-bit multiplies whose partial products *stay redundant*, and batch
carry propagation — once per NTT stage, once per BLAS op — instead of
chaining carries through every multiply the way the double-word
(``repro.fast.limbs``) substrate must.

Representation
    A vector mod ``q`` is ``L`` separate contiguous ``uint64`` planes,
    plane ``k`` holding bits ``[52k, 52k + 52)`` of each element
    (:func:`repro.fast.limbs.r52_split`). ``L`` is the smallest limb
    count with ``beta <= 52L - 2`` (``beta = q.bit_length()``): one limb
    through 50 bits, two through 102, three through 124. The two spare
    bits guarantee *both* that Harvey's lazy range ``[0, 4q)`` fits the
    radix ``2^(52L)`` and that every Barrett intermediate below stays
    in ``L`` limbs — so the lazy NTT path is available at every width.

The high half of a 52x52-bit product is obtained the way IFMA hardware
does it for free and floats do it almost for free: ``float64`` has a
52-bit mantissa, so ``trunc(float(a) * (float(b) * 2^-52))`` is the true
high part up to ±1, and the exact low bits (which ``uint64 * uint64``
gives us for free, wrapped) pin the correction::

    d = ((lo >> 52) - h_est) & 0xFFF;  d -= (d >> 11) << 12;  h = h_est + d

(the window is ±2048, far beyond the ±2-ish float error, and the
``uint64`` wraparound makes the correction exact).

Reduction is the shift-refined Barrett of ``arith.dwmod`` re-derived
over 52-bit limbs with one guard bit on each shift —
``mu = floor(2^(2*beta+1) / q)``, ``estimate = ((t >> (beta-2)) * mu)
>> (beta+3)`` — which tightens the quotient error to at most 1, so a
*single* conditional subtraction finishes ``mulmod`` (the classic
``beta-1``/``beta+1`` shifts of the double-word path need two).
Everything is cross-validated bit-exactly against :mod:`repro.arith.dwmod`
and the schoolbook fast path in ``tests/test_fast_r52.py``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arith.dwmod import check_modulus_128
from repro.errors import ArithmeticDomainError
from repro.fast.limbs import (
    LIMB52_BITS,
    MASK52,
    _wrapping,
    r52_join,
    r52_split,
)
from repro.ntt.twiddles import TwiddleTable
from repro.obs.hooks import record_r52_carry_flush

#: Valid values for the fast engine's ``mode=`` kwarg / env override.
FAST_MODES = ("auto", "r52", "dw")

#: Environment override for the default substrate selection.
FAST_MODE_ENV = "REPRO_FAST_MODE"

#: Widest modulus ``auto`` routes to r52. Through 102 bits the whole
#: pipeline fits two limbs and r52 is a measured win on every op; 103+
#: bits force a third limb whose extra schoolbook columns erase the win
#: on general-operand ``mulmod``, so ``auto`` keeps the double-word
#: substrate there (``mode="r52"`` still forces it, exactly, to 124).
AUTO_MAX_BETA = 102

#: How many canonical 52-bit limbs one ``uint64`` lane can accumulate
#: before the deferred-carry sum can wrap: ``2^(64-52)``. This is the
#: redundancy budget HEXL's deferred carries rely on; the lazy NTT
#: consumes at most :data:`STAGE_DEFERRED_ADDS` of it per stage.
MAX_DEFERRED_ADDS = 1 << (64 - LIMB52_BITS)

#: Deferred-add depth the lazy butterfly actually accumulates between
#: carry flushes (the ``x~ + t`` wing adds two canonical values
#: limb-wise and leaves the carry for the next stage's normalize pass).
STAGE_DEFERRED_ADDS = 2

#: Lazy butterflies keep values in ``[0, LAZY_BOUND_MULTIPLE * q)``
#: between stages (Harvey's bound; must match the IFMA model).
LAZY_BOUND_MULTIPLE = 4

_U64 = np.uint64
_S52 = _U64(52)
_B52 = _U64(1 << 52)
_B52M1 = _U64((1 << 52) - 1)
_WIN_MASK = _U64(0xFFF)
_WIN_HALF = _U64(11)
_WIN_BITS = _U64(12)
_SCALE = 2.0 ** -52

LimbPlanes = List[np.ndarray]


def resolve_fast_mode(mode: Optional[str] = None, q: Optional[int] = None) -> str:
    """Resolve a requested fast-engine mode to ``"r52"`` or ``"dw"``.

    ``mode=None`` falls back to the :data:`FAST_MODE_ENV` environment
    variable, then to ``"auto"``; ``"auto"`` picks r52 exactly when
    ``q.bit_length() <= AUTO_MAX_BETA`` (and ``q`` is given).
    """
    if mode is None:
        mode = os.environ.get(FAST_MODE_ENV, "").strip() or "auto"
    if mode not in FAST_MODES:
        raise ArithmeticDomainError(
            f"fast mode must be one of {FAST_MODES}, got {mode!r}"
        )
    if mode == "auto":
        if q is None:
            return "auto"
        return "r52" if 2 <= q.bit_length() <= AUTO_MAX_BETA else "dw"
    return mode


def limb_count(beta: int) -> int:
    """Smallest ``L`` with ``beta <= 52L - 2`` (1, 2 or 3 for <= 124)."""
    for limbs in (1, 2, 3):
        if beta <= LIMB52_BITS * limbs - 2:
            return limbs
    raise ArithmeticDomainError(
        f"r52 supports moduli up to 124 bits, got beta={beta}"
    )


@_wrapping
def _exact_hi52(lo: np.ndarray, a_f: np.ndarray, b_f_scaled) -> np.ndarray:
    """Exact high 52+ bits of a limb product from its float estimate.

    ``lo`` is the wrapped ``uint64`` product (its low bits are exact),
    ``a_f`` the unscaled float image of one operand, ``b_f_scaled`` the
    other operand pre-multiplied by ``2^-52``. The float estimate is off
    by at most ~2; the correction window recovers the true value.
    """
    h = (a_f * b_f_scaled).astype(_U64)
    d = ((lo >> _S52) - h) & _WIN_MASK
    d -= (d >> _WIN_HALF) << _WIN_BITS
    return h + d


def _as_floats(planes: Sequence, scaled: bool) -> list:
    """Float images of limb planes (scaled ones carry the ``2^-52``)."""
    out = []
    for p in planes:
        f = p.astype(np.float64) if isinstance(p, np.ndarray) else np.float64(int(p))
        out.append(f * _SCALE if scaled else f)
    return out


class R52Modulus:
    """Per-modulus state for 52-bit redundant-limb arithmetic.

    All vector operands are lists of ``limbs`` uint64 planes (see
    module docstring); :meth:`from_dw` / :meth:`to_dw` convert to and
    from the fast engine's ``(..., 2)`` double-word layout at API
    boundaries. Canonical planes are strictly below ``2^52``; the lazy
    NTT additionally passes *redundant* planes (below ``2^53``) into
    the Shoup product, which stays exact for them by construction.
    """

    def __init__(self, q: int) -> None:
        check_modulus_128(q)
        self.q = q
        self.beta = beta = q.bit_length()
        self.limbs = L = limb_count(beta)
        self.radix_bits = LIMB52_BITS * L
        #: Guard-bit Barrett: one extra bit on each shift bounds the
        #: quotient error by 1 (single conditional subtraction).
        self.mu = (1 << (2 * beta + 1)) // q
        self.shift_pre = beta - 2
        self.shift_post = beta + 3
        mask = (1 << LIMB52_BITS) - 1
        self._q = tuple(_U64((q >> (LIMB52_BITS * k)) & mask) for k in range(L))
        self._mu = tuple(
            _U64((self.mu >> (LIMB52_BITS * k)) & mask) for k in range(L)
        )
        twoq = 2 * q
        self._twoq = tuple(
            _U64((twoq >> (LIMB52_BITS * k)) & mask) for k in range(L)
        )
        self._qf = tuple(_as_floats(self._q, scaled=True))
        self._muf = tuple(_as_floats(self._mu, scaled=True))

    def __repr__(self) -> str:
        return f"R52Modulus(q={self.q}, limbs={self.limbs})"

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------

    def from_dw(self, arr: np.ndarray) -> LimbPlanes:
        """``(..., 2)`` double-word array -> 52-bit limb planes."""
        return r52_split(arr, self.limbs)

    def to_dw(self, planes: LimbPlanes) -> np.ndarray:
        """Canonical 52-bit limb planes -> ``(..., 2)`` double words."""
        return r52_join(planes)

    def from_ints(self, values) -> LimbPlanes:
        """Python ints -> limb planes (test/bench convenience)."""
        from repro.fast.limbs import limbs_from_ints

        return self.from_dw(limbs_from_ints(values))

    def to_ints(self, planes: LimbPlanes):
        """Limb planes -> Python ints (test/bench convenience)."""
        from repro.fast.limbs import limbs_to_ints

        return limbs_to_ints(self.to_dw(planes))

    # ------------------------------------------------------------------
    # Carry machinery
    # ------------------------------------------------------------------

    @_wrapping
    def normalize(self, x: LimbPlanes) -> LimbPlanes:
        """Flush deferred carries: redundant planes -> canonical planes.

        One ripple pass (the per-stage carry batch of the lazy NTT).
        The represented value must fit the radix ``2^(52L)``.
        """
        out = list(x)
        for k in range(self.limbs - 1):
            out[k + 1] = out[k + 1] + (out[k] >> _S52)
            out[k] = out[k] & MASK52
        return out

    @_wrapping
    def _sub_chain(
        self, x: Sequence, y: Sequence
    ) -> Tuple[LimbPlanes, np.ndarray]:
        """``(x - y) mod 2^(52L)`` by base complement; returns no-borrow.

        ``x`` may be redundant (planes < ``2^53``); the output planes
        are canonical. The second return is 1 where no borrow occurred
        (i.e. ``x >= y``) — only meaningful for canonical ``x``.
        """
        out: LimbPlanes = []
        carry = None
        for k in range(self.limbs):
            acc = x[k] + (_B52 if k == 0 else _B52M1) - y[k]
            if carry is not None:
                acc = acc + carry
            out.append(acc & MASK52)
            carry = acc >> _S52
        return out, carry

    @_wrapping
    def _cond_sub(self, x: LimbPlanes, y: Sequence) -> LimbPlanes:
        """``x - y`` where ``x >= y`` (canonical planes, scalar ``y``)."""
        diff, no_borrow = self._sub_chain(x, y)
        mask = _U64(0) - no_borrow
        inv = ~mask
        return [(diff[k] & mask) | (x[k] & inv) for k in range(self.limbs)]

    def cond_sub_q(self, x: LimbPlanes) -> LimbPlanes:
        """One Barrett correction: subtract ``q`` where ``x >= q``."""
        return self._cond_sub(x, self._q)

    def cond_sub_2q(self, x: LimbPlanes) -> LimbPlanes:
        """Harvey's lazy-range correction: ``[0, 4q) -> [0, 2q)``."""
        return self._cond_sub(x, self._twoq)

    def reduce_from_lazy(self, x: LimbPlanes) -> LimbPlanes:
        """Final lazy-NTT normalization: ``[0, 4q)`` redundant -> ``[0, q)``."""
        return self.cond_sub_q(self.cond_sub_2q(self.normalize(x)))

    # ------------------------------------------------------------------
    # Products (madd52lo/madd52hi analogues, carries batched per column)
    # ------------------------------------------------------------------

    @_wrapping
    def _mul_full(
        self, a: Sequence, af: Sequence, b: Sequence, bf: Sequence
    ) -> List[np.ndarray]:
        """Exact ``2L``-column product; carries propagated once at the end.

        ``a`` may be redundant (planes < ``2^53``: still exact in
        float64 and within the correction window); ``b`` must be
        canonical with pre-scaled floats ``bf``.
        """
        L = self.limbs
        cols: List = [None] * (2 * L)
        for i in range(L):
            for j in range(L):
                lo = a[i] * b[j]
                hi = _exact_hi52(lo, af[i], bf[j])
                k = i + j
                lo52 = lo & MASK52
                cols[k] = lo52 if cols[k] is None else cols[k] + lo52
                cols[k + 1] = hi if cols[k + 1] is None else cols[k + 1] + hi
        # Column 0 is a single already-masked product — no carry out.
        for k in range(1, 2 * L - 1):
            cols[k + 1] = cols[k + 1] + (cols[k] >> _S52)
            cols[k] = cols[k] & MASK52
        return cols

    @_wrapping
    def _mul_low(
        self, a: Sequence, af: Sequence, b: Sequence, bf: Sequence
    ) -> LimbPlanes:
        """Low ``L`` limbs of the product, exactly (``mullo`` analogue)."""
        L = self.limbs
        cols: List = [None] * L
        for i in range(L):
            for j in range(L - i):
                lo = a[i] * b[j]
                k = i + j
                lo52 = lo & MASK52
                cols[k] = lo52 if cols[k] is None else cols[k] + lo52
                if k + 1 < L:
                    hi = _exact_hi52(lo, af[i], bf[j])
                    cols[k + 1] = hi if cols[k + 1] is None else cols[k + 1] + hi
        # Column 0 is a single already-masked product — no carry out.
        for k in range(1, L - 1):
            cols[k + 1] = cols[k + 1] + (cols[k] >> _S52)
            cols[k] = cols[k] & MASK52
        cols[L - 1] = cols[L - 1] & MASK52
        return cols

    def _shift_limbs(self, cols: List[np.ndarray], amount: int) -> LimbPlanes:
        """``(value >> amount)`` of a column vector, low ``L`` limbs."""
        L = self.limbs
        word, rem = divmod(amount, LIMB52_BITS)
        if rem == 0:
            return [
                cols[word + k] if word + k < len(cols)
                else np.zeros_like(cols[0])
                for k in range(L)
            ]
        r = _U64(rem)
        inv = _U64(LIMB52_BITS - rem)
        out: LimbPlanes = []
        with np.errstate(over="ignore"):
            for k in range(L):
                lo = cols[word + k] >> r if word + k < len(cols) else None
                if word + k + 1 < len(cols):
                    hi = (cols[word + k + 1] << inv) & MASK52
                    out.append(hi if lo is None else lo | hi)
                else:
                    out.append(np.zeros_like(cols[0]) if lo is None else lo)
        return out

    # ------------------------------------------------------------------
    # Modular operations (bit-exact vs repro.arith.dwmod)
    # ------------------------------------------------------------------

    @_wrapping
    def addmod(self, a: LimbPlanes, b: LimbPlanes) -> LimbPlanes:
        """``(a + b) mod q``: deferred limb adds, one flush, one cond-sub."""
        total = [a[k] + b[k] for k in range(self.limbs)]
        return self.cond_sub_q(self.normalize(total))

    @_wrapping
    def submod(self, a: LimbPlanes, b: LimbPlanes) -> LimbPlanes:
        """``(a - b) mod q``: borrow then conditional add-back of ``q``."""
        diff, no_borrow = self._sub_chain(a, b)
        fixed = self.normalize([diff[k] + self._q[k] for k in range(self.limbs)])
        # The borrow case adds back q to (a - b + 2^(52L)); dropping the
        # radix overflow is exactly the mod-2^(52L) wrap we want.
        fixed[self.limbs - 1] = fixed[self.limbs - 1] & MASK52
        mask = _U64(0) - no_borrow
        inv = ~mask
        return [
            (diff[k] & mask) | (fixed[k] & inv) for k in range(self.limbs)
        ]

    def mulmod(self, a: LimbPlanes, b: LimbPlanes) -> LimbPlanes:
        """``(a * b) mod q`` via guard-bit Barrett over 52-bit limbs.

        1. ``t = a * b`` (``2L`` columns, carries batched once),
        2. ``estimate = ((t >> (beta-2)) * mu) >> (beta+3)`` — the two
           guard bits bound ``floor(t/q) - estimate`` by 1,
        3. ``c = t - estimate * q`` modulo ``2^(52L)`` (fits: ``2q <
           2^(52L)`` by the limb-count rule),
        4. one conditional subtraction of ``q``.
        """
        af = _as_floats(a, scaled=False)
        bf = _as_floats(b, scaled=True)
        t_cols = self._mul_full(a, af, b, bf)
        s = self._shift_limbs(t_cols, self.shift_pre)
        sf = _as_floats(s, scaled=False)
        g_cols = self._mul_full(s, sf, self._mu, self._muf)
        est = self._shift_limbs(g_cols, self.shift_post)
        est_f = _as_floats(est, scaled=False)
        est_q_low = self._mul_low(est, est_f, self._q, self._qf)
        c, _ = self._sub_chain(t_cols[: self.limbs], est_q_low)
        return self.cond_sub_q(c)

    # ------------------------------------------------------------------
    # Shoup multiplication (precomputed-multiplicand path)
    # ------------------------------------------------------------------

    def shoup(self, w: int) -> tuple:
        """Precompute the Shoup pair for a fixed multiplicand ``w < q``.

        Returns ``(w_planes, w_floats, wp_planes, wp_floats)`` where
        ``wp = floor(w * 2^(52L) / q)`` — the 52-bit analogue of
        :meth:`repro.ifma.kernel.IfmaKernel.shoup_constant`.
        """
        if not 0 <= w < self.q:
            raise ArithmeticDomainError(f"Shoup multiplicand {w} not in [0, q)")
        wp = (w << self.radix_bits) // self.q
        mask = (1 << LIMB52_BITS) - 1
        w_planes = tuple(
            _U64((w >> (LIMB52_BITS * k)) & mask) for k in range(self.limbs)
        )
        wp_planes = tuple(
            _U64((wp >> (LIMB52_BITS * k)) & mask) for k in range(self.limbs)
        )
        return (
            w_planes,
            tuple(_as_floats(w_planes, scaled=True)),
            wp_planes,
            tuple(_as_floats(wp_planes, scaled=True)),
        )

    def shoup_vector(self, ws: Sequence[int]) -> tuple:
        """Vector form of :meth:`shoup` (per-element multiplicands)."""
        q = self.q
        mask = (1 << LIMB52_BITS) - 1
        shift = self.radix_bits
        wps = [(w << shift) // q for w in ws]
        w_planes = [
            np.array(
                [(w >> (LIMB52_BITS * k)) & mask for w in ws], dtype=_U64
            )
            for k in range(self.limbs)
        ]
        wp_planes = [
            np.array(
                [(w >> (LIMB52_BITS * k)) & mask for w in wps], dtype=_U64
            )
            for k in range(self.limbs)
        ]
        return (
            w_planes,
            _as_floats(w_planes, scaled=True),
            wp_planes,
            _as_floats(wp_planes, scaled=True),
        )

    @_wrapping
    def mulmod_shoup_lazy(self, y: Sequence, shoup_pair: tuple) -> LimbPlanes:
        """``(w * y) mod q`` into ``[0, 2q)`` (no final correction).

        ``y``'s *value* may be anywhere in ``[0, 2^(52L))`` — in
        particular Harvey's lazy ``[0, 4q)`` — and its planes may be
        redundant (below ``2^53``); the result planes are canonical.
        """
        w_planes, w_f, wp_planes, wp_f = shoup_pair
        yf = _as_floats(y, scaled=False)
        cols = self._mul_full(y, yf, wp_planes, wp_f)
        h = cols[self.limbs:]
        hf = _as_floats(h, scaled=False)
        wy_low = self._mul_low(y, yf, w_planes, w_f)
        hq_low = self._mul_low(h, hf, self._q, self._qf)
        r, _ = self._sub_chain(wy_low, hq_low)
        return r

    def mulmod_shoup(self, y: LimbPlanes, shoup_pair: tuple) -> LimbPlanes:
        """``(w * y) mod q`` fully reduced (lazy product + one cond-sub)."""
        return self.cond_sub_q(self.mulmod_shoup_lazy(y, shoup_pair))


class R52Ntt:
    """Constant-geometry NTT stages on the r52 substrate, Harvey-lazy.

    Runs the exact Pease dataflow of :class:`repro.fast.ntt.FastNtt`
    (same :class:`~repro.ntt.twiddles.TwiddleTable`, bit-identical
    results) but keeps butterfly values in ``[0, 4q)`` between stages
    with 52-bit redundant limbs:

    * the ``x~ + t`` wing defers its limb carries entirely (depth
      :data:`STAGE_DEFERRED_ADDS`, against a budget of
      :data:`MAX_DEFERRED_ADDS`);
    * each stage flushes the previous stage's deferred carries in one
      batched normalize pass, then corrects the top wing into
      ``[0, 2q)`` (Harvey's ``cond_sub_2q``);
    * twiddle products use the Shoup pair ``(w, floor(w*2^(52L)/q))``
      and come out in ``[0, 2q)`` with no per-butterfly correction;
    * one final :meth:`R52Modulus.reduce_from_lazy` pass per transform
      returns canonical ``[0, q)`` residues.
    """

    #: The carry cadence, asserted against the IFMA perf model in
    #: ``tests/test_ifma.py`` so model and engine cannot drift.
    CARRY_SCHEDULE = {
        "normalize_per_stage": 1,
        "final_reduce_passes": 1,
        "butterfly_deferred_adds": STAGE_DEFERRED_ADDS,
        "lazy_bound_multiple": LAZY_BOUND_MULTIPLE,
        "max_deferred_adds": MAX_DEFERRED_ADDS,
    }

    def __init__(self, table: TwiddleTable, mod: R52Modulus) -> None:
        if table.q != mod.q:
            raise ArithmeticDomainError(
                f"twiddle table is for q={table.q}, modulus is {mod.q}"
            )
        self.table = table
        self.mod = mod
        self._stage_shoup: Dict[Tuple[int, bool], tuple] = {}

    def _stage_pair(self, stage: int, inverse: bool) -> tuple:
        key = (stage, inverse)
        cached = self._stage_shoup.get(key)
        if cached is None:
            cached = self.mod.shoup_vector(
                self.table.pease_stage_twiddles(stage, inverse)
            )
            self._stage_shoup[key] = cached
        return cached

    @_wrapping
    def run_stages(self, x: LimbPlanes, inverse: bool) -> LimbPlanes:
        """All Pease stages; canonical planes in, canonical planes out."""
        mod = self.mod
        L = mod.limbs
        half = self.table.n // 2
        twoq = mod._twoq
        stages = self.table.stages
        for stage in range(stages):
            pair = self._stage_pair(stage, inverse)
            top = [x[k][..., :half] for k in range(L)]
            bottom = [x[k][..., half:] for k in range(L)]
            # Batched carry flush for the previous stage's deferred adds,
            # then Harvey's [0, 4q) -> [0, 2q) correction on the top wing.
            xt = mod.cond_sub_2q(mod.normalize(top))
            # bottom stays redundant: the Shoup product is exact for it.
            t = mod.mulmod_shoup_lazy(bottom, pair)
            plus = [xt[k] + t[k] for k in range(L)]  # carries deferred
            minus, _ = mod._sub_chain(
                [xt[k] + twoq[k] for k in range(L)], t
            )
            out = [np.empty_like(x[k]) for k in range(L)]
            for k in range(L):
                out[k][..., 0::2] = plus[k]
                out[k][..., 1::2] = minus[k]
            x = out
        record_r52_carry_flush(stages + 1)
        return mod.reduce_from_lazy(x)


# ---------------------------------------------------------------------------
# Process-wide memoized R52Modulus instances (mirrors TwiddleTable.get)
# ---------------------------------------------------------------------------

_R52_CACHE: "OrderedDict[int, R52Modulus]" = OrderedDict()
_R52_LOCK = threading.Lock()
_R52_CAPACITY = 64


def get_r52_modulus(q: int) -> R52Modulus:
    """The process-wide memoized :class:`R52Modulus` for ``q``."""
    with _R52_LOCK:
        mod = _R52_CACHE.get(q)
        if mod is not None:
            _R52_CACHE.move_to_end(q)
            return mod
    mod = R52Modulus(q)
    with _R52_LOCK:
        mod = _R52_CACHE.setdefault(q, mod)
        _R52_CACHE.move_to_end(q)
        while len(_R52_CACHE) > _R52_CAPACITY:
            _R52_CACHE.popitem(last=False)
    return mod
