"""Vectorized double-word modular arithmetic (the fast engine's core).

:class:`FastModulus` is the NumPy analogue of a kernel backend's
:class:`~repro.kernels.backend.ModulusContext`: one precomputation of
the Barrett constants per modulus, then whole-vector ``addmod`` /
``submod`` / ``mulmod`` over ``(..., 2)`` uint64 limb arrays. Every
operation runs the *same algorithm* as the ISA-faithful path —
Listing 1's carry structure for addition, Equation 7's borrow/add-back
for subtraction, and the shift-refined Barrett reduction of
:func:`repro.arith.dwmod.mulmod128` (wide product, quotient estimate,
``mullo``/subtract, two conditional corrections) — so the results agree
bit for bit with :mod:`repro.arith.dwmod` and with all four kernel
backends for any modulus up to 124 bits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple, Union

import numpy as np

from repro.arith.barrett import BarrettParams
from repro.arith.dwmod import check_modulus_128
from repro.errors import ArithmeticDomainError
from repro.fast.limbs import (
    IntVector,
    add128_nocarry,
    geq128,
    limbs_from_ints,
    limbs_to_ints,
    mullo128,
    r52_join,
    r52_split,
    select128,
    shift_right_256,
    sub128,
    wide_mul_128,
)
from repro.fast.r52 import get_r52_modulus, resolve_fast_mode
from repro.obs.hooks import record_fastmod_eviction

#: Process-wide memoized moduli, keyed by ``(q, resolved_mode)`` and
#: LRU-bounded like the twiddle cache (see ``FastModulus.get``): an RNS
#: ring cycling through many channel primes must not re-derive Barrett
#: and r52 constants at every plan construction, nor grow without limit.
_MODULUS_CACHE: "OrderedDict[Tuple[int, str], FastModulus]" = OrderedDict()
_MODULUS_LOCK = threading.Lock()

#: Default bound on cached FastModulus instances.
DEFAULT_CACHE_CAPACITY = 64


class FastModulus:
    """Per-modulus state for vectorized modular arithmetic (``q <= 2^124``).

    ``mode`` picks the arithmetic substrate for ``mulmod``: ``"dw"``
    runs the 128-bit schoolbook path below, ``"r52"`` routes through
    the 52-bit redundant-limb substrate (:mod:`repro.fast.r52`), and
    ``"auto"``/``None`` (optionally via the ``REPRO_FAST_MODE`` env
    var) picks r52 whenever the modulus fits its two-limb fast range.
    Results are bit-identical either way; ``addmod``/``submod`` always
    stay double-word (the repack would cost more than carry chains on
    an add). The public array layout is ``(..., 2)`` uint64 regardless.

    Attributes:
        q: The modulus (Python int).
        params: The shared :class:`~repro.arith.barrett.BarrettParams`.
        m: The modulus as a ``(2,)`` limb array (broadcasts over vectors).
        mu: Barrett ``mu`` as a ``(2,)`` limb array.
        mode: The resolved substrate, ``"r52"`` or ``"dw"``.
        r52: The bound :class:`~repro.fast.r52.R52Modulus` (or ``None``).
    """

    def __init__(self, q: int, mode: Optional[str] = None) -> None:
        check_modulus_128(q)
        self.q = q
        self.params = BarrettParams(q)
        self.params.check_width(128)
        self.beta = self.params.beta
        self.m = limbs_from_ints(q)
        self.mu = limbs_from_ints(self.params.mu)
        self.mode = resolve_fast_mode(mode, q)
        self.r52 = get_r52_modulus(q) if self.mode == "r52" else None

    @classmethod
    def get(cls, q: int, mode: Optional[str] = None) -> "FastModulus":
        """The process-wide memoized modulus for ``(q, mode)``.

        Mirrors :meth:`repro.ntt.twiddles.TwiddleTable.get`: every fast
        plan constructs its modulus through this cache, so repeated
        ``RnsPolynomialRing`` channel construction shares one Barrett /
        r52 precomputation per prime. Evictions bump the
        ``fastmod.evictions`` counter.
        """
        key = (q, resolve_fast_mode(mode, q))
        with _MODULUS_LOCK:
            mod = _MODULUS_CACHE.get(key)
            if mod is not None:
                _MODULUS_CACHE.move_to_end(key)
                return mod
        mod = cls(q, mode)
        with _MODULUS_LOCK:
            mod = _MODULUS_CACHE.setdefault(key, mod)
            _MODULUS_CACHE.move_to_end(key)
            while len(_MODULUS_CACHE) > DEFAULT_CACHE_CAPACITY:
                _MODULUS_CACHE.popitem(last=False)
                record_fastmod_eviction()
        return mod

    @classmethod
    def clear_cache(cls) -> None:
        """Drop all memoized moduli (tests, long-lived processes)."""
        with _MODULUS_LOCK:
            _MODULUS_CACHE.clear()

    @classmethod
    def cache_size(cls) -> int:
        """Number of cached ``(q, mode)`` entries."""
        with _MODULUS_LOCK:
            return len(_MODULUS_CACHE)

    def __repr__(self) -> str:
        return f"FastModulus(q={self.q}, mode={self.mode!r})"

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------

    def to_limbs(self, values: IntVector, name: str = "values") -> np.ndarray:
        """Pack and range-check operands: every element must be in [0, q)."""
        arr = limbs_from_ints(values)
        self.check_reduced(arr, name)
        return arr

    def check_reduced(self, arr: np.ndarray, name: str = "values") -> None:
        """Vectorized reduced-operand check (mirrors ``check_reduced``)."""
        bad = geq128(arr, self.m)
        if bad.any():
            index = np.argwhere(np.atleast_1d(bad))[0]
            raise ArithmeticDomainError(
                f"{name}[{', '.join(str(i) for i in index)}] is not reduced "
                f"modulo {self.q}"
            )

    # ------------------------------------------------------------------
    # Modular operations (bit-exact against repro.arith.dwmod)
    # ------------------------------------------------------------------

    def addmod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(a + b) mod q`` element-wise on limb arrays.

        The sum of two reduced operands is below ``2q < 2^125``, so the
        128-bit add cannot carry out (the paper's carry elision) and one
        trial subtraction finishes the job.
        """
        total = add128_nocarry(a, b)
        diff, borrow = sub128(total, self.m)
        return select128(~borrow, diff, total)

    def submod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(a - b) mod q`` element-wise: borrow then conditional add-back."""
        diff, borrow = sub128(a, b)
        fixed = add128_nocarry(diff, self.m)
        return select128(borrow, fixed, diff)

    def mulmod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(a * b) mod q`` element-wise via Barrett reduction.

        Steps (identical to :func:`repro.arith.dwmod.mulmod128` and
        :meth:`repro.kernels.backend.Backend.mulmod`):

        1. ``t = a * b`` (256-bit schoolbook),
        2. quotient estimate ``((t >> (beta-1)) * mu) >> (beta+1)``,
        3. ``c = t - estimate * q`` modulo ``2^128``,
        4. two conditional subtractions of ``q``.

        When the r52 substrate is active the same product runs over
        52-bit redundant limbs instead (identical results, fewer
        whole-vector passes); the repack happens at this boundary.
        """
        if self.r52 is not None:
            r = self.r52
            out = r.mulmod(r52_split(a, r.limbs), r52_split(b, r.limbs))
            return r52_join(out)
        t_words = wide_mul_128(a, b)
        t_shifted = shift_right_256(t_words, self.beta - 1)
        g_words = wide_mul_128(t_shifted, self.mu)
        estimate = shift_right_256(g_words, self.beta + 1)
        est_q_low = mullo128(estimate, self.m)
        c, _ = sub128(t_words[..., :2], est_q_low)
        c = self._cond_sub(c)
        c = self._cond_sub(c)
        return c

    def _cond_sub(self, x: np.ndarray) -> np.ndarray:
        """One Barrett correction: ``x - q`` where ``x >= q``."""
        diff, borrow = sub128(x, self.m)
        return select128(~borrow, diff, x)

    # ------------------------------------------------------------------
    # Int-level conveniences (the engine's scalar escape hatch)
    # ------------------------------------------------------------------

    def addmod_ints(self, x: IntVector, y: IntVector) -> Union[int, list]:
        """``(x + y) mod q`` on Python-int inputs (packs, computes, unpacks)."""
        return limbs_to_ints(self.addmod(self.to_limbs(x, "x"), self.to_limbs(y, "y")))

    def submod_ints(self, x: IntVector, y: IntVector) -> Union[int, list]:
        """``(x - y) mod q`` on Python-int inputs."""
        return limbs_to_ints(self.submod(self.to_limbs(x, "x"), self.to_limbs(y, "y")))

    def mulmod_ints(self, x: IntVector, y: IntVector) -> Union[int, list]:
        """``(x * y) mod q`` on Python-int inputs."""
        return limbs_to_ints(self.mulmod(self.to_limbs(x, "x"), self.to_limbs(y, "y")))
