"""Vectorized double-word modular arithmetic (the fast engine's core).

:class:`FastModulus` is the NumPy analogue of a kernel backend's
:class:`~repro.kernels.backend.ModulusContext`: one precomputation of
the Barrett constants per modulus, then whole-vector ``addmod`` /
``submod`` / ``mulmod`` over ``(..., 2)`` uint64 limb arrays. Every
operation runs the *same algorithm* as the ISA-faithful path —
Listing 1's carry structure for addition, Equation 7's borrow/add-back
for subtraction, and the shift-refined Barrett reduction of
:func:`repro.arith.dwmod.mulmod128` (wide product, quotient estimate,
``mullo``/subtract, two conditional corrections) — so the results agree
bit for bit with :mod:`repro.arith.dwmod` and with all four kernel
backends for any modulus up to 124 bits.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.arith.barrett import BarrettParams
from repro.arith.dwmod import check_modulus_128
from repro.errors import ArithmeticDomainError
from repro.fast.limbs import (
    IntVector,
    add128_nocarry,
    geq128,
    limbs_from_ints,
    limbs_to_ints,
    mullo128,
    select128,
    shift_right_256,
    sub128,
    wide_mul_128,
)


class FastModulus:
    """Per-modulus state for vectorized modular arithmetic (``q <= 2^124``).

    Attributes:
        q: The modulus (Python int).
        params: The shared :class:`~repro.arith.barrett.BarrettParams`.
        m: The modulus as a ``(2,)`` limb array (broadcasts over vectors).
        mu: Barrett ``mu`` as a ``(2,)`` limb array.
    """

    def __init__(self, q: int) -> None:
        check_modulus_128(q)
        self.q = q
        self.params = BarrettParams(q)
        self.params.check_width(128)
        self.beta = self.params.beta
        self.m = limbs_from_ints(q)
        self.mu = limbs_from_ints(self.params.mu)

    def __repr__(self) -> str:
        return f"FastModulus(q={self.q})"

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------

    def to_limbs(self, values: IntVector, name: str = "values") -> np.ndarray:
        """Pack and range-check operands: every element must be in [0, q)."""
        arr = limbs_from_ints(values)
        self.check_reduced(arr, name)
        return arr

    def check_reduced(self, arr: np.ndarray, name: str = "values") -> None:
        """Vectorized reduced-operand check (mirrors ``check_reduced``)."""
        bad = geq128(arr, self.m)
        if bad.any():
            index = np.argwhere(np.atleast_1d(bad))[0]
            raise ArithmeticDomainError(
                f"{name}[{', '.join(str(i) for i in index)}] is not reduced "
                f"modulo {self.q}"
            )

    # ------------------------------------------------------------------
    # Modular operations (bit-exact against repro.arith.dwmod)
    # ------------------------------------------------------------------

    def addmod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(a + b) mod q`` element-wise on limb arrays.

        The sum of two reduced operands is below ``2q < 2^125``, so the
        128-bit add cannot carry out (the paper's carry elision) and one
        trial subtraction finishes the job.
        """
        total = add128_nocarry(a, b)
        diff, borrow = sub128(total, self.m)
        return select128(~borrow, diff, total)

    def submod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(a - b) mod q`` element-wise: borrow then conditional add-back."""
        diff, borrow = sub128(a, b)
        fixed = add128_nocarry(diff, self.m)
        return select128(borrow, fixed, diff)

    def mulmod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(a * b) mod q`` element-wise via Barrett reduction.

        Steps (identical to :func:`repro.arith.dwmod.mulmod128` and
        :meth:`repro.kernels.backend.Backend.mulmod`):

        1. ``t = a * b`` (256-bit schoolbook),
        2. quotient estimate ``((t >> (beta-1)) * mu) >> (beta+1)``,
        3. ``c = t - estimate * q`` modulo ``2^128``,
        4. two conditional subtractions of ``q``.
        """
        t_words = wide_mul_128(a, b)
        t_shifted = shift_right_256(t_words, self.beta - 1)
        g_words = wide_mul_128(t_shifted, self.mu)
        estimate = shift_right_256(g_words, self.beta + 1)
        est_q_low = mullo128(estimate, self.m)
        c, _ = sub128(t_words[..., :2], est_q_low)
        c = self._cond_sub(c)
        c = self._cond_sub(c)
        return c

    def _cond_sub(self, x: np.ndarray) -> np.ndarray:
        """One Barrett correction: ``x - q`` where ``x >= q``."""
        diff, borrow = sub128(x, self.m)
        return select128(~borrow, diff, x)

    # ------------------------------------------------------------------
    # Int-level conveniences (the engine's scalar escape hatch)
    # ------------------------------------------------------------------

    def addmod_ints(self, x: IntVector, y: IntVector) -> Union[int, list]:
        """``(x + y) mod q`` on Python-int inputs (packs, computes, unpacks)."""
        return limbs_to_ints(self.addmod(self.to_limbs(x, "x"), self.to_limbs(y, "y")))

    def submod_ints(self, x: IntVector, y: IntVector) -> Union[int, list]:
        """``(x - y) mod q`` on Python-int inputs."""
        return limbs_to_ints(self.submod(self.to_limbs(x, "x"), self.to_limbs(y, "y")))

    def mulmod_ints(self, x: IntVector, y: IntVector) -> Union[int, list]:
        """``(x * y) mod q`` on Python-int inputs."""
        return limbs_to_ints(self.mulmod(self.to_limbs(x, "x"), self.to_limbs(y, "y")))
