"""Vectorized 128-bit limb arithmetic on ``uint64`` ndarrays.

The fast engine represents a vector of 128-bit values as a
``(..., 2)``-shaped ``uint64`` array — ``[..., 0]`` is the low word,
``[..., 1]`` the high word, exactly the (high, low) register-pair split
the paper's SIMD kernels use (Figure 2), but with the lane dimension
grown to the whole vector. NumPy has no 128-bit integer dtype, so every
primitive here is built from 64-bit word operations with explicit
carry/borrow propagation, and the 64x64->128 widening multiply is
decomposed into 32-bit half-limbs (four partial products), the same
trick RPU-style vector units and MoMA's limb arithmetic rely on.

All operations broadcast: a single value stored as a ``(2,)`` array
combines with a whole ``(n, 2)`` vector or a ``(batch, n, 2)`` stack of
RNS residue channels.

NumPy's unsigned arithmetic wraps modulo ``2^64``, which is precisely
the word semantics the carry chains need — no masking required.
"""

from __future__ import annotations

import functools
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ArithmeticDomainError

#: Dtype of every limb array.
LIMB_DTYPE = np.uint64

#: Low 32 bits of a word (for the 32-bit half-limb decomposition).
_HALF_MASK = np.uint64(0xFFFFFFFF)
_THIRTY_TWO = np.uint64(32)

IntVector = Union[int, Sequence[int], Sequence[Sequence[int]], np.ndarray]


# ---------------------------------------------------------------------------
# Conversions
# ---------------------------------------------------------------------------


def limbs_from_ints(values: IntVector) -> np.ndarray:
    """Pack Python ints (< 2^128) into a ``(..., 2)`` uint64 limb array.

    Accepts a single int (-> shape ``(2,)``), a flat sequence
    (-> ``(n, 2)``), or a nested sequence of equal-length rows
    (-> ``(batch, n, 2)``). The packing goes through ``int.to_bytes``
    so the per-element Python cost is one C call, not bigint shifting.
    """
    if isinstance(values, np.ndarray):
        if values.dtype != LIMB_DTYPE or values.shape[-1:] != (2,):
            raise ArithmeticDomainError(
                "limb arrays must be uint64 with trailing dimension 2; "
                f"got dtype {values.dtype}, shape {values.shape}"
            )
        return values
    if isinstance(values, int):
        return _pack_flat([values]).reshape(2)
    values = list(values)
    if values and not isinstance(values[0], int):
        rows = [_pack_flat(list(row)) for row in values]
        width = rows[0].shape[0]
        for row in rows:
            if row.shape[0] != width:
                raise ArithmeticDomainError(
                    "batched rows must all have the same length"
                )
        return np.stack(rows)
    return _pack_flat(values)


def _pack_flat(values: List[int]) -> np.ndarray:
    try:
        raw = b"".join(v.to_bytes(16, "little") for v in values)
    except (OverflowError, AttributeError) as exc:
        raise ArithmeticDomainError(
            f"values must be ints in [0, 2^128): {exc}"
        ) from exc
    return (
        np.frombuffer(raw, dtype=LIMB_DTYPE).reshape(-1, 2).copy()
        if values
        else np.empty((0, 2), dtype=LIMB_DTYPE)
    )


def limbs_to_ints(limbs: np.ndarray) -> Union[int, List[int], List[List[int]]]:
    """Unpack a limb array back into Python ints (shape-preserving)."""
    if limbs.ndim == 1:
        lo, hi = limbs.tolist()
        return (hi << 64) | lo
    if limbs.ndim == 2:
        return [(hi << 64) | lo for lo, hi in limbs.tolist()]
    if limbs.ndim == 3:
        return [
            [(hi << 64) | lo for lo, hi in row] for row in limbs.tolist()
        ]
    raise ArithmeticDomainError(
        f"cannot unpack a limb array of rank {limbs.ndim}"
    )


# ---------------------------------------------------------------------------
# Word-level helpers
# ---------------------------------------------------------------------------


def _wrapping(fn):
    """Silence NumPy's 0-d overflow warning: wraparound is the semantics.

    Array operations wrap silently, but the same primitives applied to a
    single broadcast value (0-d views of a ``(2,)`` array) go through
    NumPy's scalar path, which warns on intended modular wraparound.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with np.errstate(over="ignore"):
            return fn(*args, **kwargs)

    return wrapper


def _addc(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Word add with carry out (as a uint64 0/1 array)."""
    s = x + y
    return s, (s < x).astype(LIMB_DTYPE)


@_wrapping
def mul_64x64(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Widening 64x64 -> 128 multiply on word arrays: ``(high, low)``.

    NumPy's ``uint64 * uint64`` keeps only the low word, so the product
    is assembled from four 32x32->64 partial products (half-limb
    decomposition). The middle-term accumulator ``mid`` is at most
    ``3 * (2^32 - 1) < 2^34``, so it never wraps; the high word is exact
    because the true high half always fits in 64 bits.
    """
    a0 = a & _HALF_MASK
    a1 = a >> _THIRTY_TWO
    b0 = b & _HALF_MASK
    b1 = b >> _THIRTY_TWO
    ll = a0 * b0
    lh = a0 * b1
    hl = a1 * b0
    hh = a1 * b1
    mid = (ll >> _THIRTY_TWO) + (lh & _HALF_MASK) + (hl & _HALF_MASK)
    low = (mid << _THIRTY_TWO) | (ll & _HALF_MASK)
    high = hh + (lh >> _THIRTY_TWO) + (hl >> _THIRTY_TWO) + (mid >> _THIRTY_TWO)
    return high, low


# ---------------------------------------------------------------------------
# 128-bit (double-word) operations
# ---------------------------------------------------------------------------


@_wrapping
def add128(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """128-bit add: ``(sum mod 2^128, carry_out)`` with vector carries."""
    lo, c = _addc(a[..., 0], b[..., 0])
    hi1, c2 = _addc(a[..., 1], b[..., 1])
    hi, c3 = _addc(hi1, c)
    return np.stack([lo, hi], axis=-1), (c2 | c3).astype(bool)


@_wrapping
def add128_nocarry(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """128-bit add when the carry-out is provably dead.

    Matches the paper's 124-bit-modulus carry elision (Section 3.1): the
    wrap modulo ``2^128`` is exactly what the conditional add-back in
    modular subtraction wants.
    """
    lo = a[..., 0] + b[..., 0]
    hi = a[..., 1] + b[..., 1] + (lo < a[..., 0])
    return np.stack([lo, hi], axis=-1)


@_wrapping
def sub128(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """128-bit subtract: ``(diff mod 2^128, borrow_out)``."""
    a_lo, a_hi = a[..., 0], a[..., 1]
    b_lo, b_hi = b[..., 0], b[..., 1]
    lo = a_lo - b_lo
    borrow_lo = (a_lo < b_lo).astype(LIMB_DTYPE)
    hi1 = a_hi - b_hi
    borrow1 = a_hi < b_hi
    hi = hi1 - borrow_lo
    borrow2 = hi1 < borrow_lo
    return np.stack([lo, hi], axis=-1), borrow1 | borrow2


def geq128(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-element ``a >= b`` on limb arrays (boolean array)."""
    a_lo, a_hi = a[..., 0], a[..., 1]
    b_lo, b_hi = b[..., 0], b[..., 1]
    return (a_hi > b_hi) | ((a_hi == b_hi) & (a_lo >= b_lo))


def select128(cond: np.ndarray, if_true: np.ndarray, if_false: np.ndarray) -> np.ndarray:
    """Per-element select by a boolean condition (the SIMD blend)."""
    return np.where(cond[..., None], if_true, if_false)


@_wrapping
def wide_mul_128(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Schoolbook 128x128 -> 256 multiply: ``(..., 4)`` word array.

    Words are little-endian (Equation 8's four word multiplications with
    full carry accumulation). The top word cannot overflow because the
    exact product is below ``2^256``.
    """
    a0, a1 = a[..., 0], a[..., 1]
    b0, b1 = b[..., 0], b[..., 1]
    p00h, p00l = mul_64x64(a0, b0)
    p01h, p01l = mul_64x64(a0, b1)
    p10h, p10l = mul_64x64(a1, b0)
    p11h, p11l = mul_64x64(a1, b1)

    w1a, c1 = _addc(p00h, p01l)
    w1, c2 = _addc(w1a, p10l)
    carry1 = c1 + c2

    w2a, c3 = _addc(p01h, p10h)
    w2b, c4 = _addc(w2a, p11l)
    w2, c5 = _addc(w2b, carry1)
    carry2 = c3 + c4 + c5

    w3 = p11h + carry2
    return np.stack([p00l, w1, w2, w3], axis=-1)


@_wrapping
def mullo128(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Low 128 bits of a 128x128 product (three word multiplications)."""
    a0, a1 = a[..., 0], a[..., 1]
    b0, b1 = b[..., 0], b[..., 1]
    high, low = mul_64x64(a0, b0)
    cross = a0 * b1 + a1 * b0  # mullo only: wraps mod 2^64 by design
    return np.stack([low, high + cross], axis=-1)


# ---------------------------------------------------------------------------
# 52-bit redundant-limb packing (the r52 substrate's resident format)
# ---------------------------------------------------------------------------

#: Width of one r52 limb — the IFMA / float64-mantissa digit size.
LIMB52_BITS = 52

#: Low 52 bits of a word (52-bit limb mask).
MASK52 = np.uint64((1 << LIMB52_BITS) - 1)

_S52 = np.uint64(52)
_S12 = np.uint64(12)
_S40 = np.uint64(40)


@_wrapping
def r52_split(arr: np.ndarray, limbs: int) -> List[np.ndarray]:
    """Repack a ``(..., 2)`` double-word array into 52-bit limb planes.

    Returns ``limbs`` separate contiguous ``uint64`` arrays (plane ``k``
    holds bits ``[52k, 52k + 52)`` of each element) — the layout
    :mod:`repro.fast.r52` computes on. Separate planes beat a strided
    ``(..., L)`` axis for whole-vector passes, the same reason the IFMA
    kernel keeps three register planes per residue vector.
    """
    lo = arr[..., 0]
    hi = arr[..., 1]
    if limbs == 1:
        planes = [lo & MASK52]
    elif limbs == 2:
        planes = [lo & MASK52, ((lo >> _S52) | (hi << _S12)) & MASK52]
    elif limbs == 3:
        planes = [
            lo & MASK52,
            ((lo >> _S52) | (hi << _S12)) & MASK52,
            (hi >> _S40) & MASK52,
        ]
    else:
        raise ArithmeticDomainError(
            f"r52 limb count must be 1, 2 or 3, got {limbs}"
        )
    return [np.ascontiguousarray(p) for p in planes]


@_wrapping
def r52_join(planes: Sequence[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`r52_split`: 52-bit planes back to ``(..., 2)``.

    Every plane must be canonical (strictly below ``2^52``); redundant
    (carry-deferred) planes must be normalized first.
    """
    limbs = len(planes)
    if limbs == 1:
        lo = planes[0]
        hi = np.zeros_like(lo)
    elif limbs == 2:
        lo = planes[0] | (planes[1] << _S52)
        hi = planes[1] >> _S12
    elif limbs == 3:
        lo = planes[0] | (planes[1] << _S52)
        hi = (planes[1] >> _S12) | (planes[2] << _S40)
    else:
        raise ArithmeticDomainError(
            f"r52 limb count must be 1, 2 or 3, got {limbs}"
        )
    return np.stack([lo, hi], axis=-1)


def shift_right_256(words: np.ndarray, amount: int) -> np.ndarray:
    """Right-shift a ``(..., 4)`` 256-bit word array into a limb array.

    ``amount`` is a scalar (the Barrett shifts ``beta - 1`` and
    ``beta + 1`` are per-modulus constants). The caller guarantees the
    shifted value fits in 128 bits, as in the faithful kernels.
    """
    if not 0 <= amount < 256:
        raise ArithmeticDomainError(
            f"256-bit shift amount must be in [0, 256), got {amount}"
        )
    word, rem = divmod(amount, 64)

    def pick(index: int) -> np.ndarray:
        if index >= 4:
            return np.zeros_like(words[..., 0])
        return words[..., index]

    if rem == 0:
        return np.stack([pick(word), pick(word + 1)], axis=-1)
    r = np.uint64(rem)
    inv = np.uint64(64 - rem)
    lo = (pick(word) >> r) | (pick(word + 1) << inv)
    hi = (pick(word + 1) >> r) | (pick(word + 2) << inv)
    return np.stack([lo, hi], axis=-1)
