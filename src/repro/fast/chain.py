"""Fused multi-op chains executed against resident register planes.

A *chain* is a small, serializable program — a list of step dicts over
named registers — composing the fast engine's primitives (NTT stages,
psi twists, pointwise products, BLAS ops) without returning to the
caller between steps. Two consumers:

* :mod:`repro.par.worker` executes a whole chain as **one** pool task
  (``op="chain"``), collapsing what used to be three dispatch round
  trips (forward NTTs, pointwise, inverse) into one;
* the worker's built-in ``negacyclic_mul``/``cyclic_mul`` ops route
  through the same runner, so every convolution shard benefits.

The runner keeps intermediate values **resident on the active
arithmetic substrate**: with an r52 modulus (q <= 102 bits) registers
stay in 52-bit limb-plane form across every step — one ``from_dw``
repack per input, one ``to_dw`` per output, rather than per primitive —
which is the PR 7 follow-on the roadmap calls out. Every step's
mathematical output is a fully reduced canonical residue, so chains are
bit-exact with the unfused fast (and faithful) engines by construction.

Step shapes (all plain dicts, pickle/JSON-safe)::

    {"kind": "ntt", "src": r, "dst": r, "direction": "forward"|"inverse",
     "natural": bool}
    {"kind": "twist", "src": r, "dst": r, "which": "twist"|"untwist"}
    {"kind": "pointwise", "a": r, "b": r, "dst": r}
    {"kind": "blas", "x": r, "y": r, "dst": r,
     "blas_op": "vector_add"|"vector_sub"|"vector_mul"|"axpy", "a": int}

Registers are created by writing them; inputs are pre-bound. The chain
must leave its result in the register named ``"out"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import NttParameterError
from repro.fast.blas import FastBlasPlan
from repro.fast.ntt import FastNegacyclic, FastNtt

#: Valid ``blas_op`` values for a ``blas`` step.
BLAS_OPS = ("vector_add", "vector_sub", "vector_mul", "axpy")

#: Valid ``kind`` values for a chain step.
STEP_KINDS = ("ntt", "twist", "pointwise", "blas")

#: Output register every chain must produce.
OUT_REGISTER = "out"

#: Negacyclic product ``out = x * y mod (x^n + 1, q)`` — the exact step
#: sequence of :meth:`repro.fast.ntt.FastNegacyclic.multiply`, fused.
NEGACYCLIC_MUL_STEPS = (
    {"kind": "twist", "which": "twist", "src": "x", "dst": "xt"},
    {"kind": "ntt", "direction": "forward", "natural": False,
     "src": "xt", "dst": "fa"},
    {"kind": "twist", "which": "twist", "src": "y", "dst": "yt"},
    {"kind": "ntt", "direction": "forward", "natural": False,
     "src": "yt", "dst": "ga"},
    {"kind": "pointwise", "a": "fa", "b": "ga", "dst": "pr"},
    {"kind": "ntt", "direction": "inverse", "natural": False,
     "src": "pr", "dst": "cy"},
    {"kind": "twist", "which": "untwist", "src": "cy", "dst": OUT_REGISTER},
)

#: Cyclic product ``out = x * y mod (x^n - 1, q)`` — the fused form of
#: :meth:`repro.fast.ntt.FastNtt.cyclic_multiply`.
CYCLIC_MUL_STEPS = (
    {"kind": "ntt", "direction": "forward", "natural": False,
     "src": "x", "dst": "fa"},
    {"kind": "ntt", "direction": "forward", "natural": False,
     "src": "y", "dst": "ga"},
    {"kind": "pointwise", "a": "fa", "b": "ga", "dst": "pr"},
    {"kind": "ntt", "direction": "inverse", "natural": False,
     "src": "pr", "dst": OUT_REGISTER},
)

#: Fused multiply-accumulate ``out = x * y + z mod (x^n + 1, q)`` — a
#: keyswitch-shaped three-input chain (product plus running sum) that
#: previously cost two dispatched batches.
NEGACYCLIC_MUL_ADD_STEPS = tuple(
    [dict(step, dst="prod") if step.get("dst") == OUT_REGISTER else step
     for step in NEGACYCLIC_MUL_STEPS]
    + [{"kind": "blas", "blas_op": "vector_add",
        "x": "prod", "y": "z", "dst": OUT_REGISTER}]
)


def chain_input_names(steps: Sequence[dict]) -> List[str]:
    """Registers a chain reads before writing (its required inputs)."""
    defined: set = set()
    inputs: List[str] = []
    for step in steps:
        reads = _step_reads(step)
        for name in reads:
            if name not in defined and name not in inputs:
                inputs.append(name)
        defined.add(step.get("dst"))
    return inputs


def _step_reads(step: dict) -> List[str]:
    kind = step.get("kind")
    if kind in ("ntt", "twist"):
        return [step.get("src")]
    if kind == "pointwise":
        return [step.get("a"), step.get("b")]
    if kind == "blas":
        return [step.get("x"), step.get("y")]
    return []


def validate_steps(steps: Sequence[dict], inputs: Sequence[str]) -> None:
    """Reject a malformed chain before any shm staging or dispatch.

    Checks structural validity: known step kinds, every read register
    defined (as an input or by an earlier step), BLAS ops from the
    supported set with ``axpy`` carrying its scalar, and the final
    result landing in ``"out"``. Raises :class:`NttParameterError`.
    """
    if not steps:
        raise NttParameterError("a fused chain needs at least one step")
    defined = set(inputs)
    for index, step in enumerate(steps):
        kind = step.get("kind")
        if kind not in STEP_KINDS:
            raise NttParameterError(
                f"chain step {index}: unknown kind {kind!r} "
                f"(expected one of {STEP_KINDS})"
            )
        if kind == "ntt" and step.get("direction") not in ("forward", "inverse"):
            raise NttParameterError(
                f"chain step {index}: ntt direction must be "
                f"'forward' or 'inverse', got {step.get('direction')!r}"
            )
        if kind == "twist" and step.get("which") not in ("twist", "untwist"):
            raise NttParameterError(
                f"chain step {index}: twist 'which' must be "
                f"'twist' or 'untwist', got {step.get('which')!r}"
            )
        if kind == "blas":
            if step.get("blas_op") not in BLAS_OPS:
                raise NttParameterError(
                    f"chain step {index}: unknown blas_op "
                    f"{step.get('blas_op')!r} (expected one of {BLAS_OPS})"
                )
            if step.get("blas_op") == "axpy" and "a" not in step:
                raise NttParameterError(
                    f"chain step {index}: axpy needs its scalar 'a'"
                )
        for name in _step_reads(step):
            if not isinstance(name, str) or not name:
                raise NttParameterError(
                    f"chain step {index}: missing source register"
                )
            if name not in defined:
                raise NttParameterError(
                    f"chain step {index}: register {name!r} read before "
                    f"it was written (inputs: {sorted(inputs)})"
                )
        dst = step.get("dst")
        if not isinstance(dst, str) or not dst:
            raise NttParameterError(
                f"chain step {index}: missing destination register"
            )
        defined.add(dst)
    if OUT_REGISTER not in defined:
        raise NttParameterError(
            f"chain never writes the {OUT_REGISTER!r} register"
        )


def run_chain(
    steps: Sequence[dict],
    inputs: Dict[str, np.ndarray],
    ntt: FastNtt,
    neg: Optional[FastNegacyclic] = None,
    blas: Optional[FastBlasPlan] = None,
) -> np.ndarray:
    """Execute a validated chain; returns the ``"out"`` register (dw form).

    ``inputs`` maps register names to ``(..., 2)`` limb arrays (already
    coerced and range-checked by the caller). With an r52 modulus the
    register file holds 52-bit limb planes and every NTT/twist/pointwise
    step stays in plane form; the double-word repack happens once per
    input register and once for the result. Each step produces fully
    reduced canonical residues, which is what makes the fused result
    bit-identical to the unfused engines.
    """
    r = ntt.mod.r52
    use_r52 = r is not None and ntt._r52 is not None
    bitrev = ntt._bitrev
    # Tagged register file: ("dw", (..., 2) array) or ("r52", planes).
    regs: Dict[str, tuple] = {
        name: ("dw", arr) for name, arr in inputs.items()
    }

    def as_r52(value: tuple):
        tag, val = value
        return val if tag == "r52" else r.from_dw(val)

    def as_dw(value: tuple) -> np.ndarray:
        tag, val = value
        return val if tag == "dw" else r.to_dw(val)

    for step in steps:
        kind = step["kind"]
        if kind == "ntt":
            inverse = step["direction"] == "inverse"
            natural = bool(step.get("natural", False))
            if use_r52:
                planes = as_r52(regs[step["src"]])
                if inverse:
                    if not natural:
                        planes = [p[..., bitrev] for p in planes]
                    planes = ntt._r52.run_stages(planes, True)
                    planes = [p[..., bitrev] for p in planes]
                    planes = r.mulmod_shoup(planes, ntt._r52_n_inv_pair())
                else:
                    planes = ntt._r52.run_stages(planes, False)
                    if natural:
                        planes = [p[..., bitrev] for p in planes]
                regs[step["dst"]] = ("r52", planes)
            else:
                x = as_dw(regs[step["src"]])
                if inverse:
                    if not natural:
                        x = x[..., bitrev, :]
                    x = ntt._run_stages(x, True)
                    x = x[..., bitrev, :]
                    x = ntt.mod.mulmod(x, ntt._n_inv)
                else:
                    x = ntt._run_stages(x, False)
                    if natural:
                        x = x[..., bitrev, :]
                regs[step["dst"]] = ("dw", x)
        elif kind == "twist":
            if neg is None:
                raise NttParameterError(
                    "chain has a twist step but no negacyclic plan (psi)"
                )
            untwist = step["which"] == "untwist"
            if use_r52:
                planes = as_r52(regs[step["src"]])
                pair = (
                    neg._r52_untwist_pair() if untwist
                    else neg._r52_twist_pair()
                )
                regs[step["dst"]] = ("r52", r.mulmod_shoup(planes, pair))
            else:
                x = as_dw(regs[step["src"]])
                tw = neg._untwist if untwist else neg._twist
                regs[step["dst"]] = ("dw", ntt.mod.mulmod(x, tw))
        elif kind == "pointwise":
            if use_r52:
                a = as_r52(regs[step["a"]])
                b = as_r52(regs[step["b"]])
                regs[step["dst"]] = ("r52", r.mulmod(a, b))
            else:
                a = as_dw(regs[step["a"]])
                b = as_dw(regs[step["b"]])
                regs[step["dst"]] = ("dw", ntt.mod.mulmod(a, b))
        else:  # blas (validated)
            plan = blas if blas is not None else FastBlasPlan(ntt.q)
            xa = as_dw(regs[step["x"]])
            ya = as_dw(regs[step["y"]])
            op = step["blas_op"]
            if op == "axpy":
                result = plan.axpy(int(step["a"]), xa, ya)
            else:
                result = getattr(plan, op)(xa, ya)
            regs[step["dst"]] = ("dw", result)
    return as_dw(regs[OUT_REGISTER])
