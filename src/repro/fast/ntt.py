"""Full-vector Pease NTT on the fast engine (plus negacyclic polymul).

Where :class:`repro.ntt.simd.SimdNtt` walks each stage one SIMD block at
a time through an ISA simulator, :class:`FastNtt` runs the *same*
constant-geometry dataflow — read ``x[i]`` and ``x[i + n/2]``, butterfly,
write the pair to ``2i``/``2i + 1`` — on entire ``(n,)`` vectors of
128-bit limb pairs at once: one vectorized ``mulmod`` / ``addmod`` /
``submod`` triple per stage and a strided scatter for the interleave.
Twiddle tables come from the same :class:`~repro.ntt.twiddles.TwiddleTable`
the faithful path uses, so the two engines agree bit for bit.

The batched API accepts ``(batch, n)`` inputs, transforming every row in
the same NumPy operations — this is how the RNS pipeline's independent
residue channels amortize kernel-launch overhead.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.arith.modular import inv_mod
from repro.arith.primes import root_of_unity
from repro.errors import NttParameterError
from repro.fast.limbs import IntVector, limbs_from_ints, limbs_to_ints
from repro.fast.modular import FastModulus
from repro.fast.r52 import R52Ntt
from repro.ntt.twiddles import TwiddleTable, bit_reverse
from repro.obs.hooks import engine_run_span, record_engine_call, record_r52_call
from repro.util.checks import check_power_of_two

IntMatrix = Union[List[int], List[List[int]], np.ndarray]


class FastNtt:
    """An ``n``-point NTT over ``Z_q`` computed on whole uint64 vectors.

    Args:
        n: Transform size (power of two, at least 2).
        q: NTT-friendly modulus (``n | q - 1``, at most 124 bits).
        root: Optional explicit primitive ``n``-th root of unity.
        table: Optional pre-built twiddle table to share with a faithful
            plan (guarantees both engines use identical twiddles).
        mode: Arithmetic substrate — ``"dw"`` (128-bit schoolbook),
            ``"r52"`` (52-bit redundant limbs with Harvey-lazy stages,
            see :mod:`repro.fast.r52`) or ``"auto"``/``None`` (r52
            whenever the modulus fits its fast range; overridable via
            the ``REPRO_FAST_MODE`` env var). Bit-identical either way.
    """

    def __init__(
        self,
        n: int,
        q: int,
        root: Optional[int] = None,
        table: Optional[TwiddleTable] = None,
        mode: Optional[str] = None,
    ) -> None:
        if table is not None:
            if table.n != n or table.q != q:
                raise NttParameterError(
                    f"twiddle table is for ({table.n}, {table.q}), "
                    f"not ({n}, {q})"
                )
            self.table = table
        else:
            self.table = TwiddleTable.get(n, q, root or 0)
        self.mod = FastModulus.get(q, mode)
        self.mode = self.mod.mode
        self._r52 = (
            R52Ntt(self.table, self.mod.r52)
            if self.mod.r52 is not None
            else None
        )
        bits = n.bit_length() - 1
        self._bitrev = np.array(
            [bit_reverse(i, bits) for i in range(n)], dtype=np.intp
        )
        self._n_inv = limbs_from_ints(self.table.n_inverse)
        self._stage_tw: dict = {}
        self._r52_n_inv: Optional[tuple] = None

    @property
    def n(self) -> int:
        """Transform size."""
        return self.table.n

    @property
    def q(self) -> int:
        """Modulus."""
        return self.table.q

    # ------------------------------------------------------------------
    # Public transforms
    # ------------------------------------------------------------------

    def forward(self, values: IntMatrix, natural_order: bool = True) -> IntMatrix:
        """Forward NTT; batched when given ``(batch, n)`` input.

        Bit-exact with :meth:`repro.ntt.simd.SimdNtt.forward` on every
        kernel backend (raw bit-reversed output unless ``natural_order``).
        """
        x, as_ints = self._coerce(values)
        record_engine_call("fast", "ntt.forward", x.size // 2)
        if self._r52 is not None:
            record_r52_call("ntt.forward", x.size // 2)
        with engine_run_span("fast", "ntt.forward", x.size // 2, mode=self.mode):
            out = self._run_stages(x, inverse=False)
            if natural_order:
                out = out[..., self._bitrev, :]
        return limbs_to_ints(out) if as_ints else out

    def inverse(self, values: IntMatrix, natural_order: bool = True) -> IntMatrix:
        """Inverse NTT including the ``1/n`` scaling (batched-aware)."""
        x, as_ints = self._coerce(values)
        record_engine_call("fast", "ntt.inverse", x.size // 2)
        if self._r52 is not None:
            record_r52_call("ntt.inverse", x.size // 2)
        with engine_run_span("fast", "ntt.inverse", x.size // 2, mode=self.mode):
            if not natural_order:
                x = x[..., self._bitrev, :]
            out = self._run_stages(x, inverse=True)
            out = out[..., self._bitrev, :]
            out = self.mod.mulmod(out, self._n_inv)
        return limbs_to_ints(out) if as_ints else out

    def pointwise_mul(self, f: IntMatrix, g: IntMatrix) -> IntMatrix:
        """Element-wise spectral product (the convolution-theorem middle)."""
        fa, as_ints = self._coerce(f)
        ga, _ = self._coerce(g)
        record_engine_call("fast", "ntt.pointwise", fa.size // 2)
        if self._r52 is not None:
            record_r52_call("ntt.pointwise", fa.size // 2)
        with engine_run_span("fast", "ntt.pointwise", fa.size // 2, mode=self.mode):
            out = self.mod.mulmod(fa, ga)
        return limbs_to_ints(out) if as_ints else out

    def cyclic_multiply(self, f: IntMatrix, g: IntMatrix) -> IntMatrix:
        """Length-``n`` cyclic convolution via the transform."""
        fa = self.forward(f, natural_order=False)
        ga = self.forward(g, natural_order=False)
        prod = self.pointwise_mul(fa, ga)
        return self.inverse(prod, natural_order=False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _coerce(self, values: IntMatrix) -> Tuple[np.ndarray, bool]:
        as_ints = not isinstance(values, np.ndarray)
        arr = limbs_from_ints(values)
        if arr.ndim not in (2, 3) or arr.shape[-2] != self.n:
            got = arr.shape[-2] if arr.ndim >= 2 else 0
            raise NttParameterError(f"expected {self.n} values, got {got}")
        self.mod.check_reduced(arr)
        return arr, as_ints

    def _r52_n_inv_pair(self) -> tuple:
        """Cached Shoup pair for ``1/n`` on the r52 substrate.

        Used by the fused-chain runner (:mod:`repro.fast.chain`) to
        apply the inverse transform's scaling without leaving limb-plane
        form.
        """
        if self._r52_n_inv is None:
            self._r52_n_inv = self.mod.r52.shoup(int(self.table.n_inverse))
        return self._r52_n_inv

    def _stage_twiddles(self, stage: int, inverse: bool) -> np.ndarray:
        key = (stage, inverse)
        cached = self._stage_tw.get(key)
        if cached is None:
            cached = limbs_from_ints(
                self.table.pease_stage_twiddles(stage, inverse)
            )
            self._stage_tw[key] = cached
        return cached

    def _run_stages(self, x: np.ndarray, inverse: bool) -> np.ndarray:
        if self._r52 is not None:
            # Native r52 stages: repack once per transform, run every
            # stage Harvey-lazy with batched carries, repack once back.
            r = self.mod.r52
            out = self._r52.run_stages(r.from_dw(x), inverse)
            return r.to_dw(out)
        half = self.n // 2
        for stage in range(self.table.stages):
            tw = self._stage_twiddles(stage, inverse)
            top = x[..., :half, :]
            bottom = x[..., half:, :]
            t = self.mod.mulmod(bottom, tw)
            out = np.empty_like(x)
            out[..., 0::2, :] = self.mod.addmod(top, t)
            out[..., 1::2, :] = self.mod.submod(top, t)
            x = out
        return x


class FastNegacyclic:
    """Negacyclic polynomial multiplication on the fast engine.

    The same psi-twist formulation as :class:`repro.ntt.negacyclic.NegacyclicNtt`
    (twist by powers of a primitive ``2n``-th root, cyclic convolve,
    untwist), with the twist tables held as limb arrays so the whole
    product is a handful of vectorized passes.
    """

    def __init__(
        self,
        n: int,
        q: int,
        psi: Optional[int] = None,
        plan: Optional[FastNtt] = None,
        mode: Optional[str] = None,
    ) -> None:
        check_power_of_two(n, "n")
        if (q - 1) % (2 * n):
            raise NttParameterError(
                f"negacyclic multiplication needs 2n | q - 1; got n={n}, q={q}"
            )
        self.n = n
        self.q = q
        self.psi = psi or root_of_unity(2 * n, q)
        if pow(self.psi, 2 * n, q) != 1 or pow(self.psi, n, q) == 1:
            raise NttParameterError(
                f"{self.psi} is not a primitive {2 * n}-th root of unity mod {q}"
            )
        omega = self.psi * self.psi % q
        self.plan = plan or FastNtt(n, q, root=omega, mode=mode)
        self.mode = self.plan.mode
        psi_inv = inv_mod(self.psi, q)
        self._twist_ints = [pow(self.psi, i, q) for i in range(n)]
        self._untwist_ints = [pow(psi_inv, i, q) for i in range(n)]
        self._twist = limbs_from_ints(self._twist_ints)
        self._untwist = limbs_from_ints(self._untwist_ints)
        self._r52_twist: Optional[tuple] = None
        self._r52_untwist: Optional[tuple] = None

    def _r52_twist_pair(self) -> tuple:
        """Cached Shoup-vector pair for the psi twist (r52 substrate)."""
        if self._r52_twist is None:
            self._r52_twist = self.plan.mod.r52.shoup_vector(self._twist_ints)
        return self._r52_twist

    def _r52_untwist_pair(self) -> tuple:
        """Cached Shoup-vector pair for the psi^-1 untwist (r52 substrate)."""
        if self._r52_untwist is None:
            self._r52_untwist = self.plan.mod.r52.shoup_vector(
                self._untwist_ints
            )
        return self._r52_untwist

    def forward(self, values: IntMatrix) -> IntMatrix:
        """Twisted forward transform (raw bit-reversed order)."""
        x, as_ints = self.plan._coerce(values)
        twisted = self.plan.mod.mulmod(x, self._twist)
        out = self.plan.forward(twisted, natural_order=False)
        return limbs_to_ints(out) if as_ints else out

    def inverse(self, values: IntMatrix) -> IntMatrix:
        """Inverse of :meth:`forward` (untwist and ``1/n`` included)."""
        x, as_ints = self.plan._coerce(values)
        cyclic = self.plan.inverse(x, natural_order=False)
        out = self.plan.mod.mulmod(cyclic, self._untwist)
        return limbs_to_ints(out) if as_ints else out

    def multiply(self, f: IntMatrix, g: IntMatrix) -> IntMatrix:
        """Negacyclic product ``f * g mod (x^n + 1, q)`` (batched-aware)."""
        record_engine_call("fast", "ntt.polymul", self.n)
        with engine_run_span("fast", "ntt.polymul", self.n, mode=self.mode):
            fa = self.forward(f)
            ga = self.forward(g)
            prod = self.plan.pointwise_mul(fa, ga)
            return self.inverse(prod)


def fast_negacyclic_polymul(
    f: IntVector, g: IntVector, q: int
) -> Union[List[int], List[List[int]]]:
    """One-shot negacyclic polynomial multiplication on the fast engine."""
    f = list(f)
    g = list(g)
    if len(f) != len(g):
        raise NttParameterError("negacyclic multiplication needs equal lengths")
    n = len(f) if f and isinstance(f[0], int) else len(f[0])
    return FastNegacyclic(n, q).multiply(f, g)
