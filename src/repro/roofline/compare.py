"""Figure 7: MQX speed-of-light vs published accelerators.

For each target CPU (Intel Xeon 6980P, AMD EPYC 9965S), compares the
SOL-scaled MQX NTT runtime against RPU, FPMM, MoMA, and OpenFHE-multicore
at every NTT size each design reports, and summarizes the average
speedups the paper quotes in Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.published import PublishedSeries, synthesize_published
from repro.roofline.sol import default_sol_anchor, sol_sweep

#: (measured CPU, SOL target) pairs of Section 6.
SOL_TARGETS = {
    "intel": ("intel_xeon_8352y", "intel_xeon_6980p"),
    "amd": ("amd_epyc_9654", "amd_epyc_9965s"),
}


@dataclass(frozen=True)
class Figure7Row:
    """MQX-SOL vs one published design at one size."""

    vendor: str
    design: str
    logn: int
    sol_ns: float
    published_ns: float

    @property
    def speedup(self) -> float:
        """> 1 means MQX-SOL is faster than the published design."""
        return self.published_ns / self.sol_ns


def figure7_comparison(
    vendor: str,
    published: Optional[Dict[str, PublishedSeries]] = None,
) -> List[Figure7Row]:
    """All Figure 7a (intel) or 7b (amd) comparison points."""
    measured_cpu, target_cpu = SOL_TARGETS[vendor]
    if published is None:
        published = synthesize_published(default_sol_anchor())
    sweep = sol_sweep("mqx", measured_cpu, target_cpu)
    rows: List[Figure7Row] = []
    for name in ("rpu", "fpmm", "moma", "openfhe_32core"):
        series = published[name]
        for logn in series.sizes:
            rows.append(
                Figure7Row(
                    vendor=vendor,
                    design=series.name,
                    logn=logn,
                    sol_ns=sweep[logn].sol_ns,
                    published_ns=series.runtime(logn),
                )
            )
    return rows


def average_speedup(rows: List[Figure7Row], design: str) -> float:
    """Arithmetic-mean speedup of MQX-SOL over one design."""
    picked = [row.speedup for row in rows if row.design == design]
    return sum(picked) / len(picked)
