"""Roofline / speed-of-light (SOL) analysis (Section 6).

Scales single-core modeled runtimes to whole server CPUs via Equation 13
and compares the result against the published ASIC/GPU baselines
(Figure 7) and the Figure 1 summary.
"""

from repro.roofline.sol import (
    SolEstimate,
    default_sol_anchor,
    sol_runtime,
    sol_sweep,
)
from repro.roofline.compare import Figure7Row, figure7_comparison

__all__ = [
    "SolEstimate",
    "sol_runtime",
    "sol_sweep",
    "default_sol_anchor",
    "Figure7Row",
    "figure7_comparison",
]
