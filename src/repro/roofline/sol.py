"""Speed-of-light scaling (Equation 13).

    t_sol = t_m * (c1 / c2) * (f_m / f_max)

where the measurement uses ``c1`` cores at ``f_m`` and the target CPU has
``c2`` cores at all-core boost ``f_max``. All measurements in this library
are single-core (``c1 = 1``), matching the paper. The estimate assumes
ideal linear scaling; Section 6 discusses why batched FHE workloads make
that a meaningful upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Optional

from repro.arith.primes import default_modulus
from repro.errors import ExperimentError
from repro.kernels import get_backend
from repro.machine.cpu import CpuSpec, get_cpu
from repro.perf.estimator import NttEstimate, estimate_ntt


@dataclass(frozen=True)
class SolEstimate:
    """One SOL-scaled runtime."""

    backend: str
    measured_cpu: str
    target_cpu: str
    n: int
    measured_ns: float
    sol_ns: float
    cores: int
    allcore_ghz: float


def sol_runtime(estimate: NttEstimate, target: CpuSpec) -> SolEstimate:
    """Apply Equation 13 to a single-core estimate."""
    measured = get_cpu(estimate.cpu)
    if measured.microarch != target.microarch:
        raise ExperimentError(
            f"SOL scaling from {measured.key} to {target.key} crosses "
            "microarchitectures; scale within a vendor family"
        )
    scale = (1.0 / target.cores) * (measured.measured_ghz / target.allcore_ghz)
    return SolEstimate(
        backend=estimate.backend,
        measured_cpu=measured.key,
        target_cpu=target.key,
        n=estimate.n,
        measured_ns=estimate.ns,
        sol_ns=estimate.ns * scale,
        cores=target.cores,
        allcore_ghz=target.allcore_ghz,
    )


def sol_sweep(
    backend_name: str,
    measured_cpu: str,
    target_cpu: str,
    q: Optional[int] = None,
    log_sizes: Iterable[int] = range(10, 18),
) -> Dict[int, SolEstimate]:
    """SOL-scaled NTT runtimes across sizes (Figure 7's series)."""
    q = q or default_modulus()
    measured = get_cpu(measured_cpu)
    target = get_cpu(target_cpu)
    backend = get_backend(backend_name)
    return {
        logn: sol_runtime(
            estimate_ntt(1 << logn, q, backend, measured), target
        )
        for logn in log_sizes
    }


@lru_cache(maxsize=1)
def _anchor_cache() -> Dict[int, float]:
    sweep = sol_sweep("mqx", "amd_epyc_9654", "amd_epyc_9965s")
    return {logn: est.sol_ns for logn, est in sweep.items()}


def default_sol_anchor() -> Dict[int, float]:
    """MQX SOL on AMD EPYC 9965S, ns per NTT by log2 size.

    This is the anchor series the synthesized published baselines
    (:mod:`repro.baselines.published`) are tied to.
    """
    return dict(_anchor_cache())
