"""Baseline implementations the paper compares against.

* :mod:`repro.baselines.bignum` - a from-scratch limb-based
  arbitrary-precision integer library in the style of GMP's mpn layer
  (64-bit limbs, schoolbook multiplication, Knuth Algorithm D division,
  per-call and per-allocation overhead). Substitutes for the GMP baseline.
* :mod:`repro.baselines.openfhe` - a fixed-size 32-bit-limb big integer
  backend in the style of OpenFHE's default math backend, with
  Barrett-style reduction but heavy per-operation object overhead.
  Substitutes for the OpenFHE baseline.
* :mod:`repro.baselines.published` - the ASIC (RPU, FPMM), GPU (MoMA) and
  OpenFHE-multicore numbers the paper's Figures 1 and 7 compare against.
"""

from repro.baselines.bignum import GmpContext, mpn_add_n, mpn_mul, mpn_sub_n, mpn_tdiv_qr
from repro.baselines.openfhe import OpenFheContext
from repro.baselines.published import PublishedSeries, get_published

__all__ = [
    "GmpContext",
    "OpenFheContext",
    "mpn_add_n",
    "mpn_sub_n",
    "mpn_mul",
    "mpn_tdiv_qr",
    "PublishedSeries",
    "get_published",
]
