"""An OpenFHE-style 128-bit math backend substitute.

OpenFHE's default mathematical backend represents >64-bit integers as
fixed-size big integers built from 32-bit limbs, maintained by generic C++
template code: per-operation object construction/copies, per-limb loops
with loop control (no hand unrolling), and - in the generic path the paper
benchmarks - *division-based* modular reduction rather than Barrett.

This substitute reproduces that cost structure instruction-by-instruction
with the traced scalar ISA:

* a 128-bit residue is four 32-bit limbs; a product is eight,
* schoolbook limb multiplication (16 hardware multiplies per 128x128
  product - PISA's observation that 32- and 64-bit MUL cost the same makes
  the *count* the dominant term),
* modular reduction by Knuth Algorithm D in base 2^32: one hardware divide
  per quotient limb, five quotient limbs per product reduction,
* every public operation pays a library-call entry plus operand/result
  copies, and every limb loop iteration pays index/bound control.

Net effect (after scheduling on the machine model): roughly the 30x gap to
the paper's AVX-512 kernels and the ~1.7x advantage over the GMP path that
Figures 4-5 and Section 8 report.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ArithmeticDomainError
from repro.isa import scalar as s
from repro.util.bits import MASK32

LIMB_BITS = 32
LIMB_MASK = MASK32


def limbs32_from_int(value: int, count: int) -> List[int]:
    """Split a non-negative integer into ``count`` 32-bit limbs."""
    if value < 0:
        raise ArithmeticDomainError("limb vectors are unsigned")
    limbs = [(value >> (LIMB_BITS * i)) & LIMB_MASK for i in range(count)]
    if value >> (LIMB_BITS * count):
        raise ArithmeticDomainError(f"value needs more than {count} limbs")
    return limbs


def int_from_limbs32(limbs: List[int]) -> int:
    """Inverse of :func:`limbs32_from_int`."""
    value = 0
    for i, limb in enumerate(limbs):
        value |= int(limb) << (LIMB_BITS * i)
    return value


def _loop_tick() -> None:
    """One limb-loop iteration's control: index increment + bound check."""
    s.add64(0, 1)
    s.cmp_lt64(0, 1)


def _copy_in(count: int) -> None:
    """Operand copy into a method-local big-integer object."""
    for _ in range(count):
        s.load64(0)
        s.store64(0)


def _add_limbs(a: List[int], b: List[int]) -> Tuple[List[int], int]:
    """32-bit limb addition loop: add, carry extract, loop control."""
    out = []
    carry = 0
    for x, y in zip(a, b):
        total, _ = s.add64(int(x) + carry, y)
        carry = s.shr64(total, LIMB_BITS).value
        out.append(int(total) & LIMB_MASK)
        _loop_tick()
    return out, carry


def _sub_limbs(a: List[int], b: List[int]) -> Tuple[List[int], int]:
    """32-bit limb subtraction loop with borrow extraction."""
    out = []
    borrow = 0
    for x, y in zip(a, b):
        diff, _ = s.sub64(x, int(y) + borrow)
        raw = int(x) - int(y) - borrow
        borrow = 1 if raw < 0 else 0
        out.append(raw & LIMB_MASK)
        _loop_tick()
    return out, borrow


def _mul_limbs(a: List[int], b: List[int]) -> List[int]:
    """Schoolbook 32-bit limb multiplication (full product), with loops."""
    out = [0] * (len(a) + len(b))
    for i, x in enumerate(a):
        carry = 0
        for j, y in enumerate(b):
            prod = s.imul64(x, y)  # 32x32 fits one 64-bit register
            acc, _ = s.add64(prod, out[i + j] + carry)
            out[i + j] = int(acc) & LIMB_MASK
            carry = s.shr64(acc, LIMB_BITS).value
            _loop_tick()
        out[i + len(b)] = carry
    return out


def _clz32(value: int) -> int:
    if value == 0:
        return 32
    return 32 - value.bit_length()


def _lshift_limbs(limbs: List[int], amount: int) -> List[int]:
    """Sub-limb left shift across a 32-bit limb vector."""
    if amount == 0:
        return list(limbs)
    out = []
    prev = 0
    for limb in limbs:
        shifted = s.shl64(limb, amount)
        merged = s.or64(shifted, prev)
        out.append(int(merged) & LIMB_MASK)
        prev = s.shr64(limb, LIMB_BITS - amount).value
        _loop_tick()
    out.append(prev)
    return out


def _rshift_limbs(limbs: List[int], amount: int) -> List[int]:
    """Sub-limb right shift across a 32-bit limb vector."""
    if amount == 0:
        return list(limbs)
    out = []
    for i, limb in enumerate(limbs):
        shifted = s.shr64(limb, amount)
        if i + 1 < len(limbs):
            shifted = s.or64(
                shifted, s.shl64(limbs[i + 1], LIMB_BITS - amount)
            )
        out.append(int(shifted) & LIMB_MASK)
        _loop_tick()
    return out


def divrem_limbs32(num: List[int], den: List[int]) -> Tuple[List[int], List[int]]:
    """Knuth Algorithm D in base 2^32: ``(quotient, remainder)`` limbs.

    One hardware divide estimates each quotient limb from the top 64 bits
    of the running numerator; a multiply-subtract applies it with at most
    two corrections. This is the generic division path behind
    division-based modular reduction.
    """
    d = list(den)
    while len(d) > 1 and d[-1] == 0:
        d.pop()
    if d == [0]:
        raise ArithmeticDomainError("division by zero")

    n_val = int_from_limbs32(num)
    d_val = int_from_limbs32(d)
    if n_val < d_val:
        return [0], list(num)

    if len(d) == 1:
        quotient = [0] * len(num)
        rem = 0
        for i in range(len(num) - 1, -1, -1):
            combined = (rem << LIMB_BITS) | int(num[i])
            q_limb, r_limb = s.div64(0, combined, d[0])
            quotient[i] = int(q_limb) & LIMB_MASK
            rem = int(r_limb)
            _loop_tick()
        return quotient, [rem]

    shift = _clz32(d[-1])
    dn = _lshift_limbs(d, shift)[: len(d)] if shift else list(d)
    un = _lshift_limbs(num, shift) if shift else list(num) + [0]

    n_len = len(d)
    m = len(un) - n_len - 1
    quotient = [0] * (m + 1)

    for j in range(m, -1, -1):
        top = (int(un[j + n_len]) << LIMB_BITS) | int(un[j + n_len - 1])
        if int(un[j + n_len]) == dn[-1]:
            q_hat = LIMB_MASK
        else:
            q_limb, _ = s.div64(0, top, dn[-1])
            q_hat = int(q_limb) & LIMB_MASK

        chunk = un[j : j + n_len + 1]
        chunk_val = int_from_limbs32(chunk)
        prod = _mul_limbs([q_hat], dn)
        prod_val = int_from_limbs32(prod)
        while prod_val > chunk_val:
            q_hat -= 1
            prod_val -= int_from_limbs32(dn)
            prod, _ = _sub_limbs(prod, limbs32_from_int(int_from_limbs32(dn), len(prod)))
        diff, _ = _sub_limbs(chunk, limbs32_from_int(prod_val, len(chunk)))
        un[j : j + n_len + 1] = diff
        quotient[j] = q_hat
        _loop_tick()

    rem = un[:n_len]
    if shift:
        rem = _rshift_limbs(rem + [0], shift)[:n_len]
    assert int_from_limbs32(quotient) == n_val // d_val
    assert int_from_limbs32(rem) == n_val % d_val
    return quotient, rem


class OpenFheContext:
    """OpenFHE-default-backend-style modular arithmetic on 128-bit residues."""

    #: Limbs per 128-bit residue.
    RESIDUE_LIMBS = 4

    def __init__(self, q: int) -> None:
        if q < 3:
            raise ArithmeticDomainError(f"modulus must be >= 3, got {q}")
        if q.bit_length() > 124:
            raise ArithmeticDomainError("modulus must be at most 124 bits")
        self.q = q
        self._q_limbs = limbs32_from_int(q, self.RESIDUE_LIMBS)

    def addmod(self, a: int, b: int) -> int:
        """ModAdd: limb addition + conditional limb subtraction."""
        s.call_overhead("call")
        _copy_in(2 * self.RESIDUE_LIMBS // 2)
        aa = limbs32_from_int(a, self.RESIDUE_LIMBS)
        bb = limbs32_from_int(b, self.RESIDUE_LIMBS)
        total, carry = _add_limbs(aa, bb)
        value = int_from_limbs32(total) + (carry << 128)
        if value >= self.q:
            total, _ = _sub_limbs(total, self._q_limbs)
            value -= self.q
        _copy_in(self.RESIDUE_LIMBS // 2)
        return value

    def submod(self, a: int, b: int) -> int:
        """ModSub: limb subtraction + conditional add-back."""
        s.call_overhead("call")
        _copy_in(2 * self.RESIDUE_LIMBS // 2)
        aa = limbs32_from_int(a, self.RESIDUE_LIMBS)
        bb = limbs32_from_int(b, self.RESIDUE_LIMBS)
        diff, borrow = _sub_limbs(aa, bb)
        if borrow:
            diff, _ = _add_limbs(diff, self._q_limbs)
        _copy_in(self.RESIDUE_LIMBS // 2)
        return (a - b) % self.q

    def mulmod(self, a: int, b: int) -> int:
        """ModMul: schoolbook limb product + division-based reduction.

        The generic OpenFHE path: 16 limb multiplies for the product, then
        Knuth division of the 8-limb product by the 4-limb modulus (five
        hardware divides) - no Barrett specialization.
        """
        s.call_overhead("call")
        _copy_in(2 * self.RESIDUE_LIMBS // 2)
        aa = limbs32_from_int(a, self.RESIDUE_LIMBS)
        bb = limbs32_from_int(b, self.RESIDUE_LIMBS)
        product = _mul_limbs(aa, bb)
        _, rem = divrem_limbs32(product, self._q_limbs)
        result = int_from_limbs32(rem)
        _copy_in(self.RESIDUE_LIMBS // 2)
        assert result == (a * b) % self.q
        return result

    def butterfly(self, x: int, y: int, w: int) -> Tuple[int, int]:
        """One NTT butterfly through the OpenFHE-style call structure."""
        t = self.mulmod(y, w)
        return self.addmod(x, t), self.submod(x, t)
