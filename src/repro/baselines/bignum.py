"""A from-scratch GMP-style multiprecision integer substrate.

Implements the mpn layer an arbitrary-precision library is built on -
limb-vector addition/subtraction with carry propagation, schoolbook
multiplication, and Knuth Algorithm D division - entirely with the traced
scalar ISA (:mod:`repro.isa.scalar`), 64-bit limbs.

The :class:`GmpContext` facade exposes modular arithmetic with GMP's cost
structure, which is what makes the GMP baseline slow in the paper despite
the underlying limb loops being fine:

* every operation is a library call on heap-allocated operands
  (``call``/``alloc`` overhead per mpz temporary),
* modular reduction is *division-based* (``mpz_mod`` -> ``mpn_tdiv_qr``),
  paying the hardware divider's latency instead of Barrett's multiplies,
* no modulus-width specialization (the generic any-size code path runs).

Limb vectors are little-endian lists of plain ints; all routines also
return plain ints so results can be checked against Python's exact
arithmetic.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ArithmeticDomainError
from repro.isa import scalar as s
from repro.util.bits import MASK64

LIMB_BITS = 64
LIMB_MASK = MASK64


def limbs_from_int(value: int, count: int = 0) -> List[int]:
    """Split a non-negative integer into little-endian 64-bit limbs."""
    if value < 0:
        raise ArithmeticDomainError("limb vectors are unsigned")
    limbs = []
    while value:
        limbs.append(value & LIMB_MASK)
        value >>= LIMB_BITS
    if not limbs:
        limbs.append(0)
    while len(limbs) < count:
        limbs.append(0)
    return limbs


def int_from_limbs(limbs: List[int]) -> int:
    """Inverse of :func:`limbs_from_int`."""
    value = 0
    for i, limb in enumerate(limbs):
        value |= int(limb) << (LIMB_BITS * i)
    return value


def mpn_add_n(a: List[int], b: List[int]) -> Tuple[List[int], int]:
    """``mpn_add_n``: equal-length limb addition; returns (limbs, carry)."""
    if len(a) != len(b):
        raise ArithmeticDomainError("mpn_add_n requires equal lengths")
    out: List[int] = []
    carry = s.const64(0)
    first = True
    for x, y in zip(a, b):
        if first:
            limb, carry = s.add64(x, y)
            first = False
        else:
            limb, carry = s.adc64(x, y, carry)
        out.append(limb.value)
    return out, int(carry)


def mpn_sub_n(a: List[int], b: List[int]) -> Tuple[List[int], int]:
    """``mpn_sub_n``: equal-length limb subtraction; returns (limbs, borrow)."""
    if len(a) != len(b):
        raise ArithmeticDomainError("mpn_sub_n requires equal lengths")
    out: List[int] = []
    borrow = s.const64(0)
    first = True
    for x, y in zip(a, b):
        if first:
            limb, borrow = s.sub64(x, y)
            first = False
        else:
            limb, borrow = s.sbb64(x, y, borrow)
        out.append(limb.value)
    return out, int(borrow)


def mpn_mul(a: List[int], b: List[int]) -> List[int]:
    """``mpn_mul``: schoolbook limb multiplication, full product."""
    out = [0] * (len(a) + len(b))
    for i, x in enumerate(a):
        carry = 0
        for j, y in enumerate(b):
            hi, lo = s.mul64(x, y)
            acc, c1 = s.add64(lo, out[i + j])
            acc, c2 = s.add64(acc, carry)
            out[i + j] = acc.value
            high, _ = s.adc64(hi, s.const64(0), c1)
            high, _ = s.add64(high, c2)
            carry = high.value
        out[i + len(b)] = carry
    return out


def _clz64(value: int) -> int:
    """Count of leading zero bits in a 64-bit limb (BSR/LZCNT, 1 uop)."""
    if value == 0:
        return 64
    return 64 - value.bit_length()


def mpn_lshift(limbs: List[int], amount: int) -> List[int]:
    """Left-shift a limb vector by ``amount`` < 64 bits (``mpn_lshift``)."""
    if not 0 <= amount < LIMB_BITS:
        raise ArithmeticDomainError("mpn_lshift handles sub-limb shifts")
    if amount == 0:
        return list(limbs)
    out = []
    prev = 0
    for limb in limbs:
        shifted = s.shl64(limb, amount)
        if prev:
            shifted = s.or64(shifted, prev)
        out.append(shifted.value)
        prev = s.shr64(limb, LIMB_BITS - amount).value
    out.append(prev)
    return out


def mpn_rshift(limbs: List[int], amount: int) -> List[int]:
    """Right-shift a limb vector by ``amount`` < 64 bits (``mpn_rshift``)."""
    if not 0 <= amount < LIMB_BITS:
        raise ArithmeticDomainError("mpn_rshift handles sub-limb shifts")
    if amount == 0:
        return list(limbs)
    out = []
    for i, limb in enumerate(limbs):
        shifted = s.shr64(limb, amount)
        if i + 1 < len(limbs):
            shifted = s.or64(shifted, s.shl64(limbs[i + 1], LIMB_BITS - amount))
        out.append(shifted.value)
    return out


def mpn_tdiv_qr(num: List[int], den: List[int]) -> Tuple[List[int], List[int]]:
    """``mpn_tdiv_qr``: truncated division, Knuth Algorithm D.

    Returns ``(quotient, remainder)`` limb vectors. The divisor is
    normalized so its top bit is set, each quotient limb comes from one
    hardware 128/64 divide plus a multiply-subtract correction - the
    classic structure, and the cost center of division-based modular
    reduction.
    """
    d = list(den)
    while len(d) > 1 and d[-1] == 0:
        d.pop()
    if d == [0]:
        raise ArithmeticDomainError("division by zero")

    n_val = int_from_limbs(num)
    d_val = int_from_limbs(d)
    if n_val < d_val:
        return [0], list(num)

    if len(d) == 1:
        # Single-limb divisor: one DIV per numerator limb.
        quotient: List[int] = [0] * len(num)
        rem = s.const64(0)
        for i in range(len(num) - 1, -1, -1):
            q_limb, rem = s.div64(rem, num[i], d[0])
            quotient[i] = q_limb.value
        return quotient, [rem.value]

    # D1: normalize so the top divisor limb has its high bit set.
    shift = _clz64(d[-1])
    dn = mpn_lshift(d, shift)[: len(d)] if shift else list(d)
    un = mpn_lshift(num, shift) if shift else list(num) + [0]

    n_len = len(d)
    m = len(un) - n_len - 1
    quotient = [0] * (m + 1)

    for j in range(m, -1, -1):
        # D3: estimate the quotient limb from the top two numerator limbs.
        top_hi = un[j + n_len]
        top_lo = un[j + n_len - 1]
        if top_hi == dn[-1]:
            q_hat = LIMB_MASK
        else:
            q_limb, _ = s.div64(top_hi, top_lo, dn[-1])
            q_hat = q_limb.value

        # D4: multiply-subtract; D5/D6: at most two add-back corrections.
        chunk = un[j : j + n_len + 1]
        chunk_val = int_from_limbs(chunk)
        prod = mpn_mul([q_hat], dn)
        prod_val = int_from_limbs(prod)
        while prod_val > chunk_val:
            q_hat -= 1
            prod, _ = mpn_sub_n(prod, limbs_from_int(int_from_limbs(dn), len(prod)))
            prod_val = int_from_limbs(prod)
        diff, _ = mpn_sub_n(chunk, limbs_from_int(prod_val, len(chunk)))
        un[j : j + n_len + 1] = diff
        quotient[j] = q_hat

    rem = un[:n_len]
    if shift:
        rem = mpn_rshift(rem, shift)
    # Self-check against exact arithmetic (cheap, catches drift).
    assert int_from_limbs(quotient) == n_val // d_val
    assert int_from_limbs(rem[:n_len]) == n_val % d_val
    return quotient, rem[:n_len]


class GmpContext:
    """GMP-style modular arithmetic over 128-bit residues.

    Mirrors how FHE code uses GMP: each modular operation is an mpz call
    (or two) with heap temporaries and division-based reduction. Values in
    and out are plain Python ints; the traced instruction stream carries
    the cost structure.
    """

    def __init__(self, q: int) -> None:
        if q < 3:
            raise ArithmeticDomainError(f"modulus must be >= 3, got {q}")
        self.q = q
        self._q_limbs = limbs_from_int(q, 2)

    def _mod(self, limbs: List[int]) -> int:
        """``mpz_mod``: division-based reduction of a limb vector."""
        s.call_overhead("call")
        s.call_overhead("alloc")
        _, rem = mpn_tdiv_qr(limbs, self._q_limbs)
        return int_from_limbs(rem) % self.q

    def addmod(self, a: int, b: int) -> int:
        """``mpz_add`` + ``mpz_mod``."""
        s.call_overhead("call")
        total, carry = mpn_add_n(limbs_from_int(a, 2), limbs_from_int(b, 2))
        return self._mod(total + [carry])

    def submod(self, a: int, b: int) -> int:
        """``mpz_sub`` (+ add-back) + ``mpz_mod``."""
        s.call_overhead("call")
        diff, borrow = mpn_sub_n(limbs_from_int(a, 2), limbs_from_int(b, 2))
        if borrow:
            fixed, _ = mpn_add_n(diff, self._q_limbs)
            return self._mod(fixed)
        return self._mod(diff)

    def mulmod(self, a: int, b: int) -> int:
        """``mpz_mul`` + ``mpz_mod`` (a 4-limb by 2-limb division)."""
        s.call_overhead("call")
        s.call_overhead("alloc")
        product = mpn_mul(limbs_from_int(a, 2), limbs_from_int(b, 2))
        return self._mod(product)

    def butterfly(self, x: int, y: int, w: int) -> Tuple[int, int]:
        """One NTT butterfly through the GMP-style call structure.

        Straightforward GMP NTT code holds one mpz temporary per butterfly
        for the twiddle product (init/clear = one managed allocation).
        """
        s.call_overhead("alloc")
        t = self.mulmod(y, w)
        return self.addmod(x, t), self.submod(x, t)
