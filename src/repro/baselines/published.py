"""Published accelerator baselines: RPU, FPMM, MoMA, OpenFHE-multicore.

The paper's Figures 1 and 7 compare CPU results against numbers *reported
by other papers* (the RPU and FPMM ASICs, the MoMA GPU implementation, and
OpenFHE on a 32-core AMD EPYC 7502 as reported by the RPU paper). We do
not have those papers' raw per-size data offline, but the paper states
every aggregate relationship:

* RPU is 545x-1485x faster than OpenFHE on the 32-core machine;
* MQX-SOL on AMD EPYC 9965S averages 2.5x faster than RPU, 2.9x faster
  than FPMM, and 1.7x faster than MoMA across supported sizes;
* MQX-SOL on Intel Xeon 6980P averages 1.3x faster than RPU, matches
  FPMM, and is 1.4x slower than MoMA;
* FPMM reports two NTT sizes; RPU reports sizes 1,024 - 16,384.

Following the substitution rule, this module *synthesizes* per-size series
that satisfy those stated relationships, anchored to this library's own
AMD MQX speed-of-light series. The shape of every comparison in Figure 7
is therefore reproduced by construction on the AMD side and measured on
the Intel side. This is documented in DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ExperimentError

#: NTT sizes (log2) each published design reports.
RPU_SIZES = (10, 11, 12, 13, 14)
FPMM_SIZES = (12, 14)
MOMA_SIZES = (10, 11, 12, 13, 14, 15, 16, 17)
OPENFHE_MULTICORE_SIZES = RPU_SIZES

#: Per-size ratio schedules (MQX-SOL-on-9965S speedup over each design),
#: chosen to average to the paper's stated aggregate ratios while varying
#: smoothly with size.
_RPU_RATIO = {10: 1.9, 11: 2.2, 12: 2.5, 13: 2.8, 14: 3.1}  # mean 2.5
_FPMM_RATIO = {12: 2.7, 14: 3.1}  # mean 2.9
_MOMA_RATIO = {
    10: 1.3, 11: 1.5, 12: 1.6, 13: 1.7, 14: 1.8, 15: 1.9, 16: 1.9, 17: 1.9,
}  # mean 1.7
#: RPU-over-OpenFHE(32-core EPYC 7502) speedups, spanning the paper's
#: reported 545x-1485x range.
_OPENFHE_RATIO = {10: 545.0, 11: 700.0, 12: 900.0, 13: 1150.0, 14: 1485.0}


@dataclass(frozen=True)
class PublishedSeries:
    """One published design's per-size NTT runtimes."""

    name: str
    device: str
    kind: str  # "asic" | "gpu" | "cpu"
    ns_per_ntt: Dict[int, float]  # log2(size) -> nanoseconds
    note: str

    @property
    def sizes(self) -> List[int]:
        """Supported log2 NTT sizes, ascending."""
        return sorted(self.ns_per_ntt)

    def runtime(self, logn: int) -> float:
        """Runtime in ns for one NTT of size ``2^logn``."""
        try:
            return self.ns_per_ntt[logn]
        except KeyError:
            raise ExperimentError(
                f"{self.name} does not report a 2^{logn}-point NTT"
            ) from None


def synthesize_published(
    sol_amd_ns: Dict[int, float],
) -> Dict[str, PublishedSeries]:
    """Build the published-baseline series from the AMD MQX-SOL anchor.

    ``sol_amd_ns`` maps log2(size) to this library's modeled MQX
    speed-of-light runtime (ns per NTT) on AMD EPYC 9965S, and must cover
    every size any published design reports.
    """
    needed = set(RPU_SIZES) | set(FPMM_SIZES) | set(MOMA_SIZES)
    missing = sorted(needed - set(sol_amd_ns))
    if missing:
        raise ExperimentError(
            f"anchor series missing log2 sizes {missing}"
        )

    rpu = {s: sol_amd_ns[s] * _RPU_RATIO[s] for s in RPU_SIZES}
    fpmm = {s: sol_amd_ns[s] * _FPMM_RATIO[s] for s in FPMM_SIZES}
    moma = {s: sol_amd_ns[s] * _MOMA_RATIO[s] for s in MOMA_SIZES}
    openfhe = {s: rpu[s] * _OPENFHE_RATIO[s] for s in OPENFHE_MULTICORE_SIZES}

    return {
        "rpu": PublishedSeries(
            name="RPU",
            device="Ring Processing Unit ASIC (Soni et al., ISPASS 2023)",
            kind="asic",
            ns_per_ntt=rpu,
            note=(
                "Synthesized: anchored to our AMD MQX-SOL series at the "
                "paper's stated 2.5x average gap (size-varying 1.9x-3.1x)."
            ),
        ),
        "fpmm": PublishedSeries(
            name="FPMM",
            device="Fully-pipelined Montgomery multiplier ASIC (Zhou et al.)",
            kind="asic",
            ns_per_ntt=fpmm,
            note="Synthesized at the paper's 2.9x average gap, two sizes.",
        ),
        "moma": PublishedSeries(
            name="MoMA",
            device="Multi-word modular arithmetic on NVIDIA RTX 4090",
            kind="gpu",
            ns_per_ntt=moma,
            note="Synthesized at the paper's 1.7x average gap.",
        ),
        "openfhe_32core": PublishedSeries(
            name="OpenFHE (32-core)",
            device="OpenFHE on AMD EPYC 7502, 32 cores (per RPU paper)",
            kind="cpu",
            ns_per_ntt=openfhe,
            note=(
                "Synthesized from RPU at the paper's reported 545x-1485x "
                "RPU-over-OpenFHE speedup range."
            ),
        ),
    }


_CACHE: Optional[Dict[str, PublishedSeries]] = None


def get_published(
    name: str, sol_amd_ns: Optional[Dict[int, float]] = None
) -> PublishedSeries:
    """Look up one published series, building the set on first use.

    When ``sol_amd_ns`` is omitted, the anchor is computed from the
    library's own roofline model (imported lazily to avoid a cycle).
    """
    global _CACHE
    if sol_amd_ns is not None:
        return synthesize_published(sol_amd_ns)[name]
    if _CACHE is None:
        from repro.roofline.sol import default_sol_anchor

        _CACHE = synthesize_published(default_sol_anchor())
    try:
        return _CACHE[name]
    except KeyError:
        raise ExperimentError(
            f"unknown published series {name!r}; "
            f"available: {sorted(_CACHE)}"
        ) from None
