"""Iterative radix-2 Cooley-Tukey NTT on plain integers.

The textbook in-place DIT algorithm: bit-reverse the input, then ``log n``
stages of butterflies with doubling span. This is the dataflow the baseline
substitutes (GMP- and OpenFHE-style, :mod:`repro.baselines`) use, in
contrast to the constant-geometry Pease dataflow of the paper's SIMD
kernels (:mod:`repro.ntt.pease`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ntt.twiddles import TwiddleTable, bit_reverse_permutation
from repro.util.checks import check_power_of_two, check_reduced


def ntt(
    values: List[int],
    q: int,
    root: Optional[int] = None,
    table: Optional[TwiddleTable] = None,
) -> List[int]:
    """Forward NTT, natural-order input and output."""
    n = len(values)
    check_power_of_two(n, "length")
    if table is None:
        table = TwiddleTable.get(n, q, root or 0)
    for i, value in enumerate(values):
        check_reduced(value, q, f"values[{i}]")

    x = bit_reverse_permutation(values)
    for stage in range(table.stages):
        span = 1 << stage
        twiddles = table.radix2_stage_twiddles(stage)
        for group in range(0, n, span * 2):
            for j in range(span):
                w = twiddles[j]
                top = x[group + j]
                bottom = x[group + j + span] * w % q
                x[group + j] = (top + bottom) % q
                x[group + j + span] = (top - bottom) % q
    return x


def intt(
    values: List[int],
    q: int,
    root: Optional[int] = None,
    table: Optional[TwiddleTable] = None,
) -> List[int]:
    """Inverse NTT, natural-order input and output (includes 1/n scaling)."""
    n = len(values)
    check_power_of_two(n, "length")
    if table is None:
        table = TwiddleTable.get(n, q, root or 0)
    for i, value in enumerate(values):
        check_reduced(value, q, f"values[{i}]")

    x = bit_reverse_permutation(values)
    for stage in range(table.stages):
        span = 1 << stage
        twiddles = table.radix2_stage_twiddles(stage, inverse=True)
        for group in range(0, n, span * 2):
            for j in range(span):
                w = twiddles[j]
                top = x[group + j]
                bottom = x[group + j + span] * w % q
                x[group + j] = (top + bottom) % q
                x[group + j + span] = (top - bottom) % q
    n_inv = table.n_inverse
    return [value * n_inv % q for value in x]
