"""Constant-geometry (Pease) NTT on plain integers (Section 3.2).

Pease's reorganization [Pease 1968] gives every stage the *same* dataflow:
read ``x[i]`` and ``x[i + n/2]``, write the butterfly results to adjacent
locations ``2i`` and ``2i + 1``. Identical stages are what make the
algorithm attractive for SIMD (and for the paper's AVX-512 NTT, which
builds on this dataflow): reads/writes are unit-stride vector operations
plus a fixed interleave permutation.

Stage ``s`` twiddle for butterfly ``i``:
``root ^ (bitrev(i mod 2^s, s) * (n >> (s + 1)))``; natural-order input
produces bit-reversed output (undone by a final permutation).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ntt.twiddles import TwiddleTable, bit_reverse_permutation
from repro.util.checks import check_power_of_two, check_reduced


def pease_ntt(
    values: List[int],
    q: int,
    root: Optional[int] = None,
    table: Optional[TwiddleTable] = None,
    natural_order: bool = True,
) -> List[int]:
    """Forward Pease NTT.

    ``natural_order=False`` skips the final bit-reversal, returning the
    transform in the bit-reversed order the constant-geometry dataflow
    naturally produces (cheaper when the caller only does point-wise
    multiplication followed by a matching inverse).
    """
    n = len(values)
    check_power_of_two(n, "length")
    if table is None:
        table = TwiddleTable.get(n, q, root or 0)
    for i, value in enumerate(values):
        check_reduced(value, q, f"values[{i}]")

    x = list(values)
    half = n // 2
    for stage in range(table.stages):
        twiddles = table.pease_stage_twiddles(stage)
        out = [0] * n
        for i in range(half):
            top = x[i]
            bottom = x[i + half] * twiddles[i] % q
            out[2 * i] = (top + bottom) % q
            out[2 * i + 1] = (top - bottom) % q
        x = out
    return bit_reverse_permutation(x) if natural_order else x


def pease_intt(
    values: List[int],
    q: int,
    root: Optional[int] = None,
    table: Optional[TwiddleTable] = None,
    natural_order: bool = True,
) -> List[int]:
    """Inverse Pease NTT (includes the 1/n scaling).

    With ``natural_order=False`` the *input* is taken in bit-reversed order
    (matching :func:`pease_ntt`'s raw output).
    """
    n = len(values)
    check_power_of_two(n, "length")
    if table is None:
        table = TwiddleTable.get(n, q, root or 0)
    for i, value in enumerate(values):
        check_reduced(value, q, f"values[{i}]")

    # The inverse transform is the forward dataflow with inverse twiddles
    # applied to the natural-order spectrum; a bit-reversed input (the raw
    # forward output) is first permuted back.
    x = list(values) if natural_order else bit_reverse_permutation(values)

    half = n // 2
    for stage in range(table.stages):
        twiddles = table.pease_stage_twiddles(stage, inverse=True)
        out = [0] * n
        for i in range(half):
            top = x[i]
            bottom = x[i + half] * twiddles[i] % q
            out[2 * i] = (top + bottom) % q
            out[2 * i + 1] = (top - bottom) % q
        x = out
    x = bit_reverse_permutation(x)
    n_inv = table.n_inverse
    return [value * n_inv % q for value in x]
