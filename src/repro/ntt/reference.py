"""Reference (definitional) NTT and polynomial multiplication.

These O(n^2) routines implement Equations 10 and 11 literally and serve as
ground truth for every faster implementation in the library.
"""

from __future__ import annotations

from typing import List, Optional


from repro.errors import NttParameterError
from repro.ntt.twiddles import TwiddleTable
from repro.util.checks import check_power_of_two, check_reduced


def naive_ntt(values: List[int], q: int, root: Optional[int] = None) -> List[int]:
    """Equation 11: ``y_k = sum_j x_j * w^(jk) mod q`` by direct evaluation."""
    n = len(values)
    check_power_of_two(n, "length")
    table = TwiddleTable.get(n, q, root or 0)
    for i, value in enumerate(values):
        check_reduced(value, q, f"values[{i}]")
    return [
        sum(x * table.power(j * k) for j, x in enumerate(values)) % q
        for k in range(n)
    ]


def naive_intt(values: List[int], q: int, root: Optional[int] = None) -> List[int]:
    """Inverse of :func:`naive_ntt`: ``x_j = n^-1 sum_k y_k w^(-jk) mod q``."""
    n = len(values)
    check_power_of_two(n, "length")
    table = TwiddleTable.get(n, q, root or 0)
    n_inv = table.n_inverse
    return [
        n_inv
        * sum(y * table.power(j * k, inverse=True) for k, y in enumerate(values))
        % q
        for j in range(n)
    ]


def schoolbook_polymul(f: List[int], g: List[int], q: int) -> List[int]:
    """Equation 10: O(n^2) polynomial multiplication over ``Z_q``.

    For inputs of length ``n`` (degree ``n - 1``) the result has length
    ``2n - 1``.
    """
    if not f or not g:
        raise NttParameterError("polynomials must be non-empty")
    for i, value in enumerate(f):
        check_reduced(value, q, f"f[{i}]")
    for i, value in enumerate(g):
        check_reduced(value, q, f"g[{i}]")
    out = [0] * (len(f) + len(g) - 1)
    for i, a in enumerate(f):
        for j, b in enumerate(g):
            out[i + j] = (out[i + j] + a * b) % q
    return out


def negacyclic_schoolbook_polymul(f: List[int], g: List[int], q: int) -> List[int]:
    """Schoolbook multiplication in ``Z_q[x] / (x^n + 1)``.

    The negacyclic ring used by RLWE-based FHE schemes: coefficients that
    wrap past degree ``n - 1`` re-enter negated.
    """
    if len(f) != len(g):
        raise NttParameterError("negacyclic multiplication needs equal lengths")
    n = len(f)
    full = schoolbook_polymul(f, g, q)
    out = list(full[:n]) + [0] * (2 * n - 1 - len(full))
    for k in range(n, 2 * n - 1):
        out[k - n] = (out[k - n] - full[k]) % q
    return out[:n]
