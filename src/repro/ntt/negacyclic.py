"""Negacyclic NTT: multiplication in ``Z_q[x] / (x^n + 1)``.

RLWE-based FHE schemes (the paper's motivating application) work in the
*negacyclic* ring, not the cyclic one: wrap-around coefficients re-enter
negated. The standard technique is twisting by a primitive ``2n``-th root
of unity ``psi`` (with ``psi^2 = omega``):

    negacyclic(f, g) = untwist( cyclic( twist(f), twist(g) ) )

where ``twist(f)[i] = f[i] * psi^i`` and ``untwist`` multiplies by
``psi^-i``. The twist/untwist passes are plain point-wise modular
multiplications, so they run on the same kernel backends as everything
else; the cyclic convolution in the middle is the Pease SIMD NTT.

Requires ``2n | q - 1`` (all the library's default primes satisfy this).
"""

from __future__ import annotations

from typing import List, Optional

from repro.arith.modular import inv_mod
from repro.arith.primes import root_of_unity
from repro.errors import NttParameterError
from repro.kernels.backend import Backend
from repro.ntt.simd import SimdNtt
from repro.obs.hooks import record_engine_call
from repro.util.checks import check_power_of_two, check_reduced


class NegacyclicNtt:
    """Multiplication plan for ``Z_q[x] / (x^n + 1)`` on one backend.

    Precomputes the twist tables (powers of ``psi`` and ``psi^-1``) and an
    ``n``-point cyclic NTT plan. The negacyclic product of two length-``n``
    coefficient vectors needs only ``n``-point transforms (no zero
    padding), which is why FHE implementations prefer this formulation.
    """

    def __init__(
        self,
        n: int,
        q: int,
        backend: Backend,
        algorithm: str = "schoolbook",
        psi: Optional[int] = None,
        engine: str = "faithful",
        fast_mode: Optional[str] = None,
    ) -> None:
        check_power_of_two(n, "n")
        if (q - 1) % (2 * n):
            raise NttParameterError(
                f"negacyclic multiplication needs 2n | q - 1; "
                f"got n={n}, q={q}"
            )
        self.n = n
        self.q = q
        self.backend = backend
        self.psi = psi or root_of_unity(2 * n, q)
        if pow(self.psi, 2 * n, q) != 1 or pow(self.psi, n, q) == 1:
            raise NttParameterError(
                f"{self.psi} is not a primitive {2 * n}-th root of unity mod {q}"
            )
        # Resolve the availability cascade here (not just in the inner
        # SimdNtt): the twist plans below must agree with the engine
        # that will actually run. Invalid names pass through unchanged
        # and fail SimdNtt's validation as before.
        from repro.resil.degrade import resolve_engine

        if engine in ("fast", "parallel"):
            engine = resolve_engine(engine, site="NegacyclicNtt")
        # The cyclic plan uses omega = psi^2, keeping the rings consistent.
        omega = self.psi * self.psi % q
        self.plan = SimdNtt(
            n, q, backend, algorithm=algorithm, root=omega, engine=engine,
            fast_mode=fast_mode,
        )
        self.engine = engine

        psi_inv = inv_mod(self.psi, q)
        self._twist = [pow(self.psi, i, q) for i in range(n)]
        self._untwist = [pow(psi_inv, i, q) for i in range(n)]
        if engine in ("fast", "parallel"):
            from repro.fast.ntt import FastNegacyclic

            #: Vectorized twin sharing this plan's psi and twiddle table.
            self.fast_plan = FastNegacyclic(
                n, q, psi=self.psi, plan=self.plan.fast_plan
            )
        else:
            self.fast_plan = None
        if engine == "parallel":
            from repro.par.api import ParNegacyclic

            #: Pool-sharded wrapper: ``multiply`` on a batch splits the
            #: rows across the active ParallelExecutor's workers.
            self.par_plan = ParNegacyclic.from_plan(self.fast_plan)
        else:
            self.par_plan = None

    def _pointwise(self, values: List[int], table: List[int]) -> List[int]:
        """Point-wise multiply by a precomputed table, on the backend."""
        backend = self.backend
        lanes = backend.lanes
        out: List[int] = []
        for base in range(0, self.n, lanes):
            a = backend.load_block(values[base : base + lanes])
            b = backend.load_block(table[base : base + lanes])
            out.extend(backend.store_block(backend.mulmod(a, b, self.plan.ctx)))
        return out

    def forward(self, values: List[int]) -> List[int]:
        """Twisted forward transform (negacyclic evaluation form).

        Output order is the raw bit-reversed order of the cyclic plan -
        point-wise operations don't care, and the matching
        :meth:`inverse` undoes it.
        """
        if self.fast_plan is not None:
            return self.fast_plan.forward(values)
        if len(values) != self.n:
            raise NttParameterError(f"expected {self.n} values, got {len(values)}")
        for i, value in enumerate(values):
            check_reduced(value, self.q, f"values[{i}]")
        twisted = self._pointwise(values, self._twist)
        return self.plan.forward(twisted, natural_order=False)

    def inverse(self, values: List[int]) -> List[int]:
        """Inverse of :meth:`forward` (includes untwisting and 1/n)."""
        if self.fast_plan is not None:
            return self.fast_plan.inverse(values)
        if len(values) != self.n:
            raise NttParameterError(f"expected {self.n} values, got {len(values)}")
        cyclic = self.plan.inverse(values, natural_order=False)
        return self._pointwise(cyclic, self._untwist)

    def multiply(self, f: List[int], g: List[int]) -> List[int]:
        """Negacyclic product: ``f * g mod (x^n + 1, q)``."""
        if self.par_plan is not None:
            return self.par_plan.multiply(f, g)
        if self.fast_plan is not None:
            return self.fast_plan.multiply(f, g)
        record_engine_call("faithful", "ntt.polymul", self.n)
        fa = self.forward(f)
        ga = self.forward(g)
        backend = self.backend
        lanes = backend.lanes
        prod: List[int] = []
        for base in range(0, self.n, lanes):
            a = backend.load_block(fa[base : base + lanes])
            b = backend.load_block(ga[base : base + lanes])
            prod.extend(backend.store_block(backend.mulmod(a, b, self.plan.ctx)))
        return self.inverse(prod)


def negacyclic_polymul(
    f: List[int],
    g: List[int],
    q: int,
    backend: Backend,
    algorithm: str = "schoolbook",
    engine: str = "faithful",
) -> List[int]:
    """One-shot negacyclic polynomial multiplication."""
    if len(f) != len(g):
        raise NttParameterError("negacyclic multiplication needs equal lengths")
    plan = NegacyclicNtt(len(f), q, backend, algorithm=algorithm, engine=engine)
    return plan.multiply(f, g)
