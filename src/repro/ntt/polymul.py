"""Polynomial multiplication via NTT (Section 2.3).

The convolution theorem: multiply the (zero-padded) NTTs point-wise and
transform back. Both the plain-integer and backend-driven paths are
provided; the latter exercises the full paper pipeline (SIMD NTT + BLAS
point-wise multiplication + SIMD inverse NTT).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NttParameterError
from repro.kernels.backend import Backend
from repro.ntt.radix2 import intt, ntt
from repro.ntt.simd import SimdNtt
from repro.ntt.twiddles import TwiddleTable
from repro.util.checks import check_power_of_two


def _padded_size(out_len: int) -> int:
    size = 2  # the smallest supported transform
    while size < out_len:
        size *= 2
    return size


def ntt_polymul(f: List[int], g: List[int], q: int) -> List[int]:
    """Cyclic-convolution polynomial multiplication on plain integers.

    Zero-pads to the next power of two covering ``len(f) + len(g) - 1``,
    so the cyclic convolution equals the linear one (Equation 10).
    """
    if not f or not g:
        raise NttParameterError("polynomials must be non-empty")
    out_len = len(f) + len(g) - 1
    size = _padded_size(out_len)
    table = TwiddleTable.get(size, q)
    fa = ntt(f + [0] * (size - len(f)), q, table=table)
    ga = ntt(g + [0] * (size - len(g)), q, table=table)
    prod = [a * b % q for a, b in zip(fa, ga)]
    return intt(prod, q, table=table)[:out_len]


def simd_ntt_polymul(
    f: List[int],
    g: List[int],
    q: int,
    backend: Backend,
    algorithm: str = "schoolbook",
    plan: Optional[SimdNtt] = None,
    engine: str = "faithful",
) -> List[int]:
    """Polynomial multiplication through the backend-driven pipeline.

    Forward-transforms both inputs with the SIMD NTT (leaving them in
    bit-reversed order - point-wise multiplication is order-agnostic),
    multiplies point-wise with the backend's ``mulmod``, and inverse
    transforms. A prebuilt ``plan`` (a :class:`SimdNtt` of the right size)
    can be supplied to amortize twiddle precomputation; its engine takes
    precedence over the ``engine`` argument. With ``engine="fast"`` the
    transforms and the point-wise multiply run on the vectorized engine.
    """
    if not f or not g:
        raise NttParameterError("polynomials must be non-empty")
    out_len = len(f) + len(g) - 1
    size = _padded_size(out_len)
    check_power_of_two(size, "padded size")
    if plan is None:
        plan = SimdNtt(size, q, backend, algorithm=algorithm, engine=engine)
    elif plan.n != size or plan.q != q:
        raise NttParameterError(
            f"plan is for n={plan.n}, q={plan.q}; need n={size}, q={q}"
        )

    fa = plan.forward(f + [0] * (size - len(f)), natural_order=False)
    ga = plan.forward(g + [0] * (size - len(g)), natural_order=False)

    if plan.fast_plan is not None:
        prod = plan.fast_plan.pointwise_mul(fa, ga)
    else:
        lanes = backend.lanes
        prod = []
        for base in range(0, size, lanes):
            a = backend.load_block(fa[base : base + lanes])
            b = backend.load_block(ga[base : base + lanes])
            prod.extend(backend.store_block(backend.mulmod(a, b, plan.ctx)))

    return plan.inverse(prod, natural_order=False)[:out_len]
