"""Backend-driven SIMD NTT using the Pease constant-geometry dataflow.

This is the library's equivalent of the paper's hand-written NTT kernels
(Section 3.2): every stage loads contiguous blocks of the low and high
halves, loads a contiguous twiddle vector from the precomputed table,
runs the modular butterfly on the configured backend (scalar / AVX2 /
AVX-512 / MQX), interleaves the results with unpack/permute instructions,
and stores two contiguous output blocks.

Running a transform inside a :func:`repro.isa.trace.tracing` region yields
the complete dynamic instruction trace; :mod:`repro.perf` uses one
representative block per stage instead (the stream is identical across
blocks), which keeps performance estimation O(1) in ``n``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NttParameterError
from repro.kernels.backend import Backend, ModulusContext
from repro.ntt.twiddles import TwiddleTable, bit_reverse_permutation
from repro.obs.hooks import record_engine_call
from repro.util.checks import check_reduced

#: The execution engines a transform can run on (see
#: docs/PERFORMANCE.md): ``"faithful"`` simulates the configured ISA
#: backend instruction by instruction (traceable, estimable);
#: ``"fast"`` computes the identical results on whole NumPy vectors;
#: ``"parallel"`` shards batched fast-engine work across the
#: :mod:`repro.par` worker pool (still bit-identical).
ENGINES = ("faithful", "fast", "parallel")


class SimdNtt:
    """An ``n``-point NTT over ``Z_q`` bound to one kernel backend.

    Args:
        n: Transform size (power of two, at least ``2 * backend.lanes``).
        q: NTT-friendly modulus (``n | q - 1``, at most 124 bits).
        backend: A :class:`~repro.kernels.backend.Backend` instance.
        algorithm: ``"schoolbook"`` or ``"karatsuba"`` for the modular
            multiplications (Section 5.5's sensitivity knob).
        root: Optional explicit primitive ``n``-th root of unity.
        engine: ``"faithful"`` (default — every transform runs through
            the ISA simulator, so it can be traced and estimated),
            ``"fast"`` (bit-identical results computed on the
            NumPy-vectorized engine, for when only the values matter) or
            ``"parallel"`` (fast-engine results with batched rows
            sharded across the :mod:`repro.par` worker pool).
        fast_mode: Arithmetic substrate for the fast/parallel engines —
            ``"dw"``, ``"r52"`` or ``"auto"``/``None`` (see
            :class:`repro.fast.modular.FastModulus`). Ignored by the
            faithful engine.
    """

    def __init__(
        self,
        n: int,
        q: int,
        backend: Backend,
        algorithm: str = "schoolbook",
        root: Optional[int] = None,
        twiddle_mode: str = "barrett",
        engine: str = "faithful",
        fast_mode: Optional[str] = None,
    ) -> None:
        self.table = TwiddleTable.get(n, q, root or 0)
        self.backend = backend
        if n < 2 * backend.lanes:
            raise NttParameterError(
                f"a {n}-point NTT cannot fill {backend.lanes}-lane blocks; "
                f"need n >= {2 * backend.lanes}"
            )
        if twiddle_mode not in ("barrett", "shoup", "lazy"):
            raise NttParameterError(
                f"twiddle_mode must be 'barrett', 'shoup' or 'lazy', "
                f"got {twiddle_mode!r}"
            )
        #: "barrett" (the paper's general-operand method), "shoup"
        #: (Harvey's precomputed-twiddle butterfly) or "lazy" (Shoup plus
        #: Harvey's [0, 4q) lazy ranges with one final normalization).
        self.twiddle_mode = twiddle_mode
        if engine not in ENGINES:
            raise NttParameterError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        # Availability cascade (parallel → fast → faithful): a valid but
        # currently unavailable engine degrades with a warning instead
        # of failing the construction site (see repro.resil.degrade).
        from repro.resil.degrade import resolve_engine

        engine = resolve_engine(engine, site="SimdNtt")
        self.engine = engine
        self.ctx: ModulusContext = backend.make_modulus(q, algorithm=algorithm)
        self._shoup_cache: dict = {}
        if engine in ("fast", "parallel"):
            # Deferred import: the faithful path must not require NumPy.
            from repro.fast.ntt import FastNtt

            #: The vectorized twin plan, sharing this plan's twiddle
            #: table so both engines use identical constants.
            self.fast_plan = FastNtt(n, q, table=self.table, mode=fast_mode)
        else:
            self.fast_plan = None
        if engine == "parallel":
            from repro.par.api import ParNtt

            #: Pool-sharded wrapper around the fast plan (batched rows
            #: are split across the default ParallelExecutor's workers).
            self.par_plan = ParNtt.from_plan(self.fast_plan)
        else:
            self.par_plan = None

    @property
    def n(self) -> int:
        """Transform size."""
        return self.table.n

    @property
    def q(self) -> int:
        """Modulus."""
        return self.table.q

    @property
    def butterflies(self) -> int:
        """Total butterflies in one transform: ``(n/2) log2 n``."""
        return (self.n // 2) * self.table.stages

    def forward(self, values: List[int], natural_order: bool = True) -> List[int]:
        """Forward NTT (bit-reversed raw output unless ``natural_order``)."""
        if self.par_plan is not None:
            return self.par_plan.forward(values, natural_order=natural_order)
        if self.fast_plan is not None:
            return self.fast_plan.forward(values, natural_order=natural_order)
        record_engine_call("faithful", "ntt.forward", self.n)
        x = self._run_stages(values, inverse=False)
        return bit_reverse_permutation(x) if natural_order else x

    def inverse(self, values: List[int], natural_order: bool = True) -> List[int]:
        """Inverse NTT including the 1/n scaling.

        With ``natural_order=False`` the input is expected in the
        bit-reversed order :meth:`forward` produces raw.
        """
        if self.par_plan is not None:
            return self.par_plan.inverse(values, natural_order=natural_order)
        if self.fast_plan is not None:
            return self.fast_plan.inverse(values, natural_order=natural_order)
        record_engine_call("faithful", "ntt.inverse", self.n)
        x = list(values) if natural_order else bit_reverse_permutation(values)
        x = self._run_stages(x, inverse=True)
        x = bit_reverse_permutation(x)
        return self._scale(x)

    def _run_stages(self, values: List[int], inverse: bool) -> List[int]:
        n = self.n
        if len(values) != n:
            raise NttParameterError(
                f"expected {n} values, got {len(values)}"
            )
        for i, value in enumerate(values):
            check_reduced(value, self.q, f"values[{i}]")

        backend = self.backend
        lanes = backend.lanes
        half = n // 2
        mode = self.twiddle_mode
        x = list(values)
        for stage in range(self.table.stages):
            twiddles = self.table.pease_stage_twiddles(stage, inverse)
            shoup_tw = (
                self._shoup_stage(stage, inverse)
                if mode in ("shoup", "lazy")
                else None
            )
            out = [0] * n
            for base in range(0, half, lanes):
                top = backend.load_block(x[base : base + lanes])
                bottom = backend.load_block(x[base + half : base + half + lanes])
                tw = backend.load_block(twiddles[base : base + lanes])
                if mode == "barrett":
                    plus, minus = backend.butterfly(top, bottom, tw, self.ctx)
                else:
                    tw_s = backend.load_block(shoup_tw[base : base + lanes])
                    if mode == "lazy":
                        plus, minus = backend.butterfly_lazy(
                            top, bottom, tw, tw_s, self.ctx
                        )
                    else:
                        plus, minus = backend.butterfly_shoup(
                            top, bottom, tw, tw_s, self.ctx
                        )
                blk0, blk1 = backend.interleave(plus, minus)
                out[2 * base : 2 * base + lanes] = backend.store_block(blk0)
                out[2 * base + lanes : 2 * base + 2 * lanes] = backend.store_block(
                    blk1
                )
            x = out
        if mode == "lazy":
            # One final normalization pass instead of per-butterfly ones.
            reduced = []
            for base in range(0, n, lanes):
                block = backend.load_block(x[base : base + lanes])
                reduced.extend(
                    backend.store_block(
                        backend.reduce_from_lazy(block, self.ctx)
                    )
                )
            x = reduced
        return x

    def _shoup_stage(self, stage: int, inverse: bool):
        """Precomputed Shoup constants ``floor(w * 2^128 / q)`` per stage."""
        key = (stage, inverse)
        if key not in self._shoup_cache:
            q = self.q
            self._shoup_cache[key] = [
                (w << 128) // q
                for w in self.table.pease_stage_twiddles(stage, inverse)
            ]
        return self._shoup_cache[key]

    def _scale(self, values: List[int]) -> List[int]:
        backend = self.backend
        lanes = backend.lanes
        n_inv = backend.broadcast_dw(self.table.n_inverse)
        out: List[int] = []
        for base in range(0, len(values), lanes):
            block = backend.load_block(values[base : base + lanes])
            scaled = backend.mulmod(block, n_inv, self.ctx)
            out.extend(backend.store_block(scaled))
        return out

    # ------------------------------------------------------------------
    # Performance-model hooks
    # ------------------------------------------------------------------

    def blocks_per_stage(self) -> int:
        """SIMD blocks processed per stage (``n / (2 * lanes)``)."""
        return self.n // (2 * self.backend.lanes)

    def stage_bytes_touched(self) -> int:
        """Bytes moved per stage: reads of x + twiddles, writes of out.

        Each of the ``n`` input residues (16 bytes) is read once, each of
        the ``n/2`` twiddles is read once, and ``n`` outputs are written.
        """
        return self.n * 16 + (self.n // 2) * 16 + self.n * 16

    def stage_working_set(self) -> int:
        """Resident bytes during a stage: in + out buffers + twiddles.

        This is the quantity behind the paper's L2-spill hypothesis: at
        n = 2^15 the two ping-pong buffers hold ~1 MB of 128-bit residues,
        doubling to ~2 MB at 2^16, which exceeds Intel Xeon's 1.28 MB
        per-core L2 (Section 5.4).
        """
        return 2 * self.n * 16 + (self.n // 2) * 16
