"""Number theoretic transforms (Section 2.3).

* :mod:`repro.ntt.reference` - the O(n^2) definition (Equation 11) and
  schoolbook polynomial multiplication (Equation 10).
* :mod:`repro.ntt.radix2` - iterative Cooley-Tukey NTT/inverse-NTT on plain
  integers (used by the baseline substitutes).
* :mod:`repro.ntt.pease` - the constant-geometry Pease dataflow [Pease 1968]
  the paper's SIMD NTTs use (Section 3.2), on plain integers.
* :mod:`repro.ntt.twiddles` - precomputed twiddle tables for both dataflows.
* :mod:`repro.ntt.simd` - the backend-driven (scalar/AVX2/AVX-512/MQX) Pease
  NTT operating on :class:`~repro.kernels.backend.Backend` blocks.
* :mod:`repro.ntt.polymul` - polynomial multiplication via NTT.
"""

from repro.ntt.pease import pease_intt, pease_ntt
from repro.ntt.radix2 import intt as radix2_intt
from repro.ntt.radix2 import ntt as radix2_ntt
from repro.ntt.reference import naive_intt, naive_ntt, schoolbook_polymul
from repro.ntt.simd import SimdNtt
from repro.ntt.twiddles import TwiddleTable, bit_reverse, bit_reverse_permutation

__all__ = [
    "naive_ntt",
    "naive_intt",
    "schoolbook_polymul",
    "radix2_ntt",
    "radix2_intt",
    "pease_ntt",
    "pease_intt",
    "SimdNtt",
    "TwiddleTable",
    "bit_reverse",
    "bit_reverse_permutation",
]
